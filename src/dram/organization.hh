/**
 * @file
 * DRAM module geometry and physical-address decomposition.
 *
 * A module is channels x ranks x banks x rows x columns of cache
 * blocks (Figure 1). Addresses arriving from the system are split
 * into coordinates with a configurable interleaving; the default is
 * row:bank:rank:column:channel (RoBaRaCoCh), which spreads successive
 * cache blocks across channels and keeps a row's blocks in one bank
 * so that row-buffer locality is visible.
 */

#ifndef MEMCON_DRAM_ORGANIZATION_HH
#define MEMCON_DRAM_ORGANIZATION_HH

#include <cstdint>
#include <string>

#include "common/strong_id.hh"
#include "common/units.hh"
#include "dram/timing.hh"

namespace memcon::dram
{

/** Physical address of a cache block inside a module. */
struct Coordinates
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    RowId row{}; //!< per-bank row coordinate
    unsigned column = 0;

    bool operator==(const Coordinates &) const = default;
};

/** How the flat address is split into coordinates. */
enum class AddressMapping
{
    RoBaRaCoCh, //!< row : bank : rank : column : channel
    RoRaBaCoCh, //!< row : rank : bank : column : channel
    RoCoBaRaCh, //!< row : column : bank : rank : channel (bank-interleaved)
};

std::string toString(AddressMapping mapping);

/**
 * Geometry of one memory system. Sizes are powers of two; the module
 * mirrors the paper's default of an 8 GB DIMM with 8 KB rows.
 */
struct Geometry
{
    unsigned channels = 1;
    unsigned ranks = 1;
    unsigned banks = 8;
    std::uint64_t rowsPerBank = 1 << 17; // 131072
    unsigned columnsPerRow = 128;        // cache blocks per row
    unsigned blockBytes = 64;
    AddressMapping mapping = AddressMapping::RoBaRaCoCh;

    /** Bytes in one DRAM row (the unit MEMCON tests/refreshes). */
    std::uint64_t rowBytes() const
    {
        return std::uint64_t{columnsPerRow} * blockBytes;
    }

    /** Total rows across the module. */
    std::uint64_t totalRows() const
    {
        return std::uint64_t{channels} * ranks * banks * rowsPerBank;
    }

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const
    {
        return totalRows() * rowBytes();
    }

    /** Total cache blocks. */
    std::uint64_t totalBlocks() const
    {
        return totalRows() * columnsPerRow;
    }

    /** Decompose a block-aligned byte address into coordinates. */
    Coordinates decompose(std::uint64_t byte_addr) const;

    /** Recompose coordinates into the block-aligned byte address. */
    std::uint64_t compose(const Coordinates &coords) const;

    /**
     * A dense index over all rows in the module, used to key per-row
     * refresh state and failure records.
     */
    RowId flatRowIndex(const Coordinates &coords) const;

    /** Inverse of flatRowIndex (column/channel fields are zero). */
    Coordinates rowFromFlatIndex(RowId row_index) const;

    /**
     * The paper's 8 GB DDR3 DIMM (Table 2): 1 channel, 1 rank,
     * 8 banks, 8 KB rows.
     */
    static Geometry dimm8GB();

    /**
     * The 2 GB module used in the FPGA experiments (appendix):
     * 32768 rows per bank, 8 banks.
     */
    static Geometry module2GB();

    /** Validate invariants (power-of-two fields); fatal on error. */
    void validate() const;
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_ORGANIZATION_HH
