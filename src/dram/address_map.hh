/**
 * @file
 * Physical-address interleaving: XOR bank-function address maps.
 *
 * Real memory controllers do not hand out rows bank by bank - they
 * interleave the physical address space across channels, ranks, and
 * banks with XOR "bank functions": each bank-index bit is the parity
 * of a set of physical address bits (DRAMA/zenhammer reverse these
 * sets from real CPUs; Intel's classic bank bit is a13 ^ a17). The
 * MEMCON engine models its population at row granularity, so the map
 * here operates on *page indices* (one page == one DRAM row) and
 * answers the two questions bank sharding needs:
 *
 *   - which shard (channel/rank/bank) owns a page, and
 *   - what the page's row coordinate inside that shard is,
 *
 * with an exact inverse, so pages and (shard, row) pairs are in
 * bijection - the property test suite proves encode/decode round-trip
 * on every preset.
 *
 * Construction keeps invertibility by fiat instead of by linear
 * algebra: the shard field occupies a contiguous bit window of the
 * page index at `shardShift`, and shard bit i is the window bit i
 * XOR the parity of `xorMasks[i]` applied to the *local row index*
 * (the page index with the window excised). Any classic two-bit
 * function (bank = a_x ^ a_y) fits this form, arbitrary row bits can
 * fold in, and decode is window = shard ^ fold(row) - no matrix
 * inversion, no special cases.
 *
 * Shard indices pack bank-first: shard = (channel << (rankBits +
 * bankBits)) | (rank << bankBits) | bank.
 */

#ifndef MEMCON_DRAM_ADDRESS_MAP_HH
#define MEMCON_DRAM_ADDRESS_MAP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace memcon::dram
{

/** Channel/rank/bank decomposition of one shard index. */
struct ShardCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;

    bool operator==(const ShardCoord &) const = default;
};

/** How a page index splits into (shard, local row). */
struct AddressMapConfig
{
    std::string name = "identity";

    /** Shard-field split; total shard bits = sum of the three. */
    unsigned channelBits = 0;
    unsigned rankBits = 0;
    unsigned bankBits = 0;

    /**
     * Bit offset of the shard window inside the page index. 0
     * interleaves consecutive pages across shards (the controller
     * default); rowBits-of-the-module makes the map palloc-style
     * "blocked" - each shard owns a contiguous page range.
     */
    unsigned shardShift = 0;

    /**
     * One XOR mask per shard bit, applied to the local row index:
     * shard bit i = page's window bit i XOR parity(localRow &
     * xorMasks[i]). Empty means all-zero masks (a pure bit slice).
     */
    std::vector<std::uint64_t> xorMasks;
};

class AddressMap
{
  public:
    /** The identity map: one shard, page == local row. */
    AddressMap();

    /** Validates the config (window width, mask count); fatal on
     * error. */
    explicit AddressMap(AddressMapConfig config);

    // --- presets ----------------------------------------------------

    /** One shard; the flat engine's behavior, bit for bit. */
    static AddressMap identity();

    /**
     * The paper's Table 2 module: 1 channel, 1 rank, 8 banks,
     * consecutive rows interleaved across banks (pure bit slice).
     */
    static AddressMap paperDdr3_8bank();

    /**
     * The paper's 4-channel system configuration (Table 2): 4
     * channels x 8 banks = 32 shards, with each shard bit folding
     * two higher row bits in (DRAMA-style XOR interleave).
     */
    static AddressMap paper4ch8bank();

    /**
     * A zenhammer-style DDR4 set: 6 bank functions (64 shards), each
     * the XOR of its window bit with two row bits - the shape of the
     * published single-rank DDR4 function sets.
     */
    static AddressMap zenDdr4_64bank();

    /**
     * palloc-style blocked partitioning: the shard index is the top
     * `shard_bits` of a `shard_bits + row_bits` page index, so each
     * shard owns one contiguous page range. Pages >= (1 <<
     * (shard_bits + row_bits)) keep spilling into higher shards-
     * worth of address space; the engine rejects such populations.
     */
    static AddressMap blocked(unsigned shard_bits, unsigned row_bits);

    /**
     * Look up a preset by its CLI name: "identity",
     * "paper-ddr3-8bank", "paper-4ch8bank", "zen-ddr4-64bank".
     * Fatal on an unknown name (a typo must not silently fall back).
     */
    static AddressMap preset(const std::string &name);

    /** The CLI names preset() accepts, for --help text. */
    static std::vector<std::string> presetNames();

    // --- queries ----------------------------------------------------

    const AddressMapConfig &config() const { return cfg; }
    const std::string &name() const { return cfg.name; }

    unsigned shardBits() const { return totalShardBits; }
    std::uint64_t numShards() const
    {
        return std::uint64_t{1} << totalShardBits;
    }

    /** Which shard owns this page. */
    std::uint64_t shardOf(std::uint64_t page) const
    {
        return windowOf(page) ^ fold(localRowOf(page));
    }

    /** The page's row coordinate inside its shard. */
    std::uint64_t localRowOf(std::uint64_t page) const
    {
        const std::uint64_t low = page & lowMask;
        const std::uint64_t high = page >> (cfg.shardShift + totalShardBits);
        return (high << cfg.shardShift) | low;
    }

    /** Inverse of (shardOf, localRowOf); exact for all inputs. */
    std::uint64_t pageOf(std::uint64_t shard, std::uint64_t local_row) const;

    /** Split a shard index into channel/rank/bank coordinates. */
    ShardCoord shardCoord(std::uint64_t shard) const;

    /** Rebuild a shard index from its coordinates. */
    std::uint64_t shardIndex(const ShardCoord &coord) const;

    /**
     * The physically adjacent row `delta` rows away in the same
     * shard (bank), as a page index; nullopt when it would cross row
     * 0 or `num_pages`. Physical adjacency is what read-disturb
     * (RowHammer) aggressor/victim analysis needs, and it is defined
     * per bank - two pages adjacent in the flat index are usually in
     * different banks entirely.
     */
    std::optional<std::uint64_t> rowNeighbor(std::uint64_t page, int delta,
                                             std::uint64_t num_pages) const;

    /** Human-readable one-liner (preset, split, masks). */
    std::string describe() const;

    bool operator==(const AddressMap &other) const
    {
        return cfg.channelBits == other.cfg.channelBits &&
               cfg.rankBits == other.cfg.rankBits &&
               cfg.bankBits == other.cfg.bankBits &&
               cfg.shardShift == other.cfg.shardShift &&
               cfg.xorMasks == other.cfg.xorMasks;
    }

  private:
    std::uint64_t windowOf(std::uint64_t page) const
    {
        return (page >> cfg.shardShift) & shardMask;
    }

    /** XOR-fold the local row through the per-bit masks. */
    std::uint64_t fold(std::uint64_t local_row) const;

    AddressMapConfig cfg;
    unsigned totalShardBits = 0;
    std::uint64_t shardMask = 0; //!< (1 << totalShardBits) - 1
    std::uint64_t lowMask = 0;   //!< (1 << shardShift) - 1
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_ADDRESS_MAP_HH
