/**
 * @file
 * The DDR3 command set the controller can issue to a channel.
 */

#ifndef MEMCON_DRAM_COMMAND_HH
#define MEMCON_DRAM_COMMAND_HH

#include <cstdint>
#include <string>

namespace memcon::dram
{

enum class Command
{
    Act,  //!< activate (open) a row
    Pre,  //!< precharge (close) the open row in one bank
    PreA, //!< precharge all banks in a rank
    Rd,   //!< column read
    RdA,  //!< column read with auto-precharge
    Wr,   //!< column write
    WrA,  //!< column write with auto-precharge
    Ref,  //!< all-bank auto refresh
};

std::string toString(Command cmd);

/** @return true for Rd/RdA/Wr/WrA. */
constexpr bool
isColumnCommand(Command cmd)
{
    return cmd == Command::Rd || cmd == Command::RdA ||
           cmd == Command::Wr || cmd == Command::WrA;
}

/** @return true for Rd/RdA. */
constexpr bool
isRead(Command cmd)
{
    return cmd == Command::Rd || cmd == Command::RdA;
}

/** @return true for Wr/WrA. */
constexpr bool
isWrite(Command cmd)
{
    return cmd == Command::Wr || cmd == Command::WrA;
}

/** @return true for commands that auto-precharge their bank. */
constexpr bool
autoPrecharges(Command cmd)
{
    return cmd == Command::RdA || cmd == Command::WrA;
}

} // namespace memcon::dram

#endif // MEMCON_DRAM_COMMAND_HH
