#include "dram/address_map.hh"

#include <bit>

#include "common/logging.hh"

namespace memcon::dram
{

namespace
{

/** Window + masks can't push fields past 64 bits of page index. */
constexpr unsigned kMaxShardBits = 20;

} // namespace

AddressMap::AddressMap() : AddressMap(AddressMapConfig{}) {}

AddressMap::AddressMap(AddressMapConfig config) : cfg(std::move(config))
{
    totalShardBits = cfg.channelBits + cfg.rankBits + cfg.bankBits;
    fatal_if(totalShardBits > kMaxShardBits,
             "address map '%s': %u shard bits exceeds the %u-bit limit",
             cfg.name.c_str(), totalShardBits, kMaxShardBits);
    fatal_if(cfg.shardShift + totalShardBits >= 58,
             "address map '%s': shard window past bit 58",
             cfg.name.c_str());
    if (cfg.xorMasks.empty())
        cfg.xorMasks.assign(totalShardBits, 0);
    fatal_if(cfg.xorMasks.size() != totalShardBits,
             "address map '%s': %zu XOR masks for %u shard bits",
             cfg.name.c_str(), cfg.xorMasks.size(), totalShardBits);
    shardMask = totalShardBits == 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << totalShardBits) - 1;
    lowMask = (std::uint64_t{1} << cfg.shardShift) - 1;
}

std::uint64_t
AddressMap::fold(std::uint64_t local_row) const
{
    std::uint64_t s = 0;
    for (unsigned i = 0; i < totalShardBits; ++i)
        s |= static_cast<std::uint64_t>(
                 std::popcount(local_row & cfg.xorMasks[i]) & 1)
             << i;
    return s;
}

std::uint64_t
AddressMap::pageOf(std::uint64_t shard, std::uint64_t local_row) const
{
    panic_if(shard > shardMask, "shard %llu out of range",
             static_cast<unsigned long long>(shard));
    const std::uint64_t window = (shard ^ fold(local_row)) & shardMask;
    const std::uint64_t low = local_row & lowMask;
    const std::uint64_t high = local_row >> cfg.shardShift;
    return (((high << totalShardBits) | window) << cfg.shardShift) | low;
}

ShardCoord
AddressMap::shardCoord(std::uint64_t shard) const
{
    panic_if(shard > shardMask, "shard %llu out of range",
             static_cast<unsigned long long>(shard));
    ShardCoord c;
    c.bank = static_cast<unsigned>(
        shard & ((std::uint64_t{1} << cfg.bankBits) - 1));
    shard >>= cfg.bankBits;
    c.rank = static_cast<unsigned>(
        shard & ((std::uint64_t{1} << cfg.rankBits) - 1));
    shard >>= cfg.rankBits;
    c.channel = static_cast<unsigned>(shard);
    return c;
}

std::uint64_t
AddressMap::shardIndex(const ShardCoord &coord) const
{
    panic_if(coord.channel >= (1u << cfg.channelBits) ||
                 coord.rank >= (1u << cfg.rankBits) ||
                 coord.bank >= (1u << cfg.bankBits),
             "shard coordinate out of range");
    return (((std::uint64_t{coord.channel} << cfg.rankBits) | coord.rank)
            << cfg.bankBits) |
           coord.bank;
}

std::optional<std::uint64_t>
AddressMap::rowNeighbor(std::uint64_t page, int delta,
                        std::uint64_t num_pages) const
{
    panic_if(page >= num_pages, "page %llu outside the population",
             static_cast<unsigned long long>(page));
    const std::uint64_t shard = shardOf(page);
    const std::uint64_t row = localRowOf(page);
    if (delta < 0 && row < static_cast<std::uint64_t>(-delta))
        return std::nullopt;
    const std::uint64_t neighbor_row =
        delta < 0 ? row - static_cast<std::uint64_t>(-delta)
                  : row + static_cast<std::uint64_t>(delta);
    const std::uint64_t neighbor = pageOf(shard, neighbor_row);
    if (neighbor >= num_pages)
        return std::nullopt;
    return neighbor;
}

std::string
AddressMap::describe() const
{
    std::string masks;
    for (std::uint64_t m : cfg.xorMasks)
        masks += strprintf("%s0x%llx", masks.empty() ? "" : ",",
                           static_cast<unsigned long long>(m));
    return strprintf("%s: %uch+%urk+%uba @bit%u masks=[%s]",
                     cfg.name.c_str(), cfg.channelBits, cfg.rankBits,
                     cfg.bankBits, cfg.shardShift, masks.c_str());
}

AddressMap
AddressMap::identity()
{
    return AddressMap{};
}

AddressMap
AddressMap::paperDdr3_8bank()
{
    AddressMapConfig c;
    c.name = "paper-ddr3-8bank";
    c.bankBits = 3;
    return AddressMap(std::move(c));
}

AddressMap
AddressMap::paper4ch8bank()
{
    AddressMapConfig c;
    c.name = "paper-4ch8bank";
    c.channelBits = 2;
    c.bankBits = 3;
    // Each shard bit additionally folds two local-row bits, the way
    // DRAMA-derived controller functions pair a low and a high
    // address bit (bank = a_x ^ a_y). Distinct bit pairs per
    // function keep the fold full-rank over any row window.
    c.xorMasks = {
        (std::uint64_t{1} << 3) | (std::uint64_t{1} << 9),
        (std::uint64_t{1} << 4) | (std::uint64_t{1} << 10),
        (std::uint64_t{1} << 5) | (std::uint64_t{1} << 11),
        (std::uint64_t{1} << 6) | (std::uint64_t{1} << 12),
        (std::uint64_t{1} << 7) | (std::uint64_t{1} << 13),
    };
    return AddressMap(std::move(c));
}

AddressMap
AddressMap::zenDdr4_64bank()
{
    AddressMapConfig c;
    c.name = "zen-ddr4-64bank";
    // Six bank functions -> 64 banks (4 bank groups x 4 banks x 2x2
    // ch/rk folded into one index), the arity of the published
    // single-DIMM DDR4 sets; every function XORs two local-row bits
    // into its window bit.
    c.bankBits = 6;
    c.xorMasks = {
        (std::uint64_t{1} << 0) | (std::uint64_t{1} << 7),
        (std::uint64_t{1} << 1) | (std::uint64_t{1} << 8),
        (std::uint64_t{1} << 2) | (std::uint64_t{1} << 9),
        (std::uint64_t{1} << 3) | (std::uint64_t{1} << 10),
        (std::uint64_t{1} << 4) | (std::uint64_t{1} << 11),
        (std::uint64_t{1} << 5) | (std::uint64_t{1} << 12),
    };
    return AddressMap(std::move(c));
}

AddressMap
AddressMap::blocked(unsigned shard_bits, unsigned row_bits)
{
    AddressMapConfig c;
    c.name = strprintf("blocked-%ux%u", shard_bits, row_bits);
    c.bankBits = shard_bits;
    c.shardShift = row_bits;
    return AddressMap(std::move(c));
}

AddressMap
AddressMap::preset(const std::string &name)
{
    if (name == "identity")
        return identity();
    if (name == "paper-ddr3-8bank")
        return paperDdr3_8bank();
    if (name == "paper-4ch8bank")
        return paper4ch8bank();
    if (name == "zen-ddr4-64bank")
        return zenDdr4_64bank();
    fatal("unknown address map preset '%s' (have: identity, "
          "paper-ddr3-8bank, paper-4ch8bank, zen-ddr4-64bank)",
          name.c_str());
}

std::vector<std::string>
AddressMap::presetNames()
{
    return {"identity", "paper-ddr3-8bank", "paper-4ch8bank",
            "zen-ddr4-64bank"};
}

} // namespace memcon::dram
