/**
 * @file
 * Cycle-level DDR3 channel timing model.
 *
 * One Channel owns the bank and rank state machines for every device
 * behind it and answers two questions for the memory controller:
 * "when is this command next legal?" and "apply this command now".
 * The constraint set covers the JEDEC DDR3 core timings: tRCD, tRP,
 * tRAS, tRC, tCCD, tRRD, tFAW, read/write turnaround, tWR, tRTP,
 * tWTR, tRFC and the shared data bus. Issuing an illegal command is a
 * library bug and panics, which is what the timing property tests
 * lean on.
 */

#ifndef MEMCON_DRAM_CHANNEL_HH
#define MEMCON_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/strong_id.hh"
#include "common/units.hh"
#include "dram/command.hh"
#include "dram/organization.hh"
#include "dram/timing.hh"

namespace memcon::dram
{

/** Per-bank state: open row plus the earliest tick for each action. */
struct BankState
{
    bool rowOpen = false;
    RowId openRow{};

    Tick nextAct{};
    Tick nextPre{};
    Tick nextRead{};
    Tick nextWrite{};

    /** Cache blocks served from the open row since the last ACT. */
    std::uint64_t rowHitStreak = 0;
};

class Channel
{
  public:
    Channel(const Geometry &geometry, const TimingParams &timing);

    /** Earliest tick at which the command would satisfy all timings. */
    Tick earliestIssueTick(Command cmd, unsigned rank, unsigned bank,
                           RowId row) const;

    /** @return true if the command is legal at the given tick. */
    bool canIssue(Command cmd, unsigned rank, unsigned bank,
                  RowId row, Tick now) const;

    /**
     * Apply a command. Panics if it violates a timing or state
     * constraint (these indicate controller bugs, not user error).
     *
     * @return for column commands, the tick at which the data burst
     * completes; for other commands, the tick the device becomes
     * usable again (e.g. now + tRFC for Ref).
     */
    Tick issue(Command cmd, unsigned rank, unsigned bank,
               RowId row, Tick now);

    /** @return true if the bank has a row open. */
    bool isRowOpen(unsigned rank, unsigned bank) const;

    /** @return the open row (valid only when isRowOpen). */
    RowId openRow(unsigned rank, unsigned bank) const;

    /** @return true if every bank in the rank is precharged. */
    bool allBanksPrecharged(unsigned rank) const;

    const Geometry &geometry() const { return geom; }
    const TimingParams &timing() const { return params; }

    /** Command counts and row hit/miss/conflict statistics. */
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

  private:
    struct RankState
    {
        Tick nextAct{};            //!< tRRD horizon
        Tick nextRefOk{};          //!< end of tRFC
        std::deque<Tick> actTimes; //!< last ACTs for the tFAW window
    };

    const BankState &bank(unsigned rank, unsigned bank_idx) const;
    BankState &bank(unsigned rank, unsigned bank_idx);
    void checkIds(unsigned rank, unsigned bank_idx) const;

    Geometry geom;
    TimingParams params;

    std::vector<RankState> rankState;
    std::vector<BankState> bankState; // [rank * banks + bank]

    // Channel-global data-bus and command-turnaround horizons.
    Tick nextReadGlobal{};
    Tick nextWriteGlobal{};

    StatGroup statGroup{"channel"};
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_CHANNEL_HH
