/**
 * @file
 * SECDED ECC over 64-bit words - the (72,64) Hamming-plus-parity code
 * used throughout server DRAM.
 *
 * MEMCON uses it in two places. In Copy&Compare mode the controller
 * keeps only the ECC signature of the in-test row (not the data) and
 * compares signatures after the idle period (Section 3.3). And ECC is
 * one of the mitigation mechanisms the paper positions MEMCON
 * against/alongside: a single data-dependent bit flip per word is
 * correctable, so rows whose content produces at most one failing
 * cell per 64-bit word could be tolerated without HI-REF.
 *
 * The check-bit matrix is the classic Hsiao-style construction:
 * seven Hamming syndromes over bit positions plus an overall parity
 * bit, giving single-error correction and double-error detection.
 */

#ifndef MEMCON_DRAM_ECC_HH
#define MEMCON_DRAM_ECC_HH

#include <cstdint>
#include <vector>

namespace memcon::dram
{

/** Outcome of decoding one protected word. */
enum class EccStatus
{
    Ok,             //!< syndrome clean
    CorrectedData,  //!< single flipped data bit, repaired
    CorrectedCheck, //!< single flipped check bit, data was fine
    Uncorrectable,  //!< double (or worse) error detected
};

/** A 64-bit word plus its 8 SECDED check bits. */
struct EccWord
{
    std::uint64_t data = 0;
    std::uint8_t check = 0;

    bool operator==(const EccWord &) const = default;
};

/** Result of a decode: the repaired data and what happened. */
struct EccDecode
{
    std::uint64_t data = 0;
    EccStatus status = EccStatus::Ok;
};

class Secded64
{
  public:
    /** Compute the 8 check bits for a data word. */
    static std::uint8_t encodeCheck(std::uint64_t data);

    /** Bundle a word with its check bits. */
    static EccWord encode(std::uint64_t data);

    /**
     * Decode a (possibly corrupted) word: repair single-bit errors
     * in data or check bits, flag double errors.
     */
    static EccDecode decode(const EccWord &word);

    /**
     * A whole-row signature: the concatenated check bytes of every
     * word. This is what Copy&Compare retains in the controller -
     * 1/8 of the row's size - to detect failures without buffering
     * the data.
     */
    static std::vector<std::uint8_t>
    rowSignature(const std::vector<std::uint64_t> &row_words);

    /**
     * @return indices of words whose current value no longer matches
     * the retained signature (candidate failing words after the
     * in-test idle period).
     */
    static std::vector<std::size_t>
    compareSignature(const std::vector<std::uint64_t> &row_words,
                     const std::vector<std::uint8_t> &signature);

  private:
    static std::uint64_t syndromeMask(unsigned check_bit);
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_ECC_HH
