#include "dram/organization.hh"

#include <bit>

#include "common/logging.hh"

namespace memcon::dram
{

std::string
toString(AddressMapping mapping)
{
    switch (mapping) {
      case AddressMapping::RoBaRaCoCh:
        return "RoBaRaCoCh";
      case AddressMapping::RoRaBaCoCh:
        return "RoRaBaCoCh";
      case AddressMapping::RoCoBaRaCh:
        return "RoCoBaRaCh";
    }
    panic("unknown address mapping");
}

namespace
{

unsigned
log2Exact(std::uint64_t v, const char *what)
{
    fatal_if(v == 0 || (v & (v - 1)) != 0,
             "%s must be a power of two, got %llu", what,
             static_cast<unsigned long long>(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Pull the low `bits` bits off addr, advancing it. */
std::uint64_t
sliceLow(std::uint64_t &addr, unsigned bits)
{
    std::uint64_t field = addr & ((std::uint64_t{1} << bits) - 1);
    addr >>= bits;
    return field;
}

} // namespace

void
Geometry::validate() const
{
    log2Exact(channels, "channels");
    log2Exact(ranks, "ranks");
    log2Exact(banks, "banks");
    log2Exact(rowsPerBank, "rowsPerBank");
    log2Exact(columnsPerRow, "columnsPerRow");
    log2Exact(blockBytes, "blockBytes");
}

Coordinates
Geometry::decompose(std::uint64_t byte_addr) const
{
    std::uint64_t addr = byte_addr >> log2Exact(blockBytes, "blockBytes");

    unsigned ch_bits = log2Exact(channels, "channels");
    unsigned ra_bits = log2Exact(ranks, "ranks");
    unsigned ba_bits = log2Exact(banks, "banks");
    unsigned co_bits = log2Exact(columnsPerRow, "columnsPerRow");

    Coordinates c;
    switch (mapping) {
      case AddressMapping::RoBaRaCoCh:
        c.channel = static_cast<unsigned>(sliceLow(addr, ch_bits));
        c.column = static_cast<unsigned>(sliceLow(addr, co_bits));
        c.rank = static_cast<unsigned>(sliceLow(addr, ra_bits));
        c.bank = static_cast<unsigned>(sliceLow(addr, ba_bits));
        c.row = RowId{addr};
        break;
      case AddressMapping::RoRaBaCoCh:
        c.channel = static_cast<unsigned>(sliceLow(addr, ch_bits));
        c.column = static_cast<unsigned>(sliceLow(addr, co_bits));
        c.bank = static_cast<unsigned>(sliceLow(addr, ba_bits));
        c.rank = static_cast<unsigned>(sliceLow(addr, ra_bits));
        c.row = RowId{addr};
        break;
      case AddressMapping::RoCoBaRaCh:
        c.channel = static_cast<unsigned>(sliceLow(addr, ch_bits));
        c.rank = static_cast<unsigned>(sliceLow(addr, ra_bits));
        c.bank = static_cast<unsigned>(sliceLow(addr, ba_bits));
        c.column = static_cast<unsigned>(sliceLow(addr, co_bits));
        c.row = RowId{addr};
        break;
    }
    panic_if(c.row.value() >= rowsPerBank,
             "address 0x%llx decodes past the last row",
             static_cast<unsigned long long>(byte_addr));
    return c;
}

std::uint64_t
Geometry::compose(const Coordinates &coords) const
{
    unsigned ch_bits = log2Exact(channels, "channels");
    unsigned ra_bits = log2Exact(ranks, "ranks");
    unsigned ba_bits = log2Exact(banks, "banks");
    unsigned co_bits = log2Exact(columnsPerRow, "columnsPerRow");

    std::uint64_t addr = coords.row.value();
    auto push = [&addr](std::uint64_t field, unsigned bits) {
        addr = (addr << bits) | field;
    };

    switch (mapping) {
      case AddressMapping::RoBaRaCoCh:
        push(coords.bank, ba_bits);
        push(coords.rank, ra_bits);
        push(coords.column, co_bits);
        push(coords.channel, ch_bits);
        break;
      case AddressMapping::RoRaBaCoCh:
        push(coords.rank, ra_bits);
        push(coords.bank, ba_bits);
        push(coords.column, co_bits);
        push(coords.channel, ch_bits);
        break;
      case AddressMapping::RoCoBaRaCh:
        push(coords.column, co_bits);
        push(coords.bank, ba_bits);
        push(coords.rank, ra_bits);
        push(coords.channel, ch_bits);
        break;
    }
    return addr << log2Exact(blockBytes, "blockBytes");
}

RowId
Geometry::flatRowIndex(const Coordinates &coords) const
{
    std::uint64_t idx = coords.channel;
    idx = idx * ranks + coords.rank;
    idx = idx * banks + coords.bank;
    idx = idx * rowsPerBank + coords.row.value();
    return RowId{idx};
}

Coordinates
Geometry::rowFromFlatIndex(RowId row_index) const
{
    panic_if(row_index.value() >= totalRows(),
             "flat row index out of range");
    std::uint64_t idx = row_index.value();
    Coordinates c;
    c.row = RowId{idx % rowsPerBank};
    idx /= rowsPerBank;
    c.bank = static_cast<unsigned>(idx % banks);
    idx /= banks;
    c.rank = static_cast<unsigned>(idx % ranks);
    idx /= ranks;
    c.channel = static_cast<unsigned>(idx);
    return c;
}

Geometry
Geometry::dimm8GB()
{
    Geometry g;
    g.channels = 1;
    g.ranks = 1;
    g.banks = 8;
    g.rowsPerBank = 1 << 17; // 131072 rows x 8 KB x 8 banks = 8 GB
    g.columnsPerRow = 128;
    g.blockBytes = 64;
    return g;
}

Geometry
Geometry::module2GB()
{
    Geometry g;
    g.channels = 1;
    g.ranks = 1;
    g.banks = 8;
    g.rowsPerBank = 1 << 15; // 32768 rows per bank (appendix)
    g.columnsPerRow = 128;
    g.blockBytes = 64;
    return g;
}

} // namespace memcon::dram
