/**
 * @file
 * DDR3 timing parameters.
 *
 * Two views of timing coexist here, matching the paper:
 *
 * 1. TimingParams - cycle-resolution JEDEC DDR3 parameters used by the
 *    bank/rank/channel state machines of the cycle-level simulator
 *    (Table 2: DDR3-1600, 800 MHz clock, 1.25 ns cycle time; baseline
 *    tREFI/tRFC = 1.95 us / 350 ns, with tRFC scaled up for denser
 *    chips).
 *
 * 2. CostTimings - the flat nanosecond figures the paper's appendix
 *    uses for its cost-benefit arithmetic. The appendix numbers
 *    (refresh 39 ns = tRAS + tRP; Read&Compare 1068 ns =
 *    2*(tRCD + 128*tCCD + tRP); Copy&Compare 1602 ns = 3*(...)) are
 *    reproduced exactly by tRCD = tRP = 11 ns, tRAS = 28 ns,
 *    tCCD = 4 ns, which is what paperDdr3_1600() returns.
 */

#ifndef MEMCON_DRAM_TIMING_HH
#define MEMCON_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace memcon::dram
{

/** DRAM chip density; tRFC grows with density (Table 2). */
enum class Density
{
    Gb8,
    Gb16,
    Gb32,
    Gb64,
};

/** @return a printable name such as "8Gb". */
std::string toString(Density density);

/** @return chip capacity in bits. */
std::uint64_t densityBits(Density density);

/**
 * Cycle-domain DDR3 timing parameters. All fields are in DRAM clock
 * cycles except tCk (the cycle time in ticks); helpers convert to
 * ticks.
 */
struct TimingParams
{
    Tick tCk;        //!< clock period in ticks (ps)
    unsigned tCL;    //!< CAS latency
    unsigned tCWL;   //!< CAS write latency
    unsigned tRCD;   //!< ACT -> column command
    unsigned tRP;    //!< PRE -> ACT
    unsigned tRAS;   //!< ACT -> PRE
    unsigned tRC;    //!< ACT -> ACT, same bank
    unsigned tCCD;   //!< column command -> column command
    unsigned tRRD;   //!< ACT -> ACT, different banks, same rank
    unsigned tFAW;   //!< rolling window for four ACTs
    unsigned tWTR;   //!< end of write data -> read command
    unsigned tWR;    //!< end of write data -> PRE
    unsigned tRTP;   //!< read -> PRE
    unsigned tBL;    //!< burst length in cycles (BL8 on a DDR bus = 4)
    unsigned tRFC;   //!< REF -> any command, refreshed rank
    unsigned tREFI;  //!< average interval between REF commands

    /** Convert a cycle count to ticks. */
    Tick cyc(unsigned cycles) const { return tCk * cycles; }

    /** Read-to-write turnaround at the command level. */
    unsigned readToWrite() const { return tCL + tBL + 2 - tCWL; }

    /** Write command to read command, same rank. */
    unsigned writeToRead() const { return tCWL + tBL + tWTR; }

    /** Write command to precharge, same bank. */
    unsigned writeToPre() const { return tCWL + tBL + tWR; }

    /**
     * DDR3-1600 (11-11-11) with the Table 2 refresh figures. The
     * baseline tREFI of 1.95 us corresponds to refreshing the whole
     * device every 16 ms (8192 REF commands); pass a different
     * refresh_interval to rescale (e.g. TimeMs{64.0} -> 7.8 us).
     *
     * @param density          chip density, selects tRFC
     * @param refresh_interval full-device retention period the REF
     *                         stream must cover
     */
    static TimingParams ddr3_1600(Density density,
                                  TimeMs refresh_interval =
                                      TimeMs{16.0});
};

/** @return the Table 2 tRFC for a chip density, in nanoseconds. */
double densityTrfcNs(Density density);

/**
 * Nanosecond-domain figures for the analytic cost model (paper
 * appendix). columnsPerRow is the number of cache-block reads needed
 * to stream one row through the controller (128 for an 8 KB row of
 * 64 B blocks).
 */
struct CostTimings
{
    double tRcdNs;
    double tRpNs;
    double tRasNs;
    double tCcdNs;
    unsigned columnsPerRow;

    /** Latency to activate, stream every column once, and precharge. */
    double rowStreamNs() const
    {
        return tRcdNs + columnsPerRow * tCcdNs + tRpNs;
    }

    /** Latency of one per-row refresh: tRAS + tRP (appendix). */
    double refreshOpNs() const { return tRasNs + tRpNs; }

    /** The parameterisation that reproduces the appendix arithmetic. */
    static CostTimings paperDdr3_1600();
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_TIMING_HH
