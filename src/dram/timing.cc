#include "dram/timing.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon::dram
{

std::string
toString(Density density)
{
    switch (density) {
      case Density::Gb8:
        return "8Gb";
      case Density::Gb16:
        return "16Gb";
      case Density::Gb32:
        return "32Gb";
      case Density::Gb64:
        return "64Gb";
    }
    panic("unknown density");
}

std::uint64_t
densityBits(Density density)
{
    switch (density) {
      case Density::Gb8:
        return 8ULL * Gbit * 8;
      case Density::Gb16:
        return 16ULL * Gbit * 8;
      case Density::Gb32:
        return 32ULL * Gbit * 8;
      case Density::Gb64:
        return 64ULL * Gbit * 8;
    }
    panic("unknown density");
}

double
densityTrfcNs(Density density)
{
    // Table 2: baseline (8 Gb) tRFC 350 ns; 530/890/1600 ns as density
    // doubles.
    switch (density) {
      case Density::Gb8:
        return 350.0;
      case Density::Gb16:
        return 530.0;
      case Density::Gb32:
        return 890.0;
      case Density::Gb64:
        return 1600.0;
    }
    panic("unknown density");
}

TimingParams
TimingParams::ddr3_1600(Density density, TimeMs refresh_interval)
{
    fatal_if(refresh_interval.value() <= 0.0,
             "refresh interval must be positive, got %f ms",
             refresh_interval.value());

    TimingParams t{};
    t.tCk = nsToTicks(1.25); // 800 MHz
    t.tCL = 11;
    t.tCWL = 8;
    t.tRCD = 11;
    t.tRP = 11;
    t.tRAS = 28;
    t.tRC = t.tRAS + t.tRP;
    t.tCCD = 4;
    t.tRRD = 5;
    t.tFAW = 24;
    t.tWTR = 6;
    t.tWR = 12;
    t.tRTP = 6;
    t.tBL = 4;

    double trfc_ns = densityTrfcNs(density);
    t.tRFC = static_cast<unsigned>(std::ceil(trfc_ns / 1.25));

    // 8192 REF commands must cover the retention period.
    double trefi_ns = refresh_interval.value() * 1e6 / 8192.0;
    t.tREFI = static_cast<unsigned>(trefi_ns / 1.25);
    return t;
}

CostTimings
CostTimings::paperDdr3_1600()
{
    // Reproduces the appendix exactly:
    //   rowStreamNs = 11 + 128*4 + 11 = 534 ns
    //   Read&Compare = 2*534 = 1068 ns, Copy&Compare = 3*534 = 1602 ns
    //   refreshOpNs  = 28 + 11 = 39 ns
    return CostTimings{11.0, 11.0, 28.0, 4.0, 128};
}

} // namespace memcon::dram
