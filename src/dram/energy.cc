#include "dram/energy.hh"

#include "common/logging.hh"

namespace memcon::dram
{

PowerParams
PowerParams::ddr3_1600()
{
    return PowerParams{};
}

EnergyModel::EnergyModel(const PowerParams &power_params,
                         const TimingParams &timing_params)
    : power(power_params), timing(timing_params)
{
    fatal_if(power.vdd <= 0.0, "supply voltage must be positive");
    fatal_if(power.devicesPerRank == 0, "rank needs devices");
}

double
EnergyModel::actPreEnergy() const
{
    // IDD0 is measured cycling ACT-PRE at tRC; the incremental energy
    // of one row cycle above active standby:
    double t_rc_s = ticksToNs(timing.cyc(timing.tRC)) * 1e-9;
    double incremental = (power.idd0 - power.idd3n) * power.vdd * t_rc_s;
    return incremental * power.devicesPerRank;
}

double
EnergyModel::readEnergy() const
{
    double t_burst_s = ticksToNs(timing.cyc(timing.tBL)) * 1e-9;
    double incremental =
        (power.idd4r - power.idd3n) * power.vdd * t_burst_s;
    return incremental * power.devicesPerRank;
}

double
EnergyModel::writeEnergy() const
{
    double t_burst_s = ticksToNs(timing.cyc(timing.tBL)) * 1e-9;
    double incremental =
        (power.idd4w - power.idd3n) * power.vdd * t_burst_s;
    return incremental * power.devicesPerRank;
}

double
EnergyModel::refreshEnergy() const
{
    double t_rfc_s = ticksToNs(timing.cyc(timing.tRFC)) * 1e-9;
    double incremental =
        (power.idd5b - power.idd2n) * power.vdd * t_rfc_s;
    return incremental * power.devicesPerRank;
}

double
EnergyModel::backgroundEnergy(Tick duration,
                              double active_fraction) const
{
    fatal_if(active_fraction < 0.0 || active_fraction > 1.0,
             "active fraction must lie in [0, 1]");
    double t_s = ticksToNs(duration) * 1e-9;
    double current = active_fraction * power.idd3n +
                     (1.0 - active_fraction) * power.idd2n;
    return current * power.vdd * t_s * power.devicesPerRank;
}

EnergyBreakdown
EnergyModel::fromControllerStats(const StatGroup &channel_stats,
                                 const StatGroup &controller_stats,
                                 Tick duration,
                                 double active_fraction) const
{
    EnergyBreakdown e;
    double acts = channel_stats.value("cmd.ACT");
    double reads =
        channel_stats.value("cmd.RD") + channel_stats.value("cmd.RDA");
    double writes =
        channel_stats.value("cmd.WR") + channel_stats.value("cmd.WRA");
    double refs = controller_stats.value("refresh");

    e.actPre = acts * actPreEnergy();
    e.read = reads * readEnergy();
    e.write = writes * writeEnergy();
    e.refresh = refs * refreshEnergy();
    e.background = backgroundEnergy(duration, active_fraction);
    return e;
}

double
EnergyModel::refreshEnergyFromOps(double row_refresh_ops) const
{
    // A per-row refresh is an ACT+PRE cycle of that row.
    return row_refresh_ops * actPreEnergy();
}

} // namespace memcon::dram
