/**
 * @file
 * An IDD-based DRAM energy model in the Micron power-calculator
 * style.
 *
 * The paper motivates MEMCON with energy as well as performance:
 * every eliminated refresh saves the burst current of an all-bank
 * REF (IDD5 over tRFC) and, system-wide, lets ranks idle longer. The
 * model converts command counts (from the cycle simulator's stats or
 * from analytic refresh-op counts) into energy, so benches can report
 * refresh-energy reduction for each policy.
 *
 * Currents are per-device datasheet values; a module multiplies by
 * the device count. Defaults follow a DDR3-1600 4 Gb part; tRFC (and
 * hence refresh burst energy) scales with density like the timing
 * model's.
 */

#ifndef MEMCON_DRAM_ENERGY_HH
#define MEMCON_DRAM_ENERGY_HH

#include <cstdint>

#include "common/stats.hh"
#include "dram/timing.hh"

namespace memcon::dram
{

/** Datasheet current/voltage parameters for one device. */
struct PowerParams
{
    double vdd = 1.35;     //!< supply voltage (V)
    double idd0 = 55e-3;   //!< ACT-PRE cycling current (A)
    double idd2n = 32e-3;  //!< precharge standby (A)
    double idd3n = 38e-3;  //!< active standby (A)
    double idd4r = 140e-3; //!< read burst (A)
    double idd4w = 145e-3; //!< write burst (A)
    double idd5b = 175e-3; //!< refresh burst (A)
    unsigned devicesPerRank = 8;

    /** DDR3-1600 defaults with density-scaled refresh burst time. */
    static PowerParams ddr3_1600();
};

/** Energy tally in joules, by component. */
struct EnergyBreakdown
{
    double actPre = 0.0;
    double read = 0.0;
    double write = 0.0;
    double refresh = 0.0;
    double background = 0.0;

    double total() const
    {
        return actPre + read + write + refresh + background;
    }
};

class EnergyModel
{
  public:
    EnergyModel(const PowerParams &power, const TimingParams &timing);

    /** Energy of one ACT+PRE pair (row cycle), per rank. */
    double actPreEnergy() const;

    /** Energy of one burst-length read / write, per rank. */
    double readEnergy() const;
    double writeEnergy() const;

    /** Energy of one all-bank REF (IDD5 burst over tRFC), per rank. */
    double refreshEnergy() const;

    /** Background (standby) energy over a duration, per rank.
     * @param active_fraction fraction of time some row is open */
    double backgroundEnergy(Tick duration, double active_fraction) const;

    /**
     * Tally a full run from controller statistics (cmd.ACT, cmd.RD,
     * cmd.WR, cmd.RDA, cmd.WRA, cmd.PRE, refresh counters).
     */
    EnergyBreakdown
    fromControllerStats(const StatGroup &channel_stats,
                        const StatGroup &controller_stats,
                        Tick duration, double active_fraction) const;

    /**
     * Refresh energy of a policy over a period, from analytic
     * refresh-op counts (one op = one row's ACT+PRE-equivalent
     * refresh; used with the ms-domain MEMCON engine).
     */
    double refreshEnergyFromOps(double row_refresh_ops) const;

  private:
    PowerParams power;
    TimingParams timing;
};

} // namespace memcon::dram

#endif // MEMCON_DRAM_ENERGY_HH
