#include "dram/ecc.hh"

#include <bit>

#include "common/logging.hh"

namespace memcon::dram
{

namespace
{

/**
 * Position map: the 64 data bits occupy the non-power-of-two
 * positions of a 72-bit Hamming codeword (positions 1..72, with
 * 1,2,4,8,16,32,64 reserved for check bits and position 0 unused in
 * classic numbering; we fold the overall parity in separately).
 *
 * dataPosition(i) is the codeword position of data bit i.
 */
unsigned
dataPosition(unsigned data_bit)
{
    // Skip power-of-two positions.
    unsigned pos = data_bit + 1; // at least position 1
    // Walk forward until we have skipped all powers of two <= pos.
    for (unsigned p = 1; p <= 128; p <<= 1) {
        if (pos >= p)
            ++pos;
    }
    return pos;
}

} // namespace

std::uint64_t
Secded64::syndromeMask(unsigned check_bit)
{
    // Mask of data bits whose codeword position has bit `check_bit`
    // set - computed once per check bit.
    std::uint64_t mask = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if (dataPosition(i) & (1u << check_bit))
            mask |= std::uint64_t{1} << i;
    }
    return mask;
}

std::uint8_t
Secded64::encodeCheck(std::uint64_t data)
{
    static const std::uint64_t masks[7] = {
        syndromeMask(0), syndromeMask(1), syndromeMask(2),
        syndromeMask(3), syndromeMask(4), syndromeMask(5),
        syndromeMask(6),
    };

    std::uint8_t check = 0;
    for (unsigned c = 0; c < 7; ++c) {
        if (std::popcount(data & masks[c]) & 1)
            check |= static_cast<std::uint8_t>(1u << c);
    }
    // Overall parity over data + the 7 Hamming bits (DED bit).
    unsigned parity = std::popcount(data) + std::popcount(
                          static_cast<unsigned>(check));
    if (parity & 1)
        check |= 0x80;
    return check;
}

EccWord
Secded64::encode(std::uint64_t data)
{
    return {data, encodeCheck(data)};
}

EccDecode
Secded64::decode(const EccWord &word)
{
    std::uint8_t expected = encodeCheck(word.data);
    std::uint8_t syndrome = (expected ^ word.check) & 0x7f;

    // Parity over the *stored* codeword (data + all 8 check bits):
    // zero for a clean word, flips with every single-bit error
    // anywhere, stays even for double errors - the DED property.
    bool odd_flips = (std::popcount(word.data) +
                      std::popcount(static_cast<unsigned>(word.check))) &
                     1;

    EccDecode out;
    out.data = word.data;
    if (!odd_flips) {
        out.status =
            syndrome == 0 ? EccStatus::Ok : EccStatus::Uncorrectable;
        return out;
    }

    if (syndrome == 0) {
        // Only the overall parity bit flipped.
        out.status = EccStatus::CorrectedCheck;
        return out;
    }
    if (std::popcount(static_cast<unsigned>(syndrome)) == 1) {
        // Power-of-two syndrome: a flipped Hamming check bit (data
        // positions skip the powers of two).
        out.status = EccStatus::CorrectedCheck;
        return out;
    }
    for (unsigned i = 0; i < 64; ++i) {
        if (dataPosition(i) == syndrome) {
            out.data = word.data ^ (std::uint64_t{1} << i);
            out.status = EccStatus::CorrectedData;
            return out;
        }
    }
    // Syndrome points outside the codeword: corrupted beyond repair.
    out.status = EccStatus::Uncorrectable;
    return out;
}

std::vector<std::uint8_t>
Secded64::rowSignature(const std::vector<std::uint64_t> &row_words)
{
    std::vector<std::uint8_t> sig;
    sig.reserve(row_words.size());
    for (std::uint64_t w : row_words)
        sig.push_back(encodeCheck(w));
    return sig;
}

std::vector<std::size_t>
Secded64::compareSignature(const std::vector<std::uint64_t> &row_words,
                           const std::vector<std::uint8_t> &signature)
{
    panic_if(row_words.size() != signature.size(),
             "signature length mismatch: %zu words vs %zu bytes",
             row_words.size(), signature.size());
    std::vector<std::size_t> mismatches;
    for (std::size_t i = 0; i < row_words.size(); ++i) {
        if (encodeCheck(row_words[i]) != signature[i])
            mismatches.push_back(i);
    }
    return mismatches;
}

} // namespace memcon::dram
