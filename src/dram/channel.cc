#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon::dram
{

std::string
toString(Command cmd)
{
    switch (cmd) {
      case Command::Act:
        return "ACT";
      case Command::Pre:
        return "PRE";
      case Command::PreA:
        return "PREA";
      case Command::Rd:
        return "RD";
      case Command::RdA:
        return "RDA";
      case Command::Wr:
        return "WR";
      case Command::WrA:
        return "WRA";
      case Command::Ref:
        return "REF";
    }
    panic("unknown command");
}

Channel::Channel(const Geometry &geometry, const TimingParams &timing)
    : geom(geometry), params(timing)
{
    geom.validate();
    rankState.resize(geom.ranks);
    bankState.resize(std::size_t{geom.ranks} * geom.banks);
}

void
Channel::checkIds(unsigned rank, unsigned bank_idx) const
{
    panic_if(rank >= geom.ranks, "rank %u out of range", rank);
    panic_if(bank_idx >= geom.banks, "bank %u out of range", bank_idx);
}

const BankState &
Channel::bank(unsigned rank, unsigned bank_idx) const
{
    checkIds(rank, bank_idx);
    return bankState[std::size_t{rank} * geom.banks + bank_idx];
}

BankState &
Channel::bank(unsigned rank, unsigned bank_idx)
{
    checkIds(rank, bank_idx);
    return bankState[std::size_t{rank} * geom.banks + bank_idx];
}

bool
Channel::isRowOpen(unsigned rank, unsigned bank_idx) const
{
    return bank(rank, bank_idx).rowOpen;
}

RowId
Channel::openRow(unsigned rank, unsigned bank_idx) const
{
    const BankState &b = bank(rank, bank_idx);
    panic_if(!b.rowOpen, "openRow queried on a precharged bank");
    return b.openRow;
}

bool
Channel::allBanksPrecharged(unsigned rank) const
{
    for (unsigned b = 0; b < geom.banks; ++b)
        if (bank(rank, b).rowOpen)
            return false;
    return true;
}

Tick
Channel::earliestIssueTick(Command cmd, unsigned rank, unsigned bank_idx,
                           RowId row) const
{
    checkIds(rank, bank_idx);
    const BankState &b = bank(rank, bank_idx);
    const RankState &r = rankState[rank];
    Tick earliest{};

    switch (cmd) {
      case Command::Act: {
        panic_if(b.rowOpen, "ACT to a bank with an open row");
        earliest = std::max({b.nextAct, r.nextAct, r.nextRefOk});
        // tFAW: at most four ACTs per rank in a rolling window.
        if (r.actTimes.size() >= 4) {
            Tick window_open = r.actTimes.front() + params.cyc(params.tFAW);
            earliest = std::max(earliest, window_open);
        }
        break;
      }
      case Command::Pre:
        earliest = std::max(b.nextPre, r.nextRefOk);
        break;
      case Command::PreA: {
        earliest = r.nextRefOk;
        for (unsigned bi = 0; bi < geom.banks; ++bi)
            earliest = std::max(earliest, bank(rank, bi).nextPre);
        break;
      }
      case Command::Rd:
      case Command::RdA:
        panic_if(!b.rowOpen || b.openRow != row,
                 "column read to a row that is not open");
        earliest = std::max({b.nextRead, nextReadGlobal, r.nextRefOk});
        break;
      case Command::Wr:
      case Command::WrA:
        panic_if(!b.rowOpen || b.openRow != row,
                 "column write to a row that is not open");
        earliest = std::max({b.nextWrite, nextWriteGlobal, r.nextRefOk});
        break;
      case Command::Ref: {
        panic_if(!allBanksPrecharged(rank),
                 "REF requires all banks precharged");
        earliest = r.nextRefOk;
        for (unsigned bi = 0; bi < geom.banks; ++bi)
            earliest = std::max(earliest, bank(rank, bi).nextAct);
        break;
      }
    }
    return earliest;
}

bool
Channel::canIssue(Command cmd, unsigned rank, unsigned bank_idx,
                  RowId row, Tick now) const
{
    // State preconditions first; earliestIssueTick panics on them, so
    // screen here to give callers a boolean answer.
    const BankState &b = bank(rank, bank_idx);
    switch (cmd) {
      case Command::Act:
        if (b.rowOpen)
            return false;
        break;
      case Command::Rd:
      case Command::RdA:
      case Command::Wr:
      case Command::WrA:
        if (!b.rowOpen || b.openRow != row)
            return false;
        break;
      case Command::Ref:
        if (!allBanksPrecharged(rank))
            return false;
        break;
      case Command::Pre:
      case Command::PreA:
        break;
    }
    return earliestIssueTick(cmd, rank, bank_idx, row) <= now;
}

Tick
Channel::issue(Command cmd, unsigned rank, unsigned bank_idx,
               RowId row, Tick now)
{
    Tick earliest = earliestIssueTick(cmd, rank, bank_idx, row);
    panic_if(now < earliest,
             "%s issued at tick %llu, legal only from %llu",
             toString(cmd).c_str(),
             static_cast<unsigned long long>(now.value()),
             static_cast<unsigned long long>(earliest.value()));

    BankState &b = bank(rank, bank_idx);
    RankState &r = rankState[rank];
    statGroup.inc("cmd." + toString(cmd));

    auto cyc = [this](unsigned c) { return params.cyc(c); };

    switch (cmd) {
      case Command::Act: {
        b.rowOpen = true;
        b.openRow = row;
        b.rowHitStreak = 0;
        b.nextRead = now + cyc(params.tRCD);
        b.nextWrite = now + cyc(params.tRCD);
        b.nextPre = now + cyc(params.tRAS);
        b.nextAct = now + cyc(params.tRC);
        r.nextAct = std::max(r.nextAct, now + cyc(params.tRRD));
        r.actTimes.push_back(now);
        while (r.actTimes.size() > 4)
            r.actTimes.pop_front();
        return now + cyc(params.tRCD);
      }
      case Command::Pre: {
        b.rowOpen = false;
        b.nextAct = std::max(b.nextAct, now + cyc(params.tRP));
        return now + cyc(params.tRP);
      }
      case Command::PreA: {
        Tick done = now;
        for (unsigned bi = 0; bi < geom.banks; ++bi) {
            BankState &bb = bank(rank, bi);
            if (bb.rowOpen) {
                panic_if(now < bb.nextPre, "PREA before a bank's tRAS/tWR");
                bb.rowOpen = false;
            }
            bb.nextAct = std::max(bb.nextAct, now + cyc(params.tRP));
            done = std::max(done, bb.nextAct);
        }
        return done;
      }
      case Command::Rd:
      case Command::RdA: {
        Tick data_done = now + cyc(params.tCL + params.tBL);
        b.rowHitStreak++;
        // Next column command anywhere on the bus.
        nextReadGlobal = std::max(nextReadGlobal, now + cyc(params.tCCD));
        nextWriteGlobal =
            std::max(nextWriteGlobal, now + cyc(params.readToWrite()));
        b.nextRead = std::max(b.nextRead, now + cyc(params.tCCD));
        b.nextWrite = std::max(b.nextWrite, now + cyc(params.readToWrite()));
        b.nextPre = std::max(b.nextPre, now + cyc(params.tRTP));
        if (cmd == Command::RdA) {
            b.rowOpen = false;
            Tick pre_at = std::max(b.nextPre, now + cyc(params.tRTP));
            b.nextAct = std::max(b.nextAct, pre_at + cyc(params.tRP));
        }
        return data_done;
      }
      case Command::Wr:
      case Command::WrA: {
        Tick data_done = now + cyc(params.tCWL + params.tBL);
        b.rowHitStreak++;
        nextWriteGlobal = std::max(nextWriteGlobal, now + cyc(params.tCCD));
        // Write-to-read turnaround applies rank-wide; model it on the
        // shared bus horizon, which is conservative across ranks.
        nextReadGlobal =
            std::max(nextReadGlobal, now + cyc(params.writeToRead()));
        b.nextWrite = std::max(b.nextWrite, now + cyc(params.tCCD));
        b.nextRead = std::max(b.nextRead, now + cyc(params.writeToRead()));
        b.nextPre = std::max(b.nextPre, now + cyc(params.writeToPre()));
        if (cmd == Command::WrA) {
            b.rowOpen = false;
            Tick pre_at = now + cyc(params.writeToPre());
            b.nextAct = std::max(b.nextAct, pre_at + cyc(params.tRP));
        }
        return data_done;
      }
      case Command::Ref: {
        Tick done = now + cyc(params.tRFC);
        r.nextRefOk = done;
        for (unsigned bi = 0; bi < geom.banks; ++bi) {
            BankState &bb = bank(rank, bi);
            bb.nextAct = std::max(bb.nextAct, done);
        }
        return done;
      }
    }
    panic("unknown command");
}

} // namespace memcon::dram
