/**
 * @file
 * Refresh-policy baselines MEMCON is compared against (Section 6.3).
 *
 * Every policy reduces to one number for the cycle simulator: the
 * fraction of the aggressive baseline's refresh operations it
 * eliminates, which stretches the effective tREFI.
 *
 *  - FixedRefreshPolicy: refresh everything at a fixed interval
 *    (16 ms baseline, the 32 ms softer baseline, the 64 ms ideal).
 *  - RaidrPolicy: profile once for every cell that *any* content
 *    could fail (requires DRAM-internals knowledge), refresh those
 *    rows at HI-REF and the rest at LO-REF. The paper models 16% of
 *    rows at HI-REF, matching its experimental data.
 *  - MemconPolicy: wraps a measured MemconResult reduction.
 */

#ifndef MEMCON_CORE_POLICIES_HH
#define MEMCON_CORE_POLICIES_HH

#include <string>

#include "failure/model.hh"

namespace memcon::core
{

/** Refresh-rate policy summarised as a refresh-operation reduction
 * relative to an aggressive fixed baseline. */
struct RefreshPolicy
{
    std::string name;

    /** Fraction of baseline refresh operations eliminated, in [0,1). */
    double reduction = 0.0;
};

/** A fixed refresh interval, relative to the baseline interval. */
RefreshPolicy fixedRefreshPolicy(double interval_ms,
                                 double baseline_interval_ms);

/**
 * RAIDR with the given fraction of rows bucketed at HI-REF.
 *
 * @param hi_fraction fraction of rows refreshed at hi_ms
 */
RefreshPolicy raidrPolicy(double hi_fraction, double hi_ms, double lo_ms,
                          double baseline_interval_ms);

/**
 * Derive RAIDR's HI-REF row fraction from a failure-model profile:
 * the rows that could fail with any content at the LO-REF interval
 * (what RAIDR's boot-time profiling marks for frequent refresh).
 */
double raidrProfileHiFraction(const failure::FailureModel &model,
                              double lo_ms, std::uint64_t row_limit = 0);

/** MEMCON as a policy, from a measured refresh reduction. */
RefreshPolicy memconPolicy(double measured_reduction);

/**
 * MEMCON hardened against read-disturb: victim refreshes spend
 * refresh operations the demotion saved, and banks degraded to
 * blanket HI-REF contribute no reduction at all while degraded.
 *
 * @param measured_reduction the un-hardened mechanism's reduction
 * @param victim_refresh_overhead victim refreshes issued, as a
 *        fraction of the baseline's refresh operations
 * @param degraded_bank_fraction time-weighted fraction of banks held
 *        in HI-REF degradation
 */
RefreshPolicy disturbHardenedPolicy(double measured_reduction,
                                    double victim_refresh_overhead,
                                    double degraded_bank_fraction);

} // namespace memcon::core

#endif // MEMCON_CORE_POLICIES_HH
