#include "core/policies.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon::core
{

RefreshPolicy
fixedRefreshPolicy(double interval_ms, double baseline_interval_ms)
{
    fatal_if(interval_ms < baseline_interval_ms,
             "fixed interval below the baseline would *add* refreshes");
    RefreshPolicy p;
    p.name = strprintf("fixed-%gms", interval_ms);
    p.reduction = 1.0 - baseline_interval_ms / interval_ms;
    return p;
}

RefreshPolicy
raidrPolicy(double hi_fraction, double hi_ms, double lo_ms,
            double baseline_interval_ms)
{
    fatal_if(hi_fraction < 0.0 || hi_fraction > 1.0,
             "HI-REF fraction must lie in [0, 1]");
    // Refresh-op rate relative to the baseline: HI-REF rows refresh
    // every hi_ms, the rest every lo_ms.
    double rate = hi_fraction * (baseline_interval_ms / hi_ms) +
                  (1.0 - hi_fraction) * (baseline_interval_ms / lo_ms);
    RefreshPolicy p;
    p.name = "RAIDR";
    p.reduction = 1.0 - rate;
    return p;
}

double
raidrProfileHiFraction(const failure::FailureModel &model, double lo_ms,
                       std::uint64_t row_limit)
{
    return model.worstCaseRowFraction(lo_ms, row_limit);
}

RefreshPolicy
memconPolicy(double measured_reduction)
{
    fatal_if(measured_reduction < 0.0 || measured_reduction >= 1.0,
             "reduction must lie in [0, 1)");
    RefreshPolicy p;
    p.name = "MEMCON";
    p.reduction = measured_reduction;
    return p;
}

RefreshPolicy
disturbHardenedPolicy(double measured_reduction,
                      double victim_refresh_overhead,
                      double degraded_bank_fraction)
{
    fatal_if(measured_reduction < 0.0 || measured_reduction >= 1.0,
             "reduction must lie in [0, 1)");
    fatal_if(victim_refresh_overhead < 0.0,
             "victim-refresh overhead must be non-negative");
    fatal_if(degraded_bank_fraction < 0.0 || degraded_bank_fraction > 1.0,
             "degraded-bank fraction must lie in [0, 1]");
    RefreshPolicy p;
    p.name = "MEMCON+victim-refresh";
    double net = measured_reduction * (1.0 - degraded_bank_fraction) -
                 victim_refresh_overhead;
    p.reduction = std::max(0.0, net);
    return p;
}

} // namespace memcon::core
