#include "core/resilience.hh"

#include "common/logging.hh"

namespace memcon::core
{

ResilienceManager::ResilienceManager(const ResilienceConfig &config,
                                     std::uint64_t num_rows,
                                     StatGroup &stat_group)
    : cfg(config), rows(num_rows), stats(stat_group),
      pinned(num_rows), nextScrub(config.scrubPeriod)
{
    fatal_if(cfg.retestBackoff == Tick{}, "retest backoff must be positive");
}

ResilienceManager::EccAction
ResilienceManager::onEccEvent(RowId row,
                              dram::EccStatus status, bool lo_ref,
                              Tick now)
{
    panic_if(row.value() >= rows, "row %llu out of range",
             static_cast<unsigned long long>(row.value()));
    switch (status) {
    case dram::EccStatus::Ok:
        return EccAction::None;
    case dram::EccStatus::Uncorrectable:
        stats.inc("ecc.uncorrectable");
        if (!cfg.enabled)
            return EccAction::None;
        // The page behind this row is gone; never trust it at LO-REF
        // again, and stop trusting every other LO verdict too.
        if (!pinned.test(row.value())) {
            pinned.set(row.value());
            stats.inc("pinned");
        }
        return EccAction::Fallback;
    case dram::EccStatus::CorrectedData:
    case dram::EccStatus::CorrectedCheck:
        stats.inc("ecc.corrected");
        if (!cfg.enabled || !lo_ref || pinned.test(row.value()))
            return EccAction::None;
        unsigned episodes = ++correctedEpisodes[row];
        if (episodes > cfg.maxCorrectedRetries) {
            pinned.set(row.value());
            stats.inc("pinned");
            return EccAction::DemoteAndPin;
        }
        // Exponential backoff: a row that keeps producing corrected
        // errors is re-tested less and less eagerly.
        Tick backoff{cfg.retestBackoff.value() << (episodes - 1)};
        retestQueue.emplace(now + backoff, row);
        stats.inc("retest.scheduled");
        return EccAction::DemoteAndRetest;
    }
    return EccAction::None;
}

std::vector<RowId>
ResilienceManager::dueRetests(Tick now)
{
    std::vector<RowId> due;
    auto end = retestQueue.upper_bound(now);
    for (auto it = retestQueue.begin(); it != end; ++it)
        due.push_back(it->second);
    retestQueue.erase(retestQueue.begin(), end);
    return due;
}

bool
ResilienceManager::armFallback(Tick now)
{
    fallbackUntil = now + cfg.fallbackHold;
    if (fallback)
        return false;
    fallback = true;
    stats.inc("fallback.entries");
    return true;
}

bool
ResilienceManager::fallbackExpired(Tick now) const
{
    return fallback && now >= fallbackUntil;
}

void
ResilienceManager::exitFallback()
{
    panic_if(!fallback, "exitFallback outside fallback");
    fallback = false;
    stats.inc("fallback.exits");
}

bool
ResilienceManager::scrubDue(Tick now) const
{
    return cfg.enabled && cfg.scrubPeriod > Tick{} && now >= nextScrub;
}

std::vector<RowId>
ResilienceManager::nextScrubRows(
    Tick now, const BitVector &lo_rows,
    const std::function<bool(RowId)> &skip)
{
    nextScrub = now + cfg.scrubPeriod;
    std::vector<RowId> picked;
    // One full lap from the cursor at most: the sweep must terminate
    // even when fewer LO rows exist than the batch wants.
    for (std::uint64_t step = 0;
         step < rows && picked.size() < cfg.scrubRowsPerSweep; ++step) {
        std::uint64_t row = scrubCursor;
        scrubCursor = (scrubCursor + 1) % rows;
        if (!lo_rows.test(row) || (skip && skip(RowId{row})))
            continue;
        picked.push_back(RowId{row});
    }
    stats.inc("scrub.scheduled", picked.size());
    return picked;
}

} // namespace memcon::core
