#include "core/resilience.hh"

#include "common/logging.hh"
#include "common/ordered.hh"
#include "common/random.hh"

namespace memcon::core
{

ResilienceManager::ResilienceManager(const ResilienceConfig &config,
                                     std::uint64_t num_rows,
                                     StatGroup &stat_group)
    : cfg(config), rows(num_rows), stats(stat_group),
      pinned(num_rows), nextScrub(config.scrubPeriod)
{
    fatal_if(cfg.retestBackoff == Tick{}, "retest backoff must be positive");
}

ResilienceManager::EccAction
ResilienceManager::onEccEvent(RowId row,
                              dram::EccStatus status, bool lo_ref,
                              Tick now)
{
    panic_if(row.value() >= rows, "row %llu out of range",
             static_cast<unsigned long long>(row.value()));
    switch (status) {
    case dram::EccStatus::Ok:
        return EccAction::None;
    case dram::EccStatus::Uncorrectable:
        stats.inc("ecc.uncorrectable");
        if (!cfg.enabled)
            return EccAction::None;
        // The page behind this row is gone; never trust it at LO-REF
        // again, and stop trusting every other LO verdict too.
        if (!pinned.test(row.value())) {
            pinned.set(row.value());
            stats.inc("pinned");
        }
        return EccAction::Fallback;
    case dram::EccStatus::CorrectedData:
    case dram::EccStatus::CorrectedCheck:
        stats.inc("ecc.corrected");
        if (!cfg.enabled || !lo_ref || pinned.test(row.value()))
            return EccAction::None;
        return ladderStep(row, now);
    }
    return EccAction::None;
}

ResilienceManager::EccAction
ResilienceManager::ladderStep(RowId row, Tick now)
{
    unsigned episodes = ++correctedEpisodes[row];
    if (episodes > cfg.maxCorrectedRetries) {
        pinned.set(row.value());
        stats.inc("pinned");
        return EccAction::DemoteAndPin;
    }
    // Exponential backoff: a row that keeps producing corrected
    // errors is re-tested less and less eagerly.
    Tick backoff{cfg.retestBackoff.value() << (episodes - 1)};
    retestQueue.emplace(now + backoff, row);
    stats.inc("retest.scheduled");
    return EccAction::DemoteAndRetest;
}

ResilienceManager::EccAction
ResilienceManager::onDisturbEscalation(RowId row, bool lo_ref, Tick now)
{
    panic_if(row.value() >= rows, "row %llu out of range",
             static_cast<unsigned long long>(row.value()));
    stats.inc("disturb.escalations");
    if (!cfg.enabled || !lo_ref || pinned.test(row.value()))
        return EccAction::None;
    return ladderStep(row, now);
}

std::vector<RowId>
ResilienceManager::dueRetests(Tick now)
{
    std::vector<RowId> due;
    auto end = retestQueue.upper_bound(now);
    for (auto it = retestQueue.begin(); it != end; ++it)
        due.push_back(it->second);
    retestQueue.erase(retestQueue.begin(), end);
    return due;
}

bool
ResilienceManager::armFallback(Tick now)
{
    fallbackUntil = now + cfg.fallbackHold;
    if (fallback)
        return false;
    fallback = true;
    stats.inc("fallback.entries");
    return true;
}

bool
ResilienceManager::fallbackExpired(Tick now) const
{
    return fallback && now >= fallbackUntil;
}

void
ResilienceManager::exitFallback()
{
    panic_if(!fallback, "exitFallback outside fallback");
    fallback = false;
    stats.inc("fallback.exits");
}

bool
ResilienceManager::scrubDue(Tick now) const
{
    return cfg.enabled && cfg.scrubPeriod > Tick{} && now >= nextScrub;
}

std::vector<RowId>
ResilienceManager::nextScrubRows(
    Tick now, const BitVector &lo_rows,
    const std::function<bool(RowId)> &skip)
{
    nextScrub = now + cfg.scrubPeriod;
    std::vector<RowId> picked;
    // One full lap from the cursor at most: the sweep must terminate
    // even when fewer LO rows exist than the batch wants.
    for (std::uint64_t step = 0;
         step < rows && picked.size() < cfg.scrubRowsPerSweep; ++step) {
        std::uint64_t row = scrubCursor;
        scrubCursor = (scrubCursor + 1) % rows;
        if (!lo_rows.test(row) || (skip && skip(RowId{row})))
            continue;
        picked.push_back(RowId{row});
    }
    stats.inc("scrub.scheduled", picked.size());
    return picked;
}

DisturbGuard::DisturbGuard(const DisturbGuardConfig &config,
                           const dram::AddressMap *map,
                           std::uint64_t num_rows, StatGroup &stat_group)
    : cfg(config), addressMap(map), rows(num_rows), stats(stat_group),
      banks(map ? map->numShards() : 1)
{
    fatal_if(addressMap == nullptr, "disturb guard needs an address map");
    if (!cfg.enabled)
        return;
    fatal_if(cfg.actAlertThreshold == 0,
             "ACT alert threshold must be positive");
    fatal_if(cfg.victimRadius == 0, "victim radius must be positive");
    fatal_if(cfg.maxVictimRefreshes == 0,
             "victim refresh limit must be positive");
    fatal_if(cfg.bankCrossingLimit == 0,
             "bank crossing limit must be positive");
    fatal_if(cfg.crossingWindow == Tick{},
             "crossing window must be positive");
    fatal_if(cfg.bankDegradeHold == Tick{},
             "bank degrade hold must be positive");
}

std::optional<DisturbGuard::Crossing>
DisturbGuard::onActivate(RowId row, Tick now)
{
    if (!cfg.enabled)
        return std::nullopt;
    panic_if(row.value() >= rows, "row %llu out of range",
             static_cast<unsigned long long>(row.value()));
    std::uint64_t &acts = aggressorActs[row];
    if (++acts < cfg.actAlertThreshold)
        return std::nullopt;
    acts = 0;
    ++crossingCount;
    stats.inc("disturb.crossings");

    Crossing crossing;
    crossing.aggressor = row;
    crossing.bank = addressMap->shardOf(row.value());
    for (unsigned dist = 1; dist <= cfg.victimRadius; ++dist) {
        for (int sign : {-1, 1}) {
            auto victim = addressMap->rowNeighbor(
                row.value(), sign * static_cast<int>(dist), rows);
            if (!victim)
                continue;
            crossing.victims.push_back(RowId{*victim});
            unsigned episodes = ++victimEpisodes[RowId{*victim}];
            if (episodes % cfg.maxVictimRefreshes == 0)
                crossing.escalations.push_back(RowId{*victim});
        }
    }

    BankState &bank = banks[crossing.bank];
    if (now - bank.windowStart >= cfg.crossingWindow) {
        bank.windowStart = now;
        bank.crossingsInWindow = 0;
    }
    ++bank.crossingsInWindow;
    if (bank.degraded) {
        // Hysteresis: hammering a degraded bank keeps it degraded.
        bank.degradedUntil = now + cfg.bankDegradeHold;
    } else if (bank.crossingsInWindow >= cfg.bankCrossingLimit) {
        bank.degraded = true;
        bank.degradedUntil = now + cfg.bankDegradeHold;
        crossing.bankDegraded = true;
        ++degradedCount;
        stats.inc("disturb.bankDegrades");
    }
    return crossing;
}

bool
DisturbGuard::bankDegraded(RowId row, Tick now) const
{
    const BankState &bank = banks[addressMap->shardOf(row.value())];
    return bank.degraded && now < bank.degradedUntil;
}

std::vector<std::uint64_t>
DisturbGuard::degradedBanks(Tick now) const
{
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < banks.size(); ++i)
        if (banks[i].degraded && now < banks[i].degradedUntil)
            out.push_back(i);
    return out;
}

std::vector<std::uint64_t>
DisturbGuard::recoveredBanks(Tick now)
{
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < banks.size(); ++i) {
        BankState &bank = banks[i];
        if (bank.degraded && now >= bank.degradedUntil) {
            bank.degraded = false;
            --degradedCount;
            stats.inc("disturb.bankRecoveries");
            out.push_back(i);
        }
    }
    return out;
}

std::uint64_t
DisturbGuard::fingerprint() const
{
    // Hash maps in key order so the digest is iteration-order free.
    std::uint64_t fp = hashMix64(crossingCount);
    for (const auto &[row, acts] : ordered::sortedItems(aggressorActs))
        fp = hashMix64(fp ^ hashMix64(row.value() * 2 + 1) ^ acts);
    for (const auto &[row, episodes] : ordered::sortedItems(victimEpisodes))
        fp = hashMix64(fp ^ hashMix64(row.value() * 2) ^ episodes);
    for (const BankState &bank : banks) {
        fp = hashMix64(fp ^ bank.crossingsInWindow ^
                       (bank.degraded ? bank.degradedUntil.value() : 0));
    }
    return fp;
}

} // namespace memcon::core
