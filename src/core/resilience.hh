/**
 * @file
 * Graceful degradation for the online mechanism.
 *
 * OnlineMemcon's baseline control flow trusts its own verdicts: a row
 * that passed its test sits at LO-REF until the next demand write.
 * The paper's own motivation says that trust is misplaced - VRT cells
 * toggle after certification (the AVATAR hazard) and transient upsets
 * strike rows the profile never saw - so a production mechanism must
 * treat the ECC decode of every demand read as a health signal and
 * degrade gracefully when it disagrees with the refresh state:
 *
 *  - corrected error on a LO-REF row: the certification is stale.
 *    Demote immediately and schedule a re-test with exponential
 *    backoff; after a bounded number of corrected-error episodes the
 *    row is pinned at HI-REF for good (a chronically toggling VRT
 *    row is not worth re-certifying).
 *
 *  - uncorrectable error: the mechanism can no longer prove any of
 *    its LO-REF verdicts were safe. Enter panic-fallback: blanket
 *    HI-REF, drain the test slots, and only resume (re-certifying
 *    every formerly-LO row from scratch) after a quiet hold period.
 *
 *  - periodic re-scrub: LO-REF rows that see neither writes nor
 *    demand reads would otherwise keep a stale verdict forever (the
 *    exposure vrt.hh names). A round-robin sweep re-tests them
 *    through the ordinary TestEngine slots, so scrub traffic
 *    competes with demand exactly like test traffic.
 *
 * This class is the bookkeeping half (per-row retry state, the pin
 * set, the retest/backoff queue, the scrub cursor, the fallback
 * timer); OnlineMemcon owns the actuation (demotion, slot draining,
 * controller re-targeting).
 */

#ifndef MEMCON_CORE_RESILIENCE_HH
#define MEMCON_CORE_RESILIENCE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hh"
#include "common/stats.hh"
#include "common/strong_id.hh"
#include "common/units.hh"
#include "dram/ecc.hh"

namespace memcon::core
{

struct ResilienceConfig
{
    /** Master switch; off reproduces the trusting baseline (events
     * are still counted). */
    bool enabled = true;

    /** Corrected-error episodes a row may survive before it is
     * pinned at HI-REF. */
    unsigned maxCorrectedRetries = 3;

    /** Backoff before the first re-test; doubles per episode. */
    Tick retestBackoff = usToTicks(30.0);

    /** Period of the idle-row re-scrub sweep (0 disables scrub). */
    Tick scrubPeriod{};

    /** LO-REF rows queued per sweep step; bounds scrub burstiness so
     * the TestEngine slots are never monopolised. */
    std::size_t scrubRowsPerSweep = 8;

    /** Test slots candidates must leave free while scrub work is
     * queued. Without a reservation a write-heavy stream keeps the
     * candidate queue non-empty forever and scrub starves. */
    std::size_t scrubReservedSlots = 2;

    /** Quiet time before panic-fallback is exited; every further
     * uncorrectable error re-arms it. */
    Tick fallbackHold = usToTicks(200.0);
};

class ResilienceManager
{
  public:
    /** What OnlineMemcon must do about an ECC event. */
    enum class EccAction
    {
        None,            //!< count only (row not LO, or disabled)
        DemoteAndRetest, //!< demote now; a backoff re-test is queued
        DemoteAndPin,    //!< demote now; retries exhausted, pin HI-REF
        Fallback,        //!< uncorrectable: enter panic-fallback
    };

    ResilienceManager(const ResilienceConfig &config,
                      std::uint64_t num_rows, StatGroup &stats);

    const ResilienceConfig &config() const { return cfg; }

    /**
     * Classify an ECC event on a row. `lo_ref` is the row's refresh
     * state at observation time. Updates retry counts, the pin set,
     * and the retest queue; the caller actuates the returned action.
     */
    EccAction onEccEvent(RowId row, dram::EccStatus status,
                         bool lo_ref, Tick now);

    /** @return true if the row is permanently held at HI-REF. */
    bool isPinned(RowId row) const { return pinned.test(row.value()); }

    /** Rows currently pinned at HI-REF. */
    std::uint64_t pinnedRows() const { return pinned.count(); }

    /** Pop every scheduled re-test whose backoff has elapsed. */
    std::vector<RowId> dueRetests(Tick now);

    // --- panic-fallback timer ---

    bool inFallback() const { return fallback; }

    /**
     * Arm (or re-arm) the fallback hold.
     * @return true if this call *entered* fallback (as opposed to
     * extending an active one); the caller drains state on entry.
     */
    bool armFallback(Tick now);

    /** @return true when the hold has elapsed and fallback can end. */
    bool fallbackExpired(Tick now) const;

    /** Leave fallback (caller begins the re-certification sweep). */
    void exitFallback();

    // --- idle-row re-scrub ---

    /** @return true when the next sweep step is due. */
    bool scrubDue(Tick now) const;

    /**
     * Advance the sweep: up to scrubRowsPerSweep LO-REF rows from
     * the round-robin cursor, skipping rows the predicate rejects
     * (already under test). Re-arms the period timer.
     */
    std::vector<RowId>
    nextScrubRows(Tick now, const BitVector &lo_rows,
                  const std::function<bool(RowId)> &skip);

  private:
    ResilienceConfig cfg;
    std::uint64_t rows;
    StatGroup &stats;

    std::unordered_map<RowId, unsigned> correctedEpisodes;
    BitVector pinned;
    std::multimap<Tick, RowId> retestQueue;

    bool fallback = false;
    Tick fallbackUntil{};

    Tick nextScrub;
    std::uint64_t scrubCursor = 0;
};

} // namespace memcon::core

#endif // MEMCON_CORE_RESILIENCE_HH
