/**
 * @file
 * Graceful degradation for the online mechanism.
 *
 * OnlineMemcon's baseline control flow trusts its own verdicts: a row
 * that passed its test sits at LO-REF until the next demand write.
 * The paper's own motivation says that trust is misplaced - VRT cells
 * toggle after certification (the AVATAR hazard) and transient upsets
 * strike rows the profile never saw - so a production mechanism must
 * treat the ECC decode of every demand read as a health signal and
 * degrade gracefully when it disagrees with the refresh state:
 *
 *  - corrected error on a LO-REF row: the certification is stale.
 *    Demote immediately and schedule a re-test with exponential
 *    backoff; after a bounded number of corrected-error episodes the
 *    row is pinned at HI-REF for good (a chronically toggling VRT
 *    row is not worth re-certifying).
 *
 *  - uncorrectable error: the mechanism can no longer prove any of
 *    its LO-REF verdicts were safe. Enter panic-fallback: blanket
 *    HI-REF, drain the test slots, and only resume (re-certifying
 *    every formerly-LO row from scratch) after a quiet hold period.
 *
 *  - periodic re-scrub: LO-REF rows that see neither writes nor
 *    demand reads would otherwise keep a stale verdict forever (the
 *    exposure vrt.hh names). A round-robin sweep re-tests them
 *    through the ordinary TestEngine slots, so scrub traffic
 *    competes with demand exactly like test traffic.
 *
 * This class is the bookkeeping half (per-row retry state, the pin
 * set, the retest/backoff queue, the scrub cursor, the fallback
 * timer); OnlineMemcon owns the actuation (demotion, slot draining,
 * controller re-targeting).
 *
 * The DisturbGuard below extends the same division of labor to
 * read-disturb: it watches the controller's ACT stream for aggressor
 * rows, asks for neighbor (victim) refreshes through the scrub
 * machinery when an aggressor crosses its alert threshold, escalates
 * chronically hammered victims into the demote/backoff/pin ladder
 * above, and degrades a whole bank to HI-REF when crossings show
 * sustained hammering the per-victim refreshes cannot keep up with.
 */

#ifndef MEMCON_CORE_RESILIENCE_HH
#define MEMCON_CORE_RESILIENCE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hh"
#include "common/stats.hh"
#include "common/strong_id.hh"
#include "common/units.hh"
#include "dram/address_map.hh"
#include "dram/ecc.hh"

namespace memcon::core
{

struct ResilienceConfig
{
    /** Master switch; off reproduces the trusting baseline (events
     * are still counted). */
    bool enabled = true;

    /** Corrected-error episodes a row may survive before it is
     * pinned at HI-REF. */
    unsigned maxCorrectedRetries = 3;

    /** Backoff before the first re-test; doubles per episode. */
    Tick retestBackoff = usToTicks(30.0);

    /** Period of the idle-row re-scrub sweep (0 disables scrub). */
    Tick scrubPeriod{};

    /** LO-REF rows queued per sweep step; bounds scrub burstiness so
     * the TestEngine slots are never monopolised. */
    std::size_t scrubRowsPerSweep = 8;

    /** Test slots candidates must leave free while scrub work is
     * queued. Without a reservation a write-heavy stream keeps the
     * candidate queue non-empty forever and scrub starves. */
    std::size_t scrubReservedSlots = 2;

    /** Quiet time before panic-fallback is exited; every further
     * uncorrectable error re-arms it. */
    Tick fallbackHold = usToTicks(200.0);
};

class ResilienceManager
{
  public:
    /** What OnlineMemcon must do about an ECC event. */
    enum class EccAction
    {
        None,            //!< count only (row not LO, or disabled)
        DemoteAndRetest, //!< demote now; a backoff re-test is queued
        DemoteAndPin,    //!< demote now; retries exhausted, pin HI-REF
        Fallback,        //!< uncorrectable: enter panic-fallback
    };

    ResilienceManager(const ResilienceConfig &config,
                      std::uint64_t num_rows, StatGroup &stats);

    const ResilienceConfig &config() const { return cfg; }

    /**
     * Classify an ECC event on a row. `lo_ref` is the row's refresh
     * state at observation time. Updates retry counts, the pin set,
     * and the retest queue; the caller actuates the returned action.
     */
    EccAction onEccEvent(RowId row, dram::EccStatus status,
                         bool lo_ref, Tick now);

    /**
     * The DisturbGuard escalated a chronically hammered victim row:
     * fold it into the corrected-error ladder (demote now, backoff
     * re-test, pin once retries are exhausted), so disturb pressure
     * and ECC health share one hysteresis.
     */
    EccAction onDisturbEscalation(RowId row, bool lo_ref, Tick now);

    /** @return true if the row is permanently held at HI-REF. */
    bool isPinned(RowId row) const { return pinned.test(row.value()); }

    /** Rows currently pinned at HI-REF. */
    std::uint64_t pinnedRows() const { return pinned.count(); }

    /** Pop every scheduled re-test whose backoff has elapsed. */
    std::vector<RowId> dueRetests(Tick now);

    // --- panic-fallback timer ---

    bool inFallback() const { return fallback; }

    /**
     * Arm (or re-arm) the fallback hold.
     * @return true if this call *entered* fallback (as opposed to
     * extending an active one); the caller drains state on entry.
     */
    bool armFallback(Tick now);

    /** @return true when the hold has elapsed and fallback can end. */
    bool fallbackExpired(Tick now) const;

    /** Leave fallback (caller begins the re-certification sweep). */
    void exitFallback();

    // --- idle-row re-scrub ---

    /** @return true when the next sweep step is due. */
    bool scrubDue(Tick now) const;

    /**
     * Advance the sweep: up to scrubRowsPerSweep LO-REF rows from
     * the round-robin cursor, skipping rows the predicate rejects
     * (already under test). Re-arms the period timer.
     */
    std::vector<RowId>
    nextScrubRows(Tick now, const BitVector &lo_rows,
                  const std::function<bool(RowId)> &skip);

  private:
    /** One corrected-ladder episode on a row: schedule a backoff
     * re-test, or pin once retries are exhausted. */
    EccAction ladderStep(RowId row, Tick now);

    ResilienceConfig cfg;
    std::uint64_t rows;
    StatGroup &stats;

    std::unordered_map<RowId, unsigned> correctedEpisodes;
    BitVector pinned;
    std::multimap<Tick, RowId> retestQueue;

    bool fallback = false;
    Tick fallbackUntil{};

    Tick nextScrub;
    std::uint64_t scrubCursor = 0;
};

struct DisturbGuardConfig
{
    /** Master switch; off costs nothing on the ACT path. */
    bool enabled = false;

    /**
     * ACTs of one aggressor row before the guard refreshes the
     * aggressor's neighbors. Set well below the weakest victim's flip
     * threshold - the guard must fire while the victims still hold
     * their data. The counter resets on each crossing.
     */
    std::uint64_t actAlertThreshold = 2048;

    /**
     * Rows on each side of a crossing aggressor to refresh (the
     * mitigated blast radius); 2 covers the distance-2 coupling the
     * disturb model charges.
     */
    unsigned victimRadius = 2;

    /**
     * Victim-refresh episodes one victim may absorb before the guard
     * escalates it into the demote/backoff/pin ladder (a row this
     * hammered should not sit at LO-REF; chronic cases pin). Each
     * further multiple escalates again.
     */
    unsigned maxVictimRefreshes = 8;

    /**
     * Alert crossings inside one bank within `crossingWindow` before
     * the whole bank degrades to HI-REF (sustained many-sided
     * hammering defeats per-victim refresh; blanket HI-REF restores
     * the 16 ms bound).
     */
    std::uint64_t bankCrossingLimit = 32;

    /** Sliding window the per-bank crossing count decays over. */
    Tick crossingWindow = usToTicks(500.0);

    /**
     * Quiet hold before a degraded bank re-arms LO-REF promotion;
     * further crossings while degraded extend the hold (hysteresis -
     * the bank only recovers after the hammering stops).
     */
    Tick bankDegradeHold = msToTicks(1.0);
};

/**
 * Aggressor-side bookkeeping of the read-disturb mitigation: per-row
 * ACT counters, per-victim escalation counts, and the per-bank
 * degradation state machine. OnlineMemcon feeds it every controller
 * ACT and actuates what a crossing asks for (victim refreshes through
 * the scrub wheel, ladder escalations, bank demotion sweeps).
 */
class DisturbGuard
{
  public:
    /** What one alert-threshold crossing asks the mechanism to do. */
    struct Crossing
    {
        RowId aggressor{};
        /** Neighbor rows to refresh, nearest first. */
        std::vector<RowId> victims;
        /** Victims past the episode limit: run the demote ladder. */
        std::vector<RowId> escalations;
        /** This crossing tripped its bank into degradation. */
        bool bankDegraded = false;
        std::uint64_t bank = 0;
    };

    /**
     * @param map physical adjacency (also defines the bank of a
     *        row); must outlive the guard.
     */
    DisturbGuard(const DisturbGuardConfig &config,
                 const dram::AddressMap *map, std::uint64_t num_rows,
                 StatGroup &stats);

    const DisturbGuardConfig &config() const { return cfg; }

    /**
     * Count one ACT of `row`. Returns the crossing to actuate when
     * the row's counter reaches the alert threshold, nullopt
     * otherwise (the overwhelmingly common case).
     */
    std::optional<Crossing> onActivate(RowId row, Tick now);

    /** Is the bank holding this row currently degraded to HI-REF? */
    bool bankDegraded(RowId row, Tick now) const;

    /** Shard (bank) indices currently degraded, in ascending order. */
    std::vector<std::uint64_t> degradedBanks(Tick now) const;

    /** Banks whose degradation hold expired since the last call;
     * the caller re-arms LO-REF promotion for them. */
    std::vector<std::uint64_t> recoveredBanks(Tick now);

    /** Cheap per-tick gate: is any bank currently degraded? */
    bool anyBankDegraded() const { return degradedCount > 0; }

    /** Aggressor-counter crossings so far. */
    std::uint64_t crossings() const { return crossingCount; }

    /** Deterministic digest of the guard state (fingerprints). */
    std::uint64_t fingerprint() const;

  private:
    struct BankState
    {
        std::uint64_t crossingsInWindow = 0;
        Tick windowStart{};
        bool degraded = false;
        Tick degradedUntil{};
    };

    DisturbGuardConfig cfg;
    const dram::AddressMap *addressMap;
    std::uint64_t rows;
    StatGroup &stats;

    std::unordered_map<RowId, std::uint64_t> aggressorActs;
    std::unordered_map<RowId, unsigned> victimEpisodes;
    std::vector<BankState> banks;
    std::uint64_t crossingCount = 0;
    std::uint64_t degradedCount = 0;
};

} // namespace memcon::core

#endif // MEMCON_CORE_RESILIENCE_HH
