/**
 * @file
 * The closed-loop, cycle-domain MEMCON integration.
 *
 * Where MemconEngine replays millisecond-scale write timelines
 * analytically, OnlineMemcon plugs into the cycle simulator and runs
 * the mechanism against the *actual* request stream:
 *
 *  - the memory controller's write observer feeds PRIL with every
 *    demand write's row,
 *  - at each quantum boundary PRIL's candidates enter the TestEngine
 *    (slot-limited, Read&Compare or Copy&Compare) and the row's test
 *    traffic (two full read passes, plus a write pass in C&C mode)
 *    is injected as low-priority requests,
 *  - after the in-test idle period elapses and the read-back traffic
 *    has drained, the test completes: clean rows move to LO-REF,
 *    failing rows stay at HI-REF,
 *  - a demand write to an in-test row aborts the test; a write to a
 *    LO-REF row demotes it,
 *  - rows that have seen no write by the end of the second quantum
 *    are identified as read-only and background-tested with the same
 *    slot machinery (Section 6.1),
 *  - the controller's refresh cadence is re-targeted continuously
 *    from the measured LO-REF row fraction, so the refresh reduction
 *    *emerges* from the mechanism instead of being configured,
 *  - the controller's error-event hook feeds ECC decode verdicts of
 *    demand reads into a graceful-degradation state machine
 *    (resilience.hh): corrected errors on LO-REF rows demote and
 *    re-test with backoff, uncorrectable errors trigger a
 *    panic-fallback to blanket HI-REF, and idle LO-REF rows are
 *    periodically re-scrubbed through the same test slots,
 *  - the controller's activate observer feeds every ACT into a
 *    read-disturb guard (DisturbGuard): an aggressor row crossing its
 *    alert threshold gets its neighbors refreshed out of band through
 *    the same request machinery, chronically hammered victims fall
 *    into the demote/backoff/pin ladder, and a bank under sustained
 *    hammering degrades to blanket HI-REF until the pressure stops.
 *
 * Because cycle simulation covers milliseconds while PRIL's natural
 * quantum is ~1 s, the quantum and in-test idle period are
 * configurable and typically time-compressed in experiments; the
 * control flow is identical.
 */

#ifndef MEMCON_CORE_ONLINE_MEMCON_HH
#define MEMCON_CORE_ONLINE_MEMCON_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/bitvector.hh"
#include "common/stats.hh"
#include "core/pril.hh"
#include "core/resilience.hh"
#include "core/test_engine.hh"
#include "dram/address_map.hh"
// Deliberate back-edge: the closed-loop online engine observes and
// re-targets the sim::MemoryController directly. Inverting it (a
// core-side observer interface the controller implements) is tracked
// in ROADMAP.md; until then this is the one sanctioned core -> sim
// edge.
#include "sim/controller.hh" // lint:allow(layering)

namespace memcon::core
{

struct OnlineMemconConfig
{
    /** PRIL quantum in ticks (time-compressed in experiments). */
    Tick quantum = msToTicks(0.5);

    /** In-test idle period before read-back (LO-REF interval in
     * real hardware; compressed with the quantum here). */
    Tick testIdle = msToTicks(0.25);

    std::size_t writeBufferCapacity = 4000;

    TestEngineConfig testEngine;

    /** HI/LO refresh intervals, for the emergent reduction target. */
    double hiRefMs = 16.0;
    double loRefMs = 64.0;

    /** Re-target the controller's refresh cadence this often. */
    Tick retargetPeriod = msToTicks(0.25);

    /** Graceful-degradation knobs (corrected-error demotion, panic
     * fallback, idle-row re-scrub). */
    ResilienceConfig resilience;

    /**
     * Kill switch for LO-REF promotion: when false, passing tests
     * still run and count but never relax the row's refresh - the
     * all-HI baseline arm the disturb ablation compares against.
     */
    bool loRefEnabled = true;

    /** Read-disturb guard knobs (aggressor ACT watching, neighbor
     * victim refresh, per-bank HI-REF degradation). Off by default -
     * the ACT path then costs one branch. */
    DisturbGuardConfig disturbGuard;

    /**
     * Invoked for every victim refresh the guard issues, after its
     * request is accepted; the failure-model side hooks this to reset
     * the victim's disturbance counter.
     */
    std::function<void(RowId victim, Tick now)> victimRefresher;

    /**
     * Bank decomposition of the module's flat row space, for per-bank
     * LO-REF accounting (loRefFraction(shard)). The identity map
     * keeps a single bucket; a multi-shard map adds bookkeeping only
     * - the control flow, the fingerprint, and every decision are
     * unchanged.
     */
    dram::AddressMap addressMap{};
};

class OnlineMemcon
{
  public:
    /** Decides whether a row's current content fails at LO-REF. */
    using RowFailureOracle = std::function<bool(RowId row)>;

    /**
     * @param geometry    module geometry (page = row granularity)
     * @param controller  the controller to observe and re-target;
     *                    this object installs itself as the write
     *                    observer via attach()
     */
    OnlineMemcon(const dram::Geometry &geometry,
                 sim::MemoryController &controller,
                 const OnlineMemconConfig &config,
                 RowFailureOracle oracle = {});

    /**
     * Install the write and error observers into a controller
     * config. Call before constructing the controller, then pass the
     * controller to this class; split because the controller takes
     * its config by value at construction.
     */
    static void installObserver(sim::ControllerConfig &cfg,
                                OnlineMemcon *&slot);

    /** Report a demand write (wired to the controller observer). */
    void observeWrite(std::uint64_t addr, Tick now);

    /** Report the ECC decode verdict of a completed demand read
     * (wired to the controller's error observer). */
    void observeEccEvent(std::uint64_t addr, dram::EccStatus status,
                         Tick now);

    /** Report a row activation (wired to the controller's activate
     * observer); feeds the read-disturb guard. */
    void observeActivate(std::uint64_t addr, Tick now);

    /** Advance; call once per DRAM tick after controller.tick(). */
    void tick(Tick now);

    /** Fraction of rows currently at LO-REF. */
    double loRefFraction() const;

    /**
     * LO-REF fraction of one bank of cfg.addressMap (a per-bank view
     * of the same counters; 0.0 for a bank that owns no rows). Under
     * the identity map shard 0 is the whole module.
     */
    double loRefFraction(std::uint64_t shard) const;

    /** @return true if the row currently sits at LO-REF. */
    bool isLoRef(RowId row) const { return loRows.test(row.value()); }

    /** The refresh reduction implied by the current LO fraction. */
    double emergentReduction() const;

    /** @return true while the panic-fallback is active. */
    bool inFallback() const { return resilience.inFallback(); }

    /** Rows permanently pinned at HI-REF by the resilience layer. */
    std::uint64_t pinnedRows() const { return resilience.pinnedRows(); }

    /** @return true if the resilience layer pinned this row. A pinned
     * row is never LO-REF (the partition invariant test_disturb's
     * property suite holds the closed loop to). */
    bool isPinned(RowId row) const { return resilience.isPinned(row); }

    // --- overload-governor hooks (memcond service mode) ---

    /**
     * Shed background read-only scans and LO-REF re-scrub top-ups.
     * While shed, the one-shot read-only sweep is deferred (it fires
     * at the first quantum boundary after the shed lifts) and the
     * scrub queue is not refilled; in-flight tests keep running.
     * Default off - behavior is bit-identical to the pre-hook code.
     */
    void setScansShed(bool shed) { shedScans = shed; }
    bool scansShed() const { return shedScans; }

    /**
     * Stretch the PRIL quantum by an integer factor (>= 1) from the
     * next quantum boundary on: under overload, testing cadence slows
     * before any tenant work is dropped. Factor 1 restores the
     * configured cadence.
     */
    void setQuantumStretch(unsigned factor);
    unsigned quantumStretch() const { return stretchFactor; }

    /**
     * CRC over the mechanism's visible state: PRIL, refresh states
     * (LO-REF/ever-written maps), queued and in-flight tests, quantum
     * phase, and the stat counters. The service snapshot records it
     * per tenant; after a journal-replay restore the recomputed value
     * must match bit-for-bit or the resume is rejected.
     */
    std::uint32_t stateFingerprint() const;

    /** Human-readable fingerprint context for mismatch diagnostics. */
    std::string describeState() const;

    // Statistics.
    std::uint64_t testsStarted() const { return engine.testsStarted(); }
    std::uint64_t testsPassed() const { return engine.testsPassed(); }
    std::uint64_t testsFailed() const { return engine.testsFailed(); }
    std::uint64_t testsAborted() const { return engine.testsAborted(); }
    std::uint64_t writesObserved() const { return writeCount; }
    std::uint64_t demotions() const { return demotionCount; }

    /** Victim refreshes the disturb guard has issued. */
    std::uint64_t victimRefreshes() const { return victimRefreshCount; }

    /** The read-disturb guard (aggressor counters, bank states). */
    const DisturbGuard &disturbGuard() const { return guard; }

    /** Resilience event counters (ecc.*, demote.*, scrub.*,
     * fallback.*, retest.*, pinned). */
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

  private:
    struct ActiveTest
    {
        RowId row;
        Tick readbackAt; //!< when the idle period ends
        unsigned requestsLeft; //!< traffic not yet accepted
        unsigned column = 0;
        bool isScrub = false; //!< re-certification of a LO-REF row
    };

    void startCandidateTests(Tick now);
    void startScrubTests(Tick now);
    void pumpTestTraffic(Tick now);
    void pumpVictimRefreshes(Tick now);
    void completeDueTests(Tick now);
    void demoteRow(RowId row, const char *cause);
    void abortTestOn(RowId row);
    void enterFallback(Tick now);
    void degradeBank(std::uint64_t bank, Tick now);
    RowId rowOfAddr(std::uint64_t addr) const;

    dram::Geometry geom;
    sim::MemoryController &mc;
    OnlineMemconConfig cfg;
    RowFailureOracle oracle;

    PrilPredictor pril;
    TestEngine engine;
    BitVector loRows;
    BitVector everWritten;
    std::uint64_t loCount = 0;
    unsigned quantaSeen = 0;

    // Per-bank LO-REF bookkeeping (cfg.addressMap decomposition).
    // Derived from loRows, so it is NOT part of the fingerprint: a
    // restore rebuilds it from the restored LO set.
    std::vector<std::uint64_t> rowsPerShard;
    std::vector<std::uint64_t> loPerShard;

    // Overload-governor state (service mode; defaults preserve the
    // standalone behavior exactly).
    bool shedScans = false;
    unsigned stretchFactor = 1;
    bool roScanDone = false;

    std::deque<ActiveTest> activeTests;
    std::deque<RowId> pendingCandidates;
    std::deque<RowId> scrubQueue;

    /** Rows whose LO verdict was revoked by a fallback; re-certified
     * when the fallback exits. */
    std::deque<RowId> recoveryQueue;

    /** Victim rows awaiting their out-of-band refresh (the disturb
     * guard's analogue of the scrub queue). */
    std::deque<RowId> victimRefreshQueue;

    /** Rows a bank degradation demoted (or blocked from promotion),
     * keyed by bank; re-certified when the bank recovers. Ordered so
     * iteration is deterministic. */
    std::map<std::uint64_t, std::vector<RowId>> bankRecovery;

    StatGroup statGroup{"memcon"};
    ResilienceManager resilience;
    DisturbGuard guard;

    Tick nextQuantumEnd;
    Tick nextRetarget;
    std::uint64_t writeCount = 0;
    std::uint64_t demotionCount = 0;
    std::uint64_t victimRefreshCount = 0;
};

} // namespace memcon::core

#endif // MEMCON_CORE_ONLINE_MEMCON_HH
