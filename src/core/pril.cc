#include "core/pril.hh"

#include <algorithm>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/ordered.hh"

namespace memcon::core
{

// --------------------------------------------------------------------
// PrilPredictor: flat-set buffers, batched candidate extraction.
// --------------------------------------------------------------------

PrilPredictor::PrilPredictor(std::uint64_t num_pages,
                             std::size_t buffer_capacity)
    : pages(num_pages), capacity(buffer_capacity),
      writeBuffer{FlatPageSet(buffer_capacity),
                  FlatPageSet(buffer_capacity)}
{
    fatal_if(num_pages == 0, "tracker needs at least one page");
    fatal_if(buffer_capacity == 0, "write buffer cannot be empty");
    writeMap[0].resizeAndClear(num_pages);
    writeMap[1].resizeAndClear(num_pages);
    erasedMap[0].resizeAndClear(num_pages);
    erasedMap[1].resizeAndClear(num_pages);
}

void
PrilPredictor::onWrite(PageId page)
{
    panic_if(page.value() >= pages, "page %llu out of range",
             static_cast<unsigned long long>(page.value()));

    unsigned cur = current;
    unsigned prev = 1 - current;

    // A write in this quantum disqualifies any candidacy from the
    // previous quantum (step 3 in Figure 13). Buffer membership
    // implies the map bit is set, so a clear bit skips the probe -
    // the common case under sparse traffic.
    if (writeMap[prev].test(page.value()) &&
        writeBuffer[prev].erase(page.value()))
        erasedMap[prev].set(page.value());

    bool already_written = writeMap[cur].testAndSet(page.value());
    if (!already_written) {
        // First write this quantum (step 1): track it, unless full.
        if (writeBuffer[cur].size() >= capacity) {
            ++drops;
            erasedMap[cur].set(page.value());
            return;
        }
        writeBuffer[cur].insert(page.value());
        peakOccupancy = std::max(peakOccupancy, writeBuffer[cur].size());
    } else {
        // Second or later write (step 2): interval below a quantum.
        if (writeBuffer[cur].erase(page.value()))
            erasedMap[cur].set(page.value());
    }
}

std::vector<PageId>
PrilPredictor::endQuantum()
{
    std::vector<PageId> candidates;
    endQuantumInto(candidates);
    return candidates;
}

void
PrilPredictor::endQuantumInto(std::vector<PageId> &out)
{
    unsigned prev = 1 - current;

    // Pages surviving in the previous buffer had exactly one write
    // in the quantum before last and none since (step 4). Buffer
    // membership is exactly {map bit set, erased bit clear} - pages
    // enter the buffer only after testAndSet, every departure (step-2
    // erase, step-3 eviction, drop) stamps the erased map, and
    // re-entry within a quantum is impossible - so one bulk
    // `map ANDNOT erased` pass plus a visit of the surviving bits
    // (ascending by construction) reproduces the sorted candidate
    // list without per-page hashing, materializing, or sorting.
    out.clear();
    if (!writeBuffer[prev].empty()) {
        extractScratch = writeMap[prev];
        extractScratch.andNotWith(erasedMap[prev]);
        extractScratch.visitSetBits([&out](std::size_t bit) {
            out.push_back(PageId{bit});
        });
    }

    // Step 5: clear the previous structures and swap roles.
    writeBuffer[prev].clearAll();
    writeMap[prev].clearAll();
    erasedMap[prev].clearAll();
    current = prev;
}

std::size_t
PrilPredictor::storageBytes() const
{
    // Two bit-vector write-maps plus two write-buffers of page
    // addresses (modelled at 34 bits, rounded to 5 bytes, per entry
    // as in §6.4's 17 KB for 4000 entries). The flat set's host-side
    // slot array and the derived erased maps are implementation
    // details, not modelled SRAM, so the accounting matches the
    // reference predictor exactly.
    return writeMap[0].storageBytes() + writeMap[1].storageBytes() +
           2 * capacity * 5;
}

bool
PrilPredictor::isTracked(PageId page) const
{
    return writeBuffer[0].contains(page.value()) ||
           writeBuffer[1].contains(page.value());
}

std::uint32_t
PrilPredictor::stateFingerprint() const
{
    // CRC over a canonical little-endian serialization: the swap
    // phase, counters, each map's set bits, and each buffer's members
    // in ascending page order. Membership order comes from the
    // derived erased map (`map ANDNOT erased` visits ascending), not
    // from flat-set slot order - slot layout under linear probing is
    // a function of the operation history, while this serialization
    // depends only on the logical state, so two predictors in equal
    // states fingerprint identically however they got there
    // (DESIGN.md §19).
    std::uint32_t c = 0;
    auto mix = [&c](std::uint64_t v) {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        c = ckpt::crc32(b, sizeof(b), c);
    };
    mix(current);
    mix(drops);
    mix(peakOccupancy);
    for (unsigned side = 0; side < 2; ++side) {
        writeMap[side].visitSetBits([&mix](std::size_t bit) {
            mix(bit);
        });
        mix(0xA5A5A5A5ull); // side separator
        BitVector members = writeMap[side];
        members.andNotWith(erasedMap[side]);
        members.visitSetBits([&mix](std::size_t bit) { mix(bit); });
        mix(0x5A5A5A5Aull);
    }
    return c;
}

// --------------------------------------------------------------------
// ReferencePrilPredictor: the seed hash-set implementation, kept as
// the priced baseline. Semantics are identical to the flat predictor
// (the property suite locksteps the two); only the container and the
// fingerprint ordering differ.
// --------------------------------------------------------------------

ReferencePrilPredictor::ReferencePrilPredictor(std::uint64_t num_pages,
                                               std::size_t buffer_capacity)
    : pages(num_pages), capacity(buffer_capacity)
{
    fatal_if(num_pages == 0, "tracker needs at least one page");
    fatal_if(buffer_capacity == 0, "write buffer cannot be empty");
    writeMap[0].resizeAndClear(num_pages);
    writeMap[1].resizeAndClear(num_pages);
}

void
ReferencePrilPredictor::onWrite(PageId page)
{
    panic_if(page.value() >= pages, "page %llu out of range",
             static_cast<unsigned long long>(page.value()));

    unsigned cur = current;
    unsigned prev = 1 - current;

    writeBuffer[prev].erase(page);

    bool already_written = writeMap[cur].testAndSet(page.value());
    if (!already_written) {
        if (writeBuffer[cur].size() >= capacity) {
            ++drops;
            return;
        }
        writeBuffer[cur].insert(page);
        peakOccupancy = std::max(peakOccupancy, writeBuffer[cur].size());
    } else {
        writeBuffer[cur].erase(page);
    }
}

std::vector<PageId>
ReferencePrilPredictor::endQuantum()
{
    unsigned prev = 1 - current;

    // The candidate list feeds test scheduling and stats, so it must
    // not inherit hash-set iteration order.
    std::vector<PageId> candidates =
        ordered::sortedValues(writeBuffer[prev]);

    writeBuffer[prev].clear();
    writeMap[prev].clearAll();
    current = prev;
    return candidates;
}

std::size_t
ReferencePrilPredictor::storageBytes() const
{
    return writeMap[0].storageBytes() + writeMap[1].storageBytes() +
           2 * capacity * 5;
}

bool
ReferencePrilPredictor::isTracked(PageId page) const
{
    return writeBuffer[0].count(page) || writeBuffer[1].count(page);
}

std::uint32_t
ReferencePrilPredictor::stateFingerprint() const
{
    std::uint32_t c = 0;
    auto mix = [&c](std::uint64_t v) {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        c = ckpt::crc32(b, sizeof(b), c);
    };
    mix(current);
    mix(drops);
    mix(peakOccupancy);
    for (unsigned side = 0; side < 2; ++side) {
        for (std::size_t bit : writeMap[side].setBits())
            mix(bit);
        mix(0xA5A5A5A5ull); // side separator
        const std::vector<PageId> sorted =
            ordered::sortedValues(writeBuffer[side]);
        for (PageId page : sorted)
            mix(page.value());
        mix(0x5A5A5A5Aull);
    }
    return c;
}

} // namespace memcon::core
