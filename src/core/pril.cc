#include "core/pril.hh"

#include <algorithm>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/ordered.hh"

namespace memcon::core
{

PrilPredictor::PrilPredictor(std::uint64_t num_pages,
                             std::size_t buffer_capacity)
    : pages(num_pages), capacity(buffer_capacity)
{
    fatal_if(num_pages == 0, "tracker needs at least one page");
    fatal_if(buffer_capacity == 0, "write buffer cannot be empty");
    writeMap[0].resizeAndClear(num_pages);
    writeMap[1].resizeAndClear(num_pages);
}

void
PrilPredictor::onWrite(PageId page)
{
    panic_if(page.value() >= pages, "page %llu out of range",
             static_cast<unsigned long long>(page.value()));

    unsigned cur = current;
    unsigned prev = 1 - current;

    // A write in this quantum disqualifies any candidacy from the
    // previous quantum (step 3 in Figure 13).
    writeBuffer[prev].erase(page);

    bool already_written = writeMap[cur].testAndSet(page.value());
    if (!already_written) {
        // First write this quantum (step 1): track it, unless full.
        if (writeBuffer[cur].size() >= capacity) {
            ++drops;
            return;
        }
        writeBuffer[cur].insert(page);
        peakOccupancy = std::max(peakOccupancy, writeBuffer[cur].size());
    } else {
        // Second or later write (step 2): interval below a quantum.
        writeBuffer[cur].erase(page);
    }
}

std::vector<PageId>
PrilPredictor::endQuantum()
{
    unsigned prev = 1 - current;

    // Pages surviving in the previous buffer had exactly one write
    // in the quantum before last and none since (step 4). The
    // candidate list feeds test scheduling and stats, so it must not
    // inherit hash-set iteration order.
    std::vector<PageId> candidates =
        ordered::sortedValues(writeBuffer[prev]);

    // Step 5: clear the previous structures and swap roles.
    writeBuffer[prev].clear();
    writeMap[prev].clearAll();
    current = prev;
    return candidates;
}

std::size_t
PrilPredictor::storageBytes() const
{
    // Two bit-vector write-maps plus two write-buffers of page
    // addresses (modelled at 34 bits, rounded to 5 bytes, per entry
    // as in §6.4's 17 KB for 4000 entries).
    return writeMap[0].storageBytes() + writeMap[1].storageBytes() +
           2 * capacity * 5;
}

bool
PrilPredictor::isTracked(PageId page) const
{
    return writeBuffer[0].count(page) || writeBuffer[1].count(page);
}

std::uint32_t
PrilPredictor::stateFingerprint() const
{
    // CRC over a canonical little-endian serialization: the swap
    // phase, counters, each map's set bits, and each buffer sorted
    // (hash-set iteration order must not leak into the fingerprint).
    std::uint32_t c = 0;
    auto mix = [&c](std::uint64_t v) {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        c = ckpt::crc32(b, sizeof(b), c);
    };
    mix(current);
    mix(drops);
    mix(peakOccupancy);
    for (unsigned side = 0; side < 2; ++side) {
        for (std::size_t bit : writeMap[side].setBits())
            mix(bit);
        mix(0xA5A5A5A5ull); // side separator
        const std::vector<PageId> pages =
            ordered::sortedValues(writeBuffer[side]);
        for (PageId page : pages)
            mix(page.value());
        mix(0x5A5A5A5Aull);
    }
    return c;
}

} // namespace memcon::core
