#include "core/engine.hh"

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>

#include "common/bitvector.hh"
#include "common/deadline_wheel.hh"
#include "common/kway_merge.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "common/thread_pool.hh"
#include "core/pril.hh"

namespace memcon::core
{

namespace
{

/**
 * Concurrent-test budget per quantum, rounded to nearest. The old
 * truncating cast silently yielded a zero budget for sub-64 ms quanta
 * with small slot counts - every test skipped, no diagnostic; the
 * constructor now rejects configurations that round to zero. The
 * budget is a per-bank resource: every shard gets the full amount.
 */
std::uint64_t
testsPerQuantum(const MemconConfig &cfg)
{
    return static_cast<std::uint64_t>(std::llround(
        cfg.testSlotsPer64ms * (cfg.quantumMs.value() / 64.0)));
}

/**
 * The PRIL write buffer can never hold more entries than the shard
 * has pages (writeMap gates insertion to one entry per page), so
 * sizing it past the population is pure dead storage - a 1-page bank
 * beside a 1M-page bank must not carry a 4000-entry buffer each.
 */
std::size_t
clampedBufferCapacity(const MemconConfig &cfg, std::size_t population)
{
    return std::min(cfg.writeBufferCapacity, population);
}

/**
 * Everything one shard's run produces, before reduction. Integer
 * counters sum in shard-index order; the per-page floats (indexed by
 * local page, which is ascending-global within the shard) reduce in
 * global page order in finalize() - FP addition is not associative,
 * and fixing one summation order for every sharding is what makes
 * flat and sharded runs bit-identical (DESIGN.md §17).
 */
struct ShardOutcome
{
    std::uint64_t writes = 0;
    std::uint64_t testsRun = 0;
    std::uint64_t testsPassed = 0;
    std::uint64_t testsFailed = 0;
    std::uint64_t testsSkippedBudget = 0;
    std::uint64_t testsCorrect = 0;
    std::uint64_t testsMispredicted = 0;
    std::uint64_t bufferDrops = 0;
    std::uint64_t silentWritesSkipped = 0;
    std::uint64_t scrubTests = 0;
    std::uint64_t scrubDemotions = 0;
    std::uint64_t heapPushes = 0;
    std::uint64_t wheelPops = 0;
    std::uint64_t testsDeferredBudget = 0;
    std::uint64_t peakLiveStreams = 0;
    std::uint64_t acts = 0; // memcon:shard_local - row activations
    std::size_t trackerStorageBytes = 0;

    /** Closing per-page state, local (ascending-global) order.
     *  Produced shard-privately, consumed by finalize(). */
    std::vector<double> hiMs;               // memcon:shard_local
    std::vector<double> loMs;               // memcon:shard_local
    std::vector<std::uint64_t> writeCount;  // memcon:shard_local
    std::vector<std::uint8_t> atLo;         // memcon:shard_local
};

/**
 * Reduce shard outcomes into the public result. Counters sum in
 * shard-index order; per-page floats reduce in global page order via
 * one cursor per shard (local indices are ascending-global, so a
 * global walk visits each shard's pages in local order). Derived
 * times come from the reduced totals, never from per-shard partials.
 */
// memcon:shard_scope - runs after every shard worker has returned;
// the reduction is the audited hand-off point out of shard state
MemconResult
finalize(const MemconConfig &cfg, std::vector<ShardOutcome> outs,
         std::uint64_t num_pages, double duration_ms)
{
    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);

    MemconResult res;
    res.durationMs = duration_ms;
    res.pages = num_pages;
    res.shards.reserve(outs.size());
    for (const ShardOutcome &o : outs) {
        res.writes += o.writes;
        res.testsRun += o.testsRun;
        res.testsPassed += o.testsPassed;
        res.testsFailed += o.testsFailed;
        res.testsSkippedBudget += o.testsSkippedBudget;
        res.testsCorrect += o.testsCorrect;
        res.testsMispredicted += o.testsMispredicted;
        res.bufferDrops += o.bufferDrops;
        res.silentWritesSkipped += o.silentWritesSkipped;
        res.scrubTests += o.scrubTests;
        res.scrubDemotions += o.scrubDemotions;
        res.heapPushes += o.heapPushes;
        res.wheelPops += o.wheelPops;
        res.testsDeferredBudget += o.testsDeferredBudget;
        res.peakLiveStreams =
            std::max(res.peakLiveStreams, o.peakLiveStreams);
        res.trackerStorageBytes += o.trackerStorageBytes;
        res.acts += o.acts;
        res.shards.push_back({o.hiMs.size(), o.writes, o.testsRun,
                              o.bufferDrops, o.trackerStorageBytes,
                              o.acts});
    }

    const dram::AddressMap &map = cfg.addressMap;
    std::vector<std::size_t> cursor(outs.size(), 0);
    if (cfg.capturePageEndState)
        res.pageEnd.reserve(num_pages);
    for (std::uint64_t p = 0; p < num_pages; ++p) {
        const std::uint64_t s = outs.size() == 1 ? 0 : map.shardOf(p);
        const std::size_t i = cursor[s]++;
        const double hi = outs[s].hiMs[i];
        const double lo = outs[s].loMs[i];
        res.hiTimeMs += hi;
        res.loTimeMs += lo;
        res.refreshOpsMemcon += hi / cfg.hiRefMs + lo / cfg.loRefMs;
        if (cfg.capturePageEndState)
            res.pageEnd.push_back(
                {outs[s].writeCount[i], outs[s].atLo[i] != 0, hi, lo});
    }

    // Counts are exact integers however the run was sharded, so one
    // multiplication gives every sharding the same testing time.
    res.testTimeNs =
        static_cast<double>(res.testsRun + res.scrubTests) *
        cost.testCostNs(cfg.mode);
    res.refreshOpsBaseline =
        static_cast<double>(num_pages) * duration_ms / cfg.hiRefMs;
    res.refreshTimeBaselineNs =
        res.refreshOpsBaseline * cost.refreshOpNs();
    res.refreshTimeMemconNs = res.refreshOpsMemcon * cost.refreshOpNs();
    return res;
}

// --------------------------------------------------------------------
// Reference event path (the seed implementation): materialize every
// write event, stable_sort, and scan all pages per quantum for the
// re-scrub. Kept behind MemconConfig::referenceEventPath so the
// equivalence suite can prove the streaming path reproduces it
// bit-for-bit, and so micro_engine_ops can price the difference.
// Flat-only: it models the single-bank engine, so it requires the
// identity address map.
// --------------------------------------------------------------------

struct Event
{
    double time;
    std::uint32_t page;
};

/**
 * Refresh state of one modelled row/page (reference path only).
 * Fields mirror PageSoA below and share its shard-confinement
 * contract: the name-based concurrency pass audits the union of
 * both structs' accessors, so every field is tagged here too.
 */
struct PageState
{
    double stateSince = 0.0;       // memcon:shard_local
    bool atLoRef = false;          // memcon:shard_local
    std::uint64_t writeCount = 0;  // memcon:shard_local
    double lastTestAt = -1.0;      // memcon:shard_local idle pending
    double lastVerified = -1.0;    // memcon:shard_local last pass
};

// memcon:shard_scope - the one-shard reference engine; owns its
// whole page table for the duration of the run
MemconResult
runReference(const MemconConfig &cfg,
             const std::vector<std::vector<TimeMs>> &page_writes,
             double duration_ms, const MemconEngine::FailureOracle &oracle,
             const MemconEngine::TransitionObserver &observer,
             const MemconEngine::TimedFailureOracle &timed_oracle)
{
    ShardOutcome out;
    out.hiMs.assign(page_writes.size(), 0.0);
    out.loMs.assign(page_writes.size(), 0.0);

    // Merge all write events into one ordered stream.
    std::vector<Event> events;
    for (std::uint32_t p = 0; p < page_writes.size(); ++p) {
        for (TimeMs t : page_writes[p]) {
            panic_if(t < TimeMs{0.0}, "negative write time");
            if (t.value() < duration_ms)
                events.push_back({t.value(), p});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.time < b.time;
                     });
    out.writes = events.size();
    // Every write opens its row once, silent or not.
    out.acts = events.size();

    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);
    const double min_write_interval =
        cost.minWriteIntervalMs(cfg.mode).value();

    const std::uint64_t tests_per_quantum = testsPerQuantum(cfg);

    // The reference path prices against the seed hash-set predictor;
    // the streaming path runs the flat-set one. The property suite
    // pins the two predictors' candidate streams equal, and
    // test_engine_equiv pins the two engine paths bit-identical, so
    // either class here yields the same results - keeping the seed
    // container on the priced baseline is what makes the
    // micro_engine_ops speedups measure the optimization.
    ReferencePrilPredictor pril(page_writes.size(),
                                clampedBufferCapacity(cfg, page_writes.size()));
    std::vector<PageState> state(page_writes.size());

    auto accrue = [&](std::uint64_t p, double until) {
        PageState &ps = state[p];
        double span = until - ps.stateSince;
        panic_if(span < -1e-9, "time went backwards");
        if (span <= 0.0)
            return;
        if (ps.atLoRef)
            out.loMs[p] += span;
        else
            out.hiMs[p] += span;
        ps.stateSince = until;
    };

    auto classify = [&](PageState &ps, double now) {
        if (ps.lastTestAt < 0.0)
            return;
        if (now - ps.lastTestAt >= min_write_interval)
            ++out.testsCorrect;
        else
            ++out.testsMispredicted;
        ps.lastTestAt = -1.0;
    };

    double next_quantum_end = cfg.quantumMs.value();
    std::size_t event_idx = 0;

    // Read-only identification (§6.1): pages that never saw a write
    // by the end of the second quantum are background-tested with
    // leftover budget and, if clean, kept at LO-REF.
    std::vector<std::uint64_t> ro_queue;
    std::size_t ro_next = 0;
    unsigned quanta_seen = 0;

    auto test_fails = [&](std::uint64_t page, std::uint64_t wc,
                          double when) {
        if (timed_oracle)
            return timed_oracle(page, wc, when);
        return oracle ? oracle(page, wc) : false;
    };

    auto run_test = [&](std::uint64_t page, double tq) {
        PageState &ps = state[page];
        panic_if(ps.atLoRef, "tested page already at LO-REF");
        ++out.testsRun;
        out.acts += 2; // read pass + restoring verify pass
        ps.lastTestAt = tq;

        bool fails = test_fails(page, ps.writeCount, tq);
        if (fails) {
            ++out.testsFailed;
            // Data-dependent failure with this content: the row must
            // keep the aggressive rate.
            return;
        }
        ++out.testsPassed;
        accrue(page, tq);
        ps.atLoRef = true;
        ps.lastVerified = tq;
        if (observer)
            observer(page, tq, true, ps.writeCount);
    };

    auto process_quantum_end = [&](double tq) {
        std::vector<PageId> candidates = pril.endQuantum();
        std::uint64_t budget = tests_per_quantum;
        for (PageId page : candidates) {
            if (budget == 0) {
                ++out.testsSkippedBudget;
                continue;
            }
            --budget;
            run_test(page.value(), tq);
        }

        ++quanta_seen;
        if (quanta_seen == 2) {
            for (std::uint64_t p = 0; p < state.size(); ++p)
                if (state[p].writeCount == 0)
                    ro_queue.push_back(p);
        }
        while (budget > 0 && ro_next < ro_queue.size()) {
            std::uint64_t page = ro_queue[ro_next++];
            // A page written since enqueueing is no longer read-only;
            // PRIL takes over for it.
            if (state[page].writeCount > 0 || state[page].atLoRef)
                continue;
            --budget;
            run_test(page, tq);
        }
        if (budget == 0)
            for (std::uint64_t i = ro_next; i < ro_queue.size(); ++i)
                if (state[ro_queue[i]].writeCount == 0 &&
                    !state[ro_queue[i]].atLoRef)
                    ++out.testsDeferredBudget;

        // Idle-row re-scrub: revalidate LO-REF rows whose verdict has
        // aged past the scrub period (VRT protection). Demotions here
        // are the mechanism catching cells that drifted leaky.
        if (cfg.scrubPeriodMs > 0.0) {
            for (std::uint64_t p = 0; p < state.size(); ++p) {
                PageState &ps = state[p];
                if (!ps.atLoRef ||
                    tq - ps.lastVerified < cfg.scrubPeriodMs)
                    continue;
                if (budget == 0) {
                    // Deferred, not lost: the row stays due and the
                    // next quantum retries it.
                    ++out.testsDeferredBudget;
                    continue;
                }
                --budget;
                ++out.scrubTests;
                out.acts += 2;
                if (test_fails(p, ps.writeCount, tq)) {
                    ++out.scrubDemotions;
                    accrue(p, tq);
                    ps.atLoRef = false;
                    if (observer)
                        observer(p, tq, false, ps.writeCount);
                } else {
                    ps.lastVerified = tq;
                }
            }
        }
    };

    while (event_idx < events.size() || next_quantum_end < duration_ms) {
        bool take_quantum =
            next_quantum_end < duration_ms &&
            (event_idx >= events.size() ||
             next_quantum_end <= events[event_idx].time);
        if (take_quantum) {
            process_quantum_end(next_quantum_end);
            next_quantum_end += cfg.quantumMs.value();
            continue;
        }
        if (event_idx >= events.size())
            break;

        const Event &ev = events[event_idx++];
        PageState &ps = state[ev.page];

        // Silent-write detection (footnote 9): a write that stores
        // the existing value leaves the content - and the validity
        // of any prior test - intact.
        if (cfg.detectSilentWrites && cfg.silentWriteFraction > 0.0) {
            double u = static_cast<double>(
                           hashMix64(ev.page * 0x9e3779b97f4a7c15ULL +
                                     ps.writeCount) >>
                           11) *
                       0x1.0p-53;
            if (u < cfg.silentWriteFraction) {
                ++out.silentWritesSkipped;
                continue;
            }
        }

        classify(ps, ev.time);
        accrue(ev.page, ev.time);
        if (ps.atLoRef) {
            // Content changes: protect until retested.
            ps.atLoRef = false;
            if (observer)
                observer(ev.page, ev.time, false, ps.writeCount + 1);
        }
        ++ps.writeCount;
        pril.onWrite(PageId{ev.page});
    }

    // Close out every page at the horizon. Tests with no later write
    // inside the trace are censored, not mispredicted: the predicted
    // idleness did hold for as long as we could observe.
    out.writeCount.resize(state.size());
    out.atLo.resize(state.size());
    for (std::uint64_t p = 0; p < state.size(); ++p) {
        PageState &ps = state[p];
        if (ps.lastTestAt >= 0.0) {
            ++out.testsCorrect;
            ps.lastTestAt = -1.0;
        }
        accrue(p, duration_ms);
        out.writeCount[p] = ps.writeCount;
        out.atLo[p] = ps.atLoRef ? 1 : 0;
    }

    out.bufferDrops = pril.bufferDrops();
    out.trackerStorageBytes = pril.storageBytes();

    std::vector<ShardOutcome> outs;
    outs.push_back(std::move(out));
    return finalize(cfg, std::move(outs), page_writes.size(),
                    duration_ms);
}

// --------------------------------------------------------------------
// Streaming event path (the default): a lazy k-way merge over the
// per-page sorted write streams feeds the quantum interleave loop
// directly, page state lives in structure-of-arrays form, and the
// re-scrub / read-only bookkeeping runs off deadline wheels instead
// of full page scans. Metric-bit-identical to the reference path
// (DESIGN.md §11 documents the ordering contracts that make it so).
//
// The unit of execution is one shard (bank): the function below runs
// one shard's population - its own PRIL, SoA state, and wheels - over
// *local* page indices, with `global_ids` translating back to global
// page numbers wherever identity matters (oracles, the silent-write
// hash, observers). The flat engine is the single-shard special case
// (global_ids == nullptr, local == global).
// --------------------------------------------------------------------

/**
 * Structure-of-arrays page state: the event loop touches one array
 * (cache line) per field instead of striding 40-byte structs, and
 * the LO-REF flags pack into a bitvector.
 */
struct PageSoA
{
    BitVector atLoRef;                      // memcon:shard_local
    // Mirrors `lastTestAt[p] >= 0`: the write-path classify() check
    // runs once per event on random pages, and one bit per page stays
    // cache-resident where the 8-byte lastTestAt array does not - the
    // double is only touched once the bit says a test is pending.
    BitVector pendingTest;                  // memcon:shard_local
    std::vector<double> stateSince;         // memcon:shard_local
    std::vector<std::uint64_t> writeCount;  // memcon:shard_local
    std::vector<double> lastTestAt;         // memcon:shard_local
    std::vector<double> lastVerified;       // memcon:shard_local

    // memcon:shard_scope - built by the owning shard worker
    explicit PageSoA(std::size_t num_pages)
        : atLoRef(num_pages), pendingTest(num_pages),
          stateSince(num_pages, 0.0), writeCount(num_pages, 0),
          lastTestAt(num_pages, -1.0), lastVerified(num_pages, -1.0)
    {
    }

    // memcon:shard_scope - size is fixed at construction
    std::size_t size() const { return stateSince.size(); }
};

/** A LO-REF row awaiting its next re-scrub. */
struct ScrubEntry
{
    std::uint32_t page;
    /**
     * lastVerified at enqueue time: doubles as a version stamp. A
     * mismatch against the live lastVerified means the row was
     * demoted and re-promoted since - the entry is stale and dropped.
     */
    double verifiedAt;
};

/**
 * Adapter presenting a sorted std::vector<TimeMs> as a stream. Holds
 * the raw extent rather than the vector: next() runs once per event
 * on the merge's pull path, and the flattened form costs one load
 * instead of three dependent ones.
 */
struct VectorStream
{
    const TimeMs *times;
    std::size_t count;
    std::size_t nextIdx = 0;

    explicit VectorStream(const std::vector<TimeMs> &w)
        : times(w.data()), count(w.size())
    {
    }

    bool next(double &out_ms)
    {
        if (nextIdx >= count)
            return false;
        out_ms = times[nextIdx++].value();
        return true;
    }
};

// memcon:shard_scope - one invocation per shard worker; touches only
// its own PageSoA and its own ShardOutcome
template <typename Stream>
ShardOutcome
runStreamingShard(const MemconConfig &cfg, std::vector<Stream> streams,
                  double duration_ms,
                  const MemconEngine::FailureOracle &oracle,
                  const MemconEngine::TransitionObserver &observer,
                  const MemconEngine::TimedFailureOracle &timed_oracle,
                  const std::uint32_t *global_ids)
{
    ShardOutcome out;
    const std::size_t num_local = streams.size();
    out.hiMs.assign(num_local, 0.0);
    out.loMs.assign(num_local, 0.0);

    auto gid = [global_ids](std::uint32_t local) -> std::uint64_t {
        return global_ids ? global_ids[local] : local;
    };

    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);
    const double min_write_interval =
        cost.minWriteIntervalMs(cfg.mode).value();

    const std::uint64_t tests_per_quantum = testsPerQuantum(cfg);

    PrilPredictor pril(num_local, clampedBufferCapacity(cfg, num_local));
    PageSoA st(num_local);
    // The merge windows on the quantum: the consumer drains events
    // quantum by quantum anyway, so staging memory is one quantum's
    // events.
    KWayMerge<Stream> merge(std::move(streams), duration_ms,
                            cfg.quantumMs.value());

    // A scrub entry verified at quantum index q matures no earlier
    // than q + floor(period/quantum) quanta later. The floor (vs the
    // exact ceil) errs early by at most one quantum; a popped entry
    // re-checks the authoritative float predicate below and lazily
    // re-buckets itself, so maturing early costs one extra pop while
    // maturing late would miss a scrub the reference path performs.
    const std::int64_t scrub_epochs =
        cfg.scrubPeriodMs > 0.0
            ? std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(std::floor(
                         cfg.scrubPeriodMs / cfg.quantumMs.value())))
            : 0;

    DeadlineWheel<ScrubEntry> scrub_wheel;
    DeadlineWheel<std::uint32_t> ro_wheel;
    std::vector<ScrubEntry> scrub_due;
    // Matured read-only candidates drain into a persistent queue
    // consumed by cursor across quanta (the seed's ro_queue/ro_next):
    // re-pushing a budget-starved tail into the wheel every quantum
    // would churn O(backlog) per boundary for nothing.
    std::vector<std::uint32_t> ro_pending;
    std::size_t ro_next = 0;
    unsigned quanta_seen = 0;
    // Per-quantum candidate scratch, reused across every quantum of
    // the shard instead of reallocated at each swap.
    std::vector<PageId> candidates;

    auto accrue = [&](std::size_t p, double until) {
        double span = until - st.stateSince[p];
        panic_if(span < -1e-9, "time went backwards");
        if (span <= 0.0)
            return;
        if (st.atLoRef.test(p))
            out.loMs[p] += span;
        else
            out.hiMs[p] += span;
        st.stateSince[p] = until;
    };

    auto classify = [&](std::size_t p, double now) {
        if (!st.pendingTest.test(p))
            return;
        st.pendingTest.clear(p);
        if (now - st.lastTestAt[p] >= min_write_interval)
            ++out.testsCorrect;
        else
            ++out.testsMispredicted;
        st.lastTestAt[p] = -1.0;
    };

    auto test_fails = [&](std::uint32_t local, std::uint64_t wc,
                          double when) {
        if (timed_oracle)
            return timed_oracle(gid(local), wc, when);
        return oracle ? oracle(gid(local), wc) : false;
    };

    auto run_test = [&](std::uint32_t page, double tq,
                        std::int64_t epoch) {
        panic_if(st.atLoRef.test(page), "tested page already at LO-REF");
        ++out.testsRun;
        out.acts += 2; // read pass + restoring verify pass
        st.lastTestAt[page] = tq;
        st.pendingTest.set(page);

        bool fails = test_fails(page, st.writeCount[page], tq);
        if (fails) {
            ++out.testsFailed;
            // Data-dependent failure with this content: the row must
            // keep the aggressive rate.
            return;
        }
        ++out.testsPassed;
        accrue(page, tq);
        st.atLoRef.set(page);
        st.lastVerified[page] = tq;
        if (scrub_epochs > 0)
            scrub_wheel.push(epoch + scrub_epochs, {page, tq});
        if (observer)
            observer(gid(page), tq, true, st.writeCount[page]);
    };

    auto process_quantum_end = [&](double tq, std::int64_t epoch) {
        pril.endQuantumInto(candidates);
        std::uint64_t budget = tests_per_quantum;
        for (PageId page : candidates) {
            if (budget == 0) {
                ++out.testsSkippedBudget;
                continue;
            }
            --budget;
            run_test(static_cast<std::uint32_t>(page.value()), tq, epoch);
        }

        ++quanta_seen;
        if (quanta_seen == 2) {
            // One-time sweep for §6.1 read-only identification; the
            // wheel then carries the pending queue across quanta.
            for (std::uint32_t p = 0; p < st.size(); ++p)
                if (st.writeCount[p] == 0)
                    ro_wheel.push(epoch, p);
        }
        if (!ro_wheel.empty())
            out.wheelPops += ro_wheel.popDue(epoch, ro_pending);
        while (budget > 0 && ro_next < ro_pending.size()) {
            std::uint32_t page = ro_pending[ro_next++];
            // A page written since enqueueing is no longer read-only;
            // PRIL takes over for it.
            if (st.writeCount[page] > 0 || st.atLoRef.test(page))
                continue;
            --budget;
            run_test(page, tq, epoch);
        }
        if (budget == 0)
            for (std::size_t j = ro_next; j < ro_pending.size(); ++j)
                if (st.writeCount[ro_pending[j]] == 0 &&
                    !st.atLoRef.test(ro_pending[j]))
                    ++out.testsDeferredBudget;

        // Idle-row re-scrub: revalidate LO-REF rows whose verdict has
        // aged past the scrub period (VRT protection). Demotions here
        // are the mechanism catching cells that drifted leaky. Runs
        // even with zero budget left so a starved quantum is counted
        // as deferral instead of silently parking the due batch.
        if (scrub_epochs > 0 && !scrub_wheel.empty()) {
            scrub_due.clear();
            out.wheelPops += scrub_wheel.popDue(epoch, scrub_due);
            std::size_t n = 0;
            for (const ScrubEntry &e : scrub_due) {
                if (!st.atLoRef.test(e.page) ||
                    e.verifiedAt != st.lastVerified[e.page])
                    continue; // stale: demoted or superseded since
                if (tq - st.lastVerified[e.page] < cfg.scrubPeriodMs) {
                    // Bucketed early; not actually due yet.
                    scrub_wheel.push(epoch + 1, e);
                    continue;
                }
                scrub_due[n++] = e;
            }
            scrub_due.resize(n);
            // The reference path scans pages ascending; the service
            // (and budget cutoff) order is part of the bit-identity
            // contract, so impose it on the due batch.
            std::sort(scrub_due.begin(), scrub_due.end(),
                      [](const ScrubEntry &a, const ScrubEntry &b) {
                          return a.page < b.page;
                      });
            std::size_t i = 0;
            for (; i < scrub_due.size() && budget > 0; ++i) {
                std::uint32_t p = scrub_due[i].page;
                --budget;
                ++out.scrubTests;
                out.acts += 2;
                if (test_fails(p, st.writeCount[p], tq)) {
                    ++out.scrubDemotions;
                    accrue(p, tq);
                    st.atLoRef.clear(p);
                    if (observer)
                        observer(gid(p), tq, false, st.writeCount[p]);
                } else {
                    st.lastVerified[p] = tq;
                    scrub_wheel.push(epoch + scrub_epochs, {p, tq});
                }
            }
            for (; i < scrub_due.size(); ++i) {
                ++out.testsDeferredBudget;
                scrub_wheel.push(epoch + 1, scrub_due[i]); // starved
            }
        }
    };

    double next_quantum_end = cfg.quantumMs.value();
    std::int64_t epoch = 0;

    while (!merge.empty() || next_quantum_end < duration_ms) {
        bool take_quantum =
            next_quantum_end < duration_ms &&
            (merge.empty() || next_quantum_end <= merge.peek().time);
        if (take_quantum) {
            process_quantum_end(next_quantum_end, epoch);
            next_quantum_end += cfg.quantumMs.value();
            ++epoch;
            continue;
        }
        if (merge.empty())
            break;

        const auto ev = merge.pop();
        ++out.writes;
        ++out.acts; // the row opens even for a silent write
        const std::uint32_t page = ev.source;

        // Silent-write detection (footnote 9): a write that stores
        // the existing value leaves the content - and the validity
        // of any prior test - intact. Hashed on the *global* page id
        // so a page's silent-write sequence is sharding-invariant.
        if (cfg.detectSilentWrites && cfg.silentWriteFraction > 0.0) {
            double u = static_cast<double>(
                           hashMix64(gid(page) * 0x9e3779b97f4a7c15ULL +
                                     st.writeCount[page]) >>
                           11) *
                       0x1.0p-53;
            if (u < cfg.silentWriteFraction) {
                ++out.silentWritesSkipped;
                continue;
            }
        }

        classify(page, ev.time);
        accrue(page, ev.time);
        if (st.atLoRef.test(page)) {
            // Content changes: protect until retested.
            st.atLoRef.clear(page);
            if (observer)
                observer(gid(page), ev.time, false,
                         st.writeCount[page] + 1);
        }
        ++st.writeCount[page];
        pril.onWrite(PageId{page});
    }

    // Close out every page at the horizon. Tests with no later write
    // inside the trace are censored, not mispredicted: the predicted
    // idleness did hold for as long as we could observe.
    out.writeCount.resize(num_local);
    out.atLo.resize(num_local);
    // Pages whose last test never saw a later write: one bulk
    // popcount over the pending-test bits replaces the per-page
    // lastTestAt branch of the seed close-out loop.
    out.testsCorrect += simd::popcountWords(
        st.pendingTest.wordData(), st.pendingTest.wordCount());
    for (std::size_t p = 0; p < st.size(); ++p) {
        accrue(p, duration_ms);
        out.writeCount[p] = st.writeCount[p];
        out.atLo[p] = st.atLoRef.test(p) ? 1 : 0;
    }

    out.bufferDrops = pril.bufferDrops();
    out.trackerStorageBytes = pril.storageBytes();
    out.heapPushes = merge.heapPushes();
    out.peakLiveStreams = merge.peakLiveSources();
    return out;
}

/**
 * Partition the population across the address map's shards and run
 * them - inline when shardThreads <= 1, else on a thread pool. Local
 * page indices are assigned in ascending global order (the partition
 * walk below), which is what lets PRIL's sorted candidate lists and
 * finalize()'s cursor reduction reproduce the flat engine's orders.
 * `make_stream(global_page)` builds one page's write stream; it runs
 * on worker threads, so it must be pure.
 */
template <typename MakeStream>
MemconResult
runShardedStreaming(const MemconConfig &cfg, std::uint64_t num_pages,
                    double duration_ms, MakeStream &&make_stream,
                    const MemconEngine::FailureOracle &oracle,
                    const MemconEngine::TransitionObserver &observer,
                    const MemconEngine::TimedFailureOracle &timed_oracle)
{
    using Stream = decltype(make_stream(std::uint64_t{0}));
    const dram::AddressMap &map = cfg.addressMap;
    const std::uint64_t num_shards = map.numShards();
    std::vector<ShardOutcome> outs;

    if (num_shards == 1) {
        std::vector<Stream> streams;
        streams.reserve(num_pages);
        for (std::uint64_t p = 0; p < num_pages; ++p)
            streams.push_back(make_stream(p));
        outs.push_back(runStreamingShard(cfg, std::move(streams),
                                         duration_ms, oracle, observer,
                                         timed_oracle, nullptr));
        return finalize(cfg, std::move(outs), num_pages, duration_ms);
    }

    // Transition observers see one global time-ordered sequence; the
    // sharded run has no such sequence to offer (each bank replays
    // its own timeline), so the combination is rejected rather than
    // silently reordered.
    fatal_if(static_cast<bool>(observer),
             "transition observers require the identity address map");

    std::vector<std::vector<std::uint32_t>> members(num_shards);
    for (std::uint64_t p = 0; p < num_pages; ++p)
        members[map.shardOf(p)].push_back(static_cast<std::uint32_t>(p));

    outs.resize(num_shards);
    auto run_shard = [&](std::uint64_t s) {
        const std::vector<std::uint32_t> &gids = members[s];
        if (gids.empty())
            return; // a bank with no pages: the default empty outcome
        std::vector<Stream> streams;
        streams.reserve(gids.size());
        for (std::uint32_t g : gids)
            streams.push_back(make_stream(g));
        outs[s] = runStreamingShard(cfg, std::move(streams), duration_ms,
                                    oracle, {}, timed_oracle, gids.data());
    };

    const unsigned threads =
        cfg.shardThreads == 0
            ? std::max(1u, std::thread::hardware_concurrency())
            : cfg.shardThreads;
    if (threads <= 1) {
        for (std::uint64_t s = 0; s < num_shards; ++s)
            run_shard(s);
    } else {
        ThreadPool pool(threads);
        std::vector<std::future<void>> done;
        done.reserve(num_shards);
        for (std::uint64_t s = 0; s < num_shards; ++s)
            done.push_back(
                pool.submit([&run_shard, s] { run_shard(s); }));
        for (std::future<void> &f : done)
            f.get();
    }
    return finalize(cfg, std::move(outs), num_pages, duration_ms);
}

} // namespace

MemconEngine::MemconEngine(const MemconConfig &config) : cfg(config)
{
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= cfg.hiRefMs,
             "need 0 < hiRefMs < loRefMs");
    fatal_if(cfg.quantumMs <= TimeMs{0.0}, "quantum must be positive");
    fatal_if(cfg.testSlotsPer64ms == 0, "test budget must be positive");
    fatal_if(testsPerQuantum(cfg) == 0,
             "test budget rounds to zero tests per quantum "
             "(testSlotsPer64ms=%u, quantumMs=%g)",
             cfg.testSlotsPer64ms, cfg.quantumMs.value());
    fatal_if(cfg.silentWriteFraction < 0.0 ||
                 cfg.silentWriteFraction > 1.0,
             "silent-write fraction must lie in [0, 1]");
    fatal_if(cfg.referenceEventPath && cfg.addressMap.numShards() > 1,
             "the reference event path models the flat engine; "
             "it requires the identity address map (got '%s')",
             cfg.addressMap.name().c_str());
}

MemconResult
MemconEngine::run(const std::vector<std::vector<TimeMs>> &page_writes,
                  double duration_ms, const FailureOracle &oracle,
                  const TransitionObserver &observer,
                  const TimedFailureOracle &timed_oracle) const
{
    fatal_if(duration_ms <= 0.0, "duration must be positive");
    fatal_if(page_writes.size() >= (std::uint64_t{1} << 32),
             "too many pages");

    // The k-way merge's tie-break reproduces the stable event order
    // only over per-page sorted streams; an unsorted vector would
    // silently interleave ties differently, so it is a panic instead.
    for (std::size_t p = 0; p < page_writes.size(); ++p) {
        const std::vector<TimeMs> &w = page_writes[p];
        for (std::size_t i = 0; i < w.size(); ++i) {
            panic_if(w[i] < TimeMs{0.0}, "negative write time");
            panic_if(i > 0 && w[i] < w[i - 1],
                     "unsorted per-page write stream (page %zu)", p);
        }
    }

    if (cfg.referenceEventPath)
        return runReference(cfg, page_writes, duration_ms, oracle,
                            observer, timed_oracle);

    return runShardedStreaming(
        cfg, page_writes.size(), duration_ms,
        [&page_writes](std::uint64_t g) {
            return VectorStream(page_writes[g]);
        },
        oracle, observer, timed_oracle);
}

MemconResult
MemconEngine::runOnApp(const trace::AppPersona &persona,
                       const FailureOracle &oracle,
                       const TransitionObserver &observer) const
{
    const double duration_ms = persona.durationSec * 1000.0;
    if (cfg.referenceEventPath) {
        std::vector<std::vector<TimeMs>> page_writes;
        page_writes.reserve(persona.pages);
        for (std::uint64_t p = 0; p < persona.pages; ++p) {
            trace::PageWriteProcess proc(persona, p);
            page_writes.push_back(proc.writeTimes());
        }
        return run(page_writes, duration_ms, oracle, observer);
    }

    fatal_if(persona.pages >= (std::uint64_t{1} << 32),
             "too many pages");
    // Generate each page's write process lazily inside the merge:
    // peak memory is one generator per page, never the materialized
    // write vectors. Each generator seeds from its global page id,
    // so a page's write timeline is sharding-invariant.
    return runShardedStreaming(
        cfg, persona.pages, duration_ms,
        [&persona](std::uint64_t g) {
            return trace::PageWriteStream(persona, g);
        },
        oracle, observer, TimedFailureOracle{});
}

} // namespace memcon::core
