#include "core/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/pril.hh"

namespace memcon::core
{

namespace
{

struct Event
{
    double time;
    std::uint32_t page;
};

/** Refresh state of one modelled row/page. */
struct PageState
{
    double stateSince = 0.0;
    bool atLoRef = false;
    std::uint64_t writeCount = 0;
    double lastTestAt = -1.0;   //!< pending idle-length classification
    double lastVerified = -1.0; //!< when content was last test-passed
};

} // namespace

MemconEngine::MemconEngine(const MemconConfig &config) : cfg(config)
{
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= cfg.hiRefMs,
             "need 0 < hiRefMs < loRefMs");
    fatal_if(cfg.quantumMs <= TimeMs{0.0}, "quantum must be positive");
    fatal_if(cfg.testSlotsPer64ms == 0, "test budget must be positive");
    fatal_if(cfg.silentWriteFraction < 0.0 ||
                 cfg.silentWriteFraction > 1.0,
             "silent-write fraction must lie in [0, 1]");
}

MemconResult
MemconEngine::run(const std::vector<std::vector<TimeMs>> &page_writes,
                  double duration_ms, const FailureOracle &oracle,
                  const TransitionObserver &observer,
                  const TimedFailureOracle &timed_oracle) const
{
    fatal_if(duration_ms <= 0.0, "duration must be positive");
    fatal_if(page_writes.size() >= (std::uint64_t{1} << 32),
             "too many pages");

    MemconResult res;
    res.durationMs = duration_ms;
    res.pages = page_writes.size();

    // Merge all write events into one ordered stream.
    std::vector<Event> events;
    for (std::uint32_t p = 0; p < page_writes.size(); ++p) {
        for (TimeMs t : page_writes[p]) {
            panic_if(t < TimeMs{0.0}, "negative write time");
            if (t.value() < duration_ms)
                events.push_back({t.value(), p});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.time < b.time;
                     });
    res.writes = events.size();

    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);
    const double min_write_interval =
        cost.minWriteIntervalMs(cfg.mode).value();
    const double test_cost_ns = cost.testCostNs(cfg.mode);
    const double refresh_op_ns = cost.refreshOpNs();

    const std::uint64_t tests_per_quantum = static_cast<std::uint64_t>(
        cfg.testSlotsPer64ms * (cfg.quantumMs.value() / 64.0));

    PrilPredictor pril(page_writes.size(), cfg.writeBufferCapacity);
    std::vector<PageState> state(page_writes.size());

    auto accrue = [&](PageState &ps, double until) {
        double span = until - ps.stateSince;
        panic_if(span < -1e-9, "time went backwards");
        if (span <= 0.0)
            return;
        if (ps.atLoRef) {
            res.loTimeMs += span;
            res.refreshOpsMemcon += span / cfg.loRefMs;
        } else {
            res.hiTimeMs += span;
            res.refreshOpsMemcon += span / cfg.hiRefMs;
        }
        ps.stateSince = until;
    };

    auto classify = [&](PageState &ps, double now) {
        if (ps.lastTestAt < 0.0)
            return;
        if (now - ps.lastTestAt >= min_write_interval)
            ++res.testsCorrect;
        else
            ++res.testsMispredicted;
        ps.lastTestAt = -1.0;
    };

    double next_quantum_end = cfg.quantumMs.value();
    std::size_t event_idx = 0;

    // Read-only identification (§6.1): pages that never saw a write
    // by the end of the second quantum are background-tested with
    // leftover budget and, if clean, kept at LO-REF.
    std::vector<std::uint64_t> ro_queue;
    std::size_t ro_next = 0;
    unsigned quanta_seen = 0;

    auto test_fails = [&](std::uint64_t page, std::uint64_t wc,
                          double when) {
        if (timed_oracle)
            return timed_oracle(page, wc, when);
        return oracle ? oracle(page, wc) : false;
    };

    auto run_test = [&](std::uint64_t page, double tq) {
        PageState &ps = state[page];
        panic_if(ps.atLoRef, "tested page already at LO-REF");
        ++res.testsRun;
        res.testTimeNs += test_cost_ns;
        ps.lastTestAt = tq;

        bool fails = test_fails(page, ps.writeCount, tq);
        if (fails) {
            ++res.testsFailed;
            // Data-dependent failure with this content: the row must
            // keep the aggressive rate.
            return;
        }
        ++res.testsPassed;
        accrue(ps, tq);
        ps.atLoRef = true;
        ps.lastVerified = tq;
        if (observer)
            observer(page, tq, true, ps.writeCount);
    };

    auto process_quantum_end = [&](double tq) {
        std::vector<PageId> candidates = pril.endQuantum();
        std::uint64_t budget = tests_per_quantum;
        for (PageId page : candidates) {
            if (budget == 0) {
                ++res.testsSkippedBudget;
                continue;
            }
            --budget;
            run_test(page.value(), tq);
        }

        ++quanta_seen;
        if (quanta_seen == 2) {
            for (std::uint64_t p = 0; p < state.size(); ++p)
                if (state[p].writeCount == 0)
                    ro_queue.push_back(p);
        }
        while (budget > 0 && ro_next < ro_queue.size()) {
            std::uint64_t page = ro_queue[ro_next++];
            // A page written since enqueueing is no longer read-only;
            // PRIL takes over for it.
            if (state[page].writeCount > 0 || state[page].atLoRef)
                continue;
            --budget;
            run_test(page, tq);
        }

        // Idle-row re-scrub: revalidate LO-REF rows whose verdict has
        // aged past the scrub period (VRT protection). Demotions here
        // are the mechanism catching cells that drifted leaky.
        if (cfg.scrubPeriodMs > 0.0) {
            for (std::uint64_t p = 0;
                 p < state.size() && budget > 0; ++p) {
                PageState &ps = state[p];
                if (!ps.atLoRef ||
                    tq - ps.lastVerified < cfg.scrubPeriodMs)
                    continue;
                --budget;
                ++res.scrubTests;
                res.testTimeNs += test_cost_ns;
                if (test_fails(p, ps.writeCount, tq)) {
                    ++res.scrubDemotions;
                    accrue(ps, tq);
                    ps.atLoRef = false;
                    if (observer)
                        observer(p, tq, false, ps.writeCount);
                } else {
                    ps.lastVerified = tq;
                }
            }
        }
    };

    while (event_idx < events.size() || next_quantum_end < duration_ms) {
        bool take_quantum =
            next_quantum_end < duration_ms &&
            (event_idx >= events.size() ||
             next_quantum_end <= events[event_idx].time);
        if (take_quantum) {
            process_quantum_end(next_quantum_end);
            next_quantum_end += cfg.quantumMs.value();
            continue;
        }
        if (event_idx >= events.size())
            break;

        const Event &ev = events[event_idx++];
        PageState &ps = state[ev.page];

        // Silent-write detection (footnote 9): a write that stores
        // the existing value leaves the content - and the validity
        // of any prior test - intact.
        if (cfg.detectSilentWrites && cfg.silentWriteFraction > 0.0) {
            double u = static_cast<double>(
                           hashMix64(ev.page * 0x9e3779b97f4a7c15ULL +
                                     ps.writeCount) >>
                           11) *
                       0x1.0p-53;
            if (u < cfg.silentWriteFraction) {
                ++res.silentWritesSkipped;
                continue;
            }
        }

        classify(ps, ev.time);
        accrue(ps, ev.time);
        if (ps.atLoRef) {
            // Content changes: protect until retested.
            ps.atLoRef = false;
            if (observer)
                observer(ev.page, ev.time, false, ps.writeCount + 1);
        }
        ++ps.writeCount;
        pril.onWrite(PageId{ev.page});
    }

    // Close out every page at the horizon. Tests with no later write
    // inside the trace are censored, not mispredicted: the predicted
    // idleness did hold for as long as we could observe.
    for (PageState &ps : state) {
        if (ps.lastTestAt >= 0.0) {
            ++res.testsCorrect;
            ps.lastTestAt = -1.0;
        }
        accrue(ps, duration_ms);
    }

    res.refreshOpsBaseline =
        static_cast<double>(res.pages) * duration_ms / cfg.hiRefMs;
    res.refreshTimeBaselineNs = res.refreshOpsBaseline * refresh_op_ns;
    res.refreshTimeMemconNs = res.refreshOpsMemcon * refresh_op_ns;
    res.bufferDrops = pril.bufferDrops();
    res.trackerStorageBytes = pril.storageBytes();
    return res;
}

MemconResult
MemconEngine::runOnApp(const trace::AppPersona &persona,
                       const FailureOracle &oracle,
                       const TransitionObserver &observer) const
{
    std::vector<std::vector<TimeMs>> page_writes;
    page_writes.reserve(persona.pages);
    for (std::uint64_t p = 0; p < persona.pages; ++p) {
        trace::PageWriteProcess proc(persona, p);
        page_writes.push_back(proc.writeTimes());
    }
    return run(page_writes, persona.durationSec * 1000.0, oracle,
               observer);
}

} // namespace memcon::core
