#include "core/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/bitvector.hh"
#include "common/deadline_wheel.hh"
#include "common/kway_merge.hh"
#include "common/logging.hh"
#include "core/pril.hh"

namespace memcon::core
{

namespace
{

/**
 * Concurrent-test budget per quantum, rounded to nearest. The old
 * truncating cast silently yielded a zero budget for sub-64 ms quanta
 * with small slot counts - every test skipped, no diagnostic; the
 * constructor now rejects configurations that round to zero.
 */
std::uint64_t
testsPerQuantum(const MemconConfig &cfg)
{
    return static_cast<std::uint64_t>(std::llround(
        cfg.testSlotsPer64ms * (cfg.quantumMs.value() / 64.0)));
}

// --------------------------------------------------------------------
// Reference event path (the seed implementation): materialize every
// write event, stable_sort, and scan all pages per quantum for the
// re-scrub. Kept behind MemconConfig::referenceEventPath so the
// equivalence suite can prove the streaming path reproduces it
// bit-for-bit, and so micro_engine_ops can price the difference.
// --------------------------------------------------------------------

struct Event
{
    double time;
    std::uint32_t page;
};

/** Refresh state of one modelled row/page (reference path only). */
struct PageState
{
    double stateSince = 0.0;
    bool atLoRef = false;
    std::uint64_t writeCount = 0;
    double lastTestAt = -1.0;   //!< pending idle-length classification
    double lastVerified = -1.0; //!< when content was last test-passed
};

MemconResult
runReference(const MemconConfig &cfg,
             const std::vector<std::vector<TimeMs>> &page_writes,
             double duration_ms, const MemconEngine::FailureOracle &oracle,
             const MemconEngine::TransitionObserver &observer,
             const MemconEngine::TimedFailureOracle &timed_oracle)
{
    MemconResult res;
    res.durationMs = duration_ms;
    res.pages = page_writes.size();

    // Merge all write events into one ordered stream.
    std::vector<Event> events;
    for (std::uint32_t p = 0; p < page_writes.size(); ++p) {
        for (TimeMs t : page_writes[p]) {
            panic_if(t < TimeMs{0.0}, "negative write time");
            if (t.value() < duration_ms)
                events.push_back({t.value(), p});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.time < b.time;
                     });
    res.writes = events.size();

    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);
    const double min_write_interval =
        cost.minWriteIntervalMs(cfg.mode).value();
    const double test_cost_ns = cost.testCostNs(cfg.mode);
    const double refresh_op_ns = cost.refreshOpNs();

    const std::uint64_t tests_per_quantum = testsPerQuantum(cfg);

    PrilPredictor pril(page_writes.size(), cfg.writeBufferCapacity);
    std::vector<PageState> state(page_writes.size());

    auto accrue = [&](PageState &ps, double until) {
        double span = until - ps.stateSince;
        panic_if(span < -1e-9, "time went backwards");
        if (span <= 0.0)
            return;
        if (ps.atLoRef) {
            res.loTimeMs += span;
            res.refreshOpsMemcon += span / cfg.loRefMs;
        } else {
            res.hiTimeMs += span;
            res.refreshOpsMemcon += span / cfg.hiRefMs;
        }
        ps.stateSince = until;
    };

    auto classify = [&](PageState &ps, double now) {
        if (ps.lastTestAt < 0.0)
            return;
        if (now - ps.lastTestAt >= min_write_interval)
            ++res.testsCorrect;
        else
            ++res.testsMispredicted;
        ps.lastTestAt = -1.0;
    };

    double next_quantum_end = cfg.quantumMs.value();
    std::size_t event_idx = 0;

    // Read-only identification (§6.1): pages that never saw a write
    // by the end of the second quantum are background-tested with
    // leftover budget and, if clean, kept at LO-REF.
    std::vector<std::uint64_t> ro_queue;
    std::size_t ro_next = 0;
    unsigned quanta_seen = 0;

    auto test_fails = [&](std::uint64_t page, std::uint64_t wc,
                          double when) {
        if (timed_oracle)
            return timed_oracle(page, wc, when);
        return oracle ? oracle(page, wc) : false;
    };

    auto run_test = [&](std::uint64_t page, double tq) {
        PageState &ps = state[page];
        panic_if(ps.atLoRef, "tested page already at LO-REF");
        ++res.testsRun;
        res.testTimeNs += test_cost_ns;
        ps.lastTestAt = tq;

        bool fails = test_fails(page, ps.writeCount, tq);
        if (fails) {
            ++res.testsFailed;
            // Data-dependent failure with this content: the row must
            // keep the aggressive rate.
            return;
        }
        ++res.testsPassed;
        accrue(ps, tq);
        ps.atLoRef = true;
        ps.lastVerified = tq;
        if (observer)
            observer(page, tq, true, ps.writeCount);
    };

    auto process_quantum_end = [&](double tq) {
        std::vector<PageId> candidates = pril.endQuantum();
        std::uint64_t budget = tests_per_quantum;
        for (PageId page : candidates) {
            if (budget == 0) {
                ++res.testsSkippedBudget;
                continue;
            }
            --budget;
            run_test(page.value(), tq);
        }

        ++quanta_seen;
        if (quanta_seen == 2) {
            for (std::uint64_t p = 0; p < state.size(); ++p)
                if (state[p].writeCount == 0)
                    ro_queue.push_back(p);
        }
        while (budget > 0 && ro_next < ro_queue.size()) {
            std::uint64_t page = ro_queue[ro_next++];
            // A page written since enqueueing is no longer read-only;
            // PRIL takes over for it.
            if (state[page].writeCount > 0 || state[page].atLoRef)
                continue;
            --budget;
            run_test(page, tq);
        }

        // Idle-row re-scrub: revalidate LO-REF rows whose verdict has
        // aged past the scrub period (VRT protection). Demotions here
        // are the mechanism catching cells that drifted leaky.
        if (cfg.scrubPeriodMs > 0.0) {
            for (std::uint64_t p = 0;
                 p < state.size() && budget > 0; ++p) {
                PageState &ps = state[p];
                if (!ps.atLoRef ||
                    tq - ps.lastVerified < cfg.scrubPeriodMs)
                    continue;
                --budget;
                ++res.scrubTests;
                res.testTimeNs += test_cost_ns;
                if (test_fails(p, ps.writeCount, tq)) {
                    ++res.scrubDemotions;
                    accrue(ps, tq);
                    ps.atLoRef = false;
                    if (observer)
                        observer(p, tq, false, ps.writeCount);
                } else {
                    ps.lastVerified = tq;
                }
            }
        }
    };

    while (event_idx < events.size() || next_quantum_end < duration_ms) {
        bool take_quantum =
            next_quantum_end < duration_ms &&
            (event_idx >= events.size() ||
             next_quantum_end <= events[event_idx].time);
        if (take_quantum) {
            process_quantum_end(next_quantum_end);
            next_quantum_end += cfg.quantumMs.value();
            continue;
        }
        if (event_idx >= events.size())
            break;

        const Event &ev = events[event_idx++];
        PageState &ps = state[ev.page];

        // Silent-write detection (footnote 9): a write that stores
        // the existing value leaves the content - and the validity
        // of any prior test - intact.
        if (cfg.detectSilentWrites && cfg.silentWriteFraction > 0.0) {
            double u = static_cast<double>(
                           hashMix64(ev.page * 0x9e3779b97f4a7c15ULL +
                                     ps.writeCount) >>
                           11) *
                       0x1.0p-53;
            if (u < cfg.silentWriteFraction) {
                ++res.silentWritesSkipped;
                continue;
            }
        }

        classify(ps, ev.time);
        accrue(ps, ev.time);
        if (ps.atLoRef) {
            // Content changes: protect until retested.
            ps.atLoRef = false;
            if (observer)
                observer(ev.page, ev.time, false, ps.writeCount + 1);
        }
        ++ps.writeCount;
        pril.onWrite(PageId{ev.page});
    }

    // Close out every page at the horizon. Tests with no later write
    // inside the trace are censored, not mispredicted: the predicted
    // idleness did hold for as long as we could observe.
    for (PageState &ps : state) {
        if (ps.lastTestAt >= 0.0) {
            ++res.testsCorrect;
            ps.lastTestAt = -1.0;
        }
        accrue(ps, duration_ms);
    }

    res.refreshOpsBaseline =
        static_cast<double>(res.pages) * duration_ms / cfg.hiRefMs;
    res.refreshTimeBaselineNs = res.refreshOpsBaseline * refresh_op_ns;
    res.refreshTimeMemconNs = res.refreshOpsMemcon * refresh_op_ns;
    res.bufferDrops = pril.bufferDrops();
    res.trackerStorageBytes = pril.storageBytes();
    return res;
}

// --------------------------------------------------------------------
// Streaming event path (the default): a lazy k-way merge over the
// per-page sorted write streams feeds the quantum interleave loop
// directly, page state lives in structure-of-arrays form, and the
// re-scrub / read-only bookkeeping runs off deadline wheels instead
// of full page scans. Metric-bit-identical to the reference path
// (DESIGN.md §11 documents the ordering contracts that make it so).
// --------------------------------------------------------------------

/**
 * Structure-of-arrays page state: the event loop touches one array
 * (cache line) per field instead of striding 40-byte structs, and
 * the LO-REF flags pack into a bitvector.
 */
struct PageSoA
{
    BitVector atLoRef;
    std::vector<double> stateSince;
    std::vector<std::uint64_t> writeCount;
    std::vector<double> lastTestAt;
    std::vector<double> lastVerified;

    explicit PageSoA(std::size_t num_pages)
        : atLoRef(num_pages), stateSince(num_pages, 0.0),
          writeCount(num_pages, 0), lastTestAt(num_pages, -1.0),
          lastVerified(num_pages, -1.0)
    {
    }

    std::size_t size() const { return stateSince.size(); }
};

/** A LO-REF row awaiting its next re-scrub. */
struct ScrubEntry
{
    std::uint32_t page;
    /**
     * lastVerified at enqueue time: doubles as a version stamp. A
     * mismatch against the live lastVerified means the row was
     * demoted and re-promoted since - the entry is stale and dropped.
     */
    double verifiedAt;
};

/**
 * Adapter presenting a sorted std::vector<TimeMs> as a stream. Holds
 * the raw extent rather than the vector: next() runs once per event
 * on the merge's pull path, and the flattened form costs one load
 * instead of three dependent ones.
 */
struct VectorStream
{
    const TimeMs *times;
    std::size_t count;
    std::size_t nextIdx = 0;

    explicit VectorStream(const std::vector<TimeMs> &w)
        : times(w.data()), count(w.size())
    {
    }

    bool next(double &out_ms)
    {
        if (nextIdx >= count)
            return false;
        out_ms = times[nextIdx++].value();
        return true;
    }
};

template <typename Stream>
MemconResult
runStreaming(const MemconConfig &cfg, std::vector<Stream> streams,
             double duration_ms,
             const MemconEngine::FailureOracle &oracle,
             const MemconEngine::TransitionObserver &observer,
             const MemconEngine::TimedFailureOracle &timed_oracle)
{
    MemconResult res;
    res.durationMs = duration_ms;
    res.pages = streams.size();

    CostModelConfig cm_cfg;
    cm_cfg.timings = cfg.timings;
    cm_cfg.hiRefMs = cfg.hiRefMs;
    cm_cfg.loRefMs = cfg.loRefMs;
    CostModel cost(cm_cfg);
    const double min_write_interval =
        cost.minWriteIntervalMs(cfg.mode).value();
    const double test_cost_ns = cost.testCostNs(cfg.mode);
    const double refresh_op_ns = cost.refreshOpNs();

    const std::uint64_t tests_per_quantum = testsPerQuantum(cfg);

    PrilPredictor pril(res.pages, cfg.writeBufferCapacity);
    PageSoA st(streams.size());
    // The merge windows on the quantum: the consumer drains events
    // quantum by quantum anyway, so staging memory is one quantum's
    // events.
    KWayMerge<Stream> merge(std::move(streams), duration_ms,
                            cfg.quantumMs.value());

    // A scrub entry verified at quantum index q matures no earlier
    // than q + floor(period/quantum) quanta later. The floor (vs the
    // exact ceil) errs early by at most one quantum; a popped entry
    // re-checks the authoritative float predicate below and lazily
    // re-buckets itself, so maturing early costs one extra pop while
    // maturing late would miss a scrub the reference path performs.
    const std::int64_t scrub_epochs =
        cfg.scrubPeriodMs > 0.0
            ? std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(std::floor(
                         cfg.scrubPeriodMs / cfg.quantumMs.value())))
            : 0;

    DeadlineWheel<ScrubEntry> scrub_wheel;
    DeadlineWheel<std::uint32_t> ro_wheel;
    std::vector<ScrubEntry> scrub_due;
    // Matured read-only candidates drain into a persistent queue
    // consumed by cursor across quanta (the seed's ro_queue/ro_next):
    // re-pushing a budget-starved tail into the wheel every quantum
    // would churn O(backlog) per boundary for nothing.
    std::vector<std::uint32_t> ro_pending;
    std::size_t ro_next = 0;
    unsigned quanta_seen = 0;

    auto accrue = [&](std::size_t p, double until) {
        double span = until - st.stateSince[p];
        panic_if(span < -1e-9, "time went backwards");
        if (span <= 0.0)
            return;
        if (st.atLoRef.test(p)) {
            res.loTimeMs += span;
            res.refreshOpsMemcon += span / cfg.loRefMs;
        } else {
            res.hiTimeMs += span;
            res.refreshOpsMemcon += span / cfg.hiRefMs;
        }
        st.stateSince[p] = until;
    };

    auto classify = [&](std::size_t p, double now) {
        if (st.lastTestAt[p] < 0.0)
            return;
        if (now - st.lastTestAt[p] >= min_write_interval)
            ++res.testsCorrect;
        else
            ++res.testsMispredicted;
        st.lastTestAt[p] = -1.0;
    };

    auto test_fails = [&](std::uint64_t page, std::uint64_t wc,
                          double when) {
        if (timed_oracle)
            return timed_oracle(page, wc, when);
        return oracle ? oracle(page, wc) : false;
    };

    auto run_test = [&](std::uint32_t page, double tq,
                        std::int64_t epoch) {
        panic_if(st.atLoRef.test(page), "tested page already at LO-REF");
        ++res.testsRun;
        res.testTimeNs += test_cost_ns;
        st.lastTestAt[page] = tq;

        bool fails = test_fails(page, st.writeCount[page], tq);
        if (fails) {
            ++res.testsFailed;
            // Data-dependent failure with this content: the row must
            // keep the aggressive rate.
            return;
        }
        ++res.testsPassed;
        accrue(page, tq);
        st.atLoRef.set(page);
        st.lastVerified[page] = tq;
        if (scrub_epochs > 0)
            scrub_wheel.push(epoch + scrub_epochs, {page, tq});
        if (observer)
            observer(page, tq, true, st.writeCount[page]);
    };

    auto process_quantum_end = [&](double tq, std::int64_t epoch) {
        std::vector<PageId> candidates = pril.endQuantum();
        std::uint64_t budget = tests_per_quantum;
        for (PageId page : candidates) {
            if (budget == 0) {
                ++res.testsSkippedBudget;
                continue;
            }
            --budget;
            run_test(static_cast<std::uint32_t>(page.value()), tq, epoch);
        }

        ++quanta_seen;
        if (quanta_seen == 2) {
            // One-time sweep for §6.1 read-only identification; the
            // wheel then carries the pending queue across quanta.
            for (std::uint32_t p = 0; p < st.size(); ++p)
                if (st.writeCount[p] == 0)
                    ro_wheel.push(epoch, p);
        }
        if (!ro_wheel.empty())
            res.wheelPops += ro_wheel.popDue(epoch, ro_pending);
        while (budget > 0 && ro_next < ro_pending.size()) {
            std::uint32_t page = ro_pending[ro_next++];
            // A page written since enqueueing is no longer read-only;
            // PRIL takes over for it.
            if (st.writeCount[page] > 0 || st.atLoRef.test(page))
                continue;
            --budget;
            run_test(page, tq, epoch);
        }

        // Idle-row re-scrub: revalidate LO-REF rows whose verdict has
        // aged past the scrub period (VRT protection). Demotions here
        // are the mechanism catching cells that drifted leaky.
        if (scrub_epochs > 0 && budget > 0 && !scrub_wheel.empty()) {
            scrub_due.clear();
            res.wheelPops += scrub_wheel.popDue(epoch, scrub_due);
            std::size_t n = 0;
            for (const ScrubEntry &e : scrub_due) {
                if (!st.atLoRef.test(e.page) ||
                    e.verifiedAt != st.lastVerified[e.page])
                    continue; // stale: demoted or superseded since
                if (tq - st.lastVerified[e.page] < cfg.scrubPeriodMs) {
                    // Bucketed early; not actually due yet.
                    scrub_wheel.push(epoch + 1, e);
                    continue;
                }
                scrub_due[n++] = e;
            }
            scrub_due.resize(n);
            // The reference path scans pages ascending; the service
            // (and budget cutoff) order is part of the bit-identity
            // contract, so impose it on the due batch.
            std::sort(scrub_due.begin(), scrub_due.end(),
                      [](const ScrubEntry &a, const ScrubEntry &b) {
                          return a.page < b.page;
                      });
            std::size_t i = 0;
            for (; i < scrub_due.size() && budget > 0; ++i) {
                std::uint32_t p = scrub_due[i].page;
                --budget;
                ++res.scrubTests;
                res.testTimeNs += test_cost_ns;
                if (test_fails(p, st.writeCount[p], tq)) {
                    ++res.scrubDemotions;
                    accrue(p, tq);
                    st.atLoRef.clear(p);
                    if (observer)
                        observer(p, tq, false, st.writeCount[p]);
                } else {
                    st.lastVerified[p] = tq;
                    scrub_wheel.push(epoch + scrub_epochs, {p, tq});
                }
            }
            for (; i < scrub_due.size(); ++i)
                scrub_wheel.push(epoch + 1, scrub_due[i]); // starved
        }
    };

    double next_quantum_end = cfg.quantumMs.value();
    std::int64_t epoch = 0;

    while (!merge.empty() || next_quantum_end < duration_ms) {
        bool take_quantum =
            next_quantum_end < duration_ms &&
            (merge.empty() || next_quantum_end <= merge.peek().time);
        if (take_quantum) {
            process_quantum_end(next_quantum_end, epoch);
            next_quantum_end += cfg.quantumMs.value();
            ++epoch;
            continue;
        }
        if (merge.empty())
            break;

        const auto ev = merge.pop();
        ++res.writes;
        const std::uint32_t page = ev.source;

        // Silent-write detection (footnote 9): a write that stores
        // the existing value leaves the content - and the validity
        // of any prior test - intact.
        if (cfg.detectSilentWrites && cfg.silentWriteFraction > 0.0) {
            double u = static_cast<double>(
                           hashMix64(page * 0x9e3779b97f4a7c15ULL +
                                     st.writeCount[page]) >>
                           11) *
                       0x1.0p-53;
            if (u < cfg.silentWriteFraction) {
                ++res.silentWritesSkipped;
                continue;
            }
        }

        classify(page, ev.time);
        accrue(page, ev.time);
        if (st.atLoRef.test(page)) {
            // Content changes: protect until retested.
            st.atLoRef.clear(page);
            if (observer)
                observer(page, ev.time, false, st.writeCount[page] + 1);
        }
        ++st.writeCount[page];
        pril.onWrite(PageId{page});
    }

    // Close out every page at the horizon. Tests with no later write
    // inside the trace are censored, not mispredicted: the predicted
    // idleness did hold for as long as we could observe.
    for (std::size_t p = 0; p < st.size(); ++p) {
        if (st.lastTestAt[p] >= 0.0) {
            ++res.testsCorrect;
            st.lastTestAt[p] = -1.0;
        }
        accrue(p, duration_ms);
    }

    res.refreshOpsBaseline =
        static_cast<double>(res.pages) * duration_ms / cfg.hiRefMs;
    res.refreshTimeBaselineNs = res.refreshOpsBaseline * refresh_op_ns;
    res.refreshTimeMemconNs = res.refreshOpsMemcon * refresh_op_ns;
    res.bufferDrops = pril.bufferDrops();
    res.trackerStorageBytes = pril.storageBytes();
    res.heapPushes = merge.heapPushes();
    res.peakLiveStreams = merge.peakLiveSources();
    return res;
}

} // namespace

MemconEngine::MemconEngine(const MemconConfig &config) : cfg(config)
{
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= cfg.hiRefMs,
             "need 0 < hiRefMs < loRefMs");
    fatal_if(cfg.quantumMs <= TimeMs{0.0}, "quantum must be positive");
    fatal_if(cfg.testSlotsPer64ms == 0, "test budget must be positive");
    fatal_if(testsPerQuantum(cfg) == 0,
             "test budget rounds to zero tests per quantum "
             "(testSlotsPer64ms=%u, quantumMs=%g)",
             cfg.testSlotsPer64ms, cfg.quantumMs.value());
    fatal_if(cfg.silentWriteFraction < 0.0 ||
                 cfg.silentWriteFraction > 1.0,
             "silent-write fraction must lie in [0, 1]");
}

MemconResult
MemconEngine::run(const std::vector<std::vector<TimeMs>> &page_writes,
                  double duration_ms, const FailureOracle &oracle,
                  const TransitionObserver &observer,
                  const TimedFailureOracle &timed_oracle) const
{
    fatal_if(duration_ms <= 0.0, "duration must be positive");
    fatal_if(page_writes.size() >= (std::uint64_t{1} << 32),
             "too many pages");

    // The k-way merge's tie-break reproduces the stable event order
    // only over per-page sorted streams; an unsorted vector would
    // silently interleave ties differently, so it is a panic instead.
    for (std::size_t p = 0; p < page_writes.size(); ++p) {
        const std::vector<TimeMs> &w = page_writes[p];
        for (std::size_t i = 0; i < w.size(); ++i) {
            panic_if(w[i] < TimeMs{0.0}, "negative write time");
            panic_if(i > 0 && w[i] < w[i - 1],
                     "unsorted per-page write stream (page %zu)", p);
        }
    }

    if (cfg.referenceEventPath)
        return runReference(cfg, page_writes, duration_ms, oracle,
                            observer, timed_oracle);

    std::vector<VectorStream> streams;
    streams.reserve(page_writes.size());
    for (const std::vector<TimeMs> &w : page_writes)
        streams.emplace_back(w);
    return runStreaming(cfg, std::move(streams), duration_ms, oracle,
                        observer, timed_oracle);
}

MemconResult
MemconEngine::runOnApp(const trace::AppPersona &persona,
                       const FailureOracle &oracle,
                       const TransitionObserver &observer) const
{
    const double duration_ms = persona.durationSec * 1000.0;
    if (cfg.referenceEventPath) {
        std::vector<std::vector<TimeMs>> page_writes;
        page_writes.reserve(persona.pages);
        for (std::uint64_t p = 0; p < persona.pages; ++p) {
            trace::PageWriteProcess proc(persona, p);
            page_writes.push_back(proc.writeTimes());
        }
        return run(page_writes, duration_ms, oracle, observer);
    }

    fatal_if(persona.pages >= (std::uint64_t{1} << 32),
             "too many pages");
    // Generate each page's write process lazily inside the merge:
    // peak memory is one generator per page, never the materialized
    // write vectors.
    std::vector<trace::PageWriteStream> streams;
    streams.reserve(persona.pages);
    for (std::uint64_t p = 0; p < persona.pages; ++p)
        streams.emplace_back(persona, p);
    return runStreaming(cfg, std::move(streams), duration_ms, oracle,
                        observer, {});
}

} // namespace memcon::core
