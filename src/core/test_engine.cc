#include "core/test_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/ordered.hh"
#include "common/simd.hh"

namespace memcon::core
{

TestEngine::TestEngine(const TestEngineConfig &config) : cfg(config)
{
    fatal_if(cfg.slots == 0, "test engine needs at least one slot");
    fatal_if(cfg.wordsPerRow == 0, "rows must hold at least one word");
    slotBusy.assign(cfg.slots, false);

    if (cfg.mode == TestMode::CopyAndCompare) {
        fatal_if(cfg.reserveRowsPerBank == 0 || cfg.banks == 0,
                 "Copy&Compare needs a reserve region");
        std::uint64_t total = cfg.reserveRowsPerBank * cfg.banks;
        freeReserveRows.reserve(total);
        // Reserve rows are identified by negative-space ids counted
        // from the top of the row address space; the concrete
        // placement does not matter to the engine.
        for (std::uint64_t i = 0; i < total; ++i)
            freeReserveRows.push_back(~std::uint64_t{0} - i);
    }
}

std::size_t
TestEngine::freeSlots() const
{
    std::size_t busy = sessions.size();
    return cfg.slots - busy;
}

bool
TestEngine::isUnderTest(RowId row) const
{
    return sessions.count(row) != 0;
}

bool
TestEngine::beginTest(RowId row, const BlockRowReader &reader)
{
    panic_if(isUnderTest(row), "row is already under test");
    if (sessions.size() >= cfg.slots)
        return false;
    if (cfg.mode == TestMode::CopyAndCompare && freeReserveRows.empty())
        return false;

    Session session;
    auto slot_it = std::find(slotBusy.begin(), slotBusy.end(), false);
    panic_if(slot_it == slotBusy.end(), "slot accounting out of sync");
    session.slot = static_cast<std::size_t>(slot_it - slotBusy.begin());
    *slot_it = true;

    if (cfg.mode == TestMode::ReadAndCompare) {
        // Buffer the whole row in the controller.
        session.reserveRow = 0;
        session.bufferedData.resize(cfg.wordsPerRow);
        reader(row, session.bufferedData.data(), cfg.wordsPerRow);
    } else {
        // Copy to the reserve region; retain only the signature.
        session.reserveRow = freeReserveRows.back();
        freeReserveRows.pop_back();
        readbackScratch.resize(cfg.wordsPerRow);
        reader(row, readbackScratch.data(), cfg.wordsPerRow);
        session.signature = dram::Secded64::rowSignature(readbackScratch);
    }

    sessions.emplace(row, std::move(session));
    ++started;
    return true;
}

bool
TestEngine::beginTest(RowId row, const RowReader &reader)
{
    return beginTest(
        row, BlockRowReader([&reader](RowId r, std::uint64_t *dst,
                                      std::size_t n_words) {
            for (std::size_t w = 0; w < n_words; ++w)
                dst[w] = reader(r, w);
        }));
}

std::optional<Redirection>
TestEngine::redirect(RowId row) const
{
    auto it = sessions.find(row);
    if (it == sessions.end())
        return std::nullopt;
    ++redirects;
    Redirection r;
    if (cfg.mode == TestMode::ReadAndCompare) {
        r.inController = true;
    } else {
        r.inController = false;
        r.reserveRow = it->second.reserveRow;
    }
    return r;
}

void
TestEngine::releaseSession(const Session &session)
{
    panic_if(!slotBusy[session.slot], "slot accounting out of sync");
    slotBusy[session.slot] = false;
    if (cfg.mode == TestMode::CopyAndCompare)
        freeReserveRows.push_back(session.reserveRow);
}

bool
TestEngine::onWrite(RowId row)
{
    auto it = sessions.find(row);
    if (it == sessions.end())
        return false;
    releaseSession(it->second);
    sessions.erase(it);
    ++aborted;
    return true;
}

TestOutcome
TestEngine::completeTest(RowId row, const BlockRowReader &reader)
{
    auto it = sessions.find(row);
    panic_if(it == sessions.end(), "completing a test that never began");
    const Session &session = it->second;

    bool clean = true;
    readbackScratch.resize(cfg.wordsPerRow);
    reader(row, readbackScratch.data(), cfg.wordsPerRow);
    if (cfg.mode == TestMode::ReadAndCompare) {
        clean = simd::rowsEqual(readbackScratch.data(),
                                session.bufferedData.data(),
                                cfg.wordsPerRow);
    } else {
        clean = dram::Secded64::compareSignature(readbackScratch,
                                                 session.signature)
                    .empty();
    }

    releaseSession(session);
    sessions.erase(it);
    if (clean)
        ++passed;
    else
        ++failed;
    return clean ? TestOutcome::Pass : TestOutcome::Fail;
}

TestOutcome
TestEngine::completeTest(RowId row, const RowReader &reader)
{
    return completeTest(
        row, BlockRowReader([&reader](RowId r, std::uint64_t *dst,
                                      std::size_t n_words) {
            for (std::size_t w = 0; w < n_words; ++w)
                dst[w] = reader(r, w);
        }));
}

std::vector<RowId>
TestEngine::rowsUnderTest() const
{
    // Session bookkeeping is hash-keyed; the public view is sorted
    // so downstream stats and logs stay deterministic.
    return ordered::sortedKeys(sessions);
}

std::size_t
TestEngine::controllerStorageBytes() const
{
    if (cfg.mode == TestMode::ReadAndCompare) {
        // Full row data per slot.
        return cfg.slots * cfg.wordsPerRow * sizeof(std::uint64_t);
    }
    // One check byte per word per slot.
    return cfg.slots * cfg.wordsPerRow;
}

double
TestEngine::reserveCapacityFraction(std::uint64_t module_rows) const
{
    if (cfg.mode == TestMode::ReadAndCompare)
        return 0.0;
    fatal_if(module_rows == 0, "module must have rows");
    return static_cast<double>(cfg.reserveRowsPerBank) * cfg.banks /
           static_cast<double>(module_rows);
}

} // namespace memcon::core
