#include "core/online_memcon.hh"

#include <algorithm>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::core
{

namespace
{

/**
 * Deterministic row content for the cycle-domain tests: stable
 * across reads, so an undisturbed row always compares clean. A row
 * the oracle condemns is perturbed in its first word at read-back,
 * which makes the comparison (data or ECC signature) fail through
 * the same machinery a real decayed cell would.
 */
void
syntheticFillRow(RowId row, std::uint64_t *dst, std::size_t n_words)
{
    const std::uint64_t base = row.value() * 0x9e3779b97f4a7c15ULL;
    for (std::size_t w = 0; w < n_words; ++w)
        dst[w] = hashMix64(base + w);
}

} // namespace

OnlineMemcon::OnlineMemcon(const dram::Geometry &geometry,
                           sim::MemoryController &controller,
                           const OnlineMemconConfig &config,
                           RowFailureOracle oracle_fn)
    : geom(geometry), mc(controller), cfg(config),
      oracle(std::move(oracle_fn)),
      pril(geometry.totalRows(), config.writeBufferCapacity),
      engine(config.testEngine), loRows(geometry.totalRows()),
      everWritten(geometry.totalRows()),
      resilience(config.resilience, geometry.totalRows(), statGroup),
      guard(config.disturbGuard, &cfg.addressMap, geometry.totalRows(),
            statGroup),
      nextQuantumEnd(config.quantum), nextRetarget(config.retargetPeriod)
{
    fatal_if(cfg.quantum == Tick{}, "quantum must be positive");
    fatal_if(cfg.testIdle == Tick{}, "test idle period must be positive");
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= cfg.hiRefMs,
             "need 0 < hiRefMs < loRefMs");

    const std::uint64_t shards = cfg.addressMap.numShards();
    rowsPerShard.assign(shards, 0);
    loPerShard.assign(shards, 0);
    if (shards == 1) {
        rowsPerShard[0] = geom.totalRows();
    } else {
        for (std::uint64_t r = 0; r < geom.totalRows(); ++r)
            ++rowsPerShard[cfg.addressMap.shardOf(r)];
    }
}

void
OnlineMemcon::installObserver(sim::ControllerConfig &cfg,
                              OnlineMemcon *&slot)
{
    cfg.writeObserver = [&slot](std::uint64_t addr, Tick now) {
        if (slot)
            slot->observeWrite(addr, now);
    };
    cfg.errorObserver = [&slot](std::uint64_t addr,
                                dram::EccStatus status, Tick now) {
        if (slot)
            slot->observeEccEvent(addr, status, now);
    };
    cfg.activateObserver = [&slot](std::uint64_t addr, Tick now) {
        if (slot)
            slot->observeActivate(addr, now);
    };
}

RowId
OnlineMemcon::rowOfAddr(std::uint64_t addr) const
{
    return geom.flatRowIndex(geom.decompose(addr));
}

void
OnlineMemcon::observeWrite(std::uint64_t addr, Tick now)
{
    (void)now;
    RowId row = rowOfAddr(addr);
    ++writeCount;
    everWritten.set(row.value());
    pril.onWrite(PageId{row.value()});

    abortTestOn(row);
    demoteRow(row, "demote.write");
}

void
OnlineMemcon::abortTestOn(RowId row)
{
    if (!engine.onWrite(row))
        return;
    // Abort the in-flight test: drop its traffic state too.
    auto it = std::find_if(activeTests.begin(), activeTests.end(),
                           [row](const ActiveTest &t) {
                               return t.row == row;
                           });
    panic_if(it == activeTests.end(),
             "engine had a session without traffic state");
    activeTests.erase(it);
}

void
OnlineMemcon::demoteRow(RowId row, const char *cause)
{
    if (!loRows.test(row.value()))
        return;
    loRows.clear(row.value());
    --loCount;
    --loPerShard[cfg.addressMap.shardOf(row.value())];
    ++demotionCount;
    statGroup.inc(cause);
}

void
OnlineMemcon::observeEccEvent(std::uint64_t addr,
                              dram::EccStatus status, Tick now)
{
    RowId row = rowOfAddr(addr);
    using EccAction = ResilienceManager::EccAction;
    switch (resilience.onEccEvent(row, status, loRows.test(row.value()),
                                  now)) {
    case EccAction::None:
        break;
    case EccAction::DemoteAndRetest:
    case EccAction::DemoteAndPin:
        // The certification is stale: the in-flight verdict (if any)
        // is worthless and the row must not stay at LO-REF.
        abortTestOn(row);
        demoteRow(row, "demote.corrected");
        break;
    case EccAction::Fallback:
        enterFallback(now);
        break;
    }
}

void
OnlineMemcon::observeActivate(std::uint64_t addr, Tick now)
{
    if (!cfg.disturbGuard.enabled)
        return;
    if (resilience.inFallback())
        return; // blanket HI-REF already bounds every victim's window
    RowId row = rowOfAddr(addr);
    auto crossing = guard.onActivate(row, now);
    if (!crossing)
        return;
    for (RowId victim : crossing->victims)
        victimRefreshQueue.push_back(victim);
    using EccAction = ResilienceManager::EccAction;
    for (RowId victim : crossing->escalations) {
        switch (resilience.onDisturbEscalation(
            victim, loRows.test(victim.value()), now)) {
        case EccAction::DemoteAndRetest:
        case EccAction::DemoteAndPin:
            // Per-victim refreshes are not keeping up: the row must
            // not sit at LO-REF while it is being hammered.
            abortTestOn(victim);
            demoteRow(victim, "demote.disturb");
            break;
        default:
            break;
        }
    }
    if (crossing->bankDegraded)
        degradeBank(crossing->bank, now);
}

void
OnlineMemcon::degradeBank(std::uint64_t bank, Tick now)
{
    (void)now;
    // Sustained hammering defeats per-victim refresh: the whole bank
    // falls back to HI-REF (its LO rows are demoted, promotions into
    // it are blocked) until the guard's hold expires quietly.
    std::vector<RowId> &recover = bankRecovery[bank];
    std::vector<RowId> demoted;
    loRows.visitSetBits([&](std::size_t row) {
        if (cfg.addressMap.shardOf(row) == bank)
            demoted.push_back(RowId{row});
    });
    for (RowId row : demoted) {
        abortTestOn(row);
        demoteRow(row, "demote.bankDegrade");
        recover.push_back(row);
    }
}

void
OnlineMemcon::enterFallback(Tick now)
{
    if (!resilience.armFallback(now))
        return; // already falling back; the hold was extended
    // Blanket HI-REF: every LO verdict is revoked, remembered, and
    // re-earned through a full re-certification once trust returns.
    // demoteRow clears the visited bit, which the visit contract
    // permits (words are snapshotted before their bits dispatch).
    loRows.visitSetBits([this](std::size_t row) {
        recoveryQueue.push_back(RowId{row});
        demoteRow(RowId{row}, "demote.fallback");
    });
    // Drain the test slots: verdicts in flight are no longer safe to
    // act on.
    std::vector<RowId> in_test = engine.rowsUnderTest();
    statGroup.inc("fallback.drained", in_test.size());
    for (RowId row : in_test)
        engine.onWrite(row);
    activeTests.clear();
    scrubQueue.clear();
    mc.setRefreshReduction(0.0);
}

void
OnlineMemcon::startCandidateTests(Tick now)
{
    // Scrub rides the leftover slots, so a reservation keeps a
    // write-heavy stream (candidate queue never empty) from starving
    // it outright.
    std::size_t reserve =
        scrubQueue.empty() ? 0 : cfg.resilience.scrubReservedSlots;
    while (!pendingCandidates.empty() && engine.freeSlots() > reserve) {
        RowId row = pendingCandidates.front();
        pendingCandidates.pop_front();
        // A write since candidacy disqualifies the row: PRIL would
        // have evicted it, but it may already sit in our queue (a
        // stale read-only candidate re-enters through PRIL later).
        // Pinned rows are never worth re-certifying.
        if (engine.isUnderTest(row) || loRows.test(row.value()) ||
            resilience.isPinned(row))
            continue;
        bool ok = engine.beginTest(
            row, [](RowId r, std::uint64_t *dst, std::size_t n) {
                syntheticFillRow(r, dst, n);
            });
        if (!ok)
            break; // reserve region exhausted (Copy&Compare)

        ActiveTest test;
        test.row = row;
        test.readbackAt = now + cfg.testIdle;
        test.requestsLeft = geom.columnsPerRow; // first read pass
        if (cfg.testEngine.mode == TestMode::CopyAndCompare)
            test.requestsLeft += geom.columnsPerRow; // copy writes
        activeTests.push_back(test);
    }
}

void
OnlineMemcon::startScrubTests(Tick now)
{
    // Scrub rides the same slot machinery as ordinary tests but
    // yields to PRIL's candidates (it runs after them and takes the
    // leftover slots). The row keeps its LO-REF state while the
    // re-certification is in flight; only a failure demotes it.
    while (!scrubQueue.empty() && engine.freeSlots() > 0) {
        RowId row = scrubQueue.front();
        scrubQueue.pop_front();
        // Demoted or re-queued since the sweep picked it: skip.
        if (!loRows.test(row.value()) || engine.isUnderTest(row))
            continue;
        bool ok = engine.beginTest(
            row, [](RowId r, std::uint64_t *dst, std::size_t n) {
                syntheticFillRow(r, dst, n);
            });
        if (!ok) {
            scrubQueue.push_front(row);
            break; // reserve region exhausted (Copy&Compare)
        }
        ActiveTest test;
        test.row = row;
        test.readbackAt = now + cfg.testIdle;
        test.requestsLeft = geom.columnsPerRow;
        if (cfg.testEngine.mode == TestMode::CopyAndCompare)
            test.requestsLeft += geom.columnsPerRow;
        test.isScrub = true;
        activeTests.push_back(test);
    }
}

void
OnlineMemcon::pumpTestTraffic(Tick now)
{
    if (activeTests.empty())
        return;
    // A few requests per tick at most: the controller's admission
    // limit keeps headroom for demand traffic, so this bounds CPU
    // work rather than bandwidth.
    unsigned budget = 4;
    for (ActiveTest &test : activeTests) {
        if (budget == 0)
            return;
        bool readback_phase = now >= test.readbackAt;
        if (test.requestsLeft == 0) {
            if (!readback_phase)
                continue; // idling until read-back time
            // Schedule the read-back pass exactly once; `column`
            // keeps counting total requests (it addresses modulo the
            // row width), which is how completion detects that the
            // read-back pass also drained.
            test.requestsLeft = geom.columnsPerRow;
        }

        while (budget > 0 && test.requestsLeft > 0) {
            dram::Coordinates c = geom.rowFromFlatIndex(test.row);
            c.column = test.column % geom.columnsPerRow;
            sim::Request req;
            req.isTest = true;
            req.coreId = -1;
            req.addr = geom.compose(c);
            bool copy_write =
                cfg.testEngine.mode == TestMode::CopyAndCompare &&
                !readback_phase &&
                test.requestsLeft <= geom.columnsPerRow;
            req.type = copy_write ? sim::Request::Type::Write
                                  : sim::Request::Type::Read;
            if (!mc.enqueue(std::move(req), now))
                return; // queue at the test admission limit
            --test.requestsLeft;
            ++test.column;
            --budget;
        }
    }
}

void
OnlineMemcon::pumpVictimRefreshes(Tick now)
{
    // A victim refresh is one out-of-band row activation: modeled as
    // a single test-priority read, so it pays for controller
    // bandwidth exactly like scrub traffic does. Bounded per tick for
    // the same CPU-work reason as pumpTestTraffic.
    unsigned budget = 4;
    while (budget > 0 && !victimRefreshQueue.empty()) {
        RowId victim = victimRefreshQueue.front();
        dram::Coordinates c = geom.rowFromFlatIndex(victim);
        c.column = 0;
        sim::Request req;
        req.isTest = true;
        req.coreId = -1;
        req.addr = geom.compose(c);
        req.type = sim::Request::Type::Read;
        if (!mc.enqueue(std::move(req), now))
            return; // queue at the test admission limit; retry next tick
        victimRefreshQueue.pop_front();
        ++victimRefreshCount;
        statGroup.inc("disturb.victimRefresh");
        if (cfg.victimRefresher)
            cfg.victimRefresher(victim, now);
        --budget;
    }
}

void
OnlineMemcon::completeDueTests(Tick now)
{
    unsigned total_requests =
        (cfg.testEngine.mode == TestMode::CopyAndCompare ? 3u : 2u) *
        geom.columnsPerRow;
    for (auto it = activeTests.begin(); it != activeTests.end();) {
        bool ready = now >= it->readbackAt && it->requestsLeft == 0 &&
                     it->column >= total_requests;
        if (!ready) {
            ++it;
            continue;
        }
        RowId row = it->row;
        bool is_scrub = it->isScrub;
        bool decayed = oracle && oracle(row);
        TestOutcome outcome = engine.completeTest(
            row, [decayed](RowId r, std::uint64_t *dst, std::size_t n) {
                syntheticFillRow(r, dst, n);
                // A condemned row reads back with a flipped cell.
                if (decayed && n > 0)
                    dst[0] ^= 1;
            });
        if (is_scrub) {
            // The row was LO throughout; a pass re-affirms it, a
            // failure means the certification went stale (VRT,
            // transient corruption) and the row drops to HI-REF.
            if (outcome == TestOutcome::Pass) {
                statGroup.inc("scrub.passed");
            } else if (outcome == TestOutcome::Fail) {
                statGroup.inc("scrub.failed");
                demoteRow(row, "demote.scrub");
            }
        } else if (outcome == TestOutcome::Pass && cfg.loRefEnabled &&
                   !resilience.isPinned(row) &&
                   !loRows.test(row.value())) {
            if (cfg.disturbGuard.enabled &&
                guard.bankDegraded(row, now)) {
                // The bank is under sustained hammering: the verdict
                // is sound but LO-REF is not safe there right now.
                // Re-certify once the bank recovers.
                statGroup.inc("disturb.promotionBlocked");
                bankRecovery[cfg.addressMap.shardOf(row.value())]
                    .push_back(row);
            } else {
                loRows.set(row.value());
                ++loCount;
                ++loPerShard[cfg.addressMap.shardOf(row.value())];
            }
        }
        it = activeTests.erase(it);
    }
}

void
OnlineMemcon::setQuantumStretch(unsigned factor)
{
    fatal_if(factor == 0, "quantum stretch factor must be >= 1");
    stretchFactor = factor;
}

std::uint32_t
OnlineMemcon::stateFingerprint() const
{
    std::uint32_t c = 0;
    auto mix = [&c](std::uint64_t v) {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        c = ckpt::crc32(b, sizeof(b), c);
    };
    mix(pril.stateFingerprint());
    mix(loCount);
    mix(quantaSeen);
    mix(writeCount);
    mix(demotionCount);
    mix(nextQuantumEnd.value());
    mix(nextRetarget.value());
    mix(engine.testsStarted());
    mix(engine.testsPassed());
    mix(engine.testsFailed());
    mix(engine.testsAborted());
    mix(shedScans ? 1 : 0);
    mix(stretchFactor);
    mix(roScanDone ? 1 : 0);
    mix(resilience.inFallback() ? 1 : 0);
    mix(resilience.pinnedRows());
    loRows.visitSetBits([&mix](std::size_t bit) { mix(bit); });
    mix(0xA5A5A5A5ull);
    everWritten.visitSetBits([&mix](std::size_t bit) { mix(bit); });
    mix(0x5A5A5A5Aull);
    for (const ActiveTest &t : activeTests) {
        mix(t.row.value());
        mix(t.readbackAt.value());
        mix(t.requestsLeft);
        mix(t.column);
        mix(t.isScrub ? 1 : 0);
    }
    mix(0xC3C3C3C3ull);
    for (RowId row : pendingCandidates)
        mix(row.value());
    mix(0x3C3C3C3Cull);
    for (RowId row : scrubQueue)
        mix(row.value());
    mix(0x55AA55AAull);
    for (RowId row : recoveryQueue)
        mix(row.value());
    if (cfg.disturbGuard.enabled) {
        // Mixed only when the guard is on, so fingerprints of
        // configurations that existed before the disturb subsystem
        // stay byte-identical.
        mix(0xD157A4B5ull);
        mix(victimRefreshCount);
        mix(guard.fingerprint());
        for (RowId row : victimRefreshQueue)
            mix(row.value());
        for (const auto &[bank, rows] : bankRecovery) {
            mix(bank);
            for (RowId row : rows)
                mix(row.value());
        }
    }
    return c;
}

std::string
OnlineMemcon::describeState() const
{
    return strprintf(
        "fp=%08x writes=%llu lo=%llu quanta=%u tests=%llu/%llu/%llu/%llu "
        "demotions=%llu pending=%zu active=%zu",
        stateFingerprint(),
        static_cast<unsigned long long>(writeCount),
        static_cast<unsigned long long>(loCount), quantaSeen,
        static_cast<unsigned long long>(engine.testsStarted()),
        static_cast<unsigned long long>(engine.testsPassed()),
        static_cast<unsigned long long>(engine.testsFailed()),
        static_cast<unsigned long long>(engine.testsAborted()),
        static_cast<unsigned long long>(demotionCount),
        pendingCandidates.size(), activeTests.size());
}

double
OnlineMemcon::loRefFraction() const
{
    return static_cast<double>(loCount) /
           static_cast<double>(geom.totalRows());
}

double
OnlineMemcon::loRefFraction(std::uint64_t shard) const
{
    fatal_if(shard >= rowsPerShard.size(),
             "shard %llu out of range (map '%s' has %zu shards)",
             static_cast<unsigned long long>(shard),
             cfg.addressMap.name().c_str(), rowsPerShard.size());
    if (rowsPerShard[shard] == 0)
        return 0.0;
    return static_cast<double>(loPerShard[shard]) /
           static_cast<double>(rowsPerShard[shard]);
}

double
OnlineMemcon::emergentReduction() const
{
    return loRefFraction() * (1.0 - cfg.hiRefMs / cfg.loRefMs);
}

void
OnlineMemcon::tick(Tick now)
{
    if (resilience.fallbackExpired(now)) {
        resilience.exitFallback();
        // Trust returns gradually: every formerly-LO row re-enters
        // the ordinary test pipeline and re-earns its verdict.
        for (RowId row : recoveryQueue)
            pendingCandidates.push_back(row);
        recoveryQueue.clear();
    }

    if (now >= nextQuantumEnd) {
        for (PageId page : pril.endQuantum())
            pendingCandidates.push_back(RowId{page.value()});
        nextQuantumEnd += cfg.quantum * std::uint64_t{stretchFactor};
        ++quantaSeen;
        if (!roScanDone && quantaSeen >= 2 && !shedScans) {
            // Read-only identification (Section 6.1): rows with no
            // write so far are background-tested; the slot budget
            // paces them behind PRIL's candidates. Fires once, at
            // the second quantum boundary - or, when the overload
            // governor shed scans over that boundary, at the first
            // boundary after the shed lifts.
            for (std::uint64_t r = 0; r < geom.totalRows(); ++r)
                if (!everWritten.test(r))
                    pendingCandidates.push_back(RowId{r});
            roScanDone = true;
        }
    }

    if (!resilience.inFallback()) {
        // Backoff re-tests of corrected-error rows jump the queue:
        // their refresh state is the one most in doubt.
        for (RowId row : resilience.dueRetests(now)) {
            if (!loRows.test(row.value()) && !engine.isUnderTest(row))
                pendingCandidates.push_front(row);
        }
        // Top up the sweep only once the previous batch drained: a
        // starved backlog must not grow without bound. A shed from
        // the overload governor pauses the top-up entirely.
        if (!shedScans && scrubQueue.empty() && resilience.scrubDue(now)) {
            auto under_test = [this](RowId r) {
                return engine.isUnderTest(r);
            };
            for (RowId row :
                 resilience.nextScrubRows(now, loRows, under_test))
                scrubQueue.push_back(row);
        }
        if (cfg.disturbGuard.enabled) {
            // Banks whose degradation hold expired quietly re-arm:
            // their demoted rows re-earn LO through ordinary tests.
            if (guard.anyBankDegraded()) {
                for (std::uint64_t bank : guard.recoveredBanks(now)) {
                    auto it = bankRecovery.find(bank);
                    if (it == bankRecovery.end())
                        continue;
                    for (RowId row : it->second)
                        pendingCandidates.push_back(row);
                    bankRecovery.erase(it);
                }
            }
            if (!victimRefreshQueue.empty())
                pumpVictimRefreshes(now);
        }
        startCandidateTests(now);
        startScrubTests(now);
        pumpTestTraffic(now);
    }
    completeDueTests(now);

    if (now >= nextRetarget) {
        mc.setRefreshReduction(emergentReduction());
        nextRetarget += cfg.retargetPeriod;
    }
}

} // namespace memcon::core
