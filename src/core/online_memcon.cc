#include "core/online_memcon.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::core
{

namespace
{

/**
 * Deterministic row content for the cycle-domain tests: stable
 * across reads, so an undisturbed row always compares clean. A row
 * the oracle condemns is perturbed in its first word at read-back,
 * which makes the comparison (data or ECC signature) fail through
 * the same machinery a real decayed cell would.
 */
std::uint64_t
syntheticWord(std::uint64_t row, std::size_t word)
{
    return hashMix64(row * 0x9e3779b97f4a7c15ULL + word);
}

} // namespace

OnlineMemcon::OnlineMemcon(const dram::Geometry &geometry,
                           sim::MemoryController &controller,
                           const OnlineMemconConfig &config,
                           RowFailureOracle oracle_fn)
    : geom(geometry), mc(controller), cfg(config),
      oracle(std::move(oracle_fn)),
      pril(geometry.totalRows(), config.writeBufferCapacity),
      engine(config.testEngine), loRows(geometry.totalRows()),
      everWritten(geometry.totalRows()),
      nextQuantumEnd(config.quantum), nextRetarget(config.retargetPeriod)
{
    fatal_if(cfg.quantum == 0, "quantum must be positive");
    fatal_if(cfg.testIdle == 0, "test idle period must be positive");
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= cfg.hiRefMs,
             "need 0 < hiRefMs < loRefMs");
}

void
OnlineMemcon::installObserver(sim::ControllerConfig &cfg,
                              OnlineMemcon *&slot)
{
    cfg.writeObserver = [&slot](std::uint64_t addr, Tick now) {
        if (slot)
            slot->observeWrite(addr, now);
    };
}

std::uint64_t
OnlineMemcon::rowOfAddr(std::uint64_t addr) const
{
    return geom.flatRowIndex(geom.decompose(addr));
}

void
OnlineMemcon::observeWrite(std::uint64_t addr, Tick now)
{
    (void)now;
    std::uint64_t row = rowOfAddr(addr);
    ++writeCount;
    everWritten.set(row);
    pril.onWrite(row);

    if (engine.onWrite(row)) {
        // Abort the in-flight test: drop its traffic state too.
        auto it = std::find_if(activeTests.begin(), activeTests.end(),
                               [row](const ActiveTest &t) {
                                   return t.row == row;
                               });
        panic_if(it == activeTests.end(),
                 "engine had a session without traffic state");
        activeTests.erase(it);
    }
    if (loRows.test(row)) {
        loRows.clear(row);
        --loCount;
        ++demotionCount;
    }
}

void
OnlineMemcon::startCandidateTests(Tick now)
{
    while (!pendingCandidates.empty() && engine.freeSlots() > 0) {
        std::uint64_t row = pendingCandidates.front();
        pendingCandidates.pop_front();
        // A write since candidacy disqualifies the row: PRIL would
        // have evicted it, but it may already sit in our queue (a
        // stale read-only candidate re-enters through PRIL later).
        if (engine.isUnderTest(row) || loRows.test(row))
            continue;
        bool ok = engine.beginTest(row, [](std::uint64_t r,
                                           std::size_t w) {
            return syntheticWord(r, w);
        });
        if (!ok)
            break; // reserve region exhausted (Copy&Compare)

        ActiveTest test;
        test.row = row;
        test.readbackAt = now + cfg.testIdle;
        test.requestsLeft = geom.columnsPerRow; // first read pass
        if (cfg.testEngine.mode == TestMode::CopyAndCompare)
            test.requestsLeft += geom.columnsPerRow; // copy writes
        activeTests.push_back(test);
    }
}

void
OnlineMemcon::pumpTestTraffic(Tick now)
{
    if (activeTests.empty())
        return;
    // A few requests per tick at most: the controller's admission
    // limit keeps headroom for demand traffic, so this bounds CPU
    // work rather than bandwidth.
    unsigned budget = 4;
    for (ActiveTest &test : activeTests) {
        if (budget == 0)
            return;
        bool readback_phase = now >= test.readbackAt;
        if (test.requestsLeft == 0) {
            if (!readback_phase)
                continue; // idling until read-back time
            // Schedule the read-back pass exactly once; `column`
            // keeps counting total requests (it addresses modulo the
            // row width), which is how completion detects that the
            // read-back pass also drained.
            test.requestsLeft = geom.columnsPerRow;
        }

        while (budget > 0 && test.requestsLeft > 0) {
            dram::Coordinates c = geom.rowFromFlatIndex(test.row);
            c.column = test.column % geom.columnsPerRow;
            sim::Request req;
            req.isTest = true;
            req.coreId = -1;
            req.addr = geom.compose(c);
            bool copy_write =
                cfg.testEngine.mode == TestMode::CopyAndCompare &&
                !readback_phase &&
                test.requestsLeft <= geom.columnsPerRow;
            req.type = copy_write ? sim::Request::Type::Write
                                  : sim::Request::Type::Read;
            if (!mc.enqueue(std::move(req), now))
                return; // queue at the test admission limit
            --test.requestsLeft;
            ++test.column;
            --budget;
        }
    }
}

void
OnlineMemcon::completeDueTests(Tick now)
{
    unsigned total_requests =
        (cfg.testEngine.mode == TestMode::CopyAndCompare ? 3u : 2u) *
        geom.columnsPerRow;
    for (auto it = activeTests.begin(); it != activeTests.end();) {
        bool ready = now >= it->readbackAt && it->requestsLeft == 0 &&
                     it->column >= total_requests;
        if (!ready) {
            ++it;
            continue;
        }
        std::uint64_t row = it->row;
        bool decayed = oracle && oracle(row);
        TestOutcome outcome = engine.completeTest(
            row, [decayed](std::uint64_t r, std::size_t w) {
                std::uint64_t word = syntheticWord(r, w);
                // A condemned row reads back with a flipped cell.
                if (decayed && w == 0)
                    word ^= 1;
                return word;
            });
        if (outcome == TestOutcome::Pass) {
            loRows.set(row);
            ++loCount;
        }
        it = activeTests.erase(it);
    }
}

double
OnlineMemcon::loRefFraction() const
{
    return static_cast<double>(loCount) /
           static_cast<double>(geom.totalRows());
}

double
OnlineMemcon::emergentReduction() const
{
    return loRefFraction() * (1.0 - cfg.hiRefMs / cfg.loRefMs);
}

void
OnlineMemcon::tick(Tick now)
{
    if (now >= nextQuantumEnd) {
        for (std::uint64_t row : pril.endQuantum())
            pendingCandidates.push_back(row);
        nextQuantumEnd += cfg.quantum;
        ++quantaSeen;
        if (quantaSeen == 2) {
            // Read-only identification (Section 6.1): rows with no
            // write so far are background-tested; the slot budget
            // paces them behind PRIL's candidates.
            for (std::uint64_t r = 0; r < geom.totalRows(); ++r)
                if (!everWritten.test(r))
                    pendingCandidates.push_back(r);
        }
    }
    startCandidateTests(now);
    pumpTestTraffic(now);
    completeDueTests(now);

    if (now >= nextRetarget) {
        mc.setRefreshReduction(emergentReduction());
        nextRetarget += cfg.retargetPeriod;
    }
}

} // namespace memcon::core
