/**
 * @file
 * The controller-side online test machinery (Section 3.2/3.3 and the
 * appendix).
 *
 * Testing a row for data-dependent failures means letting its cells
 * decay for a full refresh interval, which makes the row unreadable
 * in place. The TestEngine manages everything around that:
 *
 *  - a bounded number of concurrent in-test rows (test slots),
 *  - Read&Compare mode: the row is buffered inside the controller
 *    (SRAM cost: one row per slot) and program accesses are served
 *    from the buffer,
 *  - Copy&Compare mode: the row is copied to a reserved DRAM region
 *    (512 rows per bank -> 1.56% of a 2 GB module, appendix) and the
 *    controller retains only the row's SECDED signature (1/8 of the
 *    data size); program reads are redirected to the copy,
 *  - a redirection table from in-test row -> buffer slot / reserve
 *    row consulted on every access,
 *  - completion: the decayed row is read back and compared (data
 *    compare in R&C, signature compare in C&C); any mismatch means
 *    the current content fails at the tested interval.
 *
 * A program *write* to an in-test row aborts the test: the content
 * is changing, so the result would be stale (the engine-level
 * mechanism then demotes the row to HI-REF as usual).
 */

#ifndef MEMCON_CORE_TEST_ENGINE_HH
#define MEMCON_CORE_TEST_ENGINE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/strong_id.hh"
#include "core/cost_model.hh"
#include "dram/ecc.hh"

namespace memcon::core
{

/** Why a test session ended. */
enum class TestOutcome
{
    Pass,          //!< content identical after the idle period
    Fail,          //!< at least one word decayed
    AbortedByWrite //!< program wrote the row mid-test
};

/** Where a redirected access should be served from. */
struct Redirection
{
    bool inController = false; //!< served from the slot buffer (R&C)
    std::uint64_t reserveRow = 0; //!< reserve-region row (C&C)
};

struct TestEngineConfig
{
    TestMode mode = TestMode::ReadAndCompare;

    /** Concurrent in-test rows (paper models 256-1024). */
    std::size_t slots = 256;

    /** 64-bit words per row (8 KB row = 1024 words). */
    std::size_t wordsPerRow = 1024;

    /** Reserve rows per bank for Copy&Compare (appendix: 512). */
    std::uint64_t reserveRowsPerBank = 512;
    unsigned banks = 8;
};

class TestEngine
{
  public:
    /** Reads the current content of (row, word) from the device. */
    using RowReader =
        std::function<std::uint64_t(RowId row, std::size_t word_idx)>;

    /**
     * Reads the whole row into dst[0..n_words) in one call - the
     * bit-parallel form (DESIGN.md §19). The captured buffers are
     * then compared through the dispatched simd kernels.
     */
    using BlockRowReader = std::function<void(
        RowId row, std::uint64_t *dst, std::size_t n_words)>;

    explicit TestEngine(const TestEngineConfig &config);

    const TestEngineConfig &config() const { return cfg; }

    /** @return free test slots right now. */
    std::size_t freeSlots() const;

    /** @return true if the row is currently under test. */
    bool isUnderTest(RowId row) const;

    /**
     * Begin testing a row against its current content. Captures the
     * row (full data in R&C; SECDED signature + reserve copy in
     * C&C).
     *
     * @return false if no slot or (in C&C) no reserve row is free.
     */
    bool beginTest(RowId row, const BlockRowReader &reader);

    /** Per-word convenience wrapper around the block form. */
    bool beginTest(RowId row, const RowReader &reader);

    /**
     * Where to serve a program access to this row from during the
     * test; empty if the row is not under test (access the row
     * normally).
     */
    std::optional<Redirection> redirect(RowId row) const;

    /**
     * Notify a program write to the row. If it is under test, the
     * test aborts (slot and reserve row are recycled).
     *
     * @return true if an in-flight test was aborted
     */
    bool onWrite(RowId row);

    /**
     * Finish the test: read the decayed row back and compare against
     * the captured state.
     */
    TestOutcome completeTest(RowId row, const BlockRowReader &reader);

    /** Per-word convenience wrapper around the block form. */
    TestOutcome completeTest(RowId row, const RowReader &reader);

    /** Rows currently under test, ascending. */
    std::vector<RowId> rowsUnderTest() const;

    /**
     * Controller SRAM this configuration costs: slot buffers for
     * R&C (full rows), signatures only for C&C.
     */
    std::size_t controllerStorageBytes() const;

    /** DRAM capacity consumed by the reserve region, as a fraction
     * of a module with the given total rows. */
    double reserveCapacityFraction(std::uint64_t module_rows) const;

    // Statistics.
    std::uint64_t testsStarted() const { return started; }
    std::uint64_t testsPassed() const { return passed; }
    std::uint64_t testsFailed() const { return failed; }
    std::uint64_t testsAborted() const { return aborted; }
    std::uint64_t redirectedAccesses() const { return redirects; }

  private:
    struct Session
    {
        std::size_t slot;
        std::uint64_t reserveRow; //!< valid in Copy&Compare mode
        std::vector<std::uint64_t> bufferedData; //!< R&C only
        std::vector<std::uint8_t> signature;     //!< C&C only
    };

    void releaseSession(const Session &session);

    TestEngineConfig cfg;
    /** Reused readback scratch for the C&C and completion paths. */
    std::vector<std::uint64_t> readbackScratch;
    std::unordered_map<RowId, Session> sessions;
    std::vector<bool> slotBusy;
    std::vector<std::uint64_t> freeReserveRows;

    std::uint64_t started = 0;
    std::uint64_t passed = 0;
    std::uint64_t failed = 0;
    std::uint64_t aborted = 0;
    mutable std::uint64_t redirects = 0;
};

} // namespace memcon::core

#endif // MEMCON_CORE_TEST_ENGINE_HH
