/**
 * @file
 * PRIL - the probabilistic remaining-interval-length predictor
 * (Section 4.2, Figure 13).
 *
 * PRIL divides time into fixed quanta and predicts that a page whose
 * last write happened at least one full quantum ago will stay
 * unwritten long enough to amortize a test. The hardware structures
 * are two write-maps (one bit per page) and two bounded
 * write-buffers (page addresses written exactly once in a quantum):
 *
 *  - on a write: if it is the page's first write this quantum, set
 *    the map bit and insert into the current buffer; otherwise
 *    remove it from the current buffer (interval < quantum). A write
 *    also evicts the page from the *previous* buffer - it clearly
 *    did not stay idle.
 *  - at quantum end: every page still in the previous buffer had one
 *    write in the quantum before last and none since - its current
 *    interval length exceeds a full quantum, so it becomes a test
 *    candidate. The previous map/buffer are cleared and the pair is
 *    swapped.
 *
 * A full write-buffer drops the new page (footnote 10): MEMCON keeps
 * it at HI-REF, losing opportunity but never correctness.
 *
 * Two implementations live here (DESIGN.md §19):
 *
 *  - PrilPredictor: the production predictor. Write-buffers are
 *    deterministic open-addressing flat sets (no per-write node
 *    churn). A derived erased-map per side (bit set when a page
 *    leaves or is refused the buffer) makes candidate extraction a
 *    bulk `map ANDNOT erased` + visit-set-bits pass - no per-page
 *    hashing - which reproduces the sorted candidate list exactly:
 *    buffer membership is precisely {map bit set, erased bit clear},
 *    because pages enter the buffer only after testAndSet, leave it
 *    at most once per quantum (re-insertion is impossible - insert
 *    happens only on the first write), and buffer erases never clear
 *    map bits. The same invariant lets onWrite skip the
 *    previous-buffer probe whenever the previous map bit is clear.
 *  - ReferencePrilPredictor: the seed std::unordered_set
 *    implementation, kept verbatim as the priced baseline for the
 *    reference event path, the property cross-checks, and the
 *    micro_pril_ops speedup denominators.
 */

#ifndef MEMCON_CORE_PRIL_HH
#define MEMCON_CORE_PRIL_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bitvector.hh"
#include "common/flat_set.hh"
#include "common/strong_id.hh"
#include "common/units.hh"

namespace memcon::core
{

class PrilPredictor
{
  public:
    /**
     * @param num_pages        pages tracked (one write-map bit each)
     * @param buffer_capacity  write-buffer entries (paper: 4000)
     */
    PrilPredictor(std::uint64_t num_pages, std::size_t buffer_capacity);

    /** Record a write access to a page (Figure 13 left half). */
    void onWrite(PageId page);

    /**
     * Close the current quantum (Figure 13 right half).
     * @return pages predicted to have long remaining intervals -
     *         MEMCON initiates tests on these.
     */
    std::vector<PageId> endQuantum();

    /**
     * endQuantum() without the per-quantum allocation: candidates are
     * written into out (cleared first; capacity retained), ascending.
     */
    void endQuantumInto(std::vector<PageId> &out);

    std::uint64_t numPages() const { return pages; }
    std::size_t bufferCapacity() const { return capacity; }

    /** Pages dropped because the write-buffer was full. */
    std::uint64_t bufferDrops() const { return drops; }

    /** Peak simultaneous write-buffer occupancy observed. */
    std::size_t peakBufferOccupancy() const { return peakOccupancy; }

    /** SRAM footprint of maps + buffers, for the §6.4 accounting. */
    std::size_t storageBytes() const;

    /** @return true if the page currently sits in either buffer. */
    bool isTracked(PageId page) const;

    /**
     * CRC over the complete predictor state (maps, buffers, swap
     * phase, drop/peak counters). Two predictors in equal logical
     * states fingerprint identically regardless of how they reached
     * them; the service layer uses this to prove a journal-replayed
     * restore reconverged. Buffer members are mixed in ascending
     * page order, recovered for free from the derived erased map
     * (`map ANDNOT erased`), so no sorting pass is needed.
     */
    std::uint32_t stateFingerprint() const;

  private:
    std::uint64_t pages;
    std::size_t capacity;

    // Index 0/1 with `current` selecting the active pair; the other
    // pair is the previous quantum's.
    BitVector writeMap[2];
    FlatPageSet writeBuffer[2];

    // Host-side acceleration state, not modelled SRAM: erasedMap[s]
    // holds exactly (map[s] set bits) minus (buffer[s] members) -
    // every page that set its map bit but then left the buffer
    // (re-write), was evicted from the previous buffer (write in the
    // following quantum), or was refused entry (drop). Maintained on
    // the rare leave/drop paths only; rebuilt for free on restore
    // because restore replays the write journal through onWrite().
    BitVector erasedMap[2];

    // Per-quantum extraction scratch (capacity retained across
    // quanta): map ANDNOT erased, then visit.
    BitVector extractScratch;

    unsigned current = 0;

    std::uint64_t drops = 0;
    std::size_t peakOccupancy = 0;
};

/**
 * The seed hash-set PRIL implementation, bit-for-bit equivalent to
 * PrilPredictor in candidates, drops, peak occupancy, and storage
 * accounting (the property suite pins this). The reference event
 * path prices against it; micro_pril_ops uses it as the speedup
 * baseline. Fingerprints are NOT comparable across the two classes -
 * this one mixes buffers in sorted order, the flat one in slot order.
 */
class ReferencePrilPredictor
{
  public:
    ReferencePrilPredictor(std::uint64_t num_pages,
                           std::size_t buffer_capacity);

    void onWrite(PageId page);
    std::vector<PageId> endQuantum();

    std::uint64_t numPages() const { return pages; }
    std::size_t bufferCapacity() const { return capacity; }
    std::uint64_t bufferDrops() const { return drops; }
    std::size_t peakBufferOccupancy() const { return peakOccupancy; }
    std::size_t storageBytes() const;
    bool isTracked(PageId page) const;
    std::uint32_t stateFingerprint() const;

  private:
    std::uint64_t pages;
    std::size_t capacity;

    BitVector writeMap[2];
    std::unordered_set<PageId> writeBuffer[2];
    unsigned current = 0;

    std::uint64_t drops = 0;
    std::size_t peakOccupancy = 0;
};

} // namespace memcon::core

#endif // MEMCON_CORE_PRIL_HH
