/**
 * @file
 * The MEMCON online detection-and-mitigation engine (Sections 3, 4,
 * 6.1, 6.4).
 *
 * The engine replays per-page write timelines against the full
 * mechanism: every row starts at HI-REF; PRIL watches writes across
 * quanta; at each quantum boundary the predicted-idle pages are
 * tested (within the concurrent-test budget) against their current
 * content; rows that pass move to LO-REF until their next write,
 * which demotes them back to HI-REF instantly - the invariant that a
 * LO-REF row has always passed a test against its *current* content
 * is maintained by construction. Rows whose content fails the test
 * are mitigated by staying at HI-REF.
 *
 * The engine reports everything the paper's Figures 14, 17, 18 need:
 * refresh-operation counts vs. the aggressive baseline, LO-REF time
 * coverage, test counts split into correctly-predicted and
 * mispredicted, buffer drops, and latency-domain refresh/testing
 * time.
 */

#ifndef MEMCON_CORE_ENGINE_HH
#define MEMCON_CORE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"
#include "core/cost_model.hh"
#include "dram/address_map.hh"
#include "trace/app_model.hh"

namespace memcon::core
{

struct MemconConfig
{
    double hiRefMs = 16.0;
    double loRefMs = 64.0;

    /** PRIL quantum = the current-interval-length threshold. */
    TimeMs quantumMs{1024.0};

    /** Write-buffer entries (§6.4: 4000 suffices). */
    std::size_t writeBufferCapacity = 4000;

    /** Concurrent tests per 64 ms window (Table 3: 256-1024). */
    unsigned testSlotsPer64ms = 1024;

    TestMode mode = TestMode::ReadAndCompare;

    dram::CostTimings timings = dram::CostTimings::paperDdr3_1600();

    /**
     * Fraction of writes that store the value already in memory.
     * With detectSilentWrites (footnote 9 of the paper), such writes
     * neither demote the row nor trigger retesting, since the
     * content - and therefore the validity of the last test - is
     * unchanged.
     */
    double silentWriteFraction = 0.0;
    bool detectSilentWrites = false;

    /**
     * Periodic re-scrub of idle LO-REF rows (0 = off). Closes the
     * variable-retention-time exposure window: a row that passed a
     * test can later drift into a leaky state without any write to
     * trigger a retest. Rows whose last test is older than this are
     * re-tested at quantum boundaries with leftover budget; rows
     * that now fail are demoted to HI-REF.
     */
    double scrubPeriodMs = 0.0;

    /**
     * Testing-only: replay through the seed materialize-then-sort
     * event path (build every event, std::stable_sort, scan all
     * pages per quantum for scrub) instead of the streaming k-way
     * merge + deadline wheel. Metrics are bit-identical either way;
     * the flag exists so tests/test_engine_equiv.cc can keep proving
     * it, and so micro_engine_ops can price the difference. Requires
     * the identity address map.
     */
    bool referenceEventPath = false;

    /**
     * How pages interleave across channel/rank/bank shards
     * (DESIGN.md §17). The identity map (default) is the flat engine:
     * one shard owning every page, bit-identical to the pre-sharding
     * behavior. A multi-shard map partitions the population; each
     * shard owns its own PRIL (write maps and buffers sized to the
     * shard), SoA page state, and scrub wheel, and runs its quantum
     * loop independently - the per-bank structures real controllers
     * have. The test budget (testSlotsPer64ms) and the PRIL write
     * buffer are per-bank resources, so each shard gets the full
     * configured amount.
     */
    dram::AddressMap addressMap{};

    /**
     * Worker threads for the sharded path; 1 runs the shards
     * serially, 0 means hardware concurrency. Results are reduced in
     * (shard index, then global page) order, so every thread count
     * produces bit-identical metrics. Failure oracles must be pure
     * functions of their arguments when this exceeds 1 - they are
     * called concurrently from shard workers.
     */
    unsigned shardThreads = 1;

    /**
     * Capture MemconResult::pageEnd, the per-page closing state. The
     * shard-equivalence suite uses it to prove the sharded engine
     * leaves every page exactly where the flat engine does.
     */
    bool capturePageEndState = false;
};

struct MemconResult
{
    /** Per-shard slice of the run, in shard-index order. */
    struct ShardBreakdown
    {
        std::uint64_t pages = 0;
        std::uint64_t writes = 0;
        std::uint64_t testsRun = 0;
        std::uint64_t bufferDrops = 0;
        std::size_t trackerStorageBytes = 0;

        /**
         * Analytic row activations this shard issued: one per write
         * event (silent or not - the row still opens to store the
         * value) and two per content test, PRIL and scrub alike (the
         * read pass plus the restoring verify pass). This is the
         * activation pressure a disturb model sees from the engine's
         * own behavior; the shard-equivalence suite pins the per-shard
         * sum equal to the flat run's total under every sharding.
         */
        std::uint64_t acts = 0;
    };

    /** Closing state of one page (capturePageEndState only). */
    struct PageEndState
    {
        std::uint64_t writeCount = 0;
        bool atLoRef = false;
        double hiTimeMs = 0.0;
        double loTimeMs = 0.0;

        bool operator==(const PageEndState &) const = default;
    };

    double durationMs = 0.0;
    std::uint64_t pages = 0;
    std::uint64_t writes = 0;

    double refreshOpsBaseline = 0.0;
    double refreshOpsMemcon = 0.0;

    std::uint64_t testsRun = 0;
    std::uint64_t testsPassed = 0;
    std::uint64_t testsFailed = 0;       //!< content failed; row stays HI
    std::uint64_t testsSkippedBudget = 0;
    std::uint64_t testsCorrect = 0;      //!< idle >= MinWriteInterval after
    std::uint64_t testsMispredicted = 0;

    double hiTimeMs = 0.0; //!< summed over pages
    double loTimeMs = 0.0;

    std::uint64_t bufferDrops = 0;
    std::size_t trackerStorageBytes = 0;

    /** Writes ignored by silent-write detection (footnote 9). */
    std::uint64_t silentWritesSkipped = 0;

    /** Re-scrub activity (scrubPeriodMs > 0). */
    std::uint64_t scrubTests = 0;
    std::uint64_t scrubDemotions = 0;

    /**
     * Total analytic row activations (sum of ShardBreakdown::acts).
     * Deterministic across shardings by construction - every term is
     * an exact integer tied to an event or test the equivalence suite
     * already pins. Outside the golden digest surface.
     */
    std::uint64_t acts = 0;

    double testTimeNs = 0.0;
    double refreshTimeMemconNs = 0.0;
    double refreshTimeBaselineNs = 0.0;

    /**
     * Hot-path instrumentation (streaming path only; zero on the
     * reference path). Outside the determinism contract's digest
     * surface: excluded from golden digests and from the old-vs-new
     * equivalence comparison, free to change as the engine evolves.
     */
    std::uint64_t heapPushes = 0;      //!< k-way merge heap inserts
    std::uint64_t wheelPops = 0;       //!< scrub/read-only wheel pops
    std::uint64_t peakLiveStreams = 0; //!< max concurrent merge sources

    /**
     * Work items (read-only sweep entries, due scrubs) pushed past
     * their quantum because the test budget ran out. Unlike
     * testsSkippedBudget the work is retried later, so nothing is
     * lost - but a nonzero count means the per-quantum budget was a
     * binding shared resource, and flat vs sharded runs are then free
     * to diverge (each shard holds its own budget). Counted on both
     * event paths; the exact value is instrumentation, outside the
     * digest surface - only zero vs nonzero carries a contract.
     */
    std::uint64_t testsDeferredBudget = 0;

    /**
     * One entry per shard of the address map (a single entry under
     * the identity map). Like the instrumentation counters above,
     * outside the digest surface.
     */
    std::vector<ShardBreakdown> shards;

    /** Per-page closing state; empty unless capturePageEndState. */
    std::vector<PageEndState> pageEnd;

    /** Fractional reduction in refresh operations vs. the baseline. */
    double reduction() const
    {
        return refreshOpsBaseline == 0.0
                   ? 0.0
                   : 1.0 - refreshOpsMemcon / refreshOpsBaseline;
    }

    /** Fraction of page-time spent at LO-REF (Figure 17 coverage). */
    double loCoverage() const
    {
        double total = hiTimeMs + loTimeMs;
        return total == 0.0 ? 0.0 : loTimeMs / total;
    }

    /** Testing time as a fraction of baseline refresh time (Fig 18). */
    double testTimeOverBaselineRefresh() const
    {
        return refreshTimeBaselineNs == 0.0
                   ? 0.0
                   : testTimeNs / refreshTimeBaselineNs;
    }
};

class MemconEngine
{
  public:
    /**
     * Decides whether a page's row fails a LO-REF test given its
     * current content, identified by how many writes the page has
     * absorbed. An empty oracle means "never fails" (pure refresh
     * study, as in §6.1).
     */
    using FailureOracle =
        std::function<bool(std::uint64_t page, std::uint64_t write_count)>;

    /**
     * Time-aware failure oracle for scrub studies (VRT): failure may
     * depend on *when* the row is tested, not only on its content.
     * When provided, it is consulted by every test (including
     * scrubs) instead of the plain oracle.
     */
    using TimedFailureOracle = std::function<bool(
        std::uint64_t page, std::uint64_t write_count, double time_ms)>;

    /**
     * Observes refresh-state transitions: invoked whenever a page
     * moves to LO-REF (to_lo = true, after passing a test) or back to
     * HI-REF (to_lo = false, on a write). write_count is the page's
     * write total at the transition. Tests use this to check the
     * reliability invariant from the outside.
     */
    using TransitionObserver = std::function<void(
        std::uint64_t page, double time_ms, bool to_lo,
        std::uint64_t write_count)>;

    explicit MemconEngine(const MemconConfig &config);

    const MemconConfig &config() const { return cfg; }

    /** The reduction if every row could stay at LO-REF (75%). */
    double upperBoundReduction() const
    {
        return 1.0 - cfg.hiRefMs / cfg.loRefMs;
    }

    /**
     * Replay explicit per-page write timelines over [0, duration_ms].
     * Each page's vector must be sorted ascending and non-negative -
     * the k-way merge's tie-break order (and therefore the metric
     * bit-identity contract) depends on it, so an unsorted vector is
     * a panic, not a silent reorder.
     */
    MemconResult run(const std::vector<std::vector<TimeMs>> &page_writes,
                     double duration_ms, const FailureOracle &oracle = {},
                     const TransitionObserver &observer = {},
                     const TimedFailureOracle &timed_oracle = {}) const;

    /** Generate and replay one Table 1 application persona. */
    MemconResult runOnApp(const trace::AppPersona &persona,
                          const FailureOracle &oracle = {},
                          const TransitionObserver &observer = {}) const;

  private:
    MemconConfig cfg;
};

} // namespace memcon::core

#endif // MEMCON_CORE_ENGINE_HH
