/**
 * @file
 * The cost-benefit model of Section 3.3 and the appendix.
 *
 * Costs are latencies per row. The HI-REF configuration pays one
 * refresh (tRAS + tRP = 39 ns) every hiRefMs, starting at t = 0.
 * MEMCON pays the test cost up front (Read&Compare 1068 ns,
 * Copy&Compare 1602 ns) and then one refresh every loRefMs (first
 * at t = loRefMs). MinWriteInterval is the first HI-REF refresh
 * point at which the accumulated HI-REF cost reaches MEMCON's -
 * the minimum time the row must stay unwritten for testing to pay
 * off. With the paper's DDR3-1600 parameters this model yields
 * exactly the published 560/864 ms (64 ms LO-REF) and 480/448 ms
 * (128/256 ms LO-REF, Read&Compare).
 */

#ifndef MEMCON_CORE_COST_MODEL_HH
#define MEMCON_CORE_COST_MODEL_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "dram/timing.hh"

namespace memcon::core
{

/** Where in-test rows are buffered during the idle period (§3.3). */
enum class TestMode
{
    ReadAndCompare, //!< row held in the memory controller
    CopyAndCompare, //!< row copied to a reserved DRAM region
};

std::string toString(TestMode mode);

struct CostModelConfig
{
    dram::CostTimings timings = dram::CostTimings::paperDdr3_1600();
    double hiRefMs = 16.0;
    double loRefMs = 64.0;
};

/** One point of the Figure 6 accumulated-cost curves. */
struct CostPoint
{
    TimeMs timeMs;
    double hiRefNs;         //!< accumulated HI-REF cost
    double readCompareNs;   //!< accumulated MEMCON cost, R&C mode
    double copyCompareNs;   //!< accumulated MEMCON cost, C&C mode
};

class CostModel
{
  public:
    explicit CostModel(const CostModelConfig &config = {});

    const CostModelConfig &config() const { return cfg; }

    /** One-time test latency for the mode (1068 / 1602 ns). */
    double testCostNs(TestMode mode) const;

    /** Per-operation refresh latency (39 ns). */
    double refreshOpNs() const;

    /** Accumulated HI-REF cost at time t (refreshes at 0, hi, 2hi..). */
    double hiRefAccumulatedNs(TimeMs t_ms) const;

    /**
     * Accumulated MEMCON cost at time t: the test up front, then
     * refreshes at lo, 2*lo, ...
     */
    double memconAccumulatedNs(TestMode mode, TimeMs t_ms) const;

    /**
     * The minimum write interval that amortizes the test: the first
     * multiple of hiRefMs where the HI-REF accumulated cost is at
     * least MEMCON's.
     */
    TimeMs minWriteIntervalMs(TestMode mode) const;

    /** Figure 6 curve samples at every hiRefMs step up to horizon. */
    std::vector<CostPoint> curve(TimeMs horizon_ms) const;

    /**
     * Average cost per unit time over a write interval of the given
     * length when the row is tested at its start (Figure 5's
     * "average cost"): (test + refreshes) / interval.
     */
    double averageCostNsPerMs(TestMode mode, TimeMs interval_ms) const;

    /** Average HI-REF cost per unit time (the no-testing policy). */
    double hiRefAverageNsPerMs() const;

  private:
    CostModelConfig cfg;
};

} // namespace memcon::core

#endif // MEMCON_CORE_COST_MODEL_HH
