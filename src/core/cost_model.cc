#include "core/cost_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon::core
{

std::string
toString(TestMode mode)
{
    switch (mode) {
      case TestMode::ReadAndCompare:
        return "Read&Compare";
      case TestMode::CopyAndCompare:
        return "Copy&Compare";
    }
    panic("unknown test mode");
}

CostModel::CostModel(const CostModelConfig &config) : cfg(config)
{
    fatal_if(cfg.hiRefMs <= 0.0 || cfg.loRefMs <= 0.0,
             "refresh intervals must be positive");
    fatal_if(cfg.loRefMs <= cfg.hiRefMs,
             "LO-REF interval must exceed HI-REF interval");
}

double
CostModel::testCostNs(TestMode mode) const
{
    // Read&Compare streams the row twice; Copy&Compare additionally
    // writes it once into the reserved region (appendix).
    double stream = cfg.timings.rowStreamNs();
    return mode == TestMode::ReadAndCompare ? 2.0 * stream : 3.0 * stream;
}

double
CostModel::refreshOpNs() const
{
    return cfg.timings.refreshOpNs();
}

double
CostModel::hiRefAccumulatedNs(TimeMs t_ms) const
{
    panic_if(t_ms < TimeMs{0.0}, "time must be non-negative");
    // Refreshes at 0, hi, 2hi, ... <= t.
    double count = std::floor(t_ms.value() / cfg.hiRefMs) + 1.0;
    return count * refreshOpNs();
}

double
CostModel::memconAccumulatedNs(TestMode mode, TimeMs t_ms) const
{
    panic_if(t_ms < TimeMs{0.0}, "time must be non-negative");
    // The test replaces the refresh at t = 0 (the row is fully
    // charged by the test's own accesses); LO-REF refreshes follow
    // at lo, 2lo, ... <= t.
    double count = std::floor(t_ms.value() / cfg.loRefMs);
    return testCostNs(mode) + count * refreshOpNs();
}

TimeMs
CostModel::minWriteIntervalMs(TestMode mode) const
{
    for (TimeMs t{cfg.hiRefMs};; t += TimeMs{cfg.hiRefMs}) {
        if (hiRefAccumulatedNs(t) >= memconAccumulatedNs(mode, t))
            return t;
        panic_if(t > TimeMs{1e7}, "MinWriteInterval search diverged");
    }
}

std::vector<CostPoint>
CostModel::curve(TimeMs horizon_ms) const
{
    std::vector<CostPoint> points;
    for (TimeMs t{cfg.hiRefMs}; t <= horizon_ms; t += TimeMs{cfg.hiRefMs}) {
        points.push_back({t, hiRefAccumulatedNs(t),
                          memconAccumulatedNs(TestMode::ReadAndCompare, t),
                          memconAccumulatedNs(TestMode::CopyAndCompare, t)});
    }
    return points;
}

double
CostModel::averageCostNsPerMs(TestMode mode, TimeMs interval_ms) const
{
    panic_if(interval_ms <= TimeMs{0.0}, "interval must be positive");
    return memconAccumulatedNs(mode, interval_ms) / interval_ms.value();
}

double
CostModel::hiRefAverageNsPerMs() const
{
    return refreshOpNs() / cfg.hiRefMs;
}

} // namespace memcon::core
