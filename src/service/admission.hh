/**
 * @file
 * Admission control for the memcond service: per-tenant event-rate
 * quotas plus a global in-flight budget, expressed as typed verdicts.
 *
 * Two decision points:
 *
 *  - openSession(): may this tenant join at all? Rejections carry a
 *    reason (session table full, declared quota above the per-tenant
 *    cap, zero quota) so a refused tenant knows *why*, not just that.
 *
 *  - planRound(): before each service round, every active tenant's
 *    demand (ring backlog + last round's offered load) is weighed
 *    against its quota and the global apply budget. Quota-covered
 *    demand is granted first - an in-quota tenant is therefore
 *    isolated from an antagonist's excess - and leftover budget is
 *    handed out in (priority desc, tenant index asc) order. A tenant
 *    with demand but no grant is throttled with an explicit
 *    retry-after tick; a tenant the overload governor shed is
 *    rejected for the round. Everything is computed in tenant-index
 *    order from integer state, so the plan is bit-identical at any
 *    thread count.
 */

#ifndef MEMCON_SERVICE_ADMISSION_HH
#define MEMCON_SERVICE_ADMISSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace memcon::service
{

enum class VerdictKind
{
    Admit,
    Throttle,
    Reject,
};

const char *toString(VerdictKind kind);

/** One admission decision; fields beyond `kind` depend on it. */
struct Verdict
{
    VerdictKind kind = VerdictKind::Admit;
    std::uint64_t grant = 0; //!< Admit: events this round may apply
    Tick retryAfter{};       //!< Throttle: when to offer again
    std::string reason;      //!< Reject: why
};

struct AdmissionConfig
{
    /** Active sessions the service will host at once. */
    std::size_t maxSessions = 16;

    /** Hard per-tenant quota ceiling (events per round). */
    std::uint64_t maxQuotaPerRound = 1024;

    /** Global apply budget per round, shared by every tenant. */
    std::uint64_t globalBudgetPerRound = 96;

    /**
     * Per-tenant grant ceiling per round; bounds how much leftover
     * budget one tenant can absorb (and keeps any round's grant
     * within the ingest ring, which the crash-restore replay relies
     * on). 0 means "no ceiling beyond the global budget".
     */
    std::uint64_t maxGrantPerRound = 0;
};

/** One tenant's standing demand, as planRound() sees it. */
struct TenantDemand
{
    std::uint64_t backlog = 0;     //!< events waiting in the ring
    std::uint64_t lastOffered = 0; //!< events offered last round
    std::uint64_t quota = 0;       //!< granted event rate per round
    unsigned priority = 1;         //!< higher = survives shed longer
    bool shed = false;             //!< governor dropped this tenant
};

class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionConfig &config);

    /** May this tenant join? Admit or Reject{reason}. */
    Verdict openSession(const std::string &name, std::uint64_t quota);

    /** A session ended; frees its slot. */
    void closeSession();

    /**
     * Plan one round over the active tenants (indexed positionally).
     * @param round_end  the throttle verdicts' retry-after tick
     * @return one verdict per tenant, same order
     */
    std::vector<Verdict> planRound(const std::vector<TenantDemand> &demands,
                                   Tick round_end);

    std::size_t activeSessions() const { return sessions; }

    /** Cumulative verdict counters (admit/throttle/reject). */
    std::uint64_t admitCount() const { return admits; }
    std::uint64_t throttleCount() const { return throttles; }
    std::uint64_t rejectCount() const { return rejects; }

    /** Restore the verdict counters from a service snapshot. */
    void restoreCounters(std::uint64_t admit, std::uint64_t throttle,
                         std::uint64_t reject);

    const AdmissionConfig &config() const { return cfg; }

  private:
    AdmissionConfig cfg;
    std::size_t sessions = 0;
    std::uint64_t admits = 0;
    std::uint64_t throttles = 0;
    std::uint64_t rejects = 0;
};

} // namespace memcon::service

#endif // MEMCON_SERVICE_ADMISSION_HH
