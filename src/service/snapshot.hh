/**
 * @file
 * The crash-safe service snapshot: everything memcond needs to resume
 * a SIGKILL'd daemon with bit-identical per-tenant state.
 *
 * The file reuses the durable-artifact discipline of the campaign
 * checkpoint (DESIGN.md §15): every line is individually CRC-sealed
 * ("payload #xxxxxxxx"), the header is a CampaignFingerprint binding
 * the snapshot to one service configuration, and an END footer
 * carries the line count and a running CRC over every byte above it.
 * Writes go through atomicWriteFile(), so a reader only ever sees a
 * complete old file or a complete new file. The loader is strict: a
 * file truncated or corrupted at ANY byte decodes to a typed
 * ServiceError, never to partial state.
 *
 * Contents:
 *
 *   - header: fingerprint (artifact "memcond", service seed, tenant
 *     count, config CRC as the label CRC)
 *   - G: governor + admission cumulative state (rounds done, ladder
 *     stage, calm streak, escalation counters, verdict counters)
 *   - per tenant: T (producer counters + the OnlineMemcon state
 *     fingerprint), R (ring residue events), H (the held event, if
 *     any, with its hold-since tick)
 *   - per round: J (the governor stage that round ran under) and one
 *     D line per tenant (its grant and the events it applied, in
 *     apply order) - the ingest journal the restore path replays
 *     through the real consumer code
 *
 * The journal makes the restore *semantic*, not a memory dump: resume
 * re-runs every recorded round against freshly constructed tenants,
 * then checks each rebuilt OnlineMemcon fingerprint against the
 * recorded one.
 */

#ifndef MEMCON_SERVICE_SNAPSHOT_HH
#define MEMCON_SERVICE_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/units.hh"
#include "service/governor.hh"
#include "service/ingest_ring.hh"

namespace memcon::service
{

/** Any service-mode failure surfaced to callers: malformed snapshot,
 * restore divergence, session refusal. Always carries a reason. */
class ServiceError : public std::runtime_error
{
  public:
    explicit ServiceError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** One tenant's producer-side state and mechanism fingerprint. */
struct TenantSnapshotRecord
{
    std::string name;
    std::uint64_t generated = 0;
    std::uint64_t droppedBackpressure = 0;
    std::uint64_t droppedShed = 0;
    std::uint64_t throttledTicks = 0;

    /** Events offered in the last completed round - next-round
     * admission demand needs it, so it rides in the snapshot. */
    std::uint64_t lastOffered = 0;

    std::uint32_t fingerprint = 0;

    /** describeState() at snapshot time, for mismatch diagnostics. */
    std::string describe;

    /** Events stranded in the ingest ring at snapshot time. */
    std::vector<WriteEvent> residue;

    bool hasHeld = false;
    WriteEvent held{};
    Tick heldSince{};
};

/** One completed service round, as the journal recorded it. */
struct RoundRecord
{
    GovernorStage stage = GovernorStage::Normal;

    /** Per-tenant apply budget that round (admission grant). */
    std::vector<std::uint64_t> grant;

    /** Per-tenant governor knobs: the scan-shed and quantum-stretch
     * stages target over-quota tenants, so the journal must record
     * who they actually hit, not just the ladder stage. */
    std::vector<bool> scansShed;
    std::vector<unsigned> quantumStretch;

    /** Per-tenant applied events, in apply order. */
    std::vector<std::vector<WriteEvent>> applied;
};

struct ServiceSnapshot
{
    ckpt::CampaignFingerprint fingerprint;

    std::uint64_t roundsDone = 0;

    // Governor ladder state.
    GovernorStage stage = GovernorStage::Normal;
    unsigned calmStreak = 0;
    std::uint64_t escalations = 0;
    std::uint64_t relaxations = 0;

    // Admission verdict counters.
    std::uint64_t admits = 0;
    std::uint64_t throttles = 0;
    std::uint64_t rejects = 0;

    std::vector<TenantSnapshotRecord> tenants;

    /** journal.size() == roundsDone always. */
    std::vector<RoundRecord> journal;
};

/** Serialize to the sealed-line format (no I/O). */
std::string encodeServiceSnapshot(const ServiceSnapshot &snapshot);

/** Strictly parse encodeServiceSnapshot() output; throws ServiceError
 * on any truncation, corruption, or structural deviation. */
ServiceSnapshot decodeServiceSnapshot(const std::string &content);

/** Atomically write the snapshot; fatal on I/O failure (a service
 * that cannot persist must not pretend it is crash-safe). */
void saveServiceSnapshot(const std::string &path,
                         const ServiceSnapshot &snapshot);

/** Load + decode; throws ServiceError (file missing counts too). */
ServiceSnapshot loadServiceSnapshot(const std::string &path);

} // namespace memcon::service

#endif // MEMCON_SERVICE_SNAPSHOT_HH
