#include "service/governor.hh"

namespace memcon::service
{

const char *
toString(GovernorStage stage)
{
    switch (stage) {
    case GovernorStage::Normal:
        return "normal";
    case GovernorStage::ShedScans:
        return "shed-scans";
    case GovernorStage::StretchQuanta:
        return "stretch-quanta";
    case GovernorStage::ShedTenants:
        return "shed-tenants";
    }
    return "?";
}

OverloadGovernor::OverloadGovernor(const GovernorConfig &config)
    : cfg(config)
{
    fatal_if(cfg.exitPressure >= cfg.enterPressure,
             "governor hysteresis needs exitPressure < enterPressure");
    fatal_if(cfg.coolRounds == 0, "coolRounds must be positive");
    fatal_if(cfg.quantumStretch == 0, "quantumStretch must be >= 1");
}

GovernorStage
OverloadGovernor::update(double pressure)
{
    if (pressure > cfg.enterPressure) {
        calm = 0;
        if (current != GovernorStage::ShedTenants) {
            current = static_cast<GovernorStage>(
                static_cast<unsigned>(current) + 1);
            ++escalated;
        }
    } else if (pressure < cfg.exitPressure) {
        if (current == GovernorStage::Normal) {
            calm = 0;
        } else if (++calm >= cfg.coolRounds) {
            current = static_cast<GovernorStage>(
                static_cast<unsigned>(current) - 1);
            ++relaxed;
            calm = 0;
        }
    } else {
        // The hysteresis band: neither escalate nor cool.
        calm = 0;
    }
    return current;
}

void
OverloadGovernor::restore(GovernorStage stage, unsigned calm_streak,
                          std::uint64_t escalations,
                          std::uint64_t relaxations)
{
    current = stage;
    calm = calm_streak;
    escalated = escalations;
    relaxed = relaxations;
}

} // namespace memcon::service
