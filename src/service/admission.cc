#include "service/admission.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace memcon::service
{

const char *
toString(VerdictKind kind)
{
    switch (kind) {
    case VerdictKind::Admit:
        return "admit";
    case VerdictKind::Throttle:
        return "throttle";
    case VerdictKind::Reject:
        return "reject";
    }
    return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig &config)
    : cfg(config)
{
    fatal_if(cfg.maxSessions == 0, "admission needs at least one session");
    fatal_if(cfg.globalBudgetPerRound == 0,
             "global apply budget must be positive");
}

Verdict
AdmissionController::openSession(const std::string &name,
                                 std::uint64_t quota)
{
    Verdict v;
    if (sessions >= cfg.maxSessions) {
        v.kind = VerdictKind::Reject;
        v.reason = "session table full (" + name + ")";
        ++rejects;
        return v;
    }
    if (quota == 0) {
        v.kind = VerdictKind::Reject;
        v.reason = "zero event quota (" + name + ")";
        ++rejects;
        return v;
    }
    if (quota > cfg.maxQuotaPerRound) {
        v.kind = VerdictKind::Reject;
        v.reason = "declared quota above the per-tenant cap (" + name + ")";
        ++rejects;
        return v;
    }
    ++sessions;
    ++admits;
    v.kind = VerdictKind::Admit;
    v.grant = quota;
    return v;
}

void
AdmissionController::closeSession()
{
    panic_if(sessions == 0, "closeSession() without an open session");
    --sessions;
}

std::vector<Verdict>
AdmissionController::planRound(const std::vector<TenantDemand> &demands,
                               Tick round_end)
{
    const std::size_t n = demands.size();
    std::vector<Verdict> verdicts(n);
    std::vector<std::uint64_t> grant(n, 0);
    std::vector<std::uint64_t> want(n, 0);

    const std::uint64_t grant_cap = cfg.maxGrantPerRound
                                        ? cfg.maxGrantPerRound
                                        : cfg.globalBudgetPerRound;

    // Phase 1: quota-covered demand, in tenant order. The quota-first
    // pass is what isolates an in-quota tenant from an antagonist:
    // excess demand competes only for what quotas left over.
    std::uint64_t budget = cfg.globalBudgetPerRound;
    for (std::size_t i = 0; i < n; ++i) {
        if (demands[i].shed)
            continue;
        want[i] = demands[i].backlog + demands[i].lastOffered;
        std::uint64_t g = std::min({want[i], demands[i].quota, budget,
                                    grant_cap});
        grant[i] = g;
        budget -= g;
    }

    // Phase 2: leftover budget to residual demand, best tenants
    // first (priority desc, then index asc - a total deterministic
    // order).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&demands](std::size_t a, std::size_t b) {
                         return demands[a].priority > demands[b].priority;
                     });
    for (std::size_t i : order) {
        if (budget == 0)
            break;
        if (demands[i].shed || want[i] <= grant[i])
            continue;
        std::uint64_t residual =
            std::min(want[i] - grant[i], grant_cap - grant[i]);
        std::uint64_t g = std::min(residual, budget);
        grant[i] += g;
        budget -= g;
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (demands[i].shed) {
            verdicts[i].kind = VerdictKind::Reject;
            verdicts[i].reason = "shed by the overload governor";
            ++rejects;
        } else if (grant[i] == 0 && want[i] > 0) {
            verdicts[i].kind = VerdictKind::Throttle;
            verdicts[i].retryAfter = round_end;
            ++throttles;
        } else {
            verdicts[i].kind = VerdictKind::Admit;
            verdicts[i].grant = grant[i];
            ++admits;
        }
    }
    return verdicts;
}

void
AdmissionController::restoreCounters(std::uint64_t admit,
                                     std::uint64_t throttle,
                                     std::uint64_t reject)
{
    admits = admit;
    throttles = throttle;
    rejects = reject;
}

} // namespace memcon::service
