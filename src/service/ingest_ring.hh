/**
 * @file
 * The per-session ingest ring: a bounded single-producer /
 * single-consumer queue of timestamped row-write events.
 *
 * Every tenant session owns one ring. The producer (the tenant's
 * traffic source) pushes events in non-decreasing timestamp order and
 * observes `Full` as explicit backpressure - it must hold the event
 * and retry, or give up and count a drop; the ring itself never
 * discards anything silently. The consumer (the session's apply loop)
 * peeks the head, attempts to apply it to the tenant's controller,
 * and pops only on success, so an apply that is refused (queue full,
 * budget exhausted) leaves the event in place.
 *
 * The implementation is a classic power-of-two SPSC ring over
 * acquire/release atomics: wait-free on both sides, TSan-clean when
 * exactly one thread produces and one consumes. Inside a service
 * round both roles run on the tenant's task thread (virtual time
 * interleaves them deterministically); the cross-thread discipline
 * still holds, and the dedicated ring tests exercise it with real
 * concurrent threads.
 */

#ifndef MEMCON_SERVICE_INGEST_RING_HH
#define MEMCON_SERVICE_INGEST_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/strong_id.hh"
#include "common/units.hh"

namespace memcon::service
{

/** One tenant write: when it happened (service time) and where. */
struct WriteEvent
{
    Tick at{};
    std::uint64_t row = 0;

    bool operator==(const WriteEvent &) const = default;
};

/** What tryPush() observed; `Full` is the backpressure signal. */
enum class PushResult
{
    Ok,
    Full,
};

class IngestRing
{
  public:
    /** @param capacity slots; rounded up to the next power of two. */
    explicit IngestRing(std::size_t capacity);

    IngestRing(const IngestRing &) = delete;
    IngestRing &operator=(const IngestRing &) = delete;

    /** Producer side: enqueue or report Full - never blocks. */
    PushResult tryPush(const WriteEvent &event);

    /** Consumer side: expose the head without consuming it. */
    bool peek(WriteEvent *out) const;

    /** Consumer side: drop the head peek() exposed. */
    void popFront();

    /** Consumer side: peek-and-pop in one step. */
    bool tryPop(WriteEvent *out);

    /**
     * Entries currently queued. Exact from either endpoint's own
     * thread; a racing observer sees a value that was true at some
     * instant during the call.
     */
    std::size_t size() const;

    bool empty() const { return size() == 0; }

    // memcon:shard_scope - capacity is fixed at construction
    std::size_t capacity() const { return slots.size(); }

    /**
     * Copy the queued entries front-to-back. Only meaningful while
     * the ring is quiescent (between service rounds); the service
     * snapshot uses it to record the residue a crash would strand.
     */
    std::vector<WriteEvent> contents() const;

  private:
    // Slot payloads are published/consumed only through the
    // acquire/release head/tail protocol; the annotated accessors
    // are the closed set of functions touching them.
    // memcon:shard_local
    std::vector<WriteEvent> slots;
    std::size_t mask;

    // Head/tail are free-running indices (masked on access) so full
    // vs empty needs no wasted slot. Separate cache lines keep the
    // producer and consumer from false-sharing.
    alignas(64) std::atomic<std::uint64_t> head{0}; //!< consumer
    alignas(64) std::atomic<std::uint64_t> tail{0}; //!< producer
};

} // namespace memcon::service

#endif // MEMCON_SERVICE_INGEST_RING_HH
