/**
 * @file
 * memcond: the always-on multi-tenant MEMCON service host.
 *
 * One Memcond instance hosts N tenant sessions, each a private
 * cycle-accurate module (controller + OnlineMemcon) fed through a
 * bounded ingest ring (tenant.hh). Time advances in fixed service
 * rounds, each a three-phase step that follows the DESIGN.md §9
 * determinism contract:
 *
 *   1. serial plan, in tenant-index order: standing demand is read,
 *      the overload governor consumes one pressure scalar and picks
 *      the round's ladder stage, the shed set is chosen (lowest
 *      priority first), and the admission controller issues one
 *      typed verdict per tenant;
 *   2. parallel execute: every tenant runs its round on the thread
 *      pool - sessions share nothing, so any thread count yields the
 *      same bits;
 *   3. serial reduce, in tenant-index order: round reports are
 *      collected and the round is appended to the ingest journal.
 *
 * Crash safety: every snapshotEveryRounds rounds the full service
 * state (per-tenant counters + OnlineMemcon fingerprints + ring
 * residue + the ingest journal) is sealed to disk via
 * common/checkpoint's atomic-write discipline. run(resume=true)
 * rebuilds a SIGKILL'd service by replaying the journal through the
 * real consumer code path and refuses to continue unless every
 * rebuilt tenant fingerprint matches the snapshot bit-for-bit.
 *
 * An optional hung-round watchdog reuses common/supervisor: tenant
 * round tasks register with a CancelToken and a stuck task unwinds
 * into a ServiceError naming the tenant (exit code
 * kWatchdogExitCode at the daemon layer).
 */

#ifndef MEMCON_SERVICE_MEMCOND_HH
#define MEMCON_SERVICE_MEMCOND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "service/admission.hh"
#include "service/governor.hh"
#include "service/snapshot.hh"
#include "service/tenant.hh"

namespace memcon::service
{

struct MemcondConfig
{
    /** Artifact identity the snapshot fingerprint binds to. */
    std::string artifact = "memcond";

    std::uint64_t seed = 1;
    unsigned threads = 1;

    /** Service rounds to run. */
    std::uint64_t rounds = 48;

    /** Round length in ticks (must be a multiple of tCK). */
    Tick roundTicks = usToTicks(20.0);

    AdmissionConfig admission;
    GovernorConfig governor;

    /** Shared per-session runtime (geometry, mechanism config, ring
     * capacity, drop patience, oracle). horizonMs and seed are
     * derived by the host; leave them alone. */
    TenantRuntimeConfig tenant;

    /** Seal a service snapshot every N rounds; 0 disables. */
    std::uint64_t snapshotEveryRounds = 8;

    /** Snapshot file; empty disables snapshots (and resume). */
    std::string snapshotPath;

    /** Hung-round watchdog floor in ms; <= 0 disables it. */
    double supervisorTimeoutMs = 0.0;

    /** Invoked after each snapshot is durably on disk (the kill test
     * SIGKILLs itself in here). */
    std::function<void(std::uint64_t rounds_done)> snapshotHook;
};

class Memcond
{
  public:
    /**
     * Opens one session per spec through the admission controller;
     * throws ServiceError if any tenant is refused (the error text
     * carries the admission reason).
     */
    Memcond(const MemcondConfig &config, std::vector<TenantSpec> specs);
    ~Memcond();

    Memcond(const Memcond &) = delete;
    Memcond &operator=(const Memcond &) = delete;

    /**
     * Run the service to cfg.rounds. With resume=true the snapshot
     * at cfg.snapshotPath is loaded first, the journal is replayed,
     * and execution continues from the recorded round; throws
     * ServiceError (or ckpt::FingerprintMismatch) if the snapshot is
     * missing, malformed, from a different configuration, or the
     * replayed state does not match it bit-for-bit.
     */
    void run(bool resume = false);

    std::uint64_t roundsDone() const { return done; }
    // memcon:shard_scope - table size is fixed after construction
    std::size_t tenantCount() const { return sessions.size(); }
    // memcon:shard_scope - read-only view, callers use it quiescently
    const TenantSession &tenant(std::size_t i) const { return *sessions[i]; }

    GovernorStage stage() const { return governor.stage(); }
    const std::vector<GovernorStage> &stageHistory() const
    {
        return stages;
    }

    const AdmissionController &admissionController() const
    {
        return admission;
    }
    const OverloadGovernor &overloadGovernor() const { return governor; }

    /** Canonical per-tenant metric lines, in tenant order. */
    std::vector<std::string> metricsLines() const;

    /** CRC32 over the joined metric lines, as 8 hex digits - the
     * kill/resume comparison value. */
    std::string digest() const;

    /** Per-tenant telemetry as a StatGroup ("svc.<name>"): offered,
     * applied, drops, throttle time, p99 ingest latency, refresh
     * reduction, test overhead. */
    StatGroup tenantTelemetry(std::size_t i) const;

    /** The snapshot the service would seal right now. */
    ServiceSnapshot snapshotState() const;

    /** True once run(resume=true) rebuilt state from disk. */
    bool resumed() const { return didResume; }

  private:
    void planRound(std::uint64_t round, std::vector<RoundDirectives> *out);
    void runRounds();
    void replaySnapshot(const ServiceSnapshot &snap);
    ckpt::CampaignFingerprint fingerprint() const;

    MemcondConfig cfg;
    std::vector<TenantSpec> specs;

    AdmissionController admission;
    OverloadGovernor governor;
    // One session per tenant; inside a round worker i touches only
    // *sessions[i], and the table is resized only while no worker is
    // in flight.
    // memcon:shard_local
    std::vector<std::unique_ptr<TenantSession>> sessions;
    ThreadPool pool;

    std::uint64_t done = 0;
    bool didResume = false;
    std::vector<std::uint64_t> lastOffered; //!< per tenant, last round
    std::vector<GovernorStage> stages;      //!< one per completed round
    std::vector<RoundRecord> journal;       //!< ditto
};

} // namespace memcon::service

#endif // MEMCON_SERVICE_MEMCOND_HH
