#include "service/ingest_ring.hh"

#include "common/logging.hh"

namespace memcon::service
{

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

// memcon:shard_scope - construction precedes any concurrent use
IngestRing::IngestRing(std::size_t capacity)
{
    fatal_if(capacity == 0, "ingest ring needs at least one slot");
    std::size_t cap = roundUpPow2(capacity);
    slots.resize(cap);
    mask = cap - 1;
}

// memcon:shard_scope - producer endpoint
PushResult
IngestRing::tryPush(const WriteEvent &event)
{
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    const std::uint64_t h = head.load(std::memory_order_acquire);
    if (t - h >= slots.size())
        return PushResult::Full;
    slots[t & mask] = event;
    tail.store(t + 1, std::memory_order_release);
    return PushResult::Ok;
}

// memcon:shard_scope - consumer endpoint
bool
IngestRing::peek(WriteEvent *out) const
{
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h == t)
        return false;
    *out = slots[h & mask];
    return true;
}

void
IngestRing::popFront()
{
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    panic_if(h == t, "popFront() on an empty ingest ring");
    head.store(h + 1, std::memory_order_release);
}

bool
IngestRing::tryPop(WriteEvent *out)
{
    if (!peek(out))
        return false;
    popFront();
    return true;
}

// memcon:shard_scope - quiescent-only snapshot reader
std::vector<WriteEvent>
IngestRing::contents() const
{
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    std::vector<WriteEvent> out;
    out.reserve(static_cast<std::size_t>(t - h));
    for (std::uint64_t i = h; i != t; ++i)
        out.push_back(slots[i & mask]);
    return out;
}

std::size_t
IngestRing::size() const
{
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
}

} // namespace memcon::service
