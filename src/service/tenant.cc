#include "service/tenant.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::service
{

namespace
{

/** Deterministic per-tenant traffic seed, decorrelated by index. */
std::uint64_t
tenantSeed(std::uint64_t service_seed, std::size_t tenant_index)
{
    return hashMix64(service_seed ^
                     (0x7e9a37u + std::uint64_t{tenant_index} * 0x9e3779b9u));
}

trace::TenantTrafficConfig
trafficConfig(const TenantSpec &spec, const TenantRuntimeConfig &rc,
              std::size_t tenant_index)
{
    trace::TenantTrafficConfig t;
    t.rows = rc.geometry.totalRows();
    t.rateScale = spec.rateScale;
    t.horizonMs = rc.horizonMs;
    t.seed = tenantSeed(rc.seed, tenant_index);
    if (!spec.bankSet.empty()) {
        // Confine the tenant to its declared banks: it owns its
        // proportional share of the module's rows, and the stream
        // emits the physical row each logical row lands on. The
        // placement must tile exactly - a module whose rows do not
        // divide evenly over the banks is a config error, not a
        // truncation.
        const std::uint64_t shards = rc.memcon.addressMap.numShards();
        const std::uint64_t total = rc.geometry.totalRows();
        fatal_if(total % shards != 0,
                 "tenant '%s': %llu module rows do not tile over the "
                 "%llu-bank map '%s'",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(shards),
                 rc.memcon.addressMap.name().c_str());
        t.rows = total / shards * spec.bankSet.size();
        t.addressMap = rc.memcon.addressMap;
        t.bankSet = spec.bankSet;
        t.physicalRowLimit = total;
    }
    if (spec.hammerEnabled) {
        // Antagonist: the aggressor stream replaces the write process.
        // Bank, seed, and horizon come from the service runtime so the
        // attack is deterministic per tenant and stays inside the
        // module; a placed attacker hammers its first declared bank.
        t.hammerEnabled = true;
        t.hammer = spec.hammer;
        t.hammer.horizonMs = rc.horizonMs;
        t.hammer.seed = t.seed;
        t.addressMap = rc.memcon.addressMap;
        t.physicalRowLimit = rc.geometry.totalRows();
        if (!spec.bankSet.empty())
            t.hammer.bank = spec.bankSet.front();
    }
    return t;
}

core::OnlineMemcon::RowFailureOracle
failureOracle(const TenantRuntimeConfig &rc, std::size_t tenant_index)
{
    const std::uint64_t seed = tenantSeed(rc.seed, tenant_index) ^
                               0x0f1e2d3c4b5a6978ull;
    const std::uint64_t threshold =
        static_cast<std::uint64_t>(rc.failRowPercent * 100.0);
    return [seed, threshold](RowId row) {
        return hashMix64(seed ^ (row.value() * 0x9e3779b97f4a7c15ull)) %
                   10000 <
               threshold;
    };
}

} // namespace

TenantSession::TenantSession(const TenantSpec &spec,
                             const TenantRuntimeConfig &runtime,
                             std::size_t tenant_index)
    : tenantSpec(spec),
      rc(runtime),
      geom(runtime.geometry),
      timing(runtime.timing),
      stream(trafficConfig(spec, runtime, tenant_index)),
      ring(runtime.ringCapacity)
{
    sim::ControllerConfig mc_cfg;
    core::OnlineMemcon::installObserver(mc_cfg, memconSlot);
    mc = std::make_unique<sim::MemoryController>(geom, timing, mc_cfg);
    om = std::make_unique<core::OnlineMemcon>(
        geom, *mc, rc.memcon, failureOracle(runtime, tenant_index));
    memconSlot = om.get();
}

void
TenantSession::applyDirectives(const RoundDirectives &directives)
{
    om->setScansShed(directives.scansShed);
    om->setQuantumStretch(directives.quantumStretch);
}

void
TenantSession::produceCycle(Tick now, const RoundDirectives &directives)
{
    Tick at{};
    std::uint64_t row = 0;

    if (directives.shed) {
        // The governor dropped this tenant for the round: everything
        // that becomes due is counted as a shed drop, held event
        // included. Nothing vanishes silently.
        if (held) {
            held = false;
            ++droppedShedEv;
        }
        while (stream.peek(&at, &row) && at <= now) {
            stream.pop();
            ++generated;
            ++droppedShedEv;
        }
        return;
    }

    if (directives.throttled) {
        // Back off until the verdict's retry-after (the round end):
        // nothing is pulled or pushed, and every cycle a due event
        // sat waiting is accounted as throttle time.
        if (held || (stream.peek(&at, &row) && at <= now))
            throttledTk += static_cast<std::uint64_t>(timing.tCk.value());
        return;
    }

    // Normal production: move every due event into the ring. A Full
    // ring is explicit backpressure - hold the event and retry next
    // cycle, dropping it only once it has waited out the patience.
    while (true) {
        if (!held) {
            if (!stream.peek(&at, &row) || at > now)
                break;
            stream.pop();
            ++generated;
            heldEv = WriteEvent{at, row};
            held = true;
            holdSince = now;
        }
        if (ring.tryPush(heldEv) == PushResult::Ok) {
            held = false;
            continue;
        }
        if (now - holdSince > rc.dropPatience) {
            ++droppedBp;
            held = false;
            continue;
        }
        break; // keep holding; retry next cycle
    }
}

void
TenantSession::consumeCycle(Tick now, std::uint64_t &budget_left)
{
    // At most one apply per cycle. This is not a throughput limit in
    // practice (grants are far below the cycles per round); it is
    // what makes the crash-restore replay exact: a replayed event -
    // pre-pushed at round start instead of mid-round - can never
    // reach the controller on an earlier cycle than it did live,
    // because pops are paced one per cycle on both paths.
    if (budget_left == 0)
        return;

    WriteEvent ev;
    if (!ring.peek(&ev) || ev.at > now)
        return;

    sim::Request req;
    req.type = sim::Request::Type::Write;
    req.addr = geom.compose(geom.rowFromFlatIndex(RowId{ev.row}));
    if (!mc->enqueue(std::move(req), now))
        return; // controller queue full; the event stays in the ring

    ring.popFront();
    --budget_left;
    ++applied;
    latency.add((now - ev.at).value());
    roundApplied.push_back(ev);
}

RoundReport
TenantSession::runRound(const RoundDirectives &directives, Tick round_start,
                        Tick round_end, const CancelToken *token)
{
    applyDirectives(directives);
    roundApplied.clear();

    const std::uint64_t gen0 = generated;
    const std::uint64_t app0 = applied;
    std::uint64_t budget = directives.grant;

    std::uint64_t cycle = 0;
    for (Tick now = round_start + timing.tCk; now <= round_end;
         now += timing.tCk) {
        if (token && (++cycle & 0xfff) == 0)
            token->throwIfCancelled();
        produceCycle(now, directives);
        consumeCycle(now, budget);
        mc->tick(now);
        om->tick(now);
    }

    RoundReport report;
    report.generated = generated - gen0;
    report.applied = applied - app0;
    report.backlog = ring.size() + (held ? 1 : 0);
    return report;
}

void
TenantSession::replayRound(const RoundDirectives &directives,
                           Tick round_start, Tick round_end,
                           const std::vector<WriteEvent> &events)
{
    applyDirectives(directives);
    roundApplied.clear();

    // The journal's applied events are, by FIFO, a prefix of the live
    // ring order; pre-pushing them reconstructs exactly the slice of
    // the ring the round consumed.
    panic_if(!ring.empty(),
             "replayRound: ring not drained before round replay");
    for (const WriteEvent &ev : events)
        panic_if(ring.tryPush(ev) != PushResult::Ok,
                 "replayRound: journal round exceeds the ring capacity");

    std::uint64_t budget = directives.grant;
    for (Tick now = round_start + timing.tCk; now <= round_end;
         now += timing.tCk) {
        consumeCycle(now, budget);
        mc->tick(now);
        om->tick(now);
    }

    panic_if(!ring.empty(),
             "replayRound: %zu journaled events did not re-apply - the "
             "snapshot and the service code disagree",
             ring.size());
}

double
TenantSession::p99IngestTicks() const
{
    const std::uint64_t total = latency.totalCount();
    if (total == 0)
        return 0.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(0.99 * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < latency.numBuckets(); ++i) {
        seen += latency.count(i);
        if (seen >= rank) {
            // Report the bucket's upper edge (conservative), except
            // for the overflow bucket whose upper edge is infinite.
            return i + 1 == latency.numBuckets() ? latency.bucketLow(i)
                                                 : latency.bucketHigh(i);
        }
    }
    return latency.bucketLow(latency.numBuckets() - 1);
}

std::string
TenantSession::metricsLine() const
{
    return strprintf(
        "tenant=%s gen=%llu app=%llu dbp=%llu dsh=%llu thr=%llu "
        "backlog=%llu held=%d fp=%08x lo=%.17g red=%.17g "
        "tests=%llu/%llu/%llu/%llu dem=%llu pin=%llu p99=%.17g",
        tenantSpec.name.c_str(), (unsigned long long)generated,
        (unsigned long long)applied, (unsigned long long)droppedBp,
        (unsigned long long)droppedShedEv, (unsigned long long)throttledTk,
        (unsigned long long)(ring.size() + (held ? 1 : 0)), held ? 1 : 0,
        om->stateFingerprint(), om->loRefFraction(),
        om->emergentReduction(), (unsigned long long)om->testsStarted(),
        (unsigned long long)om->testsPassed(),
        (unsigned long long)om->testsFailed(),
        (unsigned long long)om->testsAborted(),
        (unsigned long long)om->demotions(),
        (unsigned long long)om->pinnedRows(), p99IngestTicks());
}

void
TenantSession::restoreProducer(std::uint64_t generated_count,
                               std::uint64_t dropped_bp,
                               std::uint64_t dropped_shed,
                               std::uint64_t throttled_ticks,
                               const std::vector<WriteEvent> &residue,
                               bool has_held, const WriteEvent &held_event,
                               Tick hold_since)
{
    panic_if(!ring.empty(),
             "restoreProducer: replay left events in the ring");
    stream.fastForward(generated_count);
    generated = generated_count;
    droppedBp = dropped_bp;
    droppedShedEv = dropped_shed;
    throttledTk = throttled_ticks;
    for (const WriteEvent &ev : residue)
        panic_if(ring.tryPush(ev) != PushResult::Ok,
                 "restoreProducer: snapshot residue exceeds the ring");
    held = has_held;
    heldEv = held_event;
    holdSince = hold_since;
}

} // namespace memcon::service
