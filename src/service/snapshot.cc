#include "service/snapshot.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace memcon::service
{

namespace
{

[[noreturn]] void
malformed(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string reason = vstrprintf(fmt, ap);
    va_end(ap);
    throw ServiceError("malformed service snapshot: " + reason);
}

std::string
eventList(const std::vector<WriteEvent> &events)
{
    std::string out;
    for (const WriteEvent &ev : events)
        out += strprintf(" %" PRIu64 ":%" PRIu64, ev.at.value(), ev.row);
    return out;
}

/** Parse `n` "t:r" tokens from the stream; throws on any deviation. */
std::vector<WriteEvent>
parseEvents(std::istringstream &in, std::size_t n, const char *line_tag)
{
    std::vector<WriteEvent> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::string token;
        if (!(in >> token))
            malformed("%s line ends after %zu of %zu events", line_tag, i,
                      n);
        std::uint64_t at = 0, row = 0;
        char tail = 0;
        if (std::sscanf(token.c_str(), "%" SCNu64 ":%" SCNu64 "%c", &at,
                        &row, &tail) != 2)
            malformed("%s line has a bad event token '%s'", line_tag,
                      token.c_str());
        events.push_back(WriteEvent{Tick{at}, row});
    }
    std::string extra;
    if (in >> extra)
        malformed("%s line has trailing token '%s'", line_tag,
                  extra.c_str());
    return events;
}

GovernorStage
parseStage(unsigned raw, const char *line_tag)
{
    if (raw > static_cast<unsigned>(GovernorStage::ShedTenants))
        malformed("%s line names unknown governor stage %u", line_tag, raw);
    return static_cast<GovernorStage>(raw);
}

} // namespace

std::string
encodeServiceSnapshot(const ServiceSnapshot &s)
{
    panic_if(s.journal.size() != s.roundsDone,
             "service snapshot journal (%zu rounds) disagrees with "
             "roundsDone=%" PRIu64,
             s.journal.size(), s.roundsDone);

    std::string body;
    std::size_t lines = 0;
    auto put = [&body, &lines](const std::string &payload) {
        body += ckpt::sealLine(payload);
        ++lines;
    };

    const ckpt::CampaignFingerprint &fp = s.fingerprint;
    put(strprintf("MEMCOND-SVC v1 artifact=%s seed=%" PRIu64
                  " tenants=%" PRIu64 " quick=%d labels=%08x",
                  fp.artifact.c_str(), fp.campaignSeed, fp.pointCount,
                  fp.quick ? 1 : 0, fp.labelsCrc));
    put(strprintf("G rounds=%" PRIu64 " stage=%u calm=%u esc=%" PRIu64
                  " relax=%" PRIu64 " admit=%" PRIu64 " throttle=%" PRIu64
                  " reject=%" PRIu64,
                  s.roundsDone, static_cast<unsigned>(s.stage),
                  s.calmStreak, s.escalations, s.relaxations, s.admits,
                  s.throttles, s.rejects));

    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
        const TenantSnapshotRecord &t = s.tenants[i];
        panic_if(t.describe.find('\n') != std::string::npos,
                 "tenant describe string must be single-line");
        put(strprintf("T idx=%zu name=%s gen=%" PRIu64 " dbp=%" PRIu64
                      " dsh=%" PRIu64 " thr=%" PRIu64 " loff=%" PRIu64
                      " fp=%08x desc=",
                      i, t.name.c_str(), t.generated,
                      t.droppedBackpressure, t.droppedShed,
                      t.throttledTicks, t.lastOffered, t.fingerprint) +
            t.describe);
        put(strprintf("R idx=%zu n=%zu", i, t.residue.size()) +
            eventList(t.residue));
        if (t.hasHeld)
            put(strprintf("H idx=%zu at=%" PRIu64 " row=%" PRIu64
                          " since=%" PRIu64,
                          i, t.held.at.value(), t.held.row,
                          t.heldSince.value()));
    }

    for (std::size_t r = 0; r < s.journal.size(); ++r) {
        const RoundRecord &round = s.journal[r];
        panic_if(round.grant.size() != s.tenants.size() ||
                     round.scansShed.size() != s.tenants.size() ||
                     round.quantumStretch.size() != s.tenants.size() ||
                     round.applied.size() != s.tenants.size(),
                 "journal round %zu does not cover every tenant", r);
        put(strprintf("J round=%zu stage=%u", r,
                      static_cast<unsigned>(round.stage)));
        for (std::size_t i = 0; i < s.tenants.size(); ++i)
            put(strprintf("D round=%zu idx=%zu grant=%" PRIu64
                          " scans=%d stretch=%u n=%zu",
                          r, i, round.grant[i],
                          round.scansShed[i] ? 1 : 0,
                          round.quantumStretch[i],
                          round.applied[i].size()) +
                eventList(round.applied[i]));
    }

    body += ckpt::sealLine(strprintf("END count=%zu total=%08x", lines,
                                     ckpt::crc32(body)));
    return body;
}

ServiceSnapshot
decodeServiceSnapshot(const std::string &content)
{
    if (content.empty())
        malformed("empty file");
    if (content.back() != '\n')
        malformed("does not end in a newline (truncated mid-line)");

    // Unseal every line up front; any torn or bit-flipped line fails
    // here before we interpret anything.
    std::vector<std::string> payloads;
    std::size_t pos = 0;
    std::size_t last_line_start = 0;
    while (pos < content.size()) {
        std::size_t nl = content.find('\n', pos);
        std::string line = content.substr(pos, nl - pos);
        std::string payload;
        if (!ckpt::unsealLine(line, &payload))
            malformed("line %zu failed its CRC seal", payloads.size() + 1);
        payloads.push_back(std::move(payload));
        last_line_start = pos;
        pos = nl + 1;
    }
    if (payloads.size() < 3)
        malformed("too short (%zu lines)", payloads.size());

    // The footer must be the last line and must cover every byte
    // above it.
    std::size_t footer_count = 0;
    std::uint32_t footer_crc = 0;
    if (std::sscanf(payloads.back().c_str(), "END count=%zu total=%8x",
                    &footer_count, &footer_crc) != 2)
        malformed("missing END footer");
    if (footer_count != payloads.size() - 1)
        malformed("footer counts %zu lines, file has %zu", footer_count,
                  payloads.size() - 1);
    if (ckpt::crc32(content.data(), last_line_start) != footer_crc)
        malformed("footer CRC does not cover the file body");

    ServiceSnapshot s;

    // Header.
    {
        char artifact[128] = {0};
        int quick = 0;
        if (std::sscanf(payloads[0].c_str(),
                        "MEMCOND-SVC v1 artifact=%127s seed=%" SCNu64
                        " tenants=%" SCNu64 " quick=%d labels=%8x",
                        artifact, &s.fingerprint.campaignSeed,
                        &s.fingerprint.pointCount, &quick,
                        &s.fingerprint.labelsCrc) != 5)
            malformed("bad header '%s'", payloads[0].c_str());
        s.fingerprint.artifact = artifact;
        s.fingerprint.quick = quick != 0;
    }

    // Governor/admission line.
    {
        unsigned stage_raw = 0;
        if (std::sscanf(payloads[1].c_str(),
                        "G rounds=%" SCNu64 " stage=%u calm=%u esc=%" SCNu64
                        " relax=%" SCNu64 " admit=%" SCNu64
                        " throttle=%" SCNu64 " reject=%" SCNu64,
                        &s.roundsDone, &stage_raw, &s.calmStreak,
                        &s.escalations, &s.relaxations, &s.admits,
                        &s.throttles, &s.rejects) != 8)
            malformed("bad governor line '%s'", payloads[1].c_str());
        s.stage = parseStage(stage_raw, "G");
    }

    const std::size_t tenant_count = s.fingerprint.pointCount;
    s.tenants.resize(tenant_count);
    s.journal.resize(s.roundsDone);
    for (RoundRecord &round : s.journal) {
        round.grant.assign(tenant_count, 0);
        round.scansShed.assign(tenant_count, false);
        round.quantumStretch.assign(tenant_count, 1);
        round.applied.assign(tenant_count, {});
    }

    std::vector<bool> seen_tenant(tenant_count, false);
    std::vector<bool> seen_residue(tenant_count, false);
    std::vector<bool> seen_round(s.roundsDone, false);
    std::vector<std::vector<bool>> seen_grant(
        s.roundsDone, std::vector<bool>(tenant_count, false));

    for (std::size_t li = 2; li + 1 < payloads.size(); ++li) {
        const std::string &p = payloads[li];
        std::istringstream in(p);
        std::string tag;
        in >> tag;
        if (tag == "T") {
            std::size_t idx = 0;
            char name[128] = {0};
            std::uint64_t gen, dbp, dsh, thr, loff;
            std::uint32_t fp32;
            if (std::sscanf(p.c_str(),
                            "T idx=%zu name=%127s gen=%" SCNu64
                            " dbp=%" SCNu64 " dsh=%" SCNu64
                            " thr=%" SCNu64 " loff=%" SCNu64 " fp=%8x",
                            &idx, name, &gen, &dbp, &dsh, &thr, &loff,
                            &fp32) != 8)
                malformed("bad tenant line '%s'", p.c_str());
            std::size_t desc = p.find(" desc=");
            if (desc == std::string::npos)
                malformed("tenant line misses its desc field");
            if (idx >= tenant_count)
                malformed("tenant index %zu out of range", idx);
            if (seen_tenant[idx])
                malformed("duplicate tenant line idx=%zu", idx);
            seen_tenant[idx] = true;
            TenantSnapshotRecord &t = s.tenants[idx];
            t.name = name;
            t.generated = gen;
            t.droppedBackpressure = dbp;
            t.droppedShed = dsh;
            t.throttledTicks = thr;
            t.lastOffered = loff;
            t.fingerprint = fp32;
            t.describe = p.substr(desc + 6);
        } else if (tag == "R") {
            std::size_t idx = 0, n = 0;
            std::string f1, f2;
            if (!(in >> f1 >> f2) ||
                std::sscanf(f1.c_str(), "idx=%zu", &idx) != 1 ||
                std::sscanf(f2.c_str(), "n=%zu", &n) != 1)
                malformed("bad residue line '%s'", p.c_str());
            if (idx >= tenant_count)
                malformed("residue index %zu out of range", idx);
            if (seen_residue[idx])
                malformed("duplicate residue line idx=%zu", idx);
            seen_residue[idx] = true;
            s.tenants[idx].residue = parseEvents(in, n, "R");
        } else if (tag == "H") {
            std::size_t idx = 0;
            std::uint64_t at, row, since;
            if (std::sscanf(p.c_str(),
                            "H idx=%zu at=%" SCNu64 " row=%" SCNu64
                            " since=%" SCNu64,
                            &idx, &at, &row, &since) != 4)
                malformed("bad held-event line '%s'", p.c_str());
            if (idx >= tenant_count)
                malformed("held-event index %zu out of range", idx);
            if (s.tenants[idx].hasHeld)
                malformed("duplicate held-event line idx=%zu", idx);
            s.tenants[idx].hasHeld = true;
            s.tenants[idx].held = WriteEvent{Tick{at}, row};
            s.tenants[idx].heldSince = Tick{since};
        } else if (tag == "J") {
            std::size_t round = 0;
            unsigned stage_raw = 0;
            if (std::sscanf(p.c_str(), "J round=%zu stage=%u", &round,
                            &stage_raw) != 2)
                malformed("bad journal line '%s'", p.c_str());
            if (round >= s.roundsDone)
                malformed("journal round %zu out of range", round);
            if (seen_round[round])
                malformed("duplicate journal round %zu", round);
            seen_round[round] = true;
            s.journal[round].stage = parseStage(stage_raw, "J");
        } else if (tag == "D") {
            std::size_t round = 0, idx = 0, n = 0;
            std::string f1, f2, f3, f4, f5, f6;
            std::uint64_t grant = 0;
            int scans = 0;
            unsigned stretch = 1;
            if (!(in >> f1 >> f2 >> f3 >> f4 >> f5 >> f6) ||
                std::sscanf(f1.c_str(), "round=%zu", &round) != 1 ||
                std::sscanf(f2.c_str(), "idx=%zu", &idx) != 1 ||
                std::sscanf(f3.c_str(), "grant=%" SCNu64, &grant) != 1 ||
                std::sscanf(f4.c_str(), "scans=%d", &scans) != 1 ||
                std::sscanf(f5.c_str(), "stretch=%u", &stretch) != 1 ||
                std::sscanf(f6.c_str(), "n=%zu", &n) != 1)
                malformed("bad journal-detail line '%s'", p.c_str());
            if (round >= s.roundsDone || idx >= tenant_count)
                malformed("journal detail (round=%zu idx=%zu) out of "
                          "range",
                          round, idx);
            if (seen_grant[round][idx])
                malformed("duplicate journal detail round=%zu idx=%zu",
                          round, idx);
            if (stretch == 0)
                malformed("journal detail round=%zu idx=%zu has zero "
                          "quantum stretch",
                          round, idx);
            seen_grant[round][idx] = true;
            s.journal[round].grant[idx] = grant;
            s.journal[round].scansShed[idx] = scans != 0;
            s.journal[round].quantumStretch[idx] = stretch;
            s.journal[round].applied[idx] = parseEvents(in, n, "D");
        } else {
            malformed("unknown line tag '%s'", tag.c_str());
        }
    }

    for (std::size_t i = 0; i < tenant_count; ++i) {
        if (!seen_tenant[i])
            malformed("tenant %zu has no T line", i);
        if (!seen_residue[i])
            malformed("tenant %zu has no R line", i);
    }
    for (std::size_t r = 0; r < s.roundsDone; ++r) {
        if (!seen_round[r])
            malformed("round %zu has no J line", r);
        for (std::size_t i = 0; i < tenant_count; ++i)
            if (!seen_grant[r][i])
                malformed("round %zu tenant %zu has no D line", r, i);
    }
    return s;
}

void
saveServiceSnapshot(const std::string &path, const ServiceSnapshot &s)
{
    std::string error;
    if (!ckpt::atomicWriteFile(path, encodeServiceSnapshot(s), &error))
        fatal("service snapshot write to '%s' failed: %s", path.c_str(),
              error.c_str());
}

ServiceSnapshot
loadServiceSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ServiceError("cannot open service snapshot '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return decodeServiceSnapshot(buf.str());
}

} // namespace memcon::service
