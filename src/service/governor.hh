/**
 * @file
 * The overload governor: staged, bounded degradation for memcond.
 *
 * Mirrors the resilience ladder in core/resilience.hh (demote ->
 * backoff -> panic-fallback), but for *load* instead of errors. The
 * stages, in the order they engage:
 *
 *   Normal        -> full service
 *   ShedScans     -> background read-only scans and LO-REF re-scrub
 *                    top-ups pause (OnlineMemcon::setScansShed);
 *                    cheapest first, no tenant-visible effect
 *   StretchQuanta -> PRIL quanta stretch by a configured factor
 *                    (OnlineMemcon::setQuantumStretch): testing slows,
 *                    refresh reduction degrades gracefully
 *   ShedTenants   -> lowest-priority tenants are shed for the round;
 *                    their events are counted as shed drops, never
 *                    silently lost
 *
 * The governor only picks the stage; memcond's planner targets the
 * scan-shed and quantum-stretch knobs at the tenants whose demand
 * exceeds their quota, so an in-quota tenant co-located with an
 * antagonist keeps its full mechanism (and its refresh reduction).
 *
 * The input is one scalar per round: pressure = standing demand over
 * global apply budget. The governor escalates one stage per round
 * while pressure exceeds the enter threshold and de-escalates one
 * stage after `coolRounds` consecutive calm rounds (hysteresis: the
 * exit threshold sits below the entry threshold so the ladder cannot
 * flap). Pure integer/double state updated once per round in the
 * serial planning phase, so the stage sequence is deterministic and
 * journals cleanly.
 */

#ifndef MEMCON_SERVICE_GOVERNOR_HH
#define MEMCON_SERVICE_GOVERNOR_HH

#include <cstdint>

#include "common/logging.hh"

namespace memcon::service
{

enum class GovernorStage : unsigned
{
    Normal = 0,
    ShedScans = 1,
    StretchQuanta = 2,
    ShedTenants = 3,
};

const char *toString(GovernorStage stage);

struct GovernorConfig
{
    /** Escalate while pressure exceeds this. */
    double enterPressure = 1.0;

    /** A round below this counts toward de-escalation. */
    double exitPressure = 0.75;

    /** Calm rounds required before stepping one stage down. */
    unsigned coolRounds = 4;

    /** Quantum stretch factor applied at >= StretchQuanta. */
    unsigned quantumStretch = 4;
};

class OverloadGovernor
{
  public:
    explicit OverloadGovernor(const GovernorConfig &config);

    /** Feed one round's pressure; @return the stage for that round. */
    GovernorStage update(double pressure);

    GovernorStage stage() const { return current; }

    std::uint64_t escalations() const { return escalated; }
    std::uint64_t relaxations() const { return relaxed; }

    /** Re-seat the ladder from a service snapshot. */
    void restore(GovernorStage stage, unsigned calm_streak,
                 std::uint64_t escalations, std::uint64_t relaxations);

    const GovernorConfig &config() const { return cfg; }
    unsigned calmStreak() const { return calm; }

  private:
    GovernorConfig cfg;
    GovernorStage current = GovernorStage::Normal;
    unsigned calm = 0;
    std::uint64_t escalated = 0;
    std::uint64_t relaxed = 0;
};

} // namespace memcon::service

#endif // MEMCON_SERVICE_GOVERNOR_HH
