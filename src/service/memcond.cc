#include "service/memcond.hh"

#include <chrono>
#include <future>
#include <numeric>
#include <optional>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/supervisor.hh"

namespace memcon::service
{

namespace
{

bool
stageAtLeast(GovernorStage stage, GovernorStage floor)
{
    return static_cast<unsigned>(stage) >= static_cast<unsigned>(floor);
}

} // namespace

// memcon:shard_scope - builds the session table before any worker runs
Memcond::Memcond(const MemcondConfig &config, std::vector<TenantSpec> ts)
    : cfg(config),
      specs(std::move(ts)),
      admission(config.admission),
      governor(config.governor),
      pool(std::max(1u, config.threads))
{
    fatal_if(specs.empty(), "memcond needs at least one tenant");
    fatal_if(cfg.rounds == 0, "memcond needs at least one round");
    fatal_if(cfg.roundTicks.value() % cfg.tenant.timing.tCk.value() != 0,
             "round length must be a whole number of DRAM cycles");

    // The traffic horizon must outlast the service (with margin, so
    // the generators never dry up mid-round).
    cfg.tenant.seed = cfg.seed;
    cfg.tenant.horizonMs =
        ticksToMs(cfg.roundTicks).value() *
            static_cast<double>(cfg.rounds) * 1.25 +
        0.05;

    sessions.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        Verdict v = admission.openSession(specs[i].name,
                                          specs[i].quotaPerRound);
        if (v.kind != VerdictKind::Admit)
            throw ServiceError("tenant '" + specs[i].name +
                               "' refused admission: " + v.reason);
        sessions.push_back(
            std::make_unique<TenantSession>(specs[i], cfg.tenant, i));
    }
    lastOffered.assign(specs.size(), 0);
}

Memcond::~Memcond() = default;

ckpt::CampaignFingerprint
Memcond::fingerprint() const
{
    // Everything that shapes the deterministic run goes into the
    // label CRC; a snapshot from any differently-configured service
    // is rejected before any replay work happens.
    std::string labels;
    for (const TenantSpec &t : specs) {
        labels += strprintf("tenant=%s prio=%u rate=%.17g quota=%llu",
                            t.name.c_str(), t.priority, t.rateScale,
                            (unsigned long long)t.quotaPerRound);
        // Bank placement reshapes the tenant's whole event stream, so
        // it gates snapshot compatibility like any other spec field.
        for (unsigned b : t.bankSet)
            labels += strprintf(" bank=%u", b);
        labels += "\n";
    }
    const TenantRuntimeConfig &rt = cfg.tenant;
    labels += strprintf(
        "geom=%ux%ux%ux%llu ring=%zu patience=%llu fail=%.17g\n",
        rt.geometry.channels, rt.geometry.ranks, rt.geometry.banks,
        (unsigned long long)rt.geometry.rowsPerBank, rt.ringCapacity,
        (unsigned long long)rt.dropPatience.value(), rt.failRowPercent);
    labels += strprintf(
        "mech q=%llu idle=%llu retarget=%llu slots=%zu words=%zu "
        "map=%s\n",
        (unsigned long long)rt.memcon.quantum.value(),
        (unsigned long long)rt.memcon.testIdle.value(),
        (unsigned long long)rt.memcon.retargetPeriod.value(),
        rt.memcon.testEngine.slots, rt.memcon.testEngine.wordsPerRow,
        rt.memcon.addressMap.name().c_str());
    labels += strprintf(
        "admission budget=%llu maxq=%llu maxg=%llu\n",
        (unsigned long long)cfg.admission.globalBudgetPerRound,
        (unsigned long long)cfg.admission.maxQuotaPerRound,
        (unsigned long long)cfg.admission.maxGrantPerRound);
    labels += strprintf("governor enter=%.17g exit=%.17g cool=%u "
                        "stretch=%u\n",
                        cfg.governor.enterPressure,
                        cfg.governor.exitPressure, cfg.governor.coolRounds,
                        cfg.governor.quantumStretch);
    labels += strprintf("rounds=%llu roundTicks=%llu",
                        (unsigned long long)cfg.rounds,
                        (unsigned long long)cfg.roundTicks.value());

    ckpt::CampaignFingerprint fp;
    fp.artifact = cfg.artifact;
    fp.campaignSeed = cfg.seed;
    fp.pointCount = specs.size();
    fp.quick = false;
    fp.labelsCrc = ckpt::crc32(labels);
    return fp;
}

// memcon:shard_scope - serial phase between parallel rounds
void
Memcond::planRound(std::uint64_t round, std::vector<RoundDirectives> *out)
{
    const std::size_t n = sessions.size();
    std::vector<TenantDemand> demands(n);
    std::uint64_t standing = 0;
    for (std::size_t i = 0; i < n; ++i) {
        demands[i].backlog =
            sessions[i]->ringBacklog() +
            (sessions[i]->hasHeldEvent() ? 1 : 0);
        demands[i].lastOffered = lastOffered[i];
        demands[i].quota = specs[i].quotaPerRound;
        demands[i].priority = specs[i].priority;
        standing += demands[i].backlog + demands[i].lastOffered;
    }

    const double pressure =
        static_cast<double>(standing) /
        static_cast<double>(cfg.admission.globalBudgetPerRound);
    const GovernorStage stage = governor.update(pressure);

    if (stage == GovernorStage::ShedTenants) {
        // Shed lowest priority first (ties: highest index first)
        // until the surviving quotas fit the budget; never shed the
        // last survivor.
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [this](std::size_t a, std::size_t b) {
                             if (specs[a].priority != specs[b].priority)
                                 return specs[a].priority <
                                        specs[b].priority;
                             return a > b;
                         });
        std::uint64_t surviving_quota = 0;
        for (std::size_t i = 0; i < n; ++i)
            surviving_quota += specs[i].quotaPerRound;
        std::size_t survivors = n;
        for (std::size_t i : order) {
            if (surviving_quota <= cfg.admission.globalBudgetPerRound ||
                survivors == 1)
                break;
            demands[i].shed = true;
            surviving_quota -= specs[i].quotaPerRound;
            --survivors;
        }
    }

    const Tick round_end = cfg.roundTicks * (round + 1);
    std::vector<Verdict> verdicts = admission.planRound(demands, round_end);

    out->assign(n, RoundDirectives{});
    for (std::size_t i = 0; i < n; ++i) {
        RoundDirectives &d = (*out)[i];
        // The scan-shed and quantum-stretch stages target the
        // tenants actually driving the pressure (demand above
        // quota); an in-quota tenant co-located with an antagonist
        // keeps its full mechanism, which is what preserves its
        // refresh reduction.
        const bool over_quota =
            demands[i].backlog + demands[i].lastOffered >
            demands[i].quota;
        d.scansShed =
            stageAtLeast(stage, GovernorStage::ShedScans) && over_quota;
        d.quantumStretch =
            stageAtLeast(stage, GovernorStage::StretchQuanta) &&
                    over_quota
                ? cfg.governor.quantumStretch
                : 1;
        d.shed = verdicts[i].kind == VerdictKind::Reject;
        d.throttled = verdicts[i].kind == VerdictKind::Throttle;
        d.grant = verdicts[i].grant;
    }
}

// memcon:shard_scope - hands sessions[i] to worker i; the table
// itself is never resized while workers are in flight
void
Memcond::runRounds()
{
    const std::size_t n = sessions.size();

    std::optional<Supervisor> watchdog;
    if (cfg.supervisorTimeoutMs > 0) {
        SupervisorConfig scfg;
        scfg.floorTimeoutMs = cfg.supervisorTimeoutMs;
        watchdog.emplace(scfg, (cfg.rounds - done) * n);
    }

    for (std::uint64_t r = done; r < cfg.rounds; ++r) {
        std::vector<RoundDirectives> dirs;
        planRound(r, &dirs);

        const Tick start = cfg.roundTicks * r;
        const Tick end = cfg.roundTicks * (r + 1);

        std::vector<RoundReport> reports(n);
        std::vector<std::future<void>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(pool.submit([this, &dirs, &reports,
                                           &watchdog, i, r, n, start,
                                           end] {
                const std::size_t task = r * n + i;
                CancelToken token;
                if (watchdog)
                    watchdog->beginTask(task, specs[i].name, 1, token);
                // Wall time here is supervision-only: it feeds the
                // watchdog's adaptive deadline, never a metric.
                // lint:allow(wall-clock)
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    reports[i] = sessions[i]->runRound(
                        dirs[i], start, end, watchdog ? &token : nullptr);
                } catch (...) {
                    if (watchdog)
                        watchdog->endTask(task, false, 0.0);
                    throw;
                }
                if (watchdog) {
                    // lint:allow(wall-clock) - supervision only.
                    const auto t1 = std::chrono::steady_clock::now();
                    watchdog->endTask(
                        task, true,
                        std::chrono::duration<double, std::milli>(t1 - t0)
                            .count());
                }
            }));
        }

        for (std::size_t i = 0; i < n; ++i) {
            try {
                futures[i].get();
            } catch (const TaskCancelled &) {
                throw ServiceError(strprintf(
                    "tenant '%s' hung in round %llu and was cancelled "
                    "by the watchdog: %s",
                    specs[i].name.c_str(), (unsigned long long)r,
                    watchdog ? watchdog->failureReason().c_str()
                             : "no supervisor"));
            }
        }

        // Serial reduce, tenant order: reports, journal, telemetry.
        RoundRecord rec;
        rec.stage = governor.stage();
        rec.grant.resize(n);
        rec.scansShed.resize(n);
        rec.quantumStretch.resize(n);
        rec.applied.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            rec.grant[i] = dirs[i].grant;
            rec.scansShed[i] = dirs[i].scansShed;
            rec.quantumStretch[i] = dirs[i].quantumStretch;
            rec.applied[i] = sessions[i]->lastRoundApplied();
            lastOffered[i] = reports[i].generated;
        }
        journal.push_back(std::move(rec));
        stages.push_back(governor.stage());
        ++done;

        if (!cfg.snapshotPath.empty() && cfg.snapshotEveryRounds != 0 &&
            done % cfg.snapshotEveryRounds == 0) {
            saveServiceSnapshot(cfg.snapshotPath, snapshotState());
            if (cfg.snapshotHook)
                cfg.snapshotHook(done);
        }
    }
}

// memcon:shard_scope - single-threaded resume path
void
Memcond::replaySnapshot(const ServiceSnapshot &snap)
{
    ckpt::requireFingerprintMatch(snap.fingerprint, fingerprint());

    const std::size_t n = sessions.size();
    for (std::uint64_t r = 0; r < snap.roundsDone; ++r) {
        const RoundRecord &rec = snap.journal[r];
        const Tick start = cfg.roundTicks * r;
        const Tick end = cfg.roundTicks * (r + 1);

        std::vector<std::future<void>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(pool.submit([this, &rec, i, start, end] {
                RoundDirectives d;
                d.scansShed = rec.scansShed[i];
                d.quantumStretch = rec.quantumStretch[i];
                d.grant = rec.grant[i];
                sessions[i]->replayRound(d, start, end, rec.applied[i]);
            }));
        }
        for (auto &f : futures)
            f.get();
    }

    for (std::size_t i = 0; i < n; ++i) {
        const TenantSnapshotRecord &t = snap.tenants[i];
        sessions[i]->restoreProducer(t.generated, t.droppedBackpressure,
                                     t.droppedShed, t.throttledTicks,
                                     t.residue, t.hasHeld, t.held,
                                     t.heldSince);
        lastOffered[i] = t.lastOffered;
    }

    // The gate: every rebuilt mechanism must match the snapshot
    // bit-for-bit, or the resume is refused with both sides named.
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t found = sessions[i]->stateFingerprint();
        if (found != snap.tenants[i].fingerprint)
            throw ServiceError(strprintf(
                "tenant '%s' diverged during journal replay\n"
                "  found:    %s\n"
                "  expected: fp=%08x %s",
                specs[i].name.c_str(),
                sessions[i]->memcon().describeState().c_str(),
                snap.tenants[i].fingerprint,
                snap.tenants[i].describe.c_str()));
    }

    governor.restore(snap.stage, snap.calmStreak, snap.escalations,
                     snap.relaxations);
    admission.restoreCounters(snap.admits, snap.throttles, snap.rejects);

    journal = snap.journal;
    stages.clear();
    for (const RoundRecord &rec : journal)
        stages.push_back(rec.stage);
    done = snap.roundsDone;
    didResume = true;
}

void
Memcond::run(bool resume)
{
    panic_if(done != 0 || didResume, "Memcond::run() is one-shot");
    if (resume) {
        if (cfg.snapshotPath.empty())
            throw ServiceError("resume requested but the service has no "
                               "snapshot path");
        replaySnapshot(loadServiceSnapshot(cfg.snapshotPath));
    }
    runRounds();
}

// memcon:shard_scope - quiescent-only (between rounds)
ServiceSnapshot
Memcond::snapshotState() const
{
    ServiceSnapshot s;
    s.fingerprint = fingerprint();
    s.roundsDone = done;
    s.stage = governor.stage();
    s.calmStreak = governor.calmStreak();
    s.escalations = governor.escalations();
    s.relaxations = governor.relaxations();
    s.admits = admission.admitCount();
    s.throttles = admission.throttleCount();
    s.rejects = admission.rejectCount();

    s.tenants.resize(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        TenantSnapshotRecord &t = s.tenants[i];
        const TenantSession &ses = *sessions[i];
        t.name = specs[i].name;
        t.generated = ses.generatedCount();
        t.droppedBackpressure = ses.droppedBackpressure();
        t.droppedShed = ses.droppedShed();
        t.throttledTicks = ses.throttledTicks();
        t.lastOffered = lastOffered[i];
        t.fingerprint = ses.stateFingerprint();
        t.describe = ses.memcon().describeState();
        t.residue = ses.ringResidue();
        t.hasHeld = ses.hasHeldEvent();
        t.held = ses.heldEvent();
        t.heldSince = ses.heldSince();
    }
    s.journal = journal;
    return s;
}

// memcon:shard_scope - quiescent-only (between rounds)
std::vector<std::string>
Memcond::metricsLines() const
{
    std::vector<std::string> lines;
    lines.reserve(sessions.size());
    for (const auto &ses : sessions)
        lines.push_back(ses->metricsLine());
    return lines;
}

std::string
Memcond::digest() const
{
    std::string joined;
    for (const std::string &line : metricsLines())
        joined += line + "\n";
    return strprintf("%08x", ckpt::crc32(joined));
}

// memcon:shard_scope - quiescent-only (between rounds)
StatGroup
Memcond::tenantTelemetry(std::size_t i) const
{
    const TenantSession &ses = *sessions[i];
    StatGroup g("svc." + specs[i].name);
    g.set("offered", static_cast<double>(ses.generatedCount()));
    g.set("applied", static_cast<double>(ses.appliedCount()));
    g.set("drops.backpressure",
          static_cast<double>(ses.droppedBackpressure()));
    g.set("drops.shed", static_cast<double>(ses.droppedShed()));
    g.set("throttle.ticks", static_cast<double>(ses.throttledTicks()));
    g.set("backlog", static_cast<double>(ses.ringBacklog() +
                                         (ses.hasHeldEvent() ? 1 : 0)));
    g.set("latency.p99.ticks", ses.p99IngestTicks());
    g.set("refresh.reduction", ses.memcon().emergentReduction());
    g.set("lo.fraction", ses.memcon().loRefFraction());
    g.set("tests.started",
          static_cast<double>(ses.memcon().testsStarted()));
    g.set("tests.aborted",
          static_cast<double>(ses.memcon().testsAborted()));
    return g;
}

} // namespace memcon::service
