/**
 * @file
 * One tenant session in the memcond service: a private module
 * (geometry + cycle-accurate controller + OnlineMemcon) fed through a
 * bounded ingest ring by a trace-derived write stream.
 *
 * The session runs in fixed service rounds. Each round the service's
 * serial planner hands it a RoundDirectives (its admission grant, the
 * governor stage's shed/stretch knobs); the session then advances its
 * module cycle by cycle, moving due events from the generator into
 * the ring (producer side) and from the ring into the controller
 * (consumer side, paced by the grant). Backpressure is explicit: a
 * full ring makes the producer hold its event and retry each cycle,
 * dropping it - counted, never silent - only once it is older than
 * the drop patience. The accounting identity
 *
 *   generated = applied + droppedBackpressure + droppedShed
 *             + ringBacklog + held
 *
 * holds at every round boundary and is what the reconciliation tests
 * assert.
 *
 * replayRound() is the crash-restore path: the round's recorded
 * applied events are pre-pushed into the ring and the same consumer
 * loop runs with the producer disabled. Because the consumer only
 * applies events once due (event tick <= now) and the controller's
 * acceptance is a deterministic function of replayed state, the
 * module re-reaches the exact pre-crash state; the per-tenant
 * OnlineMemcon fingerprint recorded in the snapshot is then checked
 * bit-for-bit.
 */

#ifndef MEMCON_SERVICE_TENANT_HH
#define MEMCON_SERVICE_TENANT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "core/online_memcon.hh"
#include "dram/organization.hh"
#include "dram/timing.hh"
#include "service/ingest_ring.hh"
#include "sim/controller.hh"
#include "trace/tenant_stream.hh"

namespace memcon::service
{

/** A tenant as declared to the service at session-open time. */
struct TenantSpec
{
    std::string name;

    /** Higher priorities survive the shed stage longer and win
     * leftover admission budget first. */
    unsigned priority = 1;

    /** Traffic time-compression (see trace::TenantTrafficConfig). */
    double rateScale = 1.0;

    /** Declared event quota per service round. */
    std::uint64_t quotaPerRound = 8;

    /**
     * Bank placement within the tenant's module: when non-empty, the
     * tenant's write traffic is confined to exactly these banks of
     * the runtime config's `memcon.addressMap`, spread round-robin
     * (see trace::TenantTrafficConfig). The tenant then owns
     * totalRows * |bankSet| / numShards rows - its proportional share
     * of the module. Empty keeps the whole-module default,
     * bit-identical to a spec without placement.
     */
    std::vector<unsigned> bankSet;

    /**
     * Antagonist mode: this tenant is a RowHammer attacker replaying
     * the given aggressor persona instead of the benign write
     * process (trace/hammer.hh). Its events flow through the same
     * ingest ring, quota, and admission machinery - co-running with
     * benign tenants is the point. The spec's bank/seed/horizon are
     * filled in by the session from the runtime config; `hammer.kind`
     * and `hammer.sides`/`hammer.actsPerUs` pick the attack.
     */
    bool hammerEnabled = false;
    trace::HammerSpec hammer;
};

/** Service-level knobs every session shares. */
struct TenantRuntimeConfig
{
    dram::Geometry geometry;
    dram::TimingParams timing =
        dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    core::OnlineMemconConfig memcon;

    /** Ingest ring slots (rounded up to a power of two). */
    std::size_t ringCapacity = 64;

    /** Hold a backpressured event at most this long before dropping
     * (measured from when the producer first held it). */
    Tick dropPatience = usToTicks(40.0);

    /** Percent of rows whose content fails at LO-REF (oracle). */
    double failRowPercent = 10.0;

    /** Traffic horizon the generators must cover, in ms. */
    double horizonMs = 2.0;

    std::uint64_t seed = 1;
};

/** Per-round verdict + governor knobs, as the planner decided them. */
struct RoundDirectives
{
    bool scansShed = false;    //!< governor stage >= ShedScans
    unsigned quantumStretch = 1; //!< > 1 at stage >= StretchQuanta
    bool shed = false;         //!< governor dropped this tenant
    bool throttled = false;    //!< demand but zero grant this round
    std::uint64_t grant = 0;   //!< events this round may apply
};

/** What one round did, for the planner's next-round demand input. */
struct RoundReport
{
    std::uint64_t generated = 0; //!< events pulled from the stream
    std::uint64_t applied = 0;
    std::uint64_t backlog = 0;   //!< ring + held, after the round
};

class TenantSession
{
  public:
    TenantSession(const TenantSpec &spec, const TenantRuntimeConfig &rc,
                  std::size_t tenant_index);

    TenantSession(const TenantSession &) = delete;
    TenantSession &operator=(const TenantSession &) = delete;

    /**
     * Advance one live service round over (round_start, round_end].
     * @param token  optional watchdog cancel token, polled every few
     *               thousand cycles; cancellation unwinds with
     *               TaskCancelled.
     */
    RoundReport runRound(const RoundDirectives &directives,
                         Tick round_start, Tick round_end,
                         const CancelToken *token = nullptr);

    /**
     * Re-run a recorded round: `applied` (the journal's event list
     * for this tenant and round, in apply order) is pre-pushed into
     * the ring and the consumer replays it against the rebuilt module
     * state; the producer stays off. Panics if the ring cannot drain
     * the recorded events by round end - that means the snapshot and
     * the code disagree.
     */
    void replayRound(const RoundDirectives &directives, Tick round_start,
                     Tick round_end,
                     const std::vector<WriteEvent> &applied);

    const TenantSpec &spec() const { return tenantSpec; }

    // --- producer-side counters -------------------------------------
    std::uint64_t generatedCount() const { return generated; }
    std::uint64_t appliedCount() const { return applied; }
    std::uint64_t droppedBackpressure() const { return droppedBp; }
    std::uint64_t droppedShed() const { return droppedShedEv; }
    std::uint64_t throttledTicks() const { return throttledTk; }

    /** Events parked in the ring right now. */
    std::uint64_t ringBacklog() const { return ring.size(); }

    bool hasHeldEvent() const { return held; }
    const WriteEvent &heldEvent() const { return heldEv; }
    Tick heldSince() const { return holdSince; }

    /** Copy the ring's current contents, front to back (snapshot
     * residue capture; the events stay queued). */
    std::vector<WriteEvent> ringResidue() const { return ring.contents(); }

    /** The events this tenant applied in the last (re)run round, in
     * apply order - the journal's per-round record. */
    const std::vector<WriteEvent> &lastRoundApplied() const
    {
        return roundApplied;
    }

    /** p99 ingest-to-apply latency in sim ticks (0 if no samples). */
    double p99IngestTicks() const;

    // --- mechanism telemetry ----------------------------------------
    core::OnlineMemcon &memcon() { return *om; }
    const core::OnlineMemcon &memcon() const { return *om; }
    std::uint32_t stateFingerprint() const
    {
        return om->stateFingerprint();
    }

    /**
     * Canonical one-line metric digest for this tenant. Everything
     * the kill/resume test compares is in here; doubles print with
     * %.17g so the line is bit-exact across runs and thread counts.
     */
    std::string metricsLine() const;

    // --- crash-restore hooks ----------------------------------------
    /**
     * Re-seat the producer-side state from a service snapshot, after
     * the journal replay rebuilt the consumer side: fast-forwards the
     * generator to the recorded position, re-parks the recorded ring
     * residue and held event, and restores the drop/throttle
     * counters the replay (producer off) could not re-accumulate.
     */
    void restoreProducer(std::uint64_t generated_count,
                         std::uint64_t dropped_bp,
                         std::uint64_t dropped_shed,
                         std::uint64_t throttled_ticks,
                         const std::vector<WriteEvent> &residue,
                         bool has_held, const WriteEvent &held_event,
                         Tick hold_since);

  private:
    void applyDirectives(const RoundDirectives &directives);
    void produceCycle(Tick now, const RoundDirectives &directives);
    void consumeCycle(Tick now, std::uint64_t &budget_left);

    TenantSpec tenantSpec;
    TenantRuntimeConfig rc;
    dram::Geometry geom;
    dram::TimingParams timing;

    core::OnlineMemcon *memconSlot = nullptr;
    std::unique_ptr<sim::MemoryController> mc;
    std::unique_ptr<core::OnlineMemcon> om;
    trace::TenantWriteStream stream;
    IngestRing ring;

    // Producer state.
    bool held = false;
    WriteEvent heldEv{};
    Tick holdSince{};
    std::uint64_t generated = 0;
    std::uint64_t droppedBp = 0;
    std::uint64_t droppedShedEv = 0;
    std::uint64_t throttledTk = 0;

    // Consumer state.
    std::uint64_t applied = 0;
    LogHistogram latency;
    std::vector<WriteEvent> roundApplied;
};

} // namespace memcon::service

#endif // MEMCON_SERVICE_TENANT_HH
