/**
 * @file
 * Long-running application write-behaviour personas.
 *
 * The paper traces 12 commercial applications with an HMTT-style FPGA
 * bus tracer (Table 1) and observes that per-page write intervals
 * follow a Pareto distribution: >95% of writes arrive within 1 ms of
 * the previous one, under 0.5% of writes start intervals longer than
 * 1024 ms, yet those long intervals hold ~90% of all time spent in
 * write intervals (Figures 7-9). At the same time, only ~4000 pages
 * per quantum are written exactly once (Section 6.4) - the write
 * stream is produced by a small hot set while most pages see
 * isolated writes separated by very long gaps.
 *
 * The generator reproduces both properties with two page classes:
 *
 *  - HOT pages (a few percent of the footprint): repeated write
 *    bursts (a geometric number of sub-millisecond writes) separated
 *    by exponential "medium" gaps of a few hundred ms, with an
 *    occasional Pareto-tail gap. These produce nearly all writes and
 *    nearly all sub-1 ms intervals.
 *
 *  - READ-ONLY pages: a large part of any real footprint (code,
 *    loaded assets, streamed buffers already consumed) receives no
 *    writes at all during the trace. MEMCON identifies such rows and
 *    keeps them at LO-REF (Section 6.1), which is what lets its
 *    refresh reduction approach the 75%% upper bound.
 *
 *  - COLD pages (the rest): isolated writes separated by truncated
 *    Pareto gaps starting at coldXmMs. These produce the long
 *    intervals that dominate time-in-interval, exhibit the
 *    decreasing hazard rate PRIL exploits, and are the pages PRIL
 *    catches with one write per quantum.
 */

#ifndef MEMCON_TRACE_APP_MODEL_HH
#define MEMCON_TRACE_APP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace memcon::trace
{

/** One Table 1 application plus its generator parameters. */
struct AppPersona
{
    std::string name;
    std::string type;       //!< Table 1 "Type" column
    double durationSec;     //!< Table 1 trace length
    double footprintGB;     //!< Table 1 memory footprint
    unsigned threads;       //!< Table 1 thread count

    // Generator parameters.
    std::uint64_t pages;     //!< modelled page population
    double readOnlyFraction; //!< pages never written during the trace
    double hotFraction;      //!< fraction of pages in the hot set
    double burstLenMean;     //!< hot: mean writes per burst
    double burstGapMeanMs;   //!< hot: mean gap inside a burst
    double mediumXmMs;       //!< hot: Pareto inter-burst gap minimum
    double mediumAlpha;      //!< hot: Pareto inter-burst gap index
    double hotTailShare;     //!< hot: inter-burst gaps from the tail
    double coldXmMs;         //!< cold: Pareto gap minimum
    double tailAlpha;        //!< Pareto tail index (hot + cold)
    std::uint64_t seed;

    /** The 12 applications of Table 1. */
    static std::vector<AppPersona> table1Suite();

    /** Look up a persona by name; fatal if unknown. */
    static AppPersona byName(const std::string &name);
};

/**
 * The write process of a single page: a deterministic stream of
 * inter-write intervals. Distinct (persona, page) pairs produce
 * independent streams; the same pair always reproduces the same
 * stream.
 */
class PageWriteProcess
{
  public:
    /** The persona must outlive the process (held by reference). */
    PageWriteProcess(const AppPersona &persona, std::uint64_t page_id);
    PageWriteProcess(AppPersona &&, std::uint64_t) = delete;

    /** @return true if this page belongs to the persona's hot set. */
    bool isHot() const { return cls == Class::Hot; }

    /** @return true if this page is never written during the trace. */
    bool isReadOnly() const { return cls == Class::ReadOnly; }

    /** The next inter-write interval in ms. */
    TimeMs nextIntervalMs();

    /**
     * The random phase of the first write (consumes RNG state; call
     * once, before any nextIntervalMs). Panics on read-only pages.
     */
    TimeMs initialPhaseMs();

    /**
     * All write timestamps for this page within the trace window,
     * starting from a random phase.
     */
    std::vector<TimeMs> writeTimes();

  private:
    TimeMs truncatedParetoMs(double x_min, double alpha);

    enum class Class
    {
        ReadOnly,
        Hot,
        Cold,
    };

    // Held by reference: personas carry strings, and the streaming
    // engine instantiates one process per page - copying the persona
    // P times dominated construction cost.
    const AppPersona &persona;
    Rng rng;
    Class cls;
    std::uint64_t burstRemaining = 0;
};

/**
 * Generator adapter exposing a page's write process as a sorted
 * stream for KWayMerge: yields exactly the in-window timestamps
 * PageWriteProcess::writeTimes() would materialize, one at a time, so
 * the engine's streaming path never holds a page's full timeline.
 */
class PageWriteStream
{
  public:
    /** The persona must outlive the stream (held by reference). */
    PageWriteStream(const AppPersona &persona, std::uint64_t page_id);
    PageWriteStream(AppPersona &&, std::uint64_t) = delete;

    /**
     * Yield the next write time in ms, ascending. Returns false at
     * the first time at or past the trace end, and forever after.
     */
    bool next(double &out_ms);

  private:
    PageWriteProcess proc;
    double durationMs;
    double t = 0.0;
    bool started = false;
    bool done;
};

} // namespace memcon::trace

#endif // MEMCON_TRACE_APP_MODEL_HH
