/**
 * @file
 * CPU access-trace generation for the cycle-level simulator.
 *
 * Stands in for the paper's Pin-driven SPEC CPU2006 / TPC-C / TPC-H
 * traces (Section 5). Each persona fixes the properties that
 * determine refresh sensitivity: DRAM accesses per kilo-instruction,
 * read/write mix, footprint, and row-buffer locality (sequential run
 * length and a Zipf reuse skew). The stream format matches
 * Ramulator's CPU traces: a bubble of non-memory instructions
 * followed by one memory access.
 */

#ifndef MEMCON_TRACE_CPU_GEN_HH
#define MEMCON_TRACE_CPU_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace memcon::trace
{

/** One instruction-stream event: run `bubble` instructions, then the
 * memory access. */
struct MemAccess
{
    std::uint64_t bubbleInsts; //!< non-memory instructions preceding
    std::uint64_t blockIndex;  //!< cache-block index inside footprint
    bool isWrite;
};

/** Benchmark characteristics for trace synthesis. */
struct CpuPersona
{
    std::string name;
    double mpki;            //!< DRAM accesses per kilo-instruction
    double writeFraction;   //!< of accesses that are writebacks
    std::uint64_t footprintBlocks;
    double seqRunMean;      //!< mean sequential-run length (row hits)
    double zipfS;           //!< reuse skew across the footprint
    std::uint64_t seed;

    /**
     * The mixed SPEC CPU2006 / TPC / STREAM persona pool the paper
     * draws its 30 random multiprogrammed mixes from.
     */
    static std::vector<CpuPersona> benchmarkPool();

    /** Look up a persona by name; fatal if unknown. */
    static CpuPersona byName(const std::string &name);

    /**
     * The 30 multiprogrammed mixes of Section 5: each mix is
     * cores_per_mix personas drawn (with replacement) from the pool.
     */
    static std::vector<std::vector<CpuPersona>>
    randomMixes(unsigned num_mixes, unsigned cores_per_mix,
                std::uint64_t seed);
};

/** An endless, deterministic stream of accesses for one persona. */
class CpuAccessStream
{
  public:
    /**
     * @param persona      benchmark characteristics
     * @param stream_seed  extra seed so the same persona can appear
     *                     in one mix more than once with decorrelated
     *                     streams
     */
    explicit CpuAccessStream(const CpuPersona &persona,
                             std::uint64_t stream_seed = 0);

    /** Generate the next access. */
    MemAccess next();

    const CpuPersona &persona() const { return personaDesc; }

  private:
    CpuPersona personaDesc;
    Rng rng;
    std::uint64_t currentBlock = 0;
    std::uint64_t seqRemaining = 0;
};

} // namespace memcon::trace

#endif // MEMCON_TRACE_CPU_GEN_HH
