#include "trace/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memcon::trace
{

WriteIntervalAnalyzer::WriteIntervalAnalyzer() : hist(26)
{
    // 26 exponents cover 1 ms .. 2^25 ms (~9.3 hours), far beyond any
    // Table 1 trace.
}

void
WriteIntervalAnalyzer::addInterval(TimeMs interval_ms)
{
    panic_if(interval_ms < TimeMs{0.0}, "negative write interval");
    intervals.push_back(interval_ms.value());
    totalTime += interval_ms.value();
    hist.add(interval_ms.value(), interval_ms.value());
    sorted = false;
}

void
WriteIntervalAnalyzer::addPageWriteTimes(const std::vector<TimeMs> &times)
{
    for (std::size_t i = 1; i < times.size(); ++i) {
        panic_if(times[i] < times[i - 1], "write times must be ordered");
        addInterval(times[i] - times[i - 1]);
    }
}

void
WriteIntervalAnalyzer::finalize() const
{
    if (sorted)
        return;
    std::sort(intervals.begin(), intervals.end());
    suffixSum.assign(intervals.size() + 1, 0.0);
    for (std::size_t i = intervals.size(); i-- > 0;)
        suffixSum[i] = suffixSum[i + 1] + intervals[i];
    sorted = true;
}

double
WriteIntervalAnalyzer::fractionWritesBelow(TimeMs ms) const
{
    if (intervals.empty())
        return 0.0;
    finalize();
    auto it = std::lower_bound(intervals.begin(), intervals.end(),
                               ms.value());
    return static_cast<double>(it - intervals.begin()) /
           static_cast<double>(intervals.size());
}

double
WriteIntervalAnalyzer::fractionWritesAtLeast(TimeMs ms) const
{
    if (intervals.empty())
        return 0.0;
    return 1.0 - fractionWritesBelow(ms);
}

double
WriteIntervalAnalyzer::timeFractionAtLeast(TimeMs ms) const
{
    if (intervals.empty() || totalTime <= 0.0)
        return 0.0;
    finalize();
    auto it = std::lower_bound(intervals.begin(), intervals.end(),
                               ms.value());
    std::size_t idx = static_cast<std::size_t>(it - intervals.begin());
    return suffixSum[idx] / totalTime;
}

std::vector<std::pair<double, double>>
WriteIntervalAnalyzer::survivalCurve(TimeMs max_x_ms) const
{
    std::vector<std::pair<double, double>> points;
    for (double x = 1.0; x <= max_x_ms.value(); x *= 2.0)
        points.emplace_back(x, fractionWritesAtLeast(TimeMs{x}));
    return points;
}

LineFit
WriteIntervalAnalyzer::paretoFit(TimeMs min_x_ms, TimeMs max_x_ms) const
{
    std::vector<double> xs, survival;
    for (auto [x, p] : survivalCurve(max_x_ms)) {
        if (x >= min_x_ms.value() && p > 0.0) {
            xs.push_back(x);
            survival.push_back(p);
        }
    }
    return fitParetoTail(xs, survival);
}

double
WriteIntervalAnalyzer::probRemainingAtLeast(TimeMs cil, TimeMs ril) const
{
    double surviving = fractionWritesAtLeast(cil);
    if (surviving <= 0.0)
        return 0.0;
    return fractionWritesAtLeast(cil + ril) / surviving;
}

double
WriteIntervalAnalyzer::coverageAtCil(TimeMs cil, TimeMs ril) const
{
    if (intervals.empty() || totalTime <= 0.0)
        return 0.0;
    finalize();
    double threshold = (cil + ril).value();
    auto it =
        std::lower_bound(intervals.begin(), intervals.end(), threshold);
    std::size_t idx = static_cast<std::size_t>(it - intervals.begin());
    std::size_t n_long = intervals.size() - idx;
    double exploitable =
        suffixSum[idx] - cil.value() * static_cast<double>(n_long);
    return exploitable / totalTime;
}

WriteIntervalAnalyzer
analyzeApp(const AppPersona &persona)
{
    return analyzeAppScaled(persona, 1.0);
}

WriteIntervalAnalyzer
analyzeAppScaled(const AppPersona &persona, double interval_scale)
{
    fatal_if(interval_scale <= 0.0, "interval scale must be positive");
    WriteIntervalAnalyzer analyzer;
    for (std::uint64_t page = 0; page < persona.pages; ++page) {
        PageWriteProcess process(persona, page);
        std::vector<TimeMs> times = process.writeTimes();
        if (interval_scale != 1.0) {
            TimeMs prev_original = times.empty() ? TimeMs{} : times[0];
            for (std::size_t i = 1; i < times.size(); ++i) {
                TimeMs interval = times[i] - prev_original;
                prev_original = times[i];
                times[i] = times[i - 1] + interval * interval_scale;
            }
        }
        analyzer.addPageWriteTimes(times);
    }
    return analyzer;
}

} // namespace memcon::trace
