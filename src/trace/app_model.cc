#include "trace/app_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon::trace
{

std::vector<AppPersona>
AppPersona::table1Suite()
{
    // Name, type, duration, footprint and threads come from Table 1.
    // The generator parameters vary per application to span the
    // spread visible in Figures 7-12 and 14: playback/streaming apps
    // leave pages idle longest (heavy cold tails, small hot sets);
    // games and system management churn more pages at shorter
    // intervals.
    //
    //   name            type                dur     GB  th  pages
    //   roFr hotFr burstLen gapMs medXm medAl hotTail coldXm alpha seed
    auto mk = [](std::string name, std::string type, double dur, double gb,
                 unsigned th, std::uint64_t pages, double rofr,
                 double hotfr, double blen, double gap, double medxm,
                 double medal, double httail, double coldxm, double alpha,
                 std::uint64_t seed) {
        AppPersona p;
        p.name = std::move(name);
        p.type = std::move(type);
        p.durationSec = dur;
        p.footprintGB = gb;
        p.threads = th;
        p.pages = pages;
        p.readOnlyFraction = rofr;
        p.hotFraction = hotfr;
        p.burstLenMean = blen;
        p.burstGapMeanMs = gap;
        p.mediumXmMs = medxm;
        p.mediumAlpha = medal;
        p.hotTailShare = httail;
        p.coldXmMs = coldxm;
        p.tailAlpha = alpha;
        p.seed = seed;
        return p;
    };

    return {
        mk("ACBrotherHood", "Game", 209.1, 2.8, 8, 2048,
           0.42, 0.030, 30.0, 0.10, 12.0, 1.25, 0.010, 600.0, 0.32, 3001),
        mk("AdobePhotoshop", "Photo editing", 149.2, 3.0, 4, 2048,
           0.40, 0.028, 28.0, 0.10, 14.0, 1.25, 0.010, 650.0, 0.31, 3002),
        mk("AllSysMark", "Media creation", 2064.0, 3.4, 4, 1024,
           0.55, 0.018, 30.0, 0.15, 16.0, 1.20, 0.008, 900.0, 0.24, 3003),
        mk("AVCHD", "Video playback", 217.3, 5.2, 2, 2048,
           0.52, 0.022, 30.0, 0.08, 14.0, 1.22, 0.008, 700.0, 0.28, 3004),
        mk("BlurMotion", "Image processing", 93.4, 0.2, 2, 2048,
           0.32, 0.042, 32.0, 0.20, 10.0, 1.30, 0.012, 500.0, 0.36, 3005),
        mk("FinalCutPro", "Video editing", 76.9, 3.0, 2, 2048,
           0.35, 0.034, 28.0, 0.10, 11.0, 1.28, 0.010, 550.0, 0.34, 3006),
        mk("FinalMaster", "Movie display", 248.1, 2.0, 2, 2048,
           0.50, 0.020, 28.0, 0.08, 15.0, 1.20, 0.008, 800.0, 0.26, 3007),
        mk("AdobePremiere", "Video editing", 298.8, 5.0, 2, 2048,
           0.44, 0.028, 30.0, 0.12, 13.0, 1.24, 0.010, 650.0, 0.30, 3008),
        mk("MotionPlayBack", "Video processing", 233.9, 5.6, 2, 2048,
           0.50, 0.022, 30.0, 0.10, 14.0, 1.22, 0.008, 700.0, 0.28, 3009),
        mk("Netflix", "Video streaming", 229.4, 4.6, 2, 2048,
           0.56, 0.018, 28.0, 0.06, 16.0, 1.18, 0.008, 850.0, 0.25, 3010),
        mk("SystemMgt", "Win 7 managing", 466.2, 7.6, 2, 1024,
           0.36, 0.036, 32.0, 0.18, 10.0, 1.30, 0.012, 480.0, 0.35, 3011),
        mk("VideoEncode", "Video encoding", 299.1, 7.3, 4, 2048,
           0.40, 0.030, 30.0, 0.15, 12.0, 1.26, 0.010, 600.0, 0.32, 3012),
    };
}

AppPersona
AppPersona::byName(const std::string &name)
{
    for (const auto &p : table1Suite())
        if (p.name == name)
            return p;
    fatal("unknown application persona '%s'", name.c_str());
}

PageWriteProcess::PageWriteProcess(const AppPersona &persona_desc,
                                   std::uint64_t page_id)
    : persona(persona_desc),
      rng(hashMix64(persona_desc.seed * 0x9e3779b97f4a7c15ULL ^
                    (page_id + 0xbeef)))
{
    fatal_if(persona.burstLenMean < 1.0, "burst length mean must be >= 1");
    fatal_if(persona.hotFraction < 0.0 || persona.hotFraction > 1.0,
             "hot fraction must lie in [0, 1]");
    fatal_if(persona.hotTailShare < 0.0 || persona.hotTailShare > 1.0,
             "hot tail share must lie in [0, 1]");
    fatal_if(persona.tailAlpha <= 0.0, "tail alpha must be positive");
    fatal_if(persona.coldXmMs <= 0.0, "cold gap minimum must be > 0");
    fatal_if(persona.mediumXmMs <= 0.0 || persona.mediumAlpha <= 1.0,
             "medium gaps need xm > 0 and alpha > 1");

    fatal_if(persona.readOnlyFraction < 0.0 ||
                 persona.readOnlyFraction + persona.hotFraction > 1.0,
             "page-class fractions must fit in [0, 1]");

    // Class membership is a deterministic function of the page id.
    double u = rng.uniform();
    if (u < persona.readOnlyFraction)
        cls = Class::ReadOnly;
    else if (u < persona.readOnlyFraction + persona.hotFraction)
        cls = Class::Hot;
    else
        cls = Class::Cold;
}

TimeMs
PageWriteProcess::truncatedParetoMs(double x_min, double alpha)
{
    double duration_ms = persona.durationSec * 1000.0;
    if (x_min >= duration_ms)
        return TimeMs{duration_ms};
    for (;;) {
        double x = rng.pareto(x_min, alpha);
        if (x <= duration_ms)
            return TimeMs{x};
    }
}

TimeMs
PageWriteProcess::nextIntervalMs()
{
    panic_if(cls == Class::ReadOnly, "read-only pages have no intervals");
    if (cls == Class::Cold) {
        // Cold pages: isolated writes separated by heavy-tailed gaps.
        return truncatedParetoMs(persona.coldXmMs, persona.tailAlpha);
    }

    if (burstRemaining == 0) {
        double p = 1.0 / persona.burstLenMean;
        double u = 1.0 - rng.uniform();
        burstRemaining = 1 + static_cast<std::uint64_t>(
                                 std::log(u) / std::log(1.0 - p));
        if (rng.uniform() < persona.hotTailShare)
            return truncatedParetoMs(persona.coldXmMs, persona.tailAlpha);
        return truncatedParetoMs(persona.mediumXmMs, persona.mediumAlpha);
    }
    --burstRemaining;
    return TimeMs{rng.exponential(persona.burstGapMeanMs)};
}

TimeMs
PageWriteProcess::initialPhaseMs()
{
    panic_if(cls == Class::ReadOnly, "read-only pages have no writes");
    // Random phase so pages do not start synchronized; cold pages may
    // phase in anywhere in their first long gap.
    return TimeMs{isHot() ? rng.uniform(0.0, 2000.0)
                          : rng.uniform(0.0, persona.coldXmMs * 4.0)};
}

std::vector<TimeMs>
PageWriteProcess::writeTimes()
{
    double duration_ms = persona.durationSec * 1000.0;
    std::vector<TimeMs> times;
    if (cls == Class::ReadOnly)
        return times;
    TimeMs t = initialPhaseMs();
    while (t < TimeMs{duration_ms}) {
        times.push_back(t);
        t += nextIntervalMs();
    }
    return times;
}

PageWriteStream::PageWriteStream(const AppPersona &persona_desc,
                                 std::uint64_t page_id)
    : proc(persona_desc, page_id),
      durationMs(persona_desc.durationSec * 1000.0),
      done(proc.isReadOnly())
{
}

bool
PageWriteStream::next(double &out_ms)
{
    if (done)
        return false;
    if (!started) {
        started = true;
        t = proc.initialPhaseMs().value();
    } else {
        // Same accumulation (and therefore the same rounding) as the
        // materializing loop in writeTimes: t is carried in TimeMs
        // semantics, plain double += double underneath.
        t = (TimeMs{t} + proc.nextIntervalMs()).value();
    }
    if (t >= durationMs) {
        done = true;
        return false;
    }
    out_ms = t;
    return true;
}

} // namespace memcon::trace
