/**
 * @file
 * Multi-tenant stream adapter: one tenant's row-write traffic for the
 * memcond service, derived from the existing trace:: generators.
 *
 * Each tenant session replays an AppPersona-shaped write process over
 * its private module: per-row PageWriteStreams merged into one
 * ascending timeline by KWayMerge, then mapped from persona
 * milliseconds into simulator Ticks. A `rateScale` factor compresses
 * the persona's time axis, so an antagonist tenant is simply the same
 * stochastic process played rateScale-times hotter - the event *set*
 * stays deterministic for a given (seed, rows, scale).
 *
 * The adapter is a cursor, not a buffer: peek()/pop() stream events
 * one at a time, and generated() counts how many were consumed.
 * fastForward() replays the cursor to a recorded position, which is
 * how a crash-restored service re-synchronizes each tenant's producer
 * with its snapshot (the generators are pure functions of their seed,
 * so position alone reconstructs the remaining stream exactly).
 */

#ifndef MEMCON_TRACE_TENANT_STREAM_HH
#define MEMCON_TRACE_TENANT_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/kway_merge.hh"
#include "common/units.hh"
#include "dram/address_map.hh"
#include "trace/app_model.hh"
#include "trace/hammer.hh"

namespace memcon::trace
{

struct TenantTrafficConfig
{
    /** Rows in the tenant's module (one write process per row). */
    std::uint64_t rows = 128;

    /**
     * Bank placement (palloc-style tenant partitioning): when
     * `bankSet` is non-empty, the tenant's logical rows are spread
     * round-robin over exactly those banks of `addressMap` - logical
     * row i lands on bank bankSet[i % B] at local row i / B, and the
     * stream emits the *physical* flat row index addressMap encodes
     * for that coordinate. An empty bankSet keeps logical == physical
     * (the whole-module tenant), bit-identical to the pre-placement
     * stream. The event *timing* never depends on placement: the
     * write processes are seeded by logical row.
     */
    dram::AddressMap addressMap{};
    std::vector<unsigned> bankSet;

    /**
     * Upper bound for the mapped physical rows (the module's
     * totalRows); 0 skips the check. A placement that maps any
     * logical row past this is a config error and fatals at
     * construction instead of corrupting a neighbor's rows.
     */
    std::uint64_t physicalRowLimit = 0;

    /**
     * Time-compression factor: events arrive rateScale-times faster
     * than the base persona. 1.0 is an in-quota tenant; an overload
     * antagonist uses 4-16.
     */
    double rateScale = 1.0;

    /** Service-time horizon the stream must cover, in ms. */
    double horizonMs = 2.0;

    std::uint64_t seed = 1;

    /** Page-class mix (see trace/app_model.hh). */
    double readOnlyFraction = 0.25;
    double hotFraction = 0.15;

    /**
     * Antagonist mode: when enabled, the tenant's traffic is a
     * RowHammer aggressor stream over `hammer` (trace/hammer.hh)
     * instead of the benign write process - same cursor, same ingest
     * path, adversarial access pattern. The persona knobs above are
     * ignored; `hammer.horizonMs` must cover the service horizon.
     */
    bool hammerEnabled = false;
    HammerSpec hammer;

    /** The service persona these knobs expand into. */
    AppPersona persona() const;
};

class TenantWriteStream
{
  public:
    explicit TenantWriteStream(const TenantTrafficConfig &config);

    /**
     * The next event, without consuming it: its service-time Tick and
     * flat row index (physical - routed through the bank placement
     * when one is configured). @return false once the horizon is
     * exhausted.
     */
    bool peek(Tick *at, std::uint64_t *row);

    /** Consume the event peek() exposed; panics when exhausted. */
    void pop();

    /** Events consumed so far (the producer's durable position). */
    std::uint64_t generated() const { return popped; }

    /**
     * Re-position a fresh stream at event index `count`, as if that
     * many events had been popped; panics if the stream holds fewer.
     */
    void fastForward(std::uint64_t count);

  private:
    TenantTrafficConfig cfg;

    // The persona outlives the page streams (held by reference in
    // each PageWriteProcess), so it must be a stable member built
    // before the merge.
    AppPersona personaState;
    std::unique_ptr<KWayMerge<PageWriteStream>> merge;
    std::unique_ptr<HammerStream> hammer; //!< antagonist mode only
    std::uint64_t popped = 0;

    /** Logical row -> physical flat row; empty when unplaced. */
    std::vector<std::uint64_t> rowMap;
};

} // namespace memcon::trace

#endif // MEMCON_TRACE_TENANT_STREAM_HH
