#include "trace/trace_io.hh"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "trace/app_model.hh"

namespace memcon::trace
{

namespace
{

/** Next content line, skipping blanks and # comments. */
bool
nextLine(std::istream &is, std::string &line)
{
    while (std::getline(is, line)) {
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos)
            continue;
        if (line[start] == '#')
            continue;
        return true;
    }
    return false;
}

} // namespace

void
writeWriteTrace(std::ostream &os, const WriteTrace &trace)
{
    os << "# MEMCON write-interval trace\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "wtrace v1 " << trace.pageWrites.size() << ' '
       << trace.durationMs << '\n';
    for (std::size_t p = 0; p < trace.pageWrites.size(); ++p)
        for (TimeMs t : trace.pageWrites[p])
            os << p << ' ' << t.value() << '\n';
}

WriteTrace
readWriteTrace(std::istream &is)
{
    std::string line;
    fatal_if(!nextLine(is, line), "empty write trace");

    std::istringstream header(line);
    std::string magic, version;
    std::size_t pages = 0;
    double duration = 0.0;
    header >> magic >> version >> pages >> duration;
    fatal_if(magic != "wtrace" || version != "v1",
             "bad write-trace header: '%s'", line.c_str());
    fatal_if(pages == 0 || duration <= 0.0,
             "write-trace header needs pages > 0 and duration > 0");

    WriteTrace trace;
    trace.durationMs = duration;
    trace.pageWrites.resize(pages);
    while (nextLine(is, line)) {
        std::istringstream row(line);
        std::size_t page;
        double t;
        fatal_if(!(row >> page >> t), "bad write-trace line: '%s'",
                 line.c_str());
        fatal_if(page >= pages, "page %zu out of range in trace", page);
        fatal_if(t < 0.0 || t >= duration,
                 "write time %f outside [0, %f)", t, duration);
        trace.pageWrites[page].push_back(TimeMs{t});
    }
    for (auto &writes : trace.pageWrites)
        std::sort(writes.begin(), writes.end());
    return trace;
}

WriteTrace
traceFromPersona(const AppPersona &persona)
{
    WriteTrace trace;
    trace.durationMs = persona.durationSec * 1000.0;
    trace.pageWrites.reserve(persona.pages);
    for (std::uint64_t p = 0; p < persona.pages; ++p) {
        PageWriteProcess proc(persona, p);
        trace.pageWrites.push_back(proc.writeTimes());
    }
    return trace;
}

void
writeCpuTrace(std::ostream &os, const std::vector<MemAccess> &trace)
{
    os << "# MEMCON CPU access trace\n";
    os << "ctrace v1\n";
    for (const MemAccess &a : trace) {
        os << a.bubbleInsts << ' ' << a.blockIndex << ' '
           << (a.isWrite ? 'W' : 'R') << '\n';
    }
}

std::vector<MemAccess>
readCpuTrace(std::istream &is)
{
    std::string line;
    fatal_if(!nextLine(is, line), "empty CPU trace");
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    fatal_if(magic != "ctrace" || version != "v1",
             "bad CPU-trace header: '%s'", line.c_str());

    std::vector<MemAccess> out;
    while (nextLine(is, line)) {
        std::istringstream row(line);
        MemAccess a;
        char rw = 0;
        fatal_if(!(row >> a.bubbleInsts >> a.blockIndex >> rw),
                 "bad CPU-trace line: '%s'", line.c_str());
        fatal_if(rw != 'R' && rw != 'W',
                 "CPU-trace access type must be R or W, got '%c'", rw);
        a.isWrite = rw == 'W';
        out.push_back(a);
    }
    return out;
}

std::vector<MemAccess>
captureCpuTrace(const CpuPersona &persona, std::size_t n,
                std::uint64_t stream_seed)
{
    CpuAccessStream stream(persona, stream_seed);
    std::vector<MemAccess> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(stream.next());
    return out;
}

} // namespace memcon::trace
