#include "trace/trace_io.hh"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "trace/app_model.hh"

namespace memcon::trace
{

TraceError::TraceError(std::size_t line, std::size_t byte_offset,
                       const std::string &reason)
    : std::runtime_error(strprintf("trace line %zu (byte offset %zu): ",
                                   line, byte_offset) +
                         reason),
      lineNo(line), offset(byte_offset), why(reason)
{
}

namespace
{

/**
 * Line iterator that skips blanks and # comments while tracking the
 * position (line number, byte offset of line start) every TraceError
 * reports.
 */
class LineReader
{
  public:
    explicit LineReader(std::istream &stream) : is(stream) {}

    /** Advance to the next content line; false at EOF. */
    bool
    next(std::string &line)
    {
        while (std::getline(is, line)) {
            ++lineNo;
            lineStart = offset;
            // getline consumed the delimiter too (absent only on a
            // final unterminated line, where the overshoot is moot).
            offset += line.size() + 1;
            std::size_t start = line.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            if (line[start] == '#')
                continue;
            return true;
        }
        return false;
    }

    /** Fail at the current line's position. */
    [[noreturn]] void
    fail(const std::string &reason) const
    {
        throw TraceError(lineNo, lineStart, reason);
    }

  private:
    std::istream &is;
    std::size_t lineNo = 0;    //!< lines consumed so far
    std::size_t lineStart = 0; //!< byte offset of the current line
    std::size_t offset = 0;    //!< byte offset past the current line
};

} // namespace

void
writeWriteTrace(std::ostream &os, const WriteTrace &trace)
{
    os << "# MEMCON write-interval trace\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "wtrace v1 " << trace.pageWrites.size() << ' '
       << trace.durationMs << '\n';
    for (std::size_t p = 0; p < trace.pageWrites.size(); ++p)
        for (TimeMs t : trace.pageWrites[p])
            os << p << ' ' << t.value() << '\n';
}

WriteTrace
readWriteTrace(std::istream &is)
{
    LineReader reader(is);
    std::string line;
    if (!reader.next(line))
        reader.fail("empty write trace");

    std::istringstream header(line);
    std::string magic, version;
    std::size_t pages = 0;
    double duration = 0.0;
    header >> magic >> version >> pages >> duration;
    if (magic != "wtrace" || version != "v1")
        reader.fail("bad write-trace header: '" + line + "'");
    if (header.fail() || pages == 0 || duration <= 0.0)
        reader.fail("write-trace header needs pages > 0 and "
                    "duration > 0 (truncated header?)");

    WriteTrace trace;
    trace.durationMs = duration;
    trace.pageWrites.resize(pages);
    while (reader.next(line)) {
        std::istringstream row(line);
        std::size_t page;
        double t;
        if (!(row >> page >> t))
            reader.fail("bad write-trace line: '" + line + "'");
        if (page >= pages)
            reader.fail(strprintf("page %zu out of range (trace has "
                                  "%zu pages)",
                                  page, pages));
        if (t < 0.0 || t >= duration)
            reader.fail(strprintf("write time %f outside [0, %f)", t,
                                  duration));
        trace.pageWrites[page].push_back(TimeMs{t});
    }
    for (auto &writes : trace.pageWrites)
        std::sort(writes.begin(), writes.end());
    return trace;
}

WriteTrace
traceFromPersona(const AppPersona &persona)
{
    WriteTrace trace;
    trace.durationMs = persona.durationSec * 1000.0;
    trace.pageWrites.reserve(persona.pages);
    for (std::uint64_t p = 0; p < persona.pages; ++p) {
        PageWriteProcess proc(persona, p);
        trace.pageWrites.push_back(proc.writeTimes());
    }
    return trace;
}

void
writeCpuTrace(std::ostream &os, const std::vector<MemAccess> &trace)
{
    os << "# MEMCON CPU access trace\n";
    os << "ctrace v1\n";
    for (const MemAccess &a : trace) {
        os << a.bubbleInsts << ' ' << a.blockIndex << ' '
           << (a.isWrite ? 'W' : 'R') << '\n';
    }
}

std::vector<MemAccess>
readCpuTrace(std::istream &is)
{
    LineReader reader(is);
    std::string line;
    if (!reader.next(line))
        reader.fail("empty CPU trace");
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (magic != "ctrace" || version != "v1")
        reader.fail("bad CPU-trace header: '" + line + "'");

    std::vector<MemAccess> out;
    while (reader.next(line)) {
        std::istringstream row(line);
        MemAccess a;
        char rw = 0;
        if (!(row >> a.bubbleInsts >> a.blockIndex >> rw))
            reader.fail("bad CPU-trace line: '" + line + "'");
        if (rw != 'R' && rw != 'W')
            reader.fail(strprintf("CPU-trace access type must be R "
                                  "or W, got '%c'",
                                  rw));
        a.isWrite = rw == 'W';
        out.push_back(a);
    }
    return out;
}

std::vector<MemAccess>
captureCpuTrace(const CpuPersona &persona, std::size_t n,
                std::uint64_t stream_seed)
{
    CpuAccessStream stream(persona, stream_seed);
    std::vector<MemAccess> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(stream.next());
    return out;
}

} // namespace memcon::trace
