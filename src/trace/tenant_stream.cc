#include "trace/tenant_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon::trace
{

AppPersona
TenantTrafficConfig::persona() const
{
    fatal_if(rows == 0, "tenant stream needs at least one row");
    fatal_if(rateScale <= 0.0, "rateScale must be positive");
    fatal_if(horizonMs <= 0.0, "horizonMs must be positive");

    // A compact, service-scale persona: the Table 1 shape (hot bursts,
    // Pareto-tailed cold gaps, a read-only residue) compressed so that
    // microsecond-scale service rounds see meaningful traffic. The
    // persona time axis is `rateScale` times the service axis; the
    // stream divides it back out, so durationSec must cover the
    // scaled horizon exactly.
    AppPersona p;
    p.name = "svc-tenant";
    p.type = "service";
    p.durationSec = horizonMs * rateScale / 1000.0;
    p.footprintGB = 0.0;
    p.threads = 1;
    p.pages = rows;
    p.readOnlyFraction = readOnlyFraction;
    p.hotFraction = hotFraction;
    p.burstLenMean = 4.0;
    p.burstGapMeanMs = 0.01;
    p.mediumXmMs = 0.05;
    p.mediumAlpha = 1.5;
    p.hotTailShare = 0.05;
    p.coldXmMs = 0.5;
    p.tailAlpha = 1.8;
    p.seed = seed;
    return p;
}

TenantWriteStream::TenantWriteStream(const TenantTrafficConfig &config)
    : cfg(config), personaState(config.persona())
{
    if (cfg.hammerEnabled) {
        // Antagonist tenant: the aggressor stream replaces the write
        // process entirely (it validates its own placement).
        hammer = std::make_unique<HammerStream>(
            cfg.hammer, cfg.addressMap,
            cfg.physicalRowLimit != 0 ? cfg.physicalRowLimit : cfg.rows);
        return;
    }
    if (!cfg.bankSet.empty()) {
        const std::uint64_t shards = cfg.addressMap.numShards();
        const std::uint64_t banks = cfg.bankSet.size();
        for (unsigned bank : cfg.bankSet)
            fatal_if(bank >= shards,
                     "tenant bank %u is outside the %llu-shard map '%s'",
                     bank, static_cast<unsigned long long>(shards),
                     cfg.addressMap.name().c_str());
        rowMap.resize(cfg.rows);
        for (std::uint64_t i = 0; i < cfg.rows; ++i) {
            const std::uint64_t physical = cfg.addressMap.pageOf(
                cfg.bankSet[i % banks], i / banks);
            fatal_if(cfg.physicalRowLimit != 0 &&
                         physical >= cfg.physicalRowLimit,
                     "tenant row %llu maps to physical row %llu past "
                     "the module's %llu rows",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(physical),
                     static_cast<unsigned long long>(
                         cfg.physicalRowLimit));
            rowMap[i] = physical;
        }
    }

    std::vector<PageWriteStream> streams;
    streams.reserve(cfg.rows);
    for (std::uint64_t row = 0; row < cfg.rows; ++row)
        streams.push_back(PageWriteStream(personaState, row));

    const double horizon = cfg.horizonMs * cfg.rateScale;
    const double window = std::max(horizon / 64.0, 0.01);
    merge = std::make_unique<KWayMerge<PageWriteStream>>(
        std::move(streams), horizon, window);
}

bool
TenantWriteStream::peek(Tick *at, std::uint64_t *row)
{
    if (hammer)
        return hammer->peek(at, row);
    if (merge->empty())
        return false;
    const auto &item = merge->peek();
    // Persona ms -> service ms -> ticks. msToTicks() rounds, and a
    // monotone input stays monotone under a monotone rounding map, so
    // consumers see non-decreasing ticks.
    *at = msToTicks(item.time / cfg.rateScale);
    *row = rowMap.empty() ? item.source : rowMap[item.source];
    return true;
}

void
TenantWriteStream::pop()
{
    if (hammer) {
        hammer->pop();
        ++popped;
        return;
    }
    panic_if(merge->empty(), "pop() on an exhausted tenant stream");
    merge->pop();
    ++popped;
}

void
TenantWriteStream::fastForward(std::uint64_t count)
{
    panic_if(popped != 0, "fastForward() on a used stream");
    if (hammer) {
        hammer->fastForward(count);
        popped = count;
        return;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        panic_if(merge->empty(),
                 "fastForward past the end of the tenant stream "
                 "(%llu of %llu events)",
                 static_cast<unsigned long long>(i),
                 static_cast<unsigned long long>(count));
        merge->pop();
    }
    popped = count;
}

} // namespace memcon::trace
