#include "trace/cpu_gen.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon::trace
{

std::vector<CpuPersona>
CpuPersona::benchmarkPool()
{
    // Intensities follow the published LLC-MPKI ordering of the
    // suites: mcf/lbm/libquantum/GemsFDTD are memory bound,
    // perlbench/h264ref/namd nearly compute bound, TPC workloads in
    // between, STREAM fully bandwidth bound with unit-stride runs.
    //    name          mpki  wr    footprint(blocks) seq   zipf  seed
    return {
        {"mcf",         68.0, 0.28, 6 * 1024 * 1024, 1.2, 0.55, 4001},
        {"lbm",         32.0, 0.45, 7 * 1024 * 1024, 4.0, 0.20, 4002},
        {"libquantum",  26.0, 0.33, 2 * 1024 * 1024, 8.0, 0.10, 4003},
        {"GemsFDTD",    18.0, 0.40, 6 * 1024 * 1024, 3.0, 0.25, 4004},
        {"milc",        16.0, 0.38, 4 * 1024 * 1024, 2.5, 0.30, 4005},
        {"soplex",      14.0, 0.25, 3 * 1024 * 1024, 2.0, 0.45, 4006},
        {"omnetpp",     10.0, 0.30, 2 * 1024 * 1024, 1.3, 0.70, 4007},
        {"astar",        5.0, 0.22, 1 * 1024 * 1024, 1.4, 0.60, 4008},
        {"h264ref",      1.6, 0.20, 512 * 1024,      2.2, 0.50, 4009},
        {"namd",         1.2, 0.15, 768 * 1024,      2.0, 0.40, 4010},
        {"perlbench",    0.8, 0.25, 512 * 1024,      1.5, 0.65, 4011},
        {"tpcc",        12.0, 0.35, 8 * 1024 * 1024, 1.2, 0.75, 4012},
        {"tpch",         9.0, 0.15, 12 * 1024 * 1024, 6.0, 0.30, 4013},
        {"stream",      48.0, 0.33, 8 * 1024 * 1024, 16.0, 0.00, 4014},
    };
}

CpuPersona
CpuPersona::byName(const std::string &name)
{
    for (const auto &p : benchmarkPool())
        if (p.name == name)
            return p;
    fatal("unknown CPU persona '%s'", name.c_str());
}

std::vector<std::vector<CpuPersona>>
CpuPersona::randomMixes(unsigned num_mixes, unsigned cores_per_mix,
                        std::uint64_t seed)
{
    auto pool = benchmarkPool();
    Rng rng(hashMix64(seed ^ 0x33aa55));
    std::vector<std::vector<CpuPersona>> mixes;
    mixes.reserve(num_mixes);
    for (unsigned m = 0; m < num_mixes; ++m) {
        std::vector<CpuPersona> mix;
        for (unsigned c = 0; c < cores_per_mix; ++c)
            mix.push_back(pool[rng.uniformInt(pool.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

CpuAccessStream::CpuAccessStream(const CpuPersona &persona,
                                 std::uint64_t stream_seed)
    : personaDesc(persona),
      rng(hashMix64(persona.seed * 0x9e3779b97f4a7c15ULL ^
                    (stream_seed + 0xfeed)))
{
    fatal_if(personaDesc.mpki <= 0.0, "mpki must be positive");
    fatal_if(personaDesc.footprintBlocks == 0, "footprint must be > 0");
    fatal_if(personaDesc.seqRunMean < 1.0,
             "sequential run mean must be >= 1");
    currentBlock = rng.uniformInt(personaDesc.footprintBlocks);
}

MemAccess
CpuAccessStream::next()
{
    MemAccess acc;
    // Instructions between DRAM accesses: geometric with mean
    // 1000/mpki.
    double mean_gap = 1000.0 / personaDesc.mpki;
    acc.bubbleInsts =
        static_cast<std::uint64_t>(rng.exponential(mean_gap));

    if (seqRemaining > 0) {
        --seqRemaining;
        currentBlock =
            (currentBlock + 1) % personaDesc.footprintBlocks;
    } else {
        // New reuse point drawn with Zipf skew, then a fresh
        // sequential run.
        currentBlock =
            rng.zipf(personaDesc.footprintBlocks, personaDesc.zipfS);
        // Spread Zipf ranks across the footprint so hot blocks are
        // not all physically clustered at low addresses.
        currentBlock = hashMix64(currentBlock * 0x9e3779b97f4a7c15ULL) %
                       personaDesc.footprintBlocks;
        double p = 1.0 / personaDesc.seqRunMean;
        double u = 1.0 - rng.uniform();
        seqRemaining = static_cast<std::uint64_t>(std::log(u) /
                                                  std::log(1.0 - p));
    }

    acc.blockIndex = currentBlock;
    acc.isWrite = rng.chance(personaDesc.writeFraction);
    return acc;
}

} // namespace memcon::trace
