/**
 * @file
 * Attacker personas: RowHammer aggressor access streams.
 *
 * Patterned on Blacksmith's fuzzed hammering patterns: an attacker
 * picks a handful of aggressor rows inside one bank and activates
 * them in a tight loop, each access a row-buffer conflict so every
 * one costs the bank an ACT. The classic shapes are all instances of
 * one parameterisation:
 *
 *  - single-sided: two far-apart aggressors (the second exists only
 *    to force row conflicts); victims are the direct neighbors,
 *  - double-sided: the aggressor pair sandwiches one victim row
 *    (v-1, v+1) - the highest per-ACT flip yield,
 *  - many-sided: N aggressors spaced two rows apart, sandwiching
 *    N-1 victims (the TRR-evading patterns),
 *  - fuzzed: Blacksmith's move - aggressor count, spacing, and
 *    per-aggressor amplitude (consecutive accesses before moving on)
 *    drawn from a seeded generator, so campaigns sweep a *population*
 *    of patterns instead of one hand-built loop.
 *
 * A HammerStream exposes the same cursor interface as
 * TenantWriteStream (peek/pop/generated/fastForward), so an attacker
 * co-runs with benign tenants through memcond's ingest machinery
 * unchanged, and the closed-loop benches drive it as demand traffic.
 * Aggressor rows are chosen in *local* (bank) row space and mapped to
 * physical flat rows through dram::AddressMap, the same adjacency the
 * disturb model charges victims by.
 */

#ifndef MEMCON_TRACE_HAMMER_HH
#define MEMCON_TRACE_HAMMER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dram/address_map.hh"

namespace memcon::trace
{

enum class HammerKind
{
    SingleSided,
    DoubleSided,
    ManySided,
    Fuzzed,
};

/** CLI name of a persona kind ("single-sided", ...). */
const char *hammerKindName(HammerKind kind);

/** Parse a CLI name; fatal on an unknown one (a typo must not
 * silently fall back to a different attacker). */
HammerKind hammerKindFromName(const std::string &name);

/** All kinds, for --help text and persona sweeps. */
std::vector<HammerKind> allHammerKinds();

struct HammerSpec
{
    HammerKind kind = HammerKind::DoubleSided;

    /** Bank (shard index of the address map) the pattern hammers. */
    unsigned bank = 0;

    /**
     * Aggressor count for ManySided, and the upper bound the Fuzzed
     * builder draws from (it picks 2..sides).
     */
    unsigned sides = 8;

    /**
     * Aggressor activations per microsecond of service time, across
     * the whole pattern. Real attackers reach ~2 ACTs per tRC ~=
     * 20/us per bank; campaigns compress time and keep this in the
     * hundreds.
     */
    double actsPerUs = 100.0;

    /**
     * When set, actsPerUs counts *activations* rather than raw
     * accesses: amplitude > 1 accesses land in the open row buffer
     * and cost the bank no ACT, so the stream issues accesses
     * proportionally faster to hold the activation rate. Hits only
     * use data-bus slots (an order of magnitude cheaper than tRC),
     * so normalized patterns still fit the bank. This is how
     * Blacksmith characterizes its patterns - by hammer count, not
     * access count.
     */
    bool normalizeActRate = false;

    /** Service-time horizon the stream must cover, in ms. */
    double horizonMs = 2.0;

    /**
     * Local-row band [rowLo, rowHi) the aggressors are placed in;
     * rowHi == 0 means the whole bank. Real attackers aim at regions
     * they can keep cold (LO-REF rows accumulate disturbance over the
     * longer window), and the disturb benches use the band to target
     * rows the benign tenant never writes.
     */
    std::uint64_t rowLo = 0;
    std::uint64_t rowHi = 0;

    std::uint64_t seed = 1;
};

class HammerStream
{
  public:
    /**
     * Builds the aggressor pattern at construction (deterministic
     * from the spec); fatal when the bank or the chosen rows do not
     * fit the map/module.
     *
     * @param map physical placement; copied, callers need not keep it
     * @param num_rows the module's flat row population
     */
    HammerStream(const HammerSpec &spec, const dram::AddressMap &map,
                 std::uint64_t num_rows);

    /**
     * The next access, without consuming it: its service-time Tick
     * and physical flat row. @return false once the horizon is
     * exhausted.
     */
    bool peek(Tick *at, std::uint64_t *row);

    /** Consume the access peek() exposed; panics when exhausted. */
    void pop();

    /** Accesses consumed so far (the producer's durable position). */
    std::uint64_t generated() const { return popped; }

    /** Re-position a fresh stream at access index `count`. */
    void fastForward(std::uint64_t count);

    /** The pattern's aggressor rows (physical), in access order with
     * amplitudes expanded - one entry per slot of the loop. */
    const std::vector<std::uint64_t> &accessPattern() const
    {
        return pattern;
    }

    /** The distinct aggressor rows (physical), ascending. */
    const std::vector<std::uint64_t> &aggressors() const
    {
        return aggressorRows;
    }

    /** Total accesses the horizon admits. */
    std::uint64_t totalAccesses() const { return total; }

  private:
    HammerSpec cfg;
    std::vector<std::uint64_t> pattern; //!< one loop, physical rows
    std::vector<std::uint64_t> aggressorRows;
    double accessesPerUs = 0.0; //!< raw rate after normalization
    std::uint64_t total = 0;    //!< accesses within the horizon
    std::uint64_t popped = 0;   //!< cursor
};

} // namespace memcon::trace

#endif // MEMCON_TRACE_HAMMER_HH
