/**
 * @file
 * Write-interval analysis (Sections 4.1 and 6.4).
 *
 * Consumes per-page inter-write intervals and answers every question
 * the paper asks of its traces:
 *
 *  - the interval distribution itself (Figure 7),
 *  - the Pareto tail fit on the log-log survival curve (Figure 8),
 *  - the fraction of write-interval time held by long intervals
 *    (Figure 9),
 *  - P(remaining interval > R | current interval >= c) - the
 *    decreasing-hazard-rate curve PRIL builds on (Figure 11),
 *  - prediction coverage as a function of the observed current
 *    interval length (Figure 12).
 */

#ifndef MEMCON_TRACE_ANALYZER_HH
#define MEMCON_TRACE_ANALYZER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/linear_fit.hh"
#include "common/units.hh"
#include "trace/app_model.hh"

namespace memcon::trace
{

class WriteIntervalAnalyzer
{
  public:
    WriteIntervalAnalyzer();

    /** Add one inter-write interval (ms). */
    void addInterval(TimeMs interval_ms);

    /** Add all consecutive intervals of one page's write times. */
    void addPageWriteTimes(const std::vector<TimeMs> &times);

    std::uint64_t numIntervals() const { return intervals.size(); }
    double totalIntervalTimeMs() const { return totalTime; }

    /** Power-of-two-bucketed distribution (Figure 7). */
    const LogHistogram &histogram() const { return hist; }

    /** Fraction of intervals strictly below the threshold. */
    double fractionWritesBelow(TimeMs ms) const;

    /** Fraction of intervals >= the threshold. */
    double fractionWritesAtLeast(TimeMs ms) const;

    /** Fraction of interval *time* spent in intervals >= threshold. */
    double timeFractionAtLeast(TimeMs ms) const;

    /**
     * Survival points (x, P(interval > x)) at power-of-two x from
     * 1 ms up to max_x_ms (Figure 8 input).
     */
    std::vector<std::pair<double, double>>
    survivalCurve(TimeMs max_x_ms = TimeMs{32768.0}) const;

    /** Log-log least-squares fit of the survival curve (Figure 8). */
    LineFit paretoFit(TimeMs min_x_ms = TimeMs{1.0},
                      TimeMs max_x_ms = TimeMs{32768.0}) const;

    /**
     * P(remaining length > ril | elapsed length >= cil): of the
     * intervals that survive past cil, the fraction that also
     * survive past cil + ril (Figure 11).
     */
    double probRemainingAtLeast(TimeMs cil, TimeMs ril) const;

    /**
     * Prediction coverage at a given CIL: the fraction of total
     * write-interval time that lies in correctly-predicted intervals
     * *after* the CIL observation window, i.e.
     * sum over intervals X > cil + ril of (X - cil), divided by the
     * total interval time (Figure 12).
     */
    double coverageAtCil(TimeMs cil, TimeMs ril) const;

  private:
    void finalize() const;

    mutable std::vector<double> intervals;
    mutable std::vector<double> suffixSum; //!< suffixSum[i] = sum of [i..)
    mutable bool sorted = false;
    double totalTime = 0.0;
    LogHistogram hist;
};

/** Analyze every page of one Table 1 application persona. */
WriteIntervalAnalyzer analyzeApp(const AppPersona &persona);

/**
 * Analyze a persona with all long gaps scaled by the given factor -
 * the cache-pressure sensitivity study of Figure 19 uses 0.5.
 */
WriteIntervalAnalyzer analyzeAppScaled(const AppPersona &persona,
                                       double interval_scale);

} // namespace memcon::trace

#endif // MEMCON_TRACE_ANALYZER_HH
