#include "trace/hammer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::trace
{

const char *
hammerKindName(HammerKind kind)
{
    switch (kind) {
    case HammerKind::SingleSided:
        return "single-sided";
    case HammerKind::DoubleSided:
        return "double-sided";
    case HammerKind::ManySided:
        return "many-sided";
    case HammerKind::Fuzzed:
        return "fuzzed";
    }
    panic("unknown hammer kind %d", static_cast<int>(kind));
}

HammerKind
hammerKindFromName(const std::string &name)
{
    for (HammerKind kind : allHammerKinds())
        if (name == hammerKindName(kind))
            return kind;
    fatal("unknown hammer persona '%s' (want single-sided, "
          "double-sided, many-sided, or fuzzed)",
          name.c_str());
}

std::vector<HammerKind>
allHammerKinds()
{
    return {HammerKind::SingleSided, HammerKind::DoubleSided,
            HammerKind::ManySided, HammerKind::Fuzzed};
}

HammerStream::HammerStream(const HammerSpec &spec,
                           const dram::AddressMap &map,
                           std::uint64_t num_rows)
    : cfg(spec)
{
    fatal_if(num_rows == 0, "hammer stream needs a populated module");
    fatal_if(cfg.bank >= map.numShards(),
             "hammer bank %u is outside the %llu-shard map '%s'",
             cfg.bank, static_cast<unsigned long long>(map.numShards()),
             map.name().c_str());
    fatal_if(cfg.sides < 2, "a hammer pattern needs at least 2 sides");
    fatal_if(cfg.actsPerUs <= 0.0, "actsPerUs must be positive");
    fatal_if(cfg.horizonMs <= 0.0, "horizonMs must be positive");

    // The bank's local row count: the map is a bijection, so local
    // rows 0..(num_rows / shards - 1) are always valid for any bank.
    const std::uint64_t bank_rows =
        std::max<std::uint64_t>(num_rows / map.numShards(), 1);
    const std::uint64_t band_lo = std::min(cfg.rowLo, bank_rows);
    const std::uint64_t band_hi =
        cfg.rowHi == 0 ? bank_rows : std::min(cfg.rowHi, bank_rows);
    fatal_if(band_lo >= band_hi,
             "hammer row band [%llu, %llu) is empty for a bank of "
             "%llu rows",
             static_cast<unsigned long long>(cfg.rowLo),
             static_cast<unsigned long long>(cfg.rowHi),
             static_cast<unsigned long long>(bank_rows));
    Rng rng(hashMix64(cfg.seed ^ 0x4861'6d6d'6572'2121ULL));

    // Local-row aggressor layout per persona, then per-aggressor
    // amplitudes (consecutive accesses before the loop moves on).
    std::vector<std::uint64_t> local;
    std::vector<unsigned> amplitude;
    const std::uint64_t margin = 4; // keep victims inside the band
    auto pick_base = [&](std::uint64_t span) {
        const std::uint64_t band = band_hi - band_lo;
        fatal_if(band <= span + 2 * margin,
                 "row band of %llu rows is too small for a %llu-row "
                 "hammer pattern",
                 static_cast<unsigned long long>(band),
                 static_cast<unsigned long long>(span));
        return band_lo + margin +
               rng.uniformInt(band - span - 2 * margin);
    };
    switch (cfg.kind) {
    case HammerKind::SingleSided: {
        // The far partner only forces row conflicts; its victims get
        // half the pattern's activations each.
        const std::uint64_t gap = 8 + rng.uniformInt(8);
        const std::uint64_t base = pick_base(gap);
        local = {base, base + gap};
        amplitude = {1, 1};
        break;
    }
    case HammerKind::DoubleSided: {
        // Aggressors sandwich one victim: v-1 and v+1.
        const std::uint64_t victim = pick_base(2) + 1;
        local = {victim - 1, victim + 1};
        amplitude = {1, 1};
        break;
    }
    case HammerKind::ManySided: {
        const std::uint64_t span = 2 * (cfg.sides - 1);
        const std::uint64_t base = pick_base(span);
        for (unsigned i = 0; i < cfg.sides; ++i)
            local.push_back(base + 2 * i);
        amplitude.assign(cfg.sides, 1);
        break;
    }
    case HammerKind::Fuzzed: {
        // Blacksmith-style: draw count, spacing, and amplitudes.
        const unsigned count = 2 + static_cast<unsigned>(
                                       rng.uniformInt(cfg.sides - 1));
        std::uint64_t span = 0;
        std::vector<std::uint64_t> offsets;
        for (unsigned i = 0; i < count; ++i) {
            offsets.push_back(span);
            // Spacing 2..3: mostly the TRR-evading distance-2 comb
            // (interior victims sandwiched by two aggressors), with
            // occasional stretch.
            span += 2 + rng.uniformInt(2);
        }
        const std::uint64_t base = pick_base(span);
        for (std::uint64_t off : offsets)
            local.push_back(base + off);
        // Amplitudes stay small (1-2): hits are cheap at the bank
        // but still occupy queue slots, and a pattern that is mostly
        // hits stops being a hammer.
        for (unsigned i = 0; i < count; ++i)
            amplitude.push_back(
                1 + static_cast<unsigned>(rng.uniformInt(2)));
        break;
    }
    }

    // Expand into one loop of physical rows, amplitudes inline -
    // (a a b c c c ...) repeated is exactly Blacksmith's frequency/
    // amplitude encoding of an access pattern.
    for (std::size_t i = 0; i < local.size(); ++i) {
        const std::uint64_t physical = map.pageOf(cfg.bank, local[i]);
        fatal_if(physical >= num_rows,
                 "hammer aggressor (bank %u, row %llu) maps to "
                 "physical row %llu past the module's %llu rows",
                 cfg.bank, static_cast<unsigned long long>(local[i]),
                 static_cast<unsigned long long>(physical),
                 static_cast<unsigned long long>(num_rows));
        aggressorRows.push_back(physical);
        for (unsigned a = 0; a < amplitude[i]; ++a)
            pattern.push_back(physical);
    }
    std::sort(aggressorRows.begin(), aggressorRows.end());
    aggressorRows.erase(
        std::unique(aggressorRows.begin(), aggressorRows.end()),
        aggressorRows.end());

    accessesPerUs = cfg.actsPerUs;
    if (cfg.normalizeActRate) {
        // One loop costs the bank one ACT per row *transition*; the
        // amplitude tail of each group hits the open row buffer.
        std::uint64_t acts_per_loop = 0;
        for (std::size_t i = 0; i < pattern.size(); ++i) {
            const std::uint64_t prev =
                pattern[(i + pattern.size() - 1) % pattern.size()];
            if (pattern[i] != prev)
                ++acts_per_loop;
        }
        if (acts_per_loop > 0)
            accessesPerUs *= static_cast<double>(pattern.size()) /
                             static_cast<double>(acts_per_loop);
    }

    total = static_cast<std::uint64_t>(cfg.horizonMs * 1000.0 *
                                       accessesPerUs);
}

bool
HammerStream::peek(Tick *at, std::uint64_t *row)
{
    if (popped >= total)
        return false;
    // Accesses are evenly spaced: access k lands at k / accessesPerUs
    // microseconds. Monotone by construction.
    *at = usToTicks(static_cast<double>(popped) / accessesPerUs);
    *row = pattern[popped % pattern.size()];
    return true;
}

void
HammerStream::pop()
{
    panic_if(popped >= total, "pop() on an exhausted hammer stream");
    ++popped;
}

void
HammerStream::fastForward(std::uint64_t count)
{
    panic_if(popped != 0, "fastForward() on a used stream");
    panic_if(count > total,
             "fastForward past the end of the hammer stream "
             "(%llu of %llu accesses)",
             static_cast<unsigned long long>(count),
             static_cast<unsigned long long>(total));
    popped = count;
}

} // namespace memcon::trace
