/**
 * @file
 * Text trace formats, so externally collected traces (e.g. from a
 * real HMTT-style tracer or a Pin tool) can drive the library in
 * place of the synthetic generators.
 *
 * Write-interval traces ("wtrace v1"):
 *   # comments and blank lines ignored
 *   wtrace v1 <num-pages> <duration-ms>
 *   <page-id> <time-ms>          one write event per line, any order
 *
 * CPU access traces ("ctrace v1", Ramulator-compatible shape):
 *   ctrace v1
 *   <bubble-insts> <block-index> R|W
 */

#ifndef MEMCON_TRACE_TRACE_IO_HH
#define MEMCON_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hh"
#include "trace/app_model.hh"
#include "trace/cpu_gen.hh"

namespace memcon::trace
{

/**
 * A malformed trace, thrown by the readers with the position of the
 * offending input. Library callers (tests, services embedding the
 * parser) catch and handle it; CLI binaries catch it at their
 * boundary and turn it into fatal() - parsing a bad file is a data
 * error, not a configuration error the library should exit() over.
 */
class TraceError : public std::runtime_error
{
  public:
    TraceError(std::size_t line, std::size_t byte_offset,
               const std::string &reason);

    /** 1-based line number of the offending line; 0 for EOF errors. */
    std::size_t line() const { return lineNo; }

    /** Byte offset of the start of the offending line. */
    std::size_t byteOffset() const { return offset; }

    /** The bare reason, without the position prefix what() carries. */
    const std::string &reason() const { return why; }

  private:
    std::size_t lineNo;
    std::size_t offset;
    std::string why;
};

/** A parsed write-interval trace. */
struct WriteTrace
{
    double durationMs = 0.0;
    std::vector<std::vector<TimeMs>> pageWrites; //!< sorted per page

    std::uint64_t
    totalWrites() const
    {
        std::uint64_t n = 0;
        for (const auto &p : pageWrites)
            n += p.size();
        return n;
    }
};

/** Serialize a write trace (events emitted page-major, sorted). */
void writeWriteTrace(std::ostream &os, const WriteTrace &trace);

/** Parse a write trace; throws TraceError on malformed input. */
WriteTrace readWriteTrace(std::istream &is);

/** Materialize a persona into a WriteTrace (for export). */
WriteTrace traceFromPersona(const AppPersona &persona);

/** Serialize a finite CPU access trace. */
void writeCpuTrace(std::ostream &os, const std::vector<MemAccess> &trace);

/** Parse a CPU access trace; throws TraceError on malformed input. */
std::vector<MemAccess> readCpuTrace(std::istream &is);

/** Capture n accesses from a persona stream (for export). */
std::vector<MemAccess> captureCpuTrace(const CpuPersona &persona,
                                       std::size_t n,
                                       std::uint64_t stream_seed = 0);

} // namespace memcon::trace

#endif // MEMCON_TRACE_TRACE_IO_HH
