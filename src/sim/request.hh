/**
 * @file
 * Memory requests exchanged between cores and the memory controller.
 */

#ifndef MEMCON_SIM_REQUEST_HH
#define MEMCON_SIM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/units.hh"
#include "dram/organization.hh"

namespace memcon::sim
{

struct Request
{
    enum class Type
    {
        Read,
        Write,
    };

    Type type = Type::Read;
    std::uint64_t addr = 0; //!< block-aligned byte address
    dram::Coordinates coords;
    Tick arrival{};
    int coreId = -1;   //!< -1 for controller-generated traffic
    bool isTest = false; //!< MEMCON test traffic (lowest priority)

    /** Invoked when read data is available (reads only). */
    std::function<void(const Request &)> onComplete;
};

} // namespace memcon::sim

#endif // MEMCON_SIM_REQUEST_HH
