#include "sim/core.hh"

#include "common/logging.hh"

namespace memcon::sim
{

SimpleCore::SimpleCore(int core_id, trace::CpuAccessStream stream_in,
                       MemoryController &controller,
                       std::uint64_t base_block, std::uint64_t total_blocks,
                       unsigned issue_width, unsigned window_size)
    : coreId(core_id), stream(std::move(stream_in)), mc(controller),
      baseBlock(base_block), totalBlocks(total_blocks),
      issueWidth(issue_width), windowSize(window_size),
      window(window_size), shared(std::make_shared<Shared>()),
      statGroup(strprintf("core%d", core_id))
{
    fatal_if(issue_width == 0 || window_size == 0,
             "issue width and window size must be positive");
    fatal_if(total_blocks == 0, "module must have at least one block");
}

std::uint64_t
SimpleCore::blockToAddr(std::uint64_t block_index) const
{
    return ((baseBlock + block_index) % totalBlocks) * 64;
}

void
SimpleCore::refillPending()
{
    if (pendingBubbles == 0 && !pendingAccessValid) {
        pendingAccess = stream.next();
        pendingBubbles = pendingAccess.bubbleInsts;
        pendingAccessValid = true;
    }
}

void
SimpleCore::tick(Tick now)
{
    ++cycles;

    // Mark loads completed by the controller since the last cycle.
    if (!shared->completedAddrs.empty()) {
        for (std::uint64_t addr : shared->completedAddrs) {
            for (std::size_t i = 0; i < windowCount; ++i) {
                WindowEntry &e =
                    window[(windowHead + i) % windowSize];
                if (e.isLoad && !e.ready && e.addr == addr) {
                    e.ready = true;
                    break;
                }
            }
        }
        shared->completedAddrs.clear();
    }

    // Retire in order, up to issueWidth per cycle.
    unsigned retired_now = 0;
    while (retired_now < issueWidth && windowCount > 0) {
        WindowEntry &head = window[windowHead];
        if (head.isLoad && !head.ready)
            break;
        windowHead = (windowHead + 1) % windowSize;
        --windowCount;
        ++retired;
        ++retired_now;
    }

    // Issue new instructions into the window.
    unsigned issued = 0;
    while (issued < issueWidth && windowCount < windowSize) {
        refillPending();
        if (pendingBubbles > 0) {
            // Bubbles retire trivially; batch them into one slot
            // each to keep window pressure realistic.
            window[(windowHead + windowCount) % windowSize] =
                {false, true, 0};
            ++windowCount;
            --pendingBubbles;
            ++issued;
            continue;
        }
        panic_if(!pendingAccessValid, "trace refill failed");
        std::uint64_t addr = blockToAddr(pendingAccess.blockIndex);

        if (pendingAccess.isWrite) {
            // Posted write: counts as one instruction, does not
            // occupy a window slot waiting for data.
            Request req;
            req.type = Request::Type::Write;
            req.addr = addr;
            req.coreId = coreId;
            if (!mc.enqueue(std::move(req), now)) {
                statGroup.inc("writeStall");
                break; // retry next cycle
            }
            statGroup.inc("writesSent");
            window[(windowHead + windowCount) % windowSize] =
                {false, true, 0};
            ++windowCount;
            pendingAccessValid = false;
            ++issued;
            continue;
        }

        Request req;
        req.type = Request::Type::Read;
        req.addr = addr;
        req.coreId = coreId;
        auto shared_ref = shared;
        req.onComplete = [shared_ref](const Request &done) {
            shared_ref->completedAddrs.push_back(done.addr);
        };
        if (!mc.enqueue(std::move(req), now)) {
            statGroup.inc("readStall");
            break; // queue full; retry next cycle
        }
        statGroup.inc("readsSent");
        window[(windowHead + windowCount) % windowSize] =
            {true, false, addr};
        ++windowCount;
        pendingAccessValid = false;
        ++issued;
    }
}

} // namespace memcon::sim
