#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon::sim
{

TestTrafficSource::TestTrafficSource(const dram::Geometry &geometry,
                                     MemoryController &controller,
                                     unsigned tests_per_window,
                                     bool copy_mode, std::uint64_t seed)
    : geom(geometry), mc(controller), copyMode(copy_mode),
      rng(hashMix64(seed ^ 0x7e57))
{
    fatal_if(tests_per_window == 0, "tests per window must be positive");
    interTestGap = msToTicks(64.0) / tests_per_window;
    nextTestAt = interTestGap;
}

void
TestTrafficSource::startTest()
{
    // Pick a random row; stream it block-aligned.
    std::uint64_t row_index = rng.uniformInt(geom.totalRows());
    dram::Coordinates c = geom.rowFromFlatIndex(RowId{row_index});
    c.column = 0;
    currentRowBase = geom.compose(c);
    // Two full read passes (before/after the idle period) plus, in
    // Copy&Compare mode, one full write pass into the reserved
    // region (modelled as the same bandwidth cost).
    readsLeft = 2 * geom.columnsPerRow;
    writesLeft = copyMode ? geom.columnsPerRow : 0;
    nextColumn = 0;
    ++started;
}

void
TestTrafficSource::tick(Tick now)
{
    if (readsLeft == 0 && writesLeft == 0) {
        if (now < nextTestAt)
            return;
        startTest();
        nextTestAt += interTestGap;
    }

    // Feed the controller as fast as it accepts, one request per
    // tick, staying behind demand traffic via the isTest flag.
    Request req;
    req.isTest = true;
    req.coreId = -1;
    std::uint64_t col = nextColumn % geom.columnsPerRow;
    req.addr = currentRowBase + col * geom.blockBytes;
    if (readsLeft > 0) {
        req.type = Request::Type::Read;
        if (mc.enqueue(std::move(req), now)) {
            --readsLeft;
            ++nextColumn;
        }
    } else if (writesLeft > 0) {
        req.type = Request::Type::Write;
        if (mc.enqueue(std::move(req), now)) {
            --writesLeft;
            ++nextColumn;
        }
    }
}

double
RunResult::ipcSum() const
{
    double sum = 0.0;
    for (double v : ipc)
        sum += v;
    return sum;
}

System::System(const SystemConfig &config,
               const std::vector<trace::CpuPersona> &mix)
    : cfg(config),
      timing(dram::TimingParams::ddr3_1600(config.density,
                                           config.refreshInterval))
{
    fatal_if(mix.size() != cfg.cores,
             "mix has %zu personas for %u cores", mix.size(), cfg.cores);
    cfg.geometry.validate();

    ControllerConfig mc_cfg;
    mc_cfg.refreshReduction = cfg.refreshReduction;
    mc_cfg.refreshEnabled = cfg.refreshEnabled;
    mc = std::make_unique<MemoryController>(cfg.geometry, timing, mc_cfg);

    std::uint64_t total_blocks = cfg.geometry.totalBlocks();
    for (unsigned i = 0; i < cfg.cores; ++i) {
        // Spread core footprints across the module.
        std::uint64_t base =
            (total_blocks / cfg.cores) * i + hashMix64(cfg.seed + i) % 1024;
        trace::CpuAccessStream stream(mix[i],
                                      cfg.seed * 131 + i);
        cores.push_back(std::make_unique<SimpleCore>(
            static_cast<int>(i), std::move(stream), *mc, base,
            total_blocks, cfg.issueWidth, cfg.windowSize));
    }

    if (cfg.concurrentTests > 0) {
        testSource = std::make_unique<TestTrafficSource>(
            cfg.geometry, *mc, cfg.concurrentTests, cfg.copyMode,
            cfg.seed);
    }

    double bus_ghz = 1.0 / (ticksToNs(timing.tCk));
    cpuCyclesPerDramTick = static_cast<unsigned>(
        cfg.cpuGHz / bus_ghz + 0.5);
    fatal_if(cpuCyclesPerDramTick == 0,
             "CPU must be at least as fast as the DRAM bus");
}

RunResult
System::run(InstCount insts_per_core, Tick max_ticks)
{
    RunResult result;
    result.ipc.assign(cfg.cores, 0.0);
    std::vector<bool> finished(cfg.cores, false);
    unsigned finished_count = 0;

    Tick now{};
    std::uint64_t dram_cycle = 0;
    while (finished_count < cfg.cores && now < max_ticks) {
        now += timing.tCk;
        ++dram_cycle;
        mc->tick(now);
        if (testSource)
            testSource->tick(now);
        // Rotate the service order so no core systematically wins
        // the race for freed controller-queue slots.
        for (unsigned k = 0; k < cfg.cores; ++k) {
            unsigned i =
                static_cast<unsigned>((dram_cycle + k) % cfg.cores);
            for (unsigned c = 0; c < cpuCyclesPerDramTick; ++c)
                cores[i]->tick(now);
            if (!finished[i] &&
                cores[i]->retiredInsts() >= insts_per_core) {
                finished[i] = true;
                ++finished_count;
                result.ipc[i] = cores[i]->ipc();
            }
        }
    }

    if (finished_count < cfg.cores) {
        warn("run hit the tick cap before all cores finished");
        for (unsigned i = 0; i < cfg.cores; ++i)
            if (!finished[i])
                result.ipc[i] = cores[i]->ipc();
    }

    result.totalTicks = now;
    for (unsigned i = 0; i < cfg.cores; ++i)
        result.retired.push_back(cores[i]->retiredInsts());
    result.refreshCount =
        static_cast<std::uint64_t>(mc->stats().value("refresh"));
    result.testsStarted = testSource ? testSource->testsStarted() : 0;
    return result;
}

} // namespace memcon::sim
