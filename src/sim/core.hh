/**
 * @file
 * A Ramulator-style simple out-of-order core model (Table 2: 4 GHz,
 * 4-wide, 128-entry instruction window).
 *
 * The core consumes a CPU access stream (bubble of non-memory
 * instructions + one memory access). Non-memory instructions and
 * writes retire immediately; loads occupy a window slot until their
 * data returns from the memory controller. Up to `issueWidth`
 * instructions enter and leave the window per CPU cycle, so IPC is
 * bounded by the issue width and throttled by memory latency exactly
 * as in the simulator the paper uses.
 */

#ifndef MEMCON_SIM_CORE_HH
#define MEMCON_SIM_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "sim/controller.hh"
#include "trace/cpu_gen.hh"

namespace memcon::sim
{

class SimpleCore
{
  public:
    /**
     * @param core_id       identifies the core (request tagging)
     * @param stream        its instruction/access stream
     * @param controller    shared memory controller
     * @param base_block    footprint placement offset in DRAM blocks
     * @param total_blocks  module capacity in blocks (for wrapping)
     */
    SimpleCore(int core_id, trace::CpuAccessStream stream,
               MemoryController &controller, std::uint64_t base_block,
               std::uint64_t total_blocks, unsigned issue_width = 4,
               unsigned window_size = 128);

    /** Advance one CPU cycle at the given DRAM-domain tick. */
    void tick(Tick now);

    InstCount retiredInsts() const { return retired; }
    std::uint64_t cpuCycles() const { return cycles; }

    /** Retired instructions per CPU cycle so far. */
    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired) /
                                 static_cast<double>(cycles);
    }

    const StatGroup &stats() const { return statGroup; }

  private:
    struct WindowEntry
    {
        bool isLoad;
        bool ready;
        std::uint64_t addr;
    };

    void refillPending();
    std::uint64_t blockToAddr(std::uint64_t block_index) const;

    int coreId;
    trace::CpuAccessStream stream;
    MemoryController &mc;
    std::uint64_t baseBlock;
    std::uint64_t totalBlocks;
    unsigned issueWidth;
    unsigned windowSize;

    // In-order retire window (circular buffer semantics via deque).
    std::vector<WindowEntry> window;
    std::size_t windowHead = 0; //!< oldest entry
    std::size_t windowCount = 0;

    // The not-yet-windowed remainder of the current trace record.
    std::uint64_t pendingBubbles = 0;
    bool pendingAccessValid = false;
    trace::MemAccess pendingAccess{};

    InstCount retired = 0;
    std::uint64_t cycles = 0;

    // Shared-state bridge for load completions.
    struct Shared
    {
        std::vector<std::uint64_t> completedAddrs;
    };
    std::shared_ptr<Shared> shared;

    StatGroup statGroup;
};

} // namespace memcon::sim

#endif // MEMCON_SIM_CORE_HH
