/**
 * @file
 * An FR-FCFS memory controller over one DDR3 channel.
 *
 * Scheduling policy (Table 2 system):
 *  - separate read and write queues; writes are posted and drained in
 *    batches between high/low watermarks,
 *  - FR-FCFS: row-hit column commands first, then oldest-first,
 *  - demand requests outrank MEMCON test traffic (isTest),
 *  - refresh: one REF per rank every effective tREFI, with strict
 *    priority (open banks are precharged, then the rank is blocked
 *    for tRFC). The effective tREFI is base tREFI divided by
 *    (1 - refreshReduction): a 75% reduction stretches it 4x, which
 *    is how the paper models MEMCON's multi-rate refresh inside the
 *    cycle simulator (Section 6.2).
 */

#ifndef MEMCON_SIM_CONTROLLER_HH
#define MEMCON_SIM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "dram/channel.hh"
#include "dram/ecc.hh"
#include "sim/request.hh"

namespace memcon::sim
{

struct ControllerConfig
{
    std::size_t readQueueCapacity = 32;
    std::size_t writeQueueCapacity = 32;
    std::size_t writeDrainHigh = 28; //!< start draining writes
    std::size_t writeDrainLow = 8;   //!< stop draining writes

    /**
     * Fraction of baseline refresh operations eliminated (0 = the
     * aggressive baseline cadence, 0.75 = the 64 ms upper bound).
     */
    double refreshReduction = 0.0;

    /** Disable refresh entirely (ideal-no-refresh ablation). */
    bool refreshEnabled = true;

    /**
     * Starvation guard: a demand request older than this is served
     * before younger row hits. Pure FR-FCFS can starve a row-miss
     * request indefinitely behind streaming row-hit traffic.
     */
    Tick starvationThreshold = Tick{2 * tickPerUs};

    /**
     * Test-traffic admission limit: test requests are only accepted
     * while the target queue holds fewer entries than this, keeping
     * headroom for demand requests (test traffic is deprioritised at
     * admission as well as at service).
     */
    std::size_t testAdmissionLimit = 16;

    /**
     * Invoked for every accepted demand write (MEMCON's online
     * write-tracking hook; test traffic is not reported).
     */
    std::function<void(std::uint64_t addr, Tick now)> writeObserver;

    /**
     * Invoked for every row activation (ACT) the controller issues,
     * demand and test traffic alike - the accounting read-disturb
     * analysis hangs off. The address is the request's block address;
     * the observer maps it to a row.
     */
    std::function<void(std::uint64_t addr, Tick now)> activateObserver;

    /**
     * Models the ECC decode of the data a completed demand read
     * returns (fault-injection hook). Absent means every read
     * decodes clean. Test-traffic reads are not probed - their
     * verdicts come from the TestEngine's compare.
     */
    std::function<dram::EccStatus(std::uint64_t addr, Tick now)>
        eccProbe;

    /**
     * Invoked for every demand read whose decode was not Ok (the
     * error-event hook the resilience layer listens on).
     */
    std::function<void(std::uint64_t addr, dram::EccStatus status,
                       Tick now)>
        errorObserver;
};

class MemoryController
{
  public:
    MemoryController(const dram::Geometry &geometry,
                     const dram::TimingParams &timing,
                     const ControllerConfig &config);

    /** Try to accept a request; false when the target queue is full. */
    bool enqueue(Request request, Tick now);

    /** Advance one DRAM clock: issue at most one command. */
    void tick(Tick now);

    /**
     * Re-target the refresh cadence while running (MEMCON adapts it
     * as the LO-REF row fraction changes). Takes effect from the
     * next scheduled refresh.
     */
    void setRefreshReduction(double reduction);

    /** Current effective reduction. */
    double refreshReduction() const { return cfg.refreshReduction; }

    /** @return true when both queues and in-flight lists are empty. */
    bool idle() const;

    std::size_t readQueueSize() const { return readQueue.size(); }
    std::size_t writeQueueSize() const { return writeQueue.size(); }

    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }
    const dram::Channel &channel() const { return chan; }

  private:
    struct Pending
    {
        Request req;
        Tick dataDone;
    };

    /** Index into the queue of the best FR-FCFS candidate, or -1. */
    int pickCandidate(const std::deque<Request> &queue, Tick now) const;

    bool serviceQueue(std::deque<Request> &queue, Tick now);
    void handleRefresh(Tick now);
    void completeFinishedReads(Tick now);

    dram::Geometry geom;
    dram::TimingParams params;
    ControllerConfig cfg;
    dram::Channel chan;

    std::deque<Request> readQueue;
    std::deque<Request> writeQueue;
    std::vector<Pending> inflight;

    bool drainingWrites = false;
    std::vector<Tick> nextRefresh; //!< per rank
    Tick effectiveTrefi;

    StatGroup statGroup{"mc"};
};

} // namespace memcon::sim

#endif // MEMCON_SIM_CONTROLLER_HH
