/**
 * @file
 * The full simulated system of Table 2: N simple cores (4 GHz,
 * 4-wide, 128-entry window) over one DDR3-1600 channel, with
 * configurable refresh cadence and optional MEMCON test-traffic
 * injection.
 *
 * The system advances on the DRAM bus clock (800 MHz); each DRAM
 * tick runs cpuGHz/0.8 CPU cycles per core. Runs follow the standard
 * multiprogrammed methodology: every core keeps executing (to keep
 * pressure on memory) until all cores have retired the target
 * instruction count; each core's IPC is measured at the moment it
 * reaches the target.
 */

#ifndef MEMCON_SIM_SYSTEM_HH
#define MEMCON_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/organization.hh"
#include "dram/timing.hh"
#include "sim/controller.hh"
#include "sim/core.hh"
#include "trace/cpu_gen.hh"

namespace memcon::sim
{

/**
 * Paced injector for MEMCON's online-test memory traffic. The paper
 * models 256-1024 concurrent tests per 64 ms window (Table 3); each
 * test reads its row twice (Read&Compare) and additionally writes it
 * once to the reserved region (Copy&Compare). The injector issues
 * that traffic at the equivalent steady rate, tagged isTest so the
 * controller deprioritises it below demand requests.
 */
class TestTrafficSource
{
  public:
    /**
     * @param tests_per_window tests per 64 ms
     * @param copy_mode        true for Copy&Compare (adds the row
     *                         write)
     */
    TestTrafficSource(const dram::Geometry &geometry,
                      MemoryController &controller,
                      unsigned tests_per_window, bool copy_mode,
                      std::uint64_t seed);

    void tick(Tick now);

    std::uint64_t testsStarted() const { return started; }

  private:
    void startTest();

    const dram::Geometry geom;
    MemoryController &mc;
    bool copyMode;
    Tick interTestGap; //!< ticks between test starts
    Tick nextTestAt{};
    std::uint64_t started = 0;

    // Remaining accesses of the in-progress test.
    std::uint64_t currentRowBase = 0;
    unsigned readsLeft = 0;
    unsigned writesLeft = 0;
    unsigned nextColumn = 0;
    Rng rng;
};

struct SystemConfig
{
    unsigned cores = 1;
    double cpuGHz = 4.0;
    unsigned issueWidth = 4;
    unsigned windowSize = 128;

    dram::Geometry geometry = dram::Geometry::dimm8GB();
    dram::Density density = dram::Density::Gb8;

    /** Full-device refresh period the baseline REF stream covers. */
    TimeMs refreshInterval = TimeMs{16.0};

    /** Fraction of refresh operations eliminated (MEMCON/RAIDR). */
    double refreshReduction = 0.0;

    bool refreshEnabled = true;

    /** MEMCON test traffic: tests per 64 ms window (0 = none). */
    unsigned concurrentTests = 0;
    bool copyMode = false;

    std::uint64_t seed = 1;
};

struct RunResult
{
    std::vector<double> ipc;        //!< per core, at its finish point
    std::vector<InstCount> retired; //!< per core, total at run end
    Tick totalTicks{};
    std::uint64_t refreshCount = 0;
    std::uint64_t testsStarted = 0;

    /** Sum of per-core IPCs (throughput metric for mixes). */
    double ipcSum() const;
};

class System
{
  public:
    System(const SystemConfig &config,
           const std::vector<trace::CpuPersona> &mix);

    /**
     * Run until every core retires at least insts_per_core
     * instructions (hard-capped at max_ticks as a safety net).
     */
    RunResult run(InstCount insts_per_core,
                  Tick max_ticks = Tick{400ULL * 1000 * 1000 * 1000});

    MemoryController &controller() { return *mc; }

  private:
    SystemConfig cfg;
    dram::TimingParams timing;
    std::unique_ptr<MemoryController> mc;
    std::vector<std::unique_ptr<SimpleCore>> cores;
    std::unique_ptr<TestTrafficSource> testSource;
    unsigned cpuCyclesPerDramTick;
};

} // namespace memcon::sim

#endif // MEMCON_SIM_SYSTEM_HH
