#include "sim/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon::sim
{

MemoryController::MemoryController(const dram::Geometry &geometry,
                                   const dram::TimingParams &timing,
                                   const ControllerConfig &config)
    : geom(geometry), params(timing), cfg(config), chan(geometry, timing)
{
    fatal_if(cfg.refreshReduction < 0.0 || cfg.refreshReduction >= 1.0,
             "refresh reduction must lie in [0, 1)");
    fatal_if(cfg.writeDrainLow > cfg.writeDrainHigh,
             "write drain low watermark above high watermark");
    fatal_if(cfg.writeDrainHigh > cfg.writeQueueCapacity,
             "write drain high watermark above queue capacity");

    double stretch = 1.0 / (1.0 - cfg.refreshReduction);
    effectiveTrefi = Tick{static_cast<std::uint64_t>(
        static_cast<double>(params.cyc(params.tREFI).value()) * stretch)};
    nextRefresh.assign(geom.ranks, effectiveTrefi);
}

void
MemoryController::setRefreshReduction(double reduction)
{
    fatal_if(reduction < 0.0 || reduction >= 1.0,
             "refresh reduction must lie in [0, 1)");
    cfg.refreshReduction = reduction;
    double stretch = 1.0 / (1.0 - reduction);
    effectiveTrefi = Tick{static_cast<std::uint64_t>(
        static_cast<double>(params.cyc(params.tREFI).value()) * stretch)};
}

bool
MemoryController::enqueue(Request request, Tick now)
{
    auto &queue =
        request.type == Request::Type::Read ? readQueue : writeQueue;
    std::size_t capacity = request.type == Request::Type::Read
                               ? cfg.readQueueCapacity
                               : cfg.writeQueueCapacity;
    if (request.isTest)
        capacity = std::min(capacity, cfg.testAdmissionLimit);
    if (queue.size() >= capacity) {
        statGroup.inc("queueFull");
        return false;
    }
    bool is_read = request.type == Request::Type::Read;
    bool is_test = request.isTest;
    std::uint64_t addr = request.addr;
    request.coords = geom.decompose(request.addr);
    request.arrival = now;
    queue.push_back(std::move(request));
    statGroup.inc(is_read ? "enq.read" : "enq.write");
    if (!is_read && !is_test && cfg.writeObserver)
        cfg.writeObserver(addr, now);
    return true;
}

bool
MemoryController::idle() const
{
    return readQueue.empty() && writeQueue.empty() && inflight.empty();
}

void
MemoryController::completeFinishedReads(Tick now)
{
    for (std::size_t i = 0; i < inflight.size();) {
        if (inflight[i].dataDone <= now) {
            Pending done = std::move(inflight[i]);
            inflight[i] = std::move(inflight.back());
            inflight.pop_back();
            statGroup.accum("readLatencyTicks",
                            static_cast<double>(
                                (done.dataDone - done.req.arrival).value()));
            statGroup.inc("completed.read");
            if (!done.req.isTest && cfg.eccProbe) {
                dram::EccStatus st = cfg.eccProbe(done.req.addr, now);
                switch (st) {
                case dram::EccStatus::Ok:
                    break;
                case dram::EccStatus::CorrectedData:
                case dram::EccStatus::CorrectedCheck:
                    statGroup.inc("ecc.corrected");
                    break;
                case dram::EccStatus::Uncorrectable:
                    statGroup.inc("ecc.uncorrectable");
                    break;
                }
                if (st != dram::EccStatus::Ok && cfg.errorObserver)
                    cfg.errorObserver(done.req.addr, st, now);
            }
            if (done.req.onComplete)
                done.req.onComplete(done.req);
        } else {
            ++i;
        }
    }
}

void
MemoryController::handleRefresh(Tick now)
{
    if (!cfg.refreshEnabled)
        return;
    for (unsigned rank = 0; rank < geom.ranks; ++rank) {
        if (now < nextRefresh[rank])
            continue;

        // Refresh is due: close any open bank, then issue REF.
        if (!chan.allBanksPrecharged(rank)) {
            for (unsigned b = 0; b < geom.banks; ++b) {
                if (chan.isRowOpen(rank, b) &&
                    chan.canIssue(dram::Command::Pre, rank, b, RowId{}, now)) {
                    chan.issue(dram::Command::Pre, rank, b, RowId{}, now);
                    return; // one command per tick
                }
            }
            return; // waiting for a PRE to become legal
        }
        if (chan.canIssue(dram::Command::Ref, rank, 0, RowId{}, now)) {
            chan.issue(dram::Command::Ref, rank, 0, RowId{}, now);
            statGroup.inc("refresh");
            nextRefresh[rank] += effectiveTrefi;
            return;
        }
        return; // REF pending but not yet legal; hold the rank
    }
}

int
MemoryController::pickCandidate(const std::deque<Request> &queue,
                                Tick now) const
{
    // FR-FCFS with demand-over-test priority: the oldest row-hit
    // request wins; if none, the oldest request. Test traffic is only
    // chosen when no demand request exists in the queue. A request
    // older than the starvation threshold bypasses row-hit
    // preference, or streaming row hits could starve a row miss
    // forever.
    auto scan = [&](bool tests_allowed) -> int {
        int first_any = -1;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Request &r = queue[i];
            if (r.isTest && !tests_allowed)
                continue;
            if (first_any < 0) {
                first_any = static_cast<int>(i);
                if (!r.isTest &&
                    now - r.arrival > cfg.starvationThreshold) {
                    return first_any; // aged out: serve in order
                }
            }
            const auto &c = r.coords;
            bool row_hit = chan.isRowOpen(c.rank, c.bank) &&
                           chan.openRow(c.rank, c.bank) == c.row;
            if (row_hit)
                return static_cast<int>(i);
        }
        return first_any;
    };

    int demand = scan(false);
    if (demand >= 0)
        return demand;
    return scan(true);
}

bool
MemoryController::serviceQueue(std::deque<Request> &queue, Tick now)
{
    if (queue.empty())
        return false;
    int idx = pickCandidate(queue, now);
    if (idx < 0)
        return false;

    Request &req = queue[static_cast<std::size_t>(idx)];
    const auto &c = req.coords;
    bool is_read = req.type == Request::Type::Read;

    if (chan.isRowOpen(c.rank, c.bank)) {
        if (chan.openRow(c.rank, c.bank) == c.row) {
            dram::Command cmd =
                is_read ? dram::Command::Rd : dram::Command::Wr;
            if (!chan.canIssue(cmd, c.rank, c.bank, c.row, now))
                return false;
            Tick data_done = chan.issue(cmd, c.rank, c.bank, c.row, now);
            statGroup.inc(is_read ? "svc.read" : "svc.write");
            statGroup.inc("rowHit");
            if (is_read) {
                inflight.push_back({std::move(req), data_done});
            } else {
                statGroup.inc("completed.write");
            }
            queue.erase(queue.begin() + idx);
            return true;
        }
        // Row conflict: close the current row.
        if (chan.canIssue(dram::Command::Pre, c.rank, c.bank, RowId{}, now)) {
            chan.issue(dram::Command::Pre, c.rank, c.bank, RowId{}, now);
            statGroup.inc("rowConflict");
            return true;
        }
        return false;
    }

    // Row closed: activate.
    if (chan.canIssue(dram::Command::Act, c.rank, c.bank, c.row, now)) {
        chan.issue(dram::Command::Act, c.rank, c.bank, c.row, now);
        statGroup.inc("rowMiss");
        statGroup.inc("act");
        if (cfg.activateObserver)
            cfg.activateObserver(req.addr, now);
        return true;
    }
    return false;
}

void
MemoryController::tick(Tick now)
{
    completeFinishedReads(now);

    // Refresh has strict priority; when a refresh is in progress or
    // due for some rank, try to make progress on it first.
    bool refresh_due = false;
    if (cfg.refreshEnabled) {
        for (unsigned rank = 0; rank < geom.ranks; ++rank)
            refresh_due |= now >= nextRefresh[rank];
    }
    if (refresh_due) {
        handleRefresh(now);
        return;
    }

    // Write drain hysteresis.
    if (drainingWrites) {
        if (writeQueue.size() <= cfg.writeDrainLow)
            drainingWrites = false;
    } else if (writeQueue.size() >= cfg.writeDrainHigh ||
               (readQueue.empty() && !writeQueue.empty())) {
        drainingWrites = true;
    }

    if (drainingWrites) {
        if (serviceQueue(writeQueue, now))
            return;
        serviceQueue(readQueue, now);
    } else {
        if (serviceQueue(readQueue, now))
            return;
        serviceQueue(writeQueue, now);
    }
}

} // namespace memcon::sim
