#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashMix64(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitmix64(state);
}

std::uint64_t
deriveTaskSeed(std::uint64_t campaign_seed, std::uint64_t task_index)
{
    // Two SplitMix64 steps: one from the campaign seed, one from the
    // golden-ratio-strided task index, so neighbouring indices (and
    // neighbouring campaign seeds) land in unrelated streams.
    std::uint64_t state = campaign_seed ^ 0xa0761d6478bd642fULL;
    std::uint64_t mixed = splitmix64(state);
    state = mixed ^ (task_index * 0x9e3779b97f4a7c15ULL);
    return splitmix64(state);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits mapped to [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    panic_if(bound == 0, "uniformInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::chance(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return uniform() < probability;
}

double
Rng::pareto(double x_min, double alpha)
{
    panic_if(x_min <= 0.0 || alpha <= 0.0, "pareto parameters must be > 0");
    // Inverse CDF: x = x_min * U^(-1/alpha).
    double u = 1.0 - uniform(); // in (0, 1]
    return x_min * std::pow(u, -1.0 / alpha);
}

double
Rng::exponential(double mean)
{
    panic_if(mean <= 0.0, "exponential mean must be > 0");
    double u = 1.0 - uniform();
    return -mean * std::log(u);
}

double
Rng::gaussian()
{
    // Box-Muller; one value per call keeps the stream position simple.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

std::uint64_t
Rng::poisson(double lambda)
{
    panic_if(lambda < 0.0, "poisson rate must be >= 0");
    if (lambda == 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's multiplicative method.
        double l = std::exp(-lambda);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation for large rates.
    double x = gaussian(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    panic_if(n == 0, "zipf support must be non-empty");
    // Rejection-inversion (Hörmann) would be faster for huge n; this
    // bounded-iteration inversion over the harmonic CDF approximation
    // is enough for trace generation.
    if (s <= 0.0)
        return uniformInt(n);

    // Approximate inverse CDF via the continuous analogue:
    // H(x) = (x^(1-s) - 1) / (1 - s) for s != 1, ln(x) for s == 1.
    double u = uniform();
    double hmax;
    double nd = static_cast<double>(n);
    if (std::abs(s - 1.0) < 1e-9)
        hmax = std::log(nd + 1.0);
    else
        hmax = (std::pow(nd + 1.0, 1.0 - s) - 1.0) / (1.0 - s);

    double h = u * hmax;
    double x;
    if (std::abs(s - 1.0) < 1e-9)
        x = std::exp(h);
    else
        x = std::pow(h * (1.0 - s) + 1.0, 1.0 / (1.0 - s));

    // x lies in [1, n+1); rank r corresponds to x in [r+1, r+2).
    if (x < 1.0)
        x = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(x - 1.0);
    if (rank >= n)
        rank = n - 1;
    return rank;
}

} // namespace memcon
