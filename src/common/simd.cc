#include "common/simd.hh"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define MEMCON_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define MEMCON_SIMD_HAVE_AVX2 0
#endif

namespace memcon::simd
{

// --------------------------------------------------------------------
// Scalar-u64 kernels: the reference semantics every other set must
// reproduce bit-for-bit.
// --------------------------------------------------------------------

namespace
{

bool
scalarEqual(const std::uint64_t *a, const std::uint64_t *b,
            std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

std::size_t
scalarFirstMismatch(const std::uint64_t *a, const std::uint64_t *b,
                    std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return npos;
}

std::uint64_t
scalarXorPopcount(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

std::uint64_t
scalarPopcountWords(const std::uint64_t *a, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i]));
    return total;
}

void
scalarOrWords(std::uint64_t *dst, const std::uint64_t *src,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

void
scalarAndNotWords(std::uint64_t *dst, const std::uint64_t *src,
                  std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] &= ~src[i];
}

void
scalarVisitSetBits(const std::uint64_t *words, std::size_t n,
                   void (*cb)(std::size_t, void *), void *ctx)
{
    for (std::size_t wi = 0; wi < n; ++wi) {
        std::uint64_t w = words[wi]; // snapshot: callbacks may clear
        while (w) {
            int bit = std::countr_zero(w);
            cb(wi * 64 + static_cast<std::size_t>(bit), ctx);
            w &= w - 1;
        }
    }
}

const KernelSet kScalar = {
    "scalar-u64",    scalarEqual,   scalarFirstMismatch,
    scalarXorPopcount, scalarPopcountWords, scalarOrWords,
    scalarAndNotWords, scalarVisitSetBits,
};

// --------------------------------------------------------------------
// AVX2 kernels (x86-64 only, per-function target attribute so the
// rest of the binary stays baseline). Integer lane ops throughout:
// the outputs are exact, so equality with the scalar set is by
// construction, and the property suite re-proves it anyway.
// --------------------------------------------------------------------

#if MEMCON_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) bool
avx2Equal(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        __m256i d = _mm256_xor_si256(va, vb);
        if (!_mm256_testz_si256(d, d))
            return false;
    }
    for (; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

__attribute__((target("avx2"))) std::size_t
avx2FirstMismatch(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        __m256i d = _mm256_xor_si256(va, vb);
        if (!_mm256_testz_si256(d, d)) {
            for (std::size_t j = i; j < i + 4; ++j)
                if (a[j] != b[j])
                    return j;
        }
    }
    for (; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return npos;
}

__attribute__((target("avx2"))) std::uint64_t
avx2XorPopcount(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        __m256i d = _mm256_xor_si256(va, vb);
        alignas(32) std::uint64_t lane[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), d);
        total += static_cast<std::uint64_t>(std::popcount(lane[0])) +
                 static_cast<std::uint64_t>(std::popcount(lane[1])) +
                 static_cast<std::uint64_t>(std::popcount(lane[2])) +
                 static_cast<std::uint64_t>(std::popcount(lane[3]));
    }
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

__attribute__((target("avx2"))) std::uint64_t
avx2PopcountWords(const std::uint64_t *a, std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        alignas(32) std::uint64_t lane[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), v);
        total += static_cast<std::uint64_t>(std::popcount(lane[0])) +
                 static_cast<std::uint64_t>(std::popcount(lane[1])) +
                 static_cast<std::uint64_t>(std::popcount(lane[2])) +
                 static_cast<std::uint64_t>(std::popcount(lane[3]));
    }
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i]));
    return total;
}

__attribute__((target("avx2"))) void
avx2OrWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i vd = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(vd, vs));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

__attribute__((target("avx2"))) void
avx2AndNotWords(std::uint64_t *dst, const std::uint64_t *src,
                std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i vd = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        // andnot(a, b) computes ~a & b.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_andnot_si256(vs, vd));
    }
    for (; i < n; ++i)
        dst[i] &= ~src[i];
}

/**
 * The AVX2 win here is skipping all-zero regions four words at a
 * time - PRIL write-maps over million-page populations are sparse,
 * so most of the scan is the testz fast path.
 */
__attribute__((target("avx2"))) void
avx2VisitSetBits(const std::uint64_t *words, std::size_t n,
                 void (*cb)(std::size_t, void *), void *ctx)
{
    std::size_t wi = 0;
    for (; wi + 4 <= n; wi += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + wi));
        if (_mm256_testz_si256(v, v))
            continue;
        alignas(32) std::uint64_t lane[4]; // snapshot before callbacks
        _mm256_store_si256(reinterpret_cast<__m256i *>(lane), v);
        for (std::size_t k = 0; k < 4; ++k) {
            std::uint64_t w = lane[k];
            while (w) {
                int bit = std::countr_zero(w);
                cb((wi + k) * 64 + static_cast<std::size_t>(bit), ctx);
                w &= w - 1;
            }
        }
    }
    for (; wi < n; ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            int bit = std::countr_zero(w);
            cb(wi * 64 + static_cast<std::size_t>(bit), ctx);
            w &= w - 1;
        }
    }
}

const KernelSet kAvx2 = {
    "avx2",          avx2Equal,   avx2FirstMismatch,
    avx2XorPopcount, avx2PopcountWords, avx2OrWords,
    avx2AndNotWords, avx2VisitSetBits,
};

#endif // MEMCON_SIMD_HAVE_AVX2

const KernelSet *const kCompiled[] = {
    &kScalar,
#if MEMCON_SIMD_HAVE_AVX2
    &kAvx2,
#endif
};

const KernelSet &
resolveKernels()
{
    if (scalarForced())
        return kScalar;
#if MEMCON_SIMD_HAVE_AVX2
    if (__builtin_cpu_supports("avx2"))
        return kAvx2;
#endif
    return kScalar;
}

} // namespace

bool
scalarForced()
{
    static const bool forced = [] {
        const char *env = std::getenv("MEMCON_FORCE_SCALAR");
        return env != nullptr && env[0] != '\0' &&
               std::strcmp(env, "0") != 0;
    }();
    return forced;
}

const KernelSet &
scalarKernels()
{
    return kScalar;
}

const KernelSet &
activeKernels()
{
    // Resolved once; the table pointer never changes afterwards, so
    // every call site sees one consistent ISA level for the whole
    // process lifetime.
    static const KernelSet &active = resolveKernels();
    return active;
}

const KernelSet *const *
compiledKernelSets(std::size_t *count)
{
    *count = sizeof(kCompiled) / sizeof(kCompiled[0]);
    return kCompiled;
}

} // namespace memcon::simd
