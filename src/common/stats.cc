#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace memcon
{

void
StatGroup::inc(const std::string &stat, std::uint64_t delta)
{
    scalars[stat] += static_cast<double>(delta);
}

void
StatGroup::set(const std::string &stat, double value)
{
    scalars[stat] = value;
}

void
StatGroup::accum(const std::string &stat, double delta)
{
    scalars[stat] += delta;
}

void
StatGroup::formula(const std::string &stat, std::function<double()> fn)
{
    formulas[stat] = std::move(fn);
}

double
StatGroup::value(const std::string &stat) const
{
    auto fit = formulas.find(stat);
    if (fit != formulas.end())
        return fit->second();
    auto sit = scalars.find(stat);
    return sit == scalars.end() ? 0.0 : sit->second;
}

bool
StatGroup::has(const std::string &stat) const
{
    return scalars.count(stat) || formulas.count(stat);
}

void
StatGroup::reset()
{
    for (auto &kv : scalars)
        kv.second = 0.0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    std::string prefix = groupName.empty() ? "" : groupName + ".";
    for (const auto &kv : scalars)
        os << strprintf("%-48s %.6g\n", (prefix + kv.first).c_str(),
                        kv.second);
    for (const auto &kv : formulas)
        os << strprintf("%-48s %.6g\n", (prefix + kv.first).c_str(),
                        kv.second());
    return os.str();
}

} // namespace memcon
