/**
 * @file
 * Deterministic iteration over unordered containers.
 *
 * Hash-map iteration order depends on the implementation, the load
 * factor, and the insertion history - none of which the determinism
 * contract (DESIGN.md §9) lets near stats, logs, or bench JSON. Any
 * code that walks an unordered_map/unordered_set on a path that can
 * reach an observable output must do it through these helpers, which
 * materialise a key-sorted snapshot first. memcon_analyze bans bare
 * range-for (and begin()/end()) over unordered containers in src/,
 * bench/, tools/, and examples/ to enforce this.
 *
 * The copies are deliberate: every current call site iterates either
 * a bounded container (test sessions, write buffers) or runs once at
 * reporting time, so the O(n log n) snapshot is noise. If a hot path
 * ever needs ordered iteration, the fix is an ordered container, not
 * a faster helper here.
 */

#ifndef MEMCON_COMMON_ORDERED_HH
#define MEMCON_COMMON_ORDERED_HH

#include <algorithm>
#include <utility>
#include <vector>

namespace memcon::ordered
{

/** Key of a map entry (the pair's first). */
template <typename K, typename V>
const K &
keyOf(const std::pair<const K, V> &entry)
{
    return entry.first;
}

/** Key of a set element (the element itself). */
template <typename K>
const K &
keyOf(const K &element)
{
    return element;
}

/** Keys of an associative container (map or set), ascending. */
template <typename Assoc>
std::vector<typename Assoc::key_type>
sortedKeys(const Assoc &container)
{
    std::vector<typename Assoc::key_type> keys;
    keys.reserve(container.size());
    // lint:allow(unordered-iter) - this helper is the sanctioned wrapper
    for (const auto &entry : container)
        keys.push_back(keyOf(entry));
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Elements of a set-like container, ascending. */
template <typename Set>
std::vector<typename Set::value_type>
sortedValues(const Set &container)
{
    // lint:allow(unordered-iter) - this helper is the sanctioned wrapper
    std::vector<typename Set::value_type> values(container.begin(),
                                                 container.end());
    std::sort(values.begin(), values.end());
    return values;
}

/** (key, value) pairs of a map-like container, ascending by key. */
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sortedItems(const Map &container)
{
    std::vector<std::pair<typename Map::key_type,
                          typename Map::mapped_type>>
        items;
    items.reserve(container.size());
    // lint:allow(unordered-iter) - this helper is the sanctioned wrapper
    for (const auto &entry : container)
        items.emplace_back(entry.first, entry.second);
    std::sort(items.begin(), items.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return items;
}

/** Visit a map-like container in ascending key order. */
template <typename Map, typename Fn>
void
forEachOrdered(const Map &container, Fn &&fn)
{
    for (const auto &item : sortedItems(container))
        fn(item.first, item.second);
}

} // namespace memcon::ordered

#endif // MEMCON_COMMON_ORDERED_HH
