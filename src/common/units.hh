/**
 * @file
 * Strongly-typed time units shared across the library.
 *
 * The cycle-level simulator counts time in Ticks of one picosecond,
 * which represents every JEDEC DDR3 timing parameter exactly
 * (tCK = 1.25 ns = 1250 ticks). The write-interval machinery, which
 * operates at millisecond scale over minutes of wall time, uses
 * TimeMs (milliseconds over a double) to avoid mixing the two
 * regimes.
 *
 * Both used to be bare aliases, so a picosecond quantity flowed into
 * a millisecond API without complaint. They are now distinct strong
 * types: same-unit arithmetic and scalar scaling work as before,
 * cross-unit arithmetic refuses to compile, and every boundary
 * crossing goes through a named conversion (nsToTicks, ticksToMs,
 * ...) or an explicit constructor. The wrappers compile to the same
 * code as the raw representations.
 */

#ifndef MEMCON_COMMON_UNITS_HH
#define MEMCON_COMMON_UNITS_HH

#include <compare>
#include <cstdint>

namespace memcon
{

/**
 * A quantity of one time unit. Supports exactly the operations a
 * unit admits: adding/subtracting same-unit quantities, scaling by a
 * dimensionless factor, and dividing two quantities into a
 * dimensionless ratio. Anything else (mixing units, implicit raw
 * conversion) is a compile error.
 */
template <typename Tag, typename Rep>
class StrongUnit
{
  public:
    using rep = Rep;

    constexpr StrongUnit() = default;
    explicit constexpr StrongUnit(Rep raw) : raw_(raw) {}

    /** The raw count, for printing and storage at the boundary. */
    constexpr Rep value() const { return raw_; }

    constexpr auto operator<=>(const StrongUnit &) const = default;

    // --- same-unit arithmetic ---

    friend constexpr StrongUnit
    operator+(StrongUnit a, StrongUnit b)
    {
        return StrongUnit{static_cast<Rep>(a.raw_ + b.raw_)};
    }
    friend constexpr StrongUnit
    operator-(StrongUnit a, StrongUnit b)
    {
        return StrongUnit{static_cast<Rep>(a.raw_ - b.raw_)};
    }
    constexpr StrongUnit &
    operator+=(StrongUnit o)
    {
        raw_ = static_cast<Rep>(raw_ + o.raw_);
        return *this;
    }
    constexpr StrongUnit &
    operator-=(StrongUnit o)
    {
        raw_ = static_cast<Rep>(raw_ - o.raw_);
        return *this;
    }

    // --- dimensionless scaling ---

    friend constexpr StrongUnit
    operator*(StrongUnit a, Rep k)
    {
        return StrongUnit{static_cast<Rep>(a.raw_ * k)};
    }
    friend constexpr StrongUnit
    operator*(Rep k, StrongUnit a)
    {
        return StrongUnit{static_cast<Rep>(k * a.raw_)};
    }
    friend constexpr StrongUnit
    operator/(StrongUnit a, Rep k)
    {
        return StrongUnit{static_cast<Rep>(a.raw_ / k)};
    }

    // --- quantity ratios (dimensionless) ---

    friend constexpr Rep
    operator/(StrongUnit a, StrongUnit b)
    {
        return static_cast<Rep>(a.raw_ / b.raw_);
    }
    friend constexpr StrongUnit
    operator%(StrongUnit a, StrongUnit b)
    {
        return StrongUnit{static_cast<Rep>(a.raw_ % b.raw_)};
    }

  private:
    Rep raw_ = Rep{};
};

/** Simulator time in picoseconds. */
using Tick = StrongUnit<struct TickTag, std::uint64_t>;

/** Coarse time in milliseconds (write-interval domain). */
using TimeMs = StrongUnit<struct TimeMsTag, double>;

/** Number of retired instructions. */
using InstCount = std::uint64_t;

/** Dimensionless tick-per-unit scale factors. */
constexpr std::uint64_t tickPerNs = 1000;
constexpr std::uint64_t tickPerUs = 1000 * tickPerNs;
constexpr std::uint64_t tickPerMs = 1000 * tickPerUs;
constexpr std::uint64_t tickPerSec = 1000 * tickPerMs;

/** Convert nanoseconds (possibly fractional) to ticks, rounding. */
constexpr Tick
nsToTicks(double ns)
{
    return Tick{static_cast<std::uint64_t>(
        ns * static_cast<double>(tickPerNs) + 0.5)};
}

/** Convert microseconds to ticks, rounding. */
constexpr Tick
usToTicks(double us)
{
    return Tick{static_cast<std::uint64_t>(
        us * static_cast<double>(tickPerUs) + 0.5)};
}

/** Convert milliseconds to ticks, rounding. */
constexpr Tick
msToTicks(double ms)
{
    return Tick{static_cast<std::uint64_t>(
        ms * static_cast<double>(tickPerMs) + 0.5)};
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t.value()) /
           static_cast<double>(tickPerNs);
}

/** Convert ticks to the millisecond domain. */
constexpr TimeMs
ticksToMs(Tick t)
{
    return TimeMs{static_cast<double>(t.value()) /
                  static_cast<double>(tickPerMs)};
}

/** Convert a millisecond-domain quantity to ticks, rounding. */
constexpr Tick
timeMsToTicks(TimeMs t)
{
    return msToTicks(t.value());
}

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Gigabit, the unit DRAM chip densities are quoted in. */
constexpr std::uint64_t Gbit = GiB / 8;

} // namespace memcon

#endif // MEMCON_COMMON_UNITS_HH
