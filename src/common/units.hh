/**
 * @file
 * Time and size units shared across the library.
 *
 * The cycle-level simulator counts time in Ticks of one picosecond,
 * which represents every JEDEC DDR3 timing parameter exactly
 * (tCK = 1.25 ns = 1250 ticks). The write-interval machinery, which
 * operates at millisecond scale over minutes of wall time, uses TimeMs
 * (a double, in milliseconds) to avoid mixing the two regimes.
 */

#ifndef MEMCON_COMMON_UNITS_HH
#define MEMCON_COMMON_UNITS_HH

#include <cstdint>

namespace memcon
{

/** Simulator time in picoseconds. */
using Tick = std::uint64_t;

/** Coarse time in milliseconds (write-interval domain). */
using TimeMs = double;

/** Number of retired instructions. */
using InstCount = std::uint64_t;

constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** Convert nanoseconds (possibly fractional) to ticks, rounding. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs) + 0.5);
}

/** Convert microseconds to ticks, rounding. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(tickPerUs) + 0.5);
}

/** Convert milliseconds to ticks, rounding. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(tickPerMs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerMs);
}

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Gigabit, the unit DRAM chip densities are quoted in. */
constexpr std::uint64_t Gbit = GiB / 8;

} // namespace memcon

#endif // MEMCON_COMMON_UNITS_HH
