#include "common/bitvector.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace memcon
{

BitVector::BitVector(std::size_t num_bits)
{
    resizeAndClear(num_bits);
}

void
BitVector::resizeAndClear(std::size_t num_bits)
{
    numBits = num_bits;
    words.assign((num_bits + 63) / 64, 0);
}

void
BitVector::checkIndex(std::size_t idx) const
{
    panic_if(idx >= numBits, "bit index %zu out of range (size %zu)",
             idx, numBits);
}

void
BitVector::set(std::size_t idx)
{
    checkIndex(idx);
    words[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
}

void
BitVector::clear(std::size_t idx)
{
    checkIndex(idx);
    words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

bool
BitVector::test(std::size_t idx) const
{
    checkIndex(idx);
    return (words[idx >> 6] >> (idx & 63)) & 1;
}

bool
BitVector::testAndSet(std::size_t idx)
{
    checkIndex(idx);
    std::uint64_t mask = std::uint64_t{1} << (idx & 63);
    std::uint64_t &word = words[idx >> 6];
    bool was_set = word & mask;
    word |= mask;
    return was_set;
}

void
BitVector::clearAll()
{
    std::fill(words.begin(), words.end(), 0);
}

std::size_t
BitVector::count() const
{
    return static_cast<std::size_t>(
        simd::popcountWords(words.data(), words.size()));
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> out;
    setBitsInto(out);
    return out;
}

void
BitVector::setBitsInto(std::vector<std::size_t> &out) const
{
    out.clear();
    visitSetBits([&out](std::size_t bit) { out.push_back(bit); });
}

void
BitVector::orWith(const BitVector &src)
{
    panic_if(numBits != src.numBits,
             "bitvector size mismatch (%zu vs %zu)", numBits,
             src.numBits);
    simd::orWords(words.data(), src.words.data(), words.size());
}

void
BitVector::andNotWith(const BitVector &src)
{
    panic_if(numBits != src.numBits,
             "bitvector size mismatch (%zu vs %zu)", numBits,
             src.numBits);
    simd::andNotWords(words.data(), src.words.data(), words.size());
}

} // namespace memcon
