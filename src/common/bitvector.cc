#include "common/bitvector.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace memcon
{

BitVector::BitVector(std::size_t num_bits)
{
    resizeAndClear(num_bits);
}

void
BitVector::resizeAndClear(std::size_t num_bits)
{
    numBits = num_bits;
    words.assign((num_bits + 63) / 64, 0);
}

void
BitVector::checkIndex(std::size_t idx) const
{
    panic_if(idx >= numBits, "bit index %zu out of range (size %zu)",
             idx, numBits);
}

void
BitVector::set(std::size_t idx)
{
    checkIndex(idx);
    words[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
}

void
BitVector::clear(std::size_t idx)
{
    checkIndex(idx);
    words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

bool
BitVector::test(std::size_t idx) const
{
    checkIndex(idx);
    return (words[idx >> 6] >> (idx & 63)) & 1;
}

bool
BitVector::testAndSet(std::size_t idx)
{
    checkIndex(idx);
    std::uint64_t mask = std::uint64_t{1} << (idx & 63);
    std::uint64_t &word = words[idx >> 6];
    bool was_set = word & mask;
    word |= mask;
    return was_set;
}

void
BitVector::clearAll()
{
    std::fill(words.begin(), words.end(), 0);
}

std::size_t
BitVector::count() const
{
    std::size_t total = 0;
    for (std::uint64_t w : words)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w) {
            int bit = std::countr_zero(w);
            out.push_back(wi * 64 + static_cast<std::size_t>(bit));
            w &= w - 1;
        }
    }
    return out;
}

} // namespace memcon
