#include "common/supervisor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memcon
{

namespace
{

/** Elapsed milliseconds since `start` (supervision only). */
double
elapsedMs(std::chrono::steady_clock::time_point start) // lint:allow(wall-clock)
{
    // lint:allow(wall-clock) - watchdog timing, never feeds metrics
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start) // lint:allow(wall-clock)
        .count();
}

} // namespace

Supervisor::Supervisor(SupervisorConfig config, std::size_t total_tasks)
    : cfg(config), totalTasks(total_tasks)
{
    if (cfg.maxAttempts == 0)
        cfg.maxAttempts = 1;
    if (cfg.floorTimeoutMs > 0.0)
        monitor = std::thread([this] { monitorLoop(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    if (monitor.joinable())
        monitor.join();
}

void
Supervisor::beginTask(std::size_t index, const std::string &label,
                      unsigned attempt, CancelToken token)
{
    std::lock_guard<std::mutex> lock(mtx);
    Running r;
    r.label = label;
    r.attempt = attempt;
    r.token = std::move(token);
    // lint:allow(wall-clock) - arms the supervision deadline only
    r.start = std::chrono::steady_clock::now();
    running[index] = std::move(r);
}

void
Supervisor::endTask(std::size_t index, bool completed, double wall_ms)
{
    std::lock_guard<std::mutex> lock(mtx);
    running.erase(index);
    if (completed) {
        ++completedTasks;
        completedMs.insert(std::lower_bound(completedMs.begin(),
                                            completedMs.end(), wall_ms),
                           wall_ms);
    }
}

void
Supervisor::reportExhausted(std::size_t index, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mtx);
    failed = true;
    failReason = strprintf(
        "task %zu ('%s') exceeded its deadline on all %u attempts",
        index, label.c_str(), cfg.maxAttempts);
}

bool
Supervisor::campaignFailed() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return failed;
}

std::string
Supervisor::failureReason() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return failReason;
}

unsigned
Supervisor::timeoutsObserved() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return timeouts;
}

double
Supervisor::currentDeadlineMs() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return deadlineMsLocked();
}

// memcon:requires(mtx) - *Locked suffix: every caller holds the lock
double
Supervisor::deadlineMsLocked() const
{
    if (cfg.floorTimeoutMs <= 0.0)
        return 0.0;
    double deadline = cfg.floorTimeoutMs;
    if (!completedMs.empty()) {
        double median = completedMs[completedMs.size() / 2];
        deadline = std::max(deadline, cfg.medianMultiplier * median);
    }
    return deadline;
}

void
Supervisor::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (!stopping) {
        wake.wait_for(lock, std::chrono::duration<double, std::milli>(
                                cfg.pollIntervalMs));
        if (stopping)
            return;
        double deadline = deadlineMsLocked();
        if (deadline <= 0.0)
            continue;
        for (auto &entry : running) {
            Running &r = entry.second;
            if (r.cancelSent)
                continue;
            double elapsed = elapsedMs(r.start);
            if (elapsed <= deadline)
                continue;
            r.cancelSent = true;
            ++timeouts;
            warn("watchdog: task %zu ('%s') attempt %u/%u exceeded "
                 "its %.0f ms deadline (%.0f ms elapsed) at campaign "
                 "position %zu/%zu completed; requesting abandon",
                 entry.first, r.label.c_str(), r.attempt + 1,
                 cfg.maxAttempts, deadline, elapsed, completedTasks,
                 totalTasks);
            r.token.requestCancel();
        }
    }
}

} // namespace memcon
