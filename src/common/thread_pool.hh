/**
 * @file
 * A fixed-size worker pool with a bounded task queue.
 *
 * The experiment runner (bench/runner) executes independent sweep
 * points on this pool; determinism is preserved because the pool
 * never reorders *results* - callers hold one future per task and
 * reduce in submission order. The queue is bounded so a producer
 * enumerating a huge sweep cannot outrun the workers by an unbounded
 * amount of memory; submit() blocks when the queue is full.
 *
 * Exceptions thrown by a task are captured in its future and rethrow
 * at get(), never on the worker thread. Destruction is graceful: all
 * tasks already submitted (queued or running) complete before the
 * workers join.
 */

#ifndef MEMCON_COMMON_THREAD_POOL_HH
#define MEMCON_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace memcon
{

class ThreadPool
{
  public:
    /**
     * @param num_threads     worker count; 0 is clamped to 1
     * @param queue_capacity  queued (not yet running) task bound;
     *                        submit() blocks while the queue is full
     */
    explicit ThreadPool(unsigned num_threads,
                        std::size_t queue_capacity = 256);

    /** Completes every submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; blocks while the queue is at capacity. The
     * returned future yields the task's completion or rethrows the
     * exception it exited with.
     */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void waitIdle();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    std::size_t queueCapacity() const { return capacity; }

  private:
    void workerLoop();

    std::size_t capacity;
    std::deque<std::packaged_task<void()>> queue;
    mutable std::mutex mtx;
    std::condition_variable notEmpty; //!< queue gained work / stopping
    std::condition_variable notFull;  //!< queue lost work
    std::condition_variable idle;     //!< all work drained
    std::size_t inFlight = 0;         //!< tasks popped but not finished
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace memcon

#endif // MEMCON_COMMON_THREAD_POOL_HH
