/**
 * @file
 * A fixed-size worker pool with a bounded task queue, plus the
 * cooperative cancellation primitive the campaign supervisor uses.
 *
 * The experiment runner (bench/runner) executes independent sweep
 * points on this pool; determinism is preserved because the pool
 * never reorders *results* - callers hold one future per task and
 * reduce in submission order. The queue is bounded so a producer
 * enumerating a huge sweep cannot outrun the workers by an unbounded
 * amount of memory; submit() blocks when the queue is full.
 *
 * Exceptions thrown by a task are captured in its future and rethrow
 * at get(), never on the worker thread. Destruction is graceful: all
 * tasks already submitted (queued or running) complete before the
 * workers join.
 *
 * Cancellation is cooperative: a CancelToken is a shared flag a
 * supervisor raises and a long-running task polls (throwIfCancelled()
 * at loop boundaries). The pool never kills a worker - a task that
 * ignores its token keeps its worker until it returns; one that
 * honors it unwinds with TaskCancelled, which the campaign layer
 * treats as "abandon and requeue" rather than a task failure.
 */

#ifndef MEMCON_COMMON_THREAD_POOL_HH
#define MEMCON_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace memcon
{

/**
 * Thrown by CancelToken::throwIfCancelled() when a supervisor has
 * asked the task to abandon its attempt. Distinct from task failure:
 * the campaign layer catches it and requeues the task.
 */
class TaskCancelled : public std::runtime_error
{
  public:
    TaskCancelled();
};

/**
 * A copyable handle over a shared cancellation flag. One token is
 * issued per task attempt; the watchdog raises it, the task polls it.
 */
class CancelToken
{
  public:
    CancelToken() : flag(std::make_shared<std::atomic<bool>>(false)) {}

    /** Ask the task holding this token to abandon its attempt. */
    void requestCancel() { flag->store(true, std::memory_order_release); }

    bool cancelRequested() const
    {
        return flag->load(std::memory_order_acquire);
    }

    /** Poll point for cooperative tasks; throws TaskCancelled. */
    void throwIfCancelled() const;

  private:
    std::shared_ptr<std::atomic<bool>> flag;
};

class ThreadPool
{
  public:
    /**
     * @param num_threads     worker count; 0 is clamped to 1
     * @param queue_capacity  queued (not yet running) task bound;
     *                        submit() blocks while the queue is full
     */
    explicit ThreadPool(unsigned num_threads,
                        std::size_t queue_capacity = 256);

    /** Completes every submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; blocks while the queue is at capacity. The
     * returned future yields the task's completion or rethrows the
     * exception it exited with.
     */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void waitIdle();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    std::size_t queueCapacity() const { return capacity; }

  private:
    void workerLoop();

    std::size_t capacity;
    // memcon:guarded_by(mtx)
    std::deque<std::packaged_task<void()>> queue;
    mutable std::mutex mtx;
    std::condition_variable notEmpty; //!< queue gained work / stopping
    std::condition_variable notFull;  //!< queue lost work
    std::condition_variable idle;     //!< all work drained
    std::size_t inFlight = 0; // memcon:guarded_by(mtx) popped, unfinished
    bool stopping = false;    // memcon:guarded_by(mtx)
    std::vector<std::thread> workers;
};

} // namespace memcon

#endif // MEMCON_COMMON_THREAD_POOL_HH
