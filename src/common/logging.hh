/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * fatal()  - the caller supplied an impossible configuration; exits(1).
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output for the user.
 */

#ifndef MEMCON_COMMON_LOGGING_HH
#define MEMCON_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace memcon
{

/** Print "panic: <msg>" with location and abort(). For library bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "fatal: <msg>" and exit(1). For user/configuration errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "warn: <msg>" to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by quiet test runs). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * The current errno as a message, via the thread-safe strerror_r
 * (durable-artifact writes report I/O failures from worker threads).
 */
std::string errnoString();

} // namespace memcon

#define panic(...) ::memcon::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::memcon::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // MEMCON_COMMON_LOGGING_HH
