#include "common/linear_fit.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon
{

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panic_if(xs.size() != ys.size(), "fitLine input size mismatch");
    LineFit fit;
    fit.numPoints = xs.size();
    if (xs.size() < 2)
        return fit;

    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }

    double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        return fit;

    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double mean_y = sy / n;
    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.slope * xs[i] + fit.intercept;
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    fit.rSquared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

LineFit
fitParetoTail(const std::vector<double> &xs,
              const std::vector<double> &survival)
{
    panic_if(xs.size() != survival.size(), "fitParetoTail size mismatch");
    std::vector<double> lx, ly;
    lx.reserve(xs.size());
    ly.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] > 0.0 && survival[i] > 0.0) {
            lx.push_back(std::log10(xs[i]));
            ly.push_back(std::log10(survival[i]));
        }
    }
    return fitLine(lx, ly);
}

} // namespace memcon
