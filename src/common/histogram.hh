/**
 * @file
 * Histograms over positive values with power-of-two bucketing.
 *
 * Write intervals span seven decades (sub-millisecond to minutes), so
 * the analyses in Sections 4.1 and 6 bucket them logarithmically:
 * bucket i+1 holds samples in [2^i, 2^(i+1)) of the base unit, with
 * bucket 0 holding [0, 1). The histogram tracks both sample counts and
 * per-bucket weight (used to accumulate time-in-interval, where each
 * interval contributes its own length).
 */

#ifndef MEMCON_COMMON_HISTOGRAM_HH
#define MEMCON_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace memcon
{

class LogHistogram
{
  public:
    /**
     * @param max_exponent highest power-of-two bucket kept distinct;
     *        larger samples land in the overflow bucket.
     */
    explicit LogHistogram(unsigned max_exponent = 40);

    /** Add a sample; its weight defaults to 1 (a pure count). */
    void add(double value, double weight = 1.0);

    /** Remove all samples. */
    void reset();

    /** Number of buckets including the [0,1) and overflow buckets. */
    std::size_t numBuckets() const { return counts.size(); }

    /** Lower edge of bucket i in the base unit. */
    double bucketLow(std::size_t i) const;

    /** Upper edge of bucket i (inf for the overflow bucket). */
    double bucketHigh(std::size_t i) const;

    /** Sample count in bucket i. */
    std::uint64_t count(std::size_t i) const { return counts[i]; }

    /** Accumulated weight in bucket i. */
    double weight(std::size_t i) const { return weights[i]; }

    /** Total sample count. */
    std::uint64_t totalCount() const { return total; }

    /** Total accumulated weight. */
    double totalWeight() const { return totalW; }

    /**
     * Fraction of samples at or above the threshold. Exact when the
     * threshold is a bucket edge; otherwise the straddling bucket is
     * split by linear interpolation.
     */
    double fractionCountAtLeast(double threshold) const;

    /** Fraction of weight in samples at or above the threshold. */
    double fractionWeightAtLeast(double threshold) const;

    /** Mean of the raw samples (tracked exactly, outside buckets). */
    double mean() const;

    /** Render "low count pct weight-pct" rows for inspection. */
    std::string format(const std::string &unit) const;

  private:
    std::size_t bucketFor(double value) const;
    double tailFraction(const std::vector<double> &mass, double mass_total,
                        double threshold) const;

    unsigned maxExponent;
    std::vector<std::uint64_t> counts;
    std::vector<double> weights;
    std::uint64_t total = 0;
    double totalW = 0.0;
    double sum = 0.0;
};

} // namespace memcon

#endif // MEMCON_COMMON_HISTOGRAM_HH
