/**
 * @file
 * A deterministic open-addressing flat set of page indices.
 *
 * PRIL's bounded write-buffers (Section 4.2, footnote 10) were
 * modelled with std::unordered_set, which costs a node allocation
 * per insert, a free per erase, and pointer-chasing on every probe -
 * the dominant per-write cost the micro_pril_ops bench measures.
 * This container replaces them with a fixed-capacity open-addressed
 * table:
 *
 *  - linear probing over a power-of-two slot array at <= 50% load
 *    (the capacity is known up front: the paper's buffer holds 4000
 *    entries), so probes are short and allocation-free;
 *  - backward-shift deletion instead of tombstones, so probe chains
 *    never grow stale and lookups stay short under erase-heavy
 *    churn. The slot layout is a deterministic function of the
 *    operation sequence (linear probing places same-home keys in
 *    arrival order, so it is NOT canonical for the key set alone -
 *    PrilPredictor fingerprints buffer membership through its
 *    write-maps, which ARE order-free, see DESIGN.md §19);
 *  - epoch-stamped slots, so the per-quantum clear() is O(1) instead
 *    of a table wipe.
 *
 * Not a general-purpose set: keys are u64 page indices, the capacity
 * is fixed at construction, and inserting past capacity is a panic
 * (PRIL checks size() < capacity and counts the drop instead).
 */

#ifndef MEMCON_COMMON_FLAT_SET_HH
#define MEMCON_COMMON_FLAT_SET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon
{

class FlatPageSet
{
  public:
    /** @param capacity  maximum live entries (> 0). */
    explicit FlatPageSet(std::size_t capacity) : maxEntries(capacity)
    {
        fatal_if(capacity == 0, "flat set needs a positive capacity");
        std::size_t want = capacity * 2;
        slotCount = 16;
        while (slotCount < want)
            slotCount <<= 1;
        slots.assign(slotCount, Slot{});
    }

    std::size_t capacity() const { return maxEntries; }
    std::size_t size() const { return liveCount; }
    bool empty() const { return liveCount == 0; }

    /**
     * Insert a key. @return true if it was absent (now present).
     * Panics at capacity - the caller owns the bounded-buffer drop
     * policy and must check size() first.
     */
    bool
    insert(std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (live(i) && slots[i].key == key)
            return false;
        panic_if(liveCount >= maxEntries,
                 "flat set over capacity (%zu)", maxEntries);
        slots[i].key = key;
        slots[i].stamp = epoch;
        ++liveCount;
        return true;
    }

    bool
    contains(std::uint64_t key) const
    {
        std::size_t i = probe(key);
        return live(i) && slots[i].key == key;
    }

    /**
     * Erase a key. @return true if it was present. Backward-shift
     * compaction closes the hole so probe chains stay tombstone-free.
     */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (!live(i) || slots[i].key != key)
            return false;
        --liveCount;
        // Shift the probe chain after i back over the hole: any
        // later entry whose home slot is outside (i, j] cyclically
        // cannot be reached through j once i empties, so it moves.
        std::size_t mask = slotCount - 1;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (!live(j))
                break;
            std::size_t home = homeOf(slots[j].key);
            // Distance from home to the candidate hole vs to j,
            // cyclically: if the hole is closer to (or at) home, the
            // entry may legally occupy it.
            if (((j - home) & mask) >= ((j - i) & mask)) {
                slots[i] = slots[j];
                i = j;
            }
        }
        slots[i].stamp = epoch - 1; // mark stale
        return true;
    }

    /** Drop every entry in O(1) by advancing the epoch stamp. */
    void
    clearAll()
    {
        ++epoch;
        liveCount = 0;
    }

    /**
     * Visit live entries in slot order (ascending slot index). The
     * order is deterministic for a given operation sequence but NOT
     * canonical for the key set (see the file comment) and NOT
     * key-ascending; fingerprints should derive ordering elsewhere.
     */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slotCount; ++i)
            if (live(i))
                fn(slots[i].key);
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t stamp = 0; //!< live iff stamp == epoch
    };

    bool live(std::size_t i) const { return slots[i].stamp == epoch; }

    std::size_t
    homeOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(hashMix64(key)) &
               (slotCount - 1);
    }

    /** First slot holding key, else the first free slot of its chain. */
    std::size_t
    probe(std::uint64_t key) const
    {
        std::size_t mask = slotCount - 1;
        std::size_t i = homeOf(key);
        while (live(i) && slots[i].key != key)
            i = (i + 1) & mask;
        return i;
    }

    std::size_t maxEntries;
    std::size_t slotCount = 0;
    std::size_t liveCount = 0;
    std::uint64_t epoch = 1; //!< stamp 0 means never-occupied
    std::vector<Slot> slots;
};

} // namespace memcon

#endif // MEMCON_COMMON_FLAT_SET_HH
