/**
 * @file
 * Runtime-dispatched bit-parallel kernels over 64-bit word spans.
 *
 * The row test-and-compare hot path (DESIGN.md §19) reduces to a
 * handful of primitives on flat std::uint64_t buffers: whole-row
 * equality, first mismatching word, xor-popcount (failing-bit
 * counts), bulk or/andnot (pattern-battery union masks), and
 * visit-set-bits (PRIL candidate extraction). Each primitive exists
 * as a scalar-u64 kernel and, on x86-64, an AVX2 kernel; a
 * function-pointer table resolved once per process picks the widest
 * set the CPU supports.
 *
 * Determinism contract: every kernel computes an exact integer
 * function of its inputs, so the scalar and AVX2 variants are
 * bit-identical by construction - vectorization only changes how
 * fast the same bits are produced. The property suite cross-checks
 * every kernel of every compiled set against a naive reference, and
 * CI re-runs the engine micro-bench with MEMCON_FORCE_SCALAR=1 to
 * prove the digest never depends on which set ran.
 *
 * MEMCON_FORCE_SCALAR: set to anything but "0" or "" to pin the
 * scalar set regardless of CPU features (surfaced in bench banners
 * via activeKernelSetName()).
 */

#ifndef MEMCON_COMMON_SIMD_HH
#define MEMCON_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <utility>

namespace memcon::simd
{

/** Returned by firstMismatch when the spans are identical. */
inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/**
 * One ISA level's implementations. All pointers are non-null; n is
 * a word count and may be zero (every kernel accepts empty spans).
 */
struct KernelSet
{
    const char *name;

    /** a[0..n) == b[0..n). */
    bool (*equal)(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n);

    /** Index of the first word where a and b differ, or npos. */
    std::size_t (*firstMismatch)(const std::uint64_t *a,
                                 const std::uint64_t *b, std::size_t n);

    /** popcount(a ^ b) over the span: the number of differing bits. */
    std::uint64_t (*xorPopcount)(const std::uint64_t *a,
                                 const std::uint64_t *b, std::size_t n);

    /** popcount over the span. */
    std::uint64_t (*popcountWords)(const std::uint64_t *a, std::size_t n);

    /** dst[i] |= src[i]. */
    void (*orWords)(std::uint64_t *dst, const std::uint64_t *src,
                    std::size_t n);

    /** dst[i] &= ~src[i]. */
    void (*andNotWords)(std::uint64_t *dst, const std::uint64_t *src,
                        std::size_t n);

    /**
     * Invoke cb(bit_index, ctx) for every set bit, ascending. The
     * callback may clear the current or an earlier bit in the span
     * (each word is read exactly once, before its bits dispatch);
     * setting bits mid-visit is undefined.
     */
    void (*visitSetBits)(const std::uint64_t *words, std::size_t n,
                         void (*cb)(std::size_t, void *), void *ctx);
};

/** The portable scalar-u64 reference set; always available. */
const KernelSet &scalarKernels();

/**
 * The set the process dispatches to: the widest one the CPU
 * supports, unless MEMCON_FORCE_SCALAR pins the scalar set. Resolved
 * once on first use and never changes afterwards.
 */
const KernelSet &activeKernels();

/** True when MEMCON_FORCE_SCALAR overrode the cpuid dispatch. */
bool scalarForced();

/**
 * Every kernel set compiled into this binary (scalar first), for the
 * property suite to cross-check each against the naive reference.
 */
const KernelSet *const *compiledKernelSets(std::size_t *count);

/** Dispatch-result name for bench banners, e.g. "avx2". */
inline const char *
activeKernelSetName()
{
    return activeKernels().name;
}

// --- thin dispatching wrappers -------------------------------------

inline bool
rowsEqual(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    return activeKernels().equal(a, b, n);
}

inline std::size_t
firstMismatch(const std::uint64_t *a, const std::uint64_t *b,
              std::size_t n)
{
    return activeKernels().firstMismatch(a, b, n);
}

inline std::uint64_t
xorPopcount(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    return activeKernels().xorPopcount(a, b, n);
}

inline std::uint64_t
popcountWords(const std::uint64_t *a, std::size_t n)
{
    return activeKernels().popcountWords(a, n);
}

inline void
orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    activeKernels().orWords(dst, src, n);
}

inline void
andNotWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    activeKernels().andNotWords(dst, src, n);
}

/** Dispatched visit-set-bits over any callable (type-erased once). */
template <typename Fn>
inline void
visitSetBits(const std::uint64_t *words, std::size_t n, Fn &&fn)
{
    using Plain = std::remove_reference_t<Fn>;
    activeKernels().visitSetBits(
        words, n,
        [](std::size_t bit, void *ctx) {
            (*static_cast<Plain *>(ctx))(bit);
        },
        const_cast<void *>(static_cast<const void *>(&fn)));
}

} // namespace memcon::simd

#endif // MEMCON_COMMON_SIMD_HH
