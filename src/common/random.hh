/**
 * @file
 * Deterministic pseudo-random number generation and the distributions
 * the reproduction depends on.
 *
 * Everything in this library is seeded explicitly so that every test,
 * bench, and example is bit-reproducible across runs and machines. The
 * generator is xoshiro256**, seeded through SplitMix64 as its authors
 * recommend.
 */

#ifndef MEMCON_COMMON_RANDOM_HH
#define MEMCON_COMMON_RANDOM_HH

#include <cstdint>

namespace memcon
{

/** One step of the SplitMix64 sequence; also used as a cheap hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix of a value (SplitMix64 finalizer). */
std::uint64_t hashMix64(std::uint64_t value);

/**
 * Derive the seed of one task of a sweep campaign from the campaign
 * seed and the task's index. Every parallel experiment runner uses
 * this derivation, which makes each task's random stream a pure
 * function of (campaign seed, task index) - independent of thread
 * count, scheduling, and which shard of a campaign executes it.
 */
std::uint64_t deriveTaskSeed(std::uint64_t campaign_seed,
                             std::uint64_t task_index);

/**
 * Deterministic xoshiro256** generator with the samplers used across
 * the library. Cheap to copy; independent streams are derived by
 * seeding with distinct values.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1);

    /** Re-seed the generator, restarting its sequence. */
    void seed(std::uint64_t seed);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [0, bound) using rejection. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** @return true with the given probability. */
    bool chance(double probability);

    /**
     * Sample a Pareto (type I) variate.
     *
     * P(X > x) = (x_min / x)^alpha for x >= x_min, the heavy-tailed
     * distribution the paper shows write intervals follow.
     *
     * @param x_min scale (minimum value)
     * @param alpha tail index; smaller means heavier tail
     */
    double pareto(double x_min, double alpha);

    /** Sample an exponential variate with the given mean. */
    double exponential(double mean);

    /** Sample a standard normal variate (Box-Muller). */
    double gaussian();

    /** Sample a normal variate with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Sample a lognormal variate; mu/sigma are the parameters of the
     * underlying normal (used for DRAM cell retention times).
     */
    double lognormal(double mu, double sigma);

    /** Sample a Poisson variate with the given rate (Knuth/normal). */
    std::uint64_t poisson(double lambda);

    /**
     * Sample a Zipf-distributed rank in [0, n) with exponent s, used
     * for page-popularity skew in trace generation.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::uint64_t s_[4];
};

} // namespace memcon

#endif // MEMCON_COMMON_RANDOM_HH
