/**
 * @file
 * A bump-pointer arena for per-quantum / per-row scratch buffers.
 *
 * The bit-parallel test path (DESIGN.md §19) needs a handful of
 * row-sized u64 buffers per tested row and a candidate list per
 * quantum. Allocating them from the heap per row re-pays malloc and
 * page-fault cost millions of times per campaign; the arena pays it
 * once, then every reset() reuses the same backing storage.
 *
 * Usage pattern: allocate<T>(n) inside the hot loop, reset() at the
 * iteration boundary. reset() invalidates every span handed out
 * since the previous reset but keeps (and coalesces) the backing
 * capacity, so steady state is allocation-free. Trivial types only -
 * no constructors or destructors run.
 */

#ifndef MEMCON_COMMON_ARENA_HH
#define MEMCON_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace memcon
{

class Arena
{
  public:
    explicit Arena(std::size_t initial_bytes = 0)
    {
        if (initial_bytes > 0)
            chunks.push_back(Chunk(initial_bytes));
    }

    /**
     * A span of count Ts, aligned for T, zero-initialized on a fresh
     * chunk but RECYCLED DIRTY after reset() - callers overwrite.
     */
    template <typename T>
    T *
    allocate(std::size_t count)
    {
        static_assert(std::is_trivial_v<T>,
                      "arena spans never run ctors/dtors");
        std::size_t bytes = count * sizeof(T);
        return static_cast<T *>(allocateBytes(bytes, alignof(T)));
    }

    /**
     * Invalidate every outstanding span and make the full capacity
     * available again. If the previous cycle overflowed into extra
     * chunks, the backing store is coalesced into one chunk sized
     * for the whole observed demand, so the next cycle bumps through
     * a single contiguous block.
     */
    void
    reset()
    {
        if (chunks.size() > 1) {
            std::size_t total = 0;
            for (const Chunk &c : chunks)
                total += c.storage.size();
            chunks.clear();
            chunks.push_back(Chunk(total));
        } else if (!chunks.empty()) {
            chunks.front().used = 0;
        }
    }

    /** Total backing capacity in bytes. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.storage.size();
        return total;
    }

    /** Bytes handed out since the last reset (incl. padding). */
    std::size_t
    usedBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.used;
        return total;
    }

  private:
    struct Chunk
    {
        explicit Chunk(std::size_t bytes) : storage(bytes) {}
        std::vector<std::byte> storage;
        std::size_t used = 0;
    };

    void *
    allocateBytes(std::size_t bytes, std::size_t align)
    {
        panic_if((align & (align - 1)) != 0,
                 "alignment must be a power of two");
        if (!chunks.empty()) {
            Chunk &c = chunks.back();
            std::size_t at = (c.used + align - 1) & ~(align - 1);
            if (at + bytes <= c.storage.size()) {
                c.used = at + bytes;
                return c.storage.data() + at;
            }
        }
        // Grow geometrically over the largest extent seen so far so
        // a steady-state workload converges to a single chunk.
        std::size_t want = bytes + align;
        std::size_t grown =
            chunks.empty() ? 4096 : chunks.back().storage.size() * 2;
        chunks.push_back(Chunk(want > grown ? want : grown));
        Chunk &c = chunks.back();
        std::size_t at = (c.used + align - 1) & ~(align - 1);
        c.used = at + bytes;
        return c.storage.data() + at;
    }

    std::vector<Chunk> chunks;
};

} // namespace memcon

#endif // MEMCON_COMMON_ARENA_HH
