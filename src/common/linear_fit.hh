/**
 * @file
 * Ordinary least-squares line fitting, used to fit the Pareto tail of
 * the write-interval distribution on the log-log scale (Figure 8) and
 * report the R^2 goodness of fit the paper quotes (0.93-0.99).
 */

#ifndef MEMCON_COMMON_LINEAR_FIT_HH
#define MEMCON_COMMON_LINEAR_FIT_HH

#include <cstddef>
#include <vector>

namespace memcon
{

/** Result of a least-squares line fit y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double rSquared = 0.0;
    std::size_t numPoints = 0;
};

/** Fit a line to (x, y) pairs; requires at least two distinct x. */
LineFit fitLine(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Fit P(X > x) = k * x^-alpha on the log-log scale.
 * Input points are (x, survival probability); zero/negative entries
 * are skipped since the logarithm is undefined there.
 *
 * The returned fit has slope = -alpha and intercept = log10(k).
 */
LineFit fitParetoTail(const std::vector<double> &xs,
                      const std::vector<double> &survival);

} // namespace memcon

#endif // MEMCON_COMMON_LINEAR_FIT_HH
