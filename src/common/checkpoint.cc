#include "common/checkpoint.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace memcon::ckpt
{

namespace
{

/** Lazily built table for the reflected 0xEDB88320 polynomial. */
const std::uint32_t *
crcTable()
{
    static std::uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[n] = c;
        }
        built = true;
    }
    return table;
}

std::string
headerPayload(const CampaignFingerprint &fp)
{
    return strprintf(
        "MEMCON-CKPT v1 artifact=%s seed=%" PRIu64 " points=%" PRIu64
        " quick=%d labels=%08x",
        fp.artifact.c_str(), fp.campaignSeed, fp.pointCount,
        fp.quick ? 1 : 0, fp.labelsCrc);
}

bool
parseHeaderPayload(const std::string &payload, CampaignFingerprint *fp)
{
    char artifact[256] = {0};
    std::uint64_t seed = 0, points = 0;
    int quick = 0;
    unsigned labels = 0;
    if (std::sscanf(payload.c_str(),
                    "MEMCON-CKPT v1 artifact=%255s seed=%" SCNu64
                    " points=%" SCNu64 " quick=%d labels=%8x",
                    artifact, &seed, &points, &quick, &labels) != 5)
        return false;
    fp->artifact = artifact;
    fp->campaignSeed = seed;
    fp->pointCount = points;
    fp->quick = quick != 0;
    fp->labelsCrc = labels;
    return true;
}

bool
fail(std::string *reason, const std::string &why)
{
    if (reason)
        *reason = why;
    return false;
}

bool
slurpFile(const std::string &path, std::string *out, std::string *reason)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(reason, "cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const std::uint32_t *table = crcTable();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(const std::string &s)
{
    return crc32(s.data(), s.size());
}

std::string
sealLine(const std::string &payload)
{
    return payload + strprintf(" #%08x\n", crc32(payload));
}

bool
unsealLine(const std::string &line, std::string *payload)
{
    std::size_t mark = line.rfind(" #");
    if (mark == std::string::npos || line.size() - mark != 10)
        return false;
    std::uint32_t stored = 0;
    if (std::sscanf(line.c_str() + mark + 2, "%8x", &stored) != 1)
        return false;
    std::string body = line.substr(0, mark);
    if (crc32(body) != stored)
        return false;
    *payload = std::move(body);
    return true;
}

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string *error)
{
    std::string tmp =
        path + strprintf(".tmp.%ld", static_cast<long>(::getpid()));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return fail(error, "open '" + tmp + "' failed: " + errnoString());

    const char *p = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::string why = "write failed: " + errnoString();
            ::close(fd);
            ::unlink(tmp.c_str());
            return fail(error, why);
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    // Flush before rename: the rename must never publish a file whose
    // bytes are still only in the page cache of a dying process.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        std::string why = "fsync/close failed: " + errnoString();
        ::unlink(tmp.c_str());
        return fail(error, why);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        std::string why = "rename to '" + path + "' failed: " + errnoString();
        ::unlink(tmp.c_str());
        return fail(error, why);
    }
    return true;
}

bool
CampaignFingerprint::matches(const CampaignFingerprint &other) const
{
    return artifact == other.artifact &&
           campaignSeed == other.campaignSeed &&
           pointCount == other.pointCount && quick == other.quick &&
           labelsCrc == other.labelsCrc;
}

std::string
CampaignFingerprint::describe() const
{
    return strprintf("artifact=%s seed=%" PRIu64 " points=%" PRIu64
                     " quick=%d labels=%08x",
                     artifact.c_str(), campaignSeed, pointCount,
                     quick ? 1 : 0, labelsCrc);
}

FingerprintMismatch::FingerprintMismatch(
    const CampaignFingerprint &found_fp,
    const CampaignFingerprint &expected_fp)
    : std::runtime_error("fingerprint mismatch\n  found:    " +
                         found_fp.describe() +
                         "\n  expected: " + expected_fp.describe()),
      found(found_fp), expected(expected_fp)
{
}

void
requireFingerprintMatch(const CampaignFingerprint &found,
                        const CampaignFingerprint &expected)
{
    if (!found.matches(expected))
        throw FingerprintMismatch(found, expected);
}

CheckpointWriter::CheckpointWriter(std::string file_path,
                                   const CampaignFingerprint &fp,
                                   std::vector<TaskRecord> existing)
    : path(std::move(file_path))
{
    panic_if(fp.artifact.find(' ') != std::string::npos,
             "artifact name '%s' must not contain spaces",
             fp.artifact.c_str());
    body = sealLine(headerPayload(fp));
    for (const TaskRecord &r : existing) {
        body += sealLine(strprintf("T %" PRIu64 " ", r.index) +
                           r.metrics);
        ++count;
    }
    flush();
}

void
CheckpointWriter::append(const TaskRecord &record)
{
    body += sealLine(strprintf("T %" PRIu64 " ", record.index) +
                       record.metrics);
    ++count;
    flush();
}

void
CheckpointWriter::flush()
{
    std::string footer = sealLine(
        strprintf("END count=%zu total=%08x", count, crc32(body)));
    std::string error;
    if (!atomicWriteFile(path, body + footer, &error))
        fatal("checkpoint write to '%s' failed: %s", path.c_str(),
              error.c_str());
}

bool
loadCheckpoint(const std::string &path, LoadedCheckpoint *out,
               std::string *reason)
{
    std::string content;
    if (!slurpFile(path, &content, reason))
        return false;
    if (content.empty() || content.back() != '\n')
        return fail(reason, "checkpoint does not end with a newline "
                            "(truncated write?)");

    LoadedCheckpoint loaded;
    bool have_header = false, have_footer = false;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    std::string body_so_far;
    while (pos < content.size()) {
        std::size_t eol = content.find('\n', pos);
        // content ends with '\n', so eol is always found.
        std::string line = content.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;

        std::string payload;
        if (!unsealLine(line, &payload))
            return fail(reason,
                        strprintf("line %zu fails its CRC seal "
                                  "(torn or corrupted record)",
                                  line_no));
        if (have_footer)
            return fail(reason, strprintf("line %zu follows the END "
                                          "footer",
                                          line_no));
        if (!have_header) {
            if (!parseHeaderPayload(payload, &loaded.fingerprint))
                return fail(reason, "malformed checkpoint header");
            have_header = true;
        } else if (payload.compare(0, 4, "END ") == 0) {
            std::size_t cnt = 0;
            unsigned total = 0;
            if (std::sscanf(payload.c_str(), "END count=%zu total=%8x",
                            &cnt, &total) != 2)
                return fail(reason, "malformed END footer");
            if (cnt != loaded.records.size())
                return fail(reason,
                            strprintf("END count %zu != %zu records "
                                      "present",
                                      cnt, loaded.records.size()));
            if (total != crc32(body_so_far))
                return fail(reason, "END running CRC mismatch "
                                    "(checkpoint corrupted)");
            have_footer = true;
            continue;
        } else {
            TaskRecord rec;
            int consumed = 0;
            if (std::sscanf(payload.c_str(), "T %" SCNu64 " %n",
                            &rec.index, &consumed) != 1 ||
                consumed <= 0)
                return fail(reason,
                            strprintf("malformed task record at "
                                      "line %zu",
                                      line_no));
            rec.metrics =
                payload.substr(static_cast<std::size_t>(consumed));
            loaded.records.push_back(std::move(rec));
        }
        body_so_far += line;
        body_so_far += '\n';
    }
    if (!have_header)
        return fail(reason, "checkpoint is empty");
    if (!have_footer)
        return fail(reason, "checkpoint has no END footer "
                            "(truncated write?)");
    if (out)
        *out = std::move(loaded);
    return true;
}

bool
validateCheckpointFile(const std::string &path, std::string *reason)
{
    return loadCheckpoint(path, nullptr, reason);
}

std::string
artifactFooter(const std::string &body)
{
    return strprintf("  \"footer\": {\"crc32\": \"%08x\", "
                     "\"bytes\": %zu}\n}\n",
                     crc32(body), body.size());
}

bool
validateArtifactJson(const std::string &content, std::string *reason)
{
    // The emitter writes body + artifactFooter(body); recompute the
    // footer from everything before its own (last) occurrence and
    // require byte equality - any truncation or edit breaks it.
    const std::string marker = "\n  \"footer\": {\"crc32\": \"";
    std::size_t pos = content.rfind(marker);
    if (pos == std::string::npos)
        return fail(reason,
                    "no footer found (truncated or pre-footer file)");
    std::string body = content.substr(0, pos + 1);
    std::string expected = artifactFooter(body);
    if (content.size() != body.size() + expected.size() ||
        content.compare(body.size(), expected.size(), expected) != 0)
        return fail(reason, "footer checksum/byte-count mismatch "
                            "(torn or corrupted artifact)");
    return true;
}

bool
validateArtifactFile(const std::string &path, std::string *reason)
{
    std::string content;
    if (!slurpFile(path, &content, reason))
        return false;
    return validateArtifactJson(content, reason);
}

} // namespace memcon::ckpt
