/**
 * @file
 * An ASCII table builder used by the bench binaries to print the
 * rows/series of each paper table and figure in a uniform format.
 */

#ifndef MEMCON_COMMON_TABLE_HH
#define MEMCON_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace memcon
{

class TextTable
{
  public:
    /** Set (or replace) the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; short rows are padded with empty cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format cells with printf-style specs. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    /** Render with column alignment and a rule under the header. */
    std::string render() const;

    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace memcon

#endif // MEMCON_COMMON_TABLE_HH
