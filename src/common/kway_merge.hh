/**
 * @file
 * Lazy k-way merge of per-source sorted event streams.
 *
 * The MEMCON engine replays one ordered stream of write events built
 * from per-page timelines. Materializing every event and sorting is
 * O(W log W) time and O(W) memory; the merge instead keeps one
 * pending record per *live source* plus one window of staged events,
 * while the consumer sees events in exactly the order the old
 * materialize-then-`std::stable_sort` path produced.
 *
 * Ordering contract (load-bearing for the engine's bit-identical
 * metrics, see DESIGN.md §11): items are delivered in ascending
 * (time, source) order, and FIFO within one source. For per-page
 * streams that are individually sorted, this reproduces a stable
 * sort by time over events appended source-major - the tie-break the
 * seed engine got from `std::stable_sort` plus its page-major event
 * construction.
 *
 * Implementation: a classic binary heap over all sources delivers
 * this order but is cache-hostile at width (every pop walks log K
 * scattered heap levels; measured ~2x slower than the reference sort
 * at 100k sources). Instead, sources sit in a DeadlineWheel bucketed
 * by the epoch window floor(next_time / window) of their next event.
 * Advancing pops one window's sources (ordered by source id), peels
 * their events inside the window into a staging batch, re-buckets
 * each source under its next event, and sorts the batch by
 * (time, sequence) - sequence being assigned source-major, so the
 * sorted batch is in (time, source, per-source-index) order. Windows
 * partition the timeline, so concatenated batches equal the heap
 * order: total cost O(W log B + K log windows) with B = events per
 * window, resident memory O(K + B).
 *
 * A Stream is any type with `bool next(double &out_ms)` yielding its
 * times in ascending order; the merge panics on a stream that runs
 * backwards (an unsorted stream would silently reorder ties). Times
 * at or past the horizon terminate their stream: for a sorted stream
 * nothing after the first out-of-window time can be in-window.
 */

#ifndef MEMCON_COMMON_KWAY_MERGE_HH
#define MEMCON_COMMON_KWAY_MERGE_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/deadline_wheel.hh"
#include "common/logging.hh"

namespace memcon
{

template <typename Stream>
class KWayMerge
{
  public:
    struct Item
    {
        double time;
        std::uint32_t source;
    };

    /**
     * Take ownership of the streams and bucket each source under the
     * epoch window of its first in-horizon event. window_ms sets the
     * batching granularity (the engine passes its quantum): staging
     * memory is one window's events, so pick the natural cadence of
     * the consumer rather than something tiny.
     */
    KWayMerge(std::vector<Stream> source_streams, double horizon_ms,
              double window_ms)
        : streams(std::move(source_streams)), horizon(horizon_ms),
          window(window_ms)
    {
        fatal_if(streams.size() >= (std::uint64_t{1} << 32),
                 "too many merge sources");
        fatal_if(window <= 0.0, "window must be positive");
        lastTime.assign(streams.size(), 0.0);
        for (std::uint32_t s = 0; s < streams.size(); ++s) {
            double t;
            if (!pull(s, t, /*first=*/true))
                continue;
            wheel.push(bucketOf(t), Pending{t, s});
            ++pushes;
        }
        peakLive = wheel.size();
    }

    /** @return true when no staged or pending event remains. */
    bool empty() const
    {
        // Wheel entries always carry an in-horizon next event, so a
        // non-empty wheel guarantees at least one more item.
        return batchPos >= batch.size() && wheel.empty();
    }

    /** The next item in (time, source) order; panics when empty. */
    const Item &peek()
    {
        refill();
        panic_if(batchPos >= batch.size(), "peek() on an empty merge");
        return batch[batchPos];
    }

    /** Remove and return the next item. */
    Item pop()
    {
        refill();
        panic_if(batchPos >= batch.size(), "pop() on an empty merge");
        return batch[batchPos++];
    }

    /** Sources still holding a pending (un-staged) event. */
    std::size_t liveSources() const { return wheel.size(); }

    /** Peak pending sources observed (instrumentation). */
    std::size_t peakLiveSources() const { return peakLive; }

    /** Total source (re-)bucketings performed (instrumentation). */
    std::uint64_t heapPushes() const { return pushes; }

  private:
    /** One source waiting in the wheel with its next event time. */
    struct Pending
    {
        double time;
        std::uint32_t source;
    };

    /** A staged event; seq makes the batch sort key (time, seq)
     *  unique, and seq is assigned source-major. */
    struct Staged : Item
    {
        std::uint32_t seq;
    };

    /**
     * The window holding t. Float division can land one window off
     * in either direction; a window that starts after t would emit t
     * out of order, so correct downward (an early bucket is merely
     * re-bucketed when its window drains - see refill()).
     */
    std::int64_t bucketOf(double t) const
    {
        auto e = static_cast<std::int64_t>(t / window);
        if (e > 0 && t < static_cast<double>(e) * window)
            --e;
        return e;
    }

    /** Pull a source's next time; panic on disorder, retire at the
     *  horizon. @return true if the source stays live. */
    bool pull(std::uint32_t source, double &t, bool first)
    {
        if (!streams[source].next(t))
            return false;
        panic_if(t < 0.0, "negative write time");
        panic_if(!first && t < lastTime[source],
                 "unsorted write stream for source %u (%g after %g)",
                 source, t, lastTime[source]);
        lastTime[source] = t;
        return t < horizon;
    }

    /** Stage the next non-empty window once the batch is consumed. */
    void refill()
    {
        while (batchPos >= batch.size() && !wheel.empty()) {
            const std::int64_t epoch = wheel.nextEpoch();
            const double bound =
                std::min(static_cast<double>(epoch + 1) * window, horizon);
            due.clear();
            wheel.popDue(epoch, due);
            // Source-ascending staging order makes (time, seq) the
            // (time, source, index) tie-break of the contract.
            std::sort(due.begin(), due.end(),
                      [](const Pending &a, const Pending &b) {
                          return a.source < b.source;
                      });
            batch.clear();
            batchPos = 0;
            std::uint32_t seq = 0;
            for (const Pending &p : due) {
                double t = p.time;
                bool live = true;
                while (live && t < bound) {
                    batch.push_back(Staged{{t, p.source}, seq++});
                    live = pull(p.source, t, /*first=*/false);
                }
                if (!live)
                    continue;
                // Next event past this window: re-bucket, forcing
                // progress past the drained epoch.
                wheel.push(std::max(bucketOf(t), epoch + 1),
                           Pending{t, p.source});
                ++pushes;
            }
            peakLive = std::max(peakLive, wheel.size() + due.size());
            sortBatch(static_cast<double>(epoch) * window, bound);
        }
    }

    /**
     * Order the staged batch by (time, seq). The batch holds one
     * window's events, so times cluster inside [lo, hi); a monotone
     * distribution pass into ~8-event buckets followed by tiny
     * per-bucket sorts does the same work as a full introsort at a
     * fraction of the comparisons (the batch sort was the largest
     * single cost of the merge at 100k single-write sources). The
     * bucket index is a monotone function of time and every bucket
     * is finished with a real (time, seq) sort, so the concatenated
     * result is exact whatever the distribution - early-bucketed
     * stragglers below lo merely crowd bucket 0.
     */
    void sortBatch(double lo, double hi)
    {
        auto byTimeSeq = [](const Staged &a, const Staged &b) {
            if (a.time != b.time)
                return a.time < b.time;
            return a.seq < b.seq;
        };
        const std::size_t n = batch.size();
        if (n < 64 || !(hi > lo)) {
            std::sort(batch.begin(), batch.end(), byTimeSeq);
            return;
        }
        std::size_t nb = 16;
        while (nb * 8 < n && nb < 4096)
            nb <<= 1;
        const double scale = static_cast<double>(nb) / (hi - lo);
        bucketOfStaged.resize(n);
        bucketEnds.assign(nb + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const double rel = (batch[i].time - lo) * scale;
            std::size_t b =
                rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
            if (b >= nb)
                b = nb - 1;
            bucketOfStaged[i] = static_cast<std::uint32_t>(b);
            ++bucketEnds[b + 1];
        }
        for (std::size_t b = 1; b <= nb; ++b)
            bucketEnds[b] += bucketEnds[b - 1];
        // bucketEnds[b] is bucket b's start; the scatter cursors it
        // forward so it finishes as bucket b's end offset.
        stagedScratch.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            stagedScratch[bucketEnds[bucketOfStaged[i]]++] = batch[i];
        batch.swap(stagedScratch);
        std::size_t begin = 0;
        for (std::size_t b = 0; b < nb; ++b) {
            const std::size_t end = bucketEnds[b];
            if (end - begin > 1)
                std::sort(batch.begin() + begin, batch.begin() + end,
                          byTimeSeq);
            begin = end;
        }
    }

    std::vector<Stream> streams;
    std::vector<double> lastTime;
    DeadlineWheel<Pending> wheel;
    std::vector<Pending> due;
    std::vector<Staged> batch;
    // sortBatch() scratch, reused across windows.
    std::vector<std::uint32_t> bucketOfStaged;
    std::vector<std::uint32_t> bucketEnds;
    std::vector<Staged> stagedScratch;
    std::size_t batchPos = 0;
    double horizon;
    double window;
    std::uint64_t pushes = 0;
    std::size_t peakLive = 0;
};

} // namespace memcon

#endif // MEMCON_COMMON_KWAY_MERGE_HH
