/**
 * @file
 * A compact dynamic bit vector.
 *
 * PRIL's write-maps are bit vectors with one bit per memory page
 * (Section 4.2 of the paper); this container is sized for millions of
 * bits and supports the operations the tracker needs: set/test/clear,
 * popcount, clear-all, and iteration over set bits.
 */

#ifndef MEMCON_COMMON_BITVECTOR_HH
#define MEMCON_COMMON_BITVECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hh"

namespace memcon
{

class BitVector
{
  public:
    BitVector() = default;

    /** Construct with all bits clear. */
    explicit BitVector(std::size_t num_bits);

    /** Resize, clearing every bit. */
    void resizeAndClear(std::size_t num_bits);

    /** @return the number of addressable bits. */
    std::size_t size() const { return numBits; }

    /** Set the bit at idx. */
    void set(std::size_t idx);

    /** Clear the bit at idx. */
    void clear(std::size_t idx);

    /** @return the bit at idx. */
    bool test(std::size_t idx) const;

    /**
     * Set the bit and report whether it was already set, the
     * single-probe "first write this quantum?" check PRIL performs.
     */
    bool testAndSet(std::size_t idx);

    /** Clear all bits (words are zeroed; capacity retained). */
    void clearAll();

    /** @return the number of set bits. */
    std::size_t count() const;

    /** @return indices of all set bits, ascending. */
    std::vector<std::size_t> setBits() const;

    /**
     * Append the indices of all set bits, ascending, into out
     * (cleared first; capacity retained). The allocation-free form
     * of setBits() for per-quantum hot paths.
     */
    void setBitsInto(std::vector<std::size_t> &out) const;

    /**
     * Invoke fn(bit_index) for every set bit, ascending, through the
     * dispatched kernel. fn may clear the current or an earlier bit
     * (each word is snapshotted before its bits dispatch); setting
     * bits mid-visit is undefined.
     */
    template <typename Fn>
    void
    visitSetBits(Fn &&fn) const
    {
        simd::visitSetBits(words.data(), words.size(),
                           std::forward<Fn>(fn));
    }

    /**
     * dst |= src over the word arrays. Sizes must match. Tail bits
     * past size() stay zero because both operands keep them zero.
     */
    void orWith(const BitVector &src);

    /** dst &= ~src over the word arrays. Sizes must match. */
    void andNotWith(const BitVector &src);

    /** Raw word span, for the simd kernels. */
    const std::uint64_t *wordData() const { return words.data(); }
    std::size_t wordCount() const { return words.size(); }

    /** Storage footprint in bytes (for overhead accounting). */
    std::size_t storageBytes() const { return words.size() * sizeof(std::uint64_t); }

  private:
    void checkIndex(std::size_t idx) const;

    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace memcon

#endif // MEMCON_COMMON_BITVECTOR_HH
