#include "common/thread_pool.hh"

namespace memcon
{

TaskCancelled::TaskCancelled()
    : std::runtime_error("task abandoned by supervisor")
{
}

void
CancelToken::throwIfCancelled() const
{
    if (cancelRequested())
        throw TaskCancelled();
}

ThreadPool::ThreadPool(unsigned num_threads, std::size_t queue_capacity)
    : capacity(queue_capacity == 0 ? 1 : queue_capacity)
{
    if (num_threads == 0)
        num_threads = 1;
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    notEmpty.notify_all();
    for (std::thread &w : workers)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::unique_lock<std::mutex> lock(mtx);
        notFull.wait(lock, [this] { return queue.size() < capacity; });
        queue.push_back(std::move(packaged));
    }
    notEmpty.notify_one();
    return future;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mtx);
    idle.wait(lock, [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            notEmpty.wait(lock,
                          [this] { return stopping || !queue.empty(); });
            // Graceful shutdown: drain the queue before exiting, so
            // work submitted before destruction always runs.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        notFull.notify_one();
        task(); // exceptions land in the future, not here
        {
            std::unique_lock<std::mutex> lock(mtx);
            --inFlight;
            if (queue.empty() && inFlight == 0)
                idle.notify_all();
        }
    }
}

} // namespace memcon
