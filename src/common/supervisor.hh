/**
 * @file
 * Hung-task watchdog for long campaigns (DESIGN.md §15).
 *
 * A Supervisor runs one monitor thread beside a campaign. Each task
 * attempt registers on start and deregisters on completion; the
 * monitor periodically compares every running attempt's elapsed wall
 * clock against its deadline and, when exceeded, raises the
 * attempt's CancelToken and logs the stuck task's index, label, and
 * campaign position. A cooperative task observes the token, unwinds
 * with TaskCancelled, and is requeued by the campaign layer; after a
 * bounded number of abandoned attempts the supervisor marks the
 * whole campaign failed (the runner exits with the documented
 * watchdog exit code).
 *
 * The deadline is max(floor, multiplier x median completed-task wall
 * clock): the floor (--task-timeout-ms) makes the watchdog usable
 * before any task has finished, the median term adapts it to the
 * campaign's real task granularity. The watchdog is off unless a
 * floor is configured - sweep points legitimately vary by orders of
 * magnitude, so hang detection is an explicit opt-in.
 *
 * Wall-clock use here is supervision-only: nothing the monitor
 * observes ever feeds a metric, a seed, or a digest, so the §9
 * determinism contract is untouched.
 */

#ifndef MEMCON_COMMON_SUPERVISOR_HH
#define MEMCON_COMMON_SUPERVISOR_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace memcon
{

/**
 * Process exit code for "the watchdog gave up on a hung task" -
 * documented in the DESIGN.md §15 exit-code table and distinct from
 * the resumable kExitInterrupted (75). Lives here, next to the
 * watchdog itself, so every layer that surfaces the failure (the
 * campaign runner, the service daemon) names one constant instead of
 * re-hardcoding 76.
 */
inline constexpr int kWatchdogExitCode = 76;

/** The constant's name, for symbolic exit-code reporting. */
inline constexpr const char *kWatchdogExitCodeName = "kWatchdogExitCode";

struct SupervisorConfig
{
    /** Deadline floor in ms; <= 0 disables the watchdog entirely. */
    double floorTimeoutMs = 0.0;

    /** Deadline is max(floor, multiplier x median completed ms). */
    double medianMultiplier = 8.0;

    /** Attempts per task before the campaign is failed (1 initial
     *  run + N-1 requeues). */
    unsigned maxAttempts = 3;

    /** Monitor poll cadence. */
    double pollIntervalMs = 5.0;
};

class Supervisor
{
  public:
    /**
     * @param cfg          watchdog policy
     * @param total_tasks  campaign size, for position reporting
     */
    Supervisor(SupervisorConfig cfg, std::size_t total_tasks);

    /** Stops and joins the monitor thread. */
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** A task attempt started; arms its deadline. */
    void beginTask(std::size_t index, const std::string &label,
                   unsigned attempt, CancelToken token);

    /**
     * The attempt ended. Completed attempts feed their wall clock
     * into the median the adaptive deadline derives from; abandoned
     * or failed attempts do not.
     */
    void endTask(std::size_t index, bool completed, double wall_ms);

    /**
     * A task burned through every attempt: mark the campaign failed.
     * Subsequent task admissions observe campaignFailed() and skip.
     */
    void reportExhausted(std::size_t index, const std::string &label);

    bool campaignFailed() const;

    /** Why the campaign failed; empty while it has not. */
    std::string failureReason() const;

    /** Deadline overruns observed so far (attempts cancelled). */
    unsigned timeoutsObserved() const;

    /** The deadline a task starting now would get, in ms; 0 while
     *  the watchdog cannot fire (no floor configured). */
    double currentDeadlineMs() const;

  private:
    struct Running
    {
        std::string label;
        unsigned attempt = 0;
        CancelToken token;
        // lint:allow(wall-clock) - supervision only, never metrics
        std::chrono::steady_clock::time_point start;
        bool cancelSent = false;
    };

    void monitorLoop();
    double deadlineMsLocked() const;

    SupervisorConfig cfg;
    std::size_t totalTasks;

    mutable std::mutex mtx;
    std::condition_variable wake;
    bool stopping = false; // memcon:guarded_by(mtx)
    // memcon:guarded_by(mtx)
    std::map<std::size_t, Running> running;
    // memcon:guarded_by(mtx) - kept sorted for the median
    std::vector<double> completedMs;
    std::size_t completedTasks = 0; // memcon:guarded_by(mtx)
    unsigned timeouts = 0;          // memcon:guarded_by(mtx)
    bool failed = false;            // memcon:guarded_by(mtx)
    std::string failReason;         // memcon:guarded_by(mtx)

    std::thread monitor;
};

} // namespace memcon

#endif // MEMCON_COMMON_SUPERVISOR_HH
