#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace memcon
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
TextTable::pct(double fraction, int precision)
{
    return strprintf("%.*f%%", precision, fraction * 100.0);
}

std::string
TextTable::render() const
{
    std::size_t cols = head.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    };
    measure(head);
    for (const auto &r : rows)
        measure(r);

    auto emit = [&](std::ostringstream &os,
                    const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < cols; ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            os << cell;
            if (c + 1 < cols)
                os << std::string(width[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    if (!head.empty()) {
        emit(os, head);
        std::size_t rule = 0;
        for (std::size_t c = 0; c < cols; ++c)
            rule += width[c] + (c + 1 < cols ? 2 : 0);
        os << std::string(rule, '-') << "\n";
    }
    for (const auto &r : rows)
        emit(os, r);
    return os.str();
}

} // namespace memcon
