/**
 * @file
 * Strongly-typed entity identifiers.
 *
 * The library addresses several distinct spaces with plain 64-bit
 * integers: DRAM rows (the unit MEMCON tests and refreshes) and OS
 * pages (the unit PRIL tracks). Handing a page index to a row API
 * compiles fine with bare aliases and silently corrupts an
 * experiment; StrongId makes every such mix-up a compile error while
 * costing nothing at runtime (the wrapper is a single register).
 *
 * Conversions are explicit in both directions:
 *
 *     RowId row{17};            // in: explicit constructor
 *     std::uint64_t raw = row.value(); // out: named accessor
 *     PageId page{row};         // error: no cross-id conversion
 *
 * Ids order and hash like their underlying integer, so they work as
 * keys in ordered and unordered containers and sort deterministically
 * through the common/ordered.hh helpers.
 */

#ifndef MEMCON_COMMON_STRONG_ID_HH
#define MEMCON_COMMON_STRONG_ID_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace memcon
{

/**
 * A transparent integer wrapper distinguished by its Tag type. Ids
 * are regular (copyable, comparable, hashable) but deliberately
 * support no arithmetic beyond successor/predecessor stepping -
 * "row 3 + row 5" has no meaning, but iterating a dense id range
 * does.
 */
template <typename Tag, typename Rep = std::uint64_t>
class StrongId
{
  public:
    using rep = Rep;

    constexpr StrongId() = default;
    explicit constexpr StrongId(Rep raw) : raw_(raw) {}

    /** The underlying integer, for printing and raw-keyed storage. */
    constexpr Rep value() const { return raw_; }

    constexpr auto operator<=>(const StrongId &) const = default;

    /** Dense-range stepping (next/previous id). */
    constexpr StrongId &
    operator++()
    {
        ++raw_;
        return *this;
    }
    constexpr StrongId
    operator++(int)
    {
        StrongId old = *this;
        ++raw_;
        return old;
    }
    constexpr StrongId &
    operator--()
    {
        --raw_;
        return *this;
    }

  private:
    Rep raw_ = Rep{};
};

/** Hash functor usable with any StrongId instantiation. */
struct StrongIdHash
{
    template <typename Tag, typename Rep>
    std::size_t
    operator()(const StrongId<Tag, Rep> &id) const
    {
        return std::hash<Rep>{}(id.value());
    }
};

/**
 * A dense index over the DRAM rows of one module (the
 * Geometry::flatRowIndex() space), and equally the per-bank row
 * coordinate inside the cycle model - the unit of testing,
 * refresh-rate binning, and failure records.
 */
using RowId = StrongId<struct RowIdTag>;

/** An OS page index - the unit PRIL write-tracking operates on. In
 * every modelled configuration one page maps onto one DRAM row, but
 * the two spaces must never mix silently. */
using PageId = StrongId<struct PageIdTag>;

} // namespace memcon

/** std::hash support so ids drop into unordered containers. */
template <typename Tag, typename Rep>
struct std::hash<memcon::StrongId<Tag, Rep>>
{
    std::size_t
    operator()(const memcon::StrongId<Tag, Rep> &id) const noexcept
    {
        return std::hash<Rep>{}(id.value());
    }
};

#endif // MEMCON_COMMON_STRONG_ID_HH
