/**
 * @file
 * A bucketed deadline queue ("wheel") over coarse integer epochs.
 *
 * The engine's idle-row re-scrub used to re-scan every page at every
 * quantum boundary - O(quanta × pages) for a check that is almost
 * always false. The wheel buckets each entry under the epoch (quantum
 * index) at which it *may* become due, so a boundary only touches the
 * entries whose buckets have matured: O(pages + demotions) over a
 * whole run. The k-way event merge reuses it to bucket sources by
 * the window of their next event.
 *
 * Epochs are small, dense, and consumed monotonically (quantum or
 * window indexes), so buckets live in a flat slot vector behind a
 * forward-only cursor: push and pop are O(1) amortized with no
 * per-node allocation (a std::map-based wheel measurably dragged the
 * merge below the path it replaced). Consequently, pushing an epoch
 * the cursor has already passed is a panic ("push into the past") -
 * re-push matured-but-unserviced entries at now + 1.
 *
 * Determinism contract: popDue() drains matured buckets in ascending
 * bucket order and FIFO within a bucket, so the pop sequence is a
 * pure function of the push sequence. Callers that need a different
 * service order (the engine re-sorts due scrub entries by page to
 * reproduce the seed engine's page-ascending scan) impose it on the
 * popped batch.
 *
 * Buckets are advisory, not authoritative: an entry may be popped
 * before its real deadline (the caller re-checks its own predicate
 * and re-pushes into a later bucket), but must never be bucketed
 * *after* it - push conservatively early when in doubt. Lazily
 * re-pushed or stale entries (state changed since enqueue) are the
 * caller's to drop.
 */

#ifndef MEMCON_COMMON_DEADLINE_WHEEL_HH
#define MEMCON_COMMON_DEADLINE_WHEEL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace memcon
{

template <typename Entry>
class DeadlineWheel
{
  public:
    /** Enqueue an entry to mature at the given epoch (or earlier). */
    void push(std::int64_t epoch, const Entry &entry)
    {
        panic_if(epoch < 0, "negative wheel epoch");
        panic_if(epoch < cursor, "wheel push into the past "
                 "(epoch %lld, cursor %lld)",
                 static_cast<long long>(epoch),
                 static_cast<long long>(cursor));
        auto idx = static_cast<std::size_t>(epoch);
        if (idx >= slots.size())
            slots.resize(idx + 1);
        slots[idx].push_back(entry);
        ++numEntries;
    }

    /**
     * Drain every bucket with epoch <= now, appending the entries to
     * out in (epoch, insertion) order. @return the number popped.
     */
    std::size_t popDue(std::int64_t now, std::vector<Entry> &out)
    {
        std::size_t popped = 0;
        while (cursor <= now &&
               static_cast<std::size_t>(cursor) < slots.size()) {
            std::vector<Entry> &slot =
                slots[static_cast<std::size_t>(cursor)];
            popped += slot.size();
            out.insert(out.end(), slot.begin(), slot.end());
            slot.clear();
            ++cursor;
        }
        if (cursor <= now)
            cursor = now + 1;
        panic_if(popped > numEntries, "wheel entry accounting broken");
        numEntries -= popped;
        return popped;
    }

    std::size_t size() const { return numEntries; }
    bool empty() const { return numEntries == 0; }

    /** The earliest pending epoch; panics when empty. */
    std::int64_t nextEpoch() const
    {
        panic_if(numEntries == 0, "nextEpoch() on an empty wheel");
        // The scan resumes from the cursor each call; the cursor only
        // moves forward, so the total scan work over a wheel's life
        // is O(max epoch), amortized O(1) per pop.
        auto idx = static_cast<std::size_t>(cursor);
        while (idx < slots.size() && slots[idx].empty())
            ++idx;
        panic_if(idx >= slots.size(), "wheel entry accounting broken");
        return static_cast<std::int64_t>(idx);
    }

    /** Distinct pending epochs (instrumentation/testing). */
    std::size_t bucketCount() const
    {
        std::size_t n = 0;
        for (std::size_t i = static_cast<std::size_t>(cursor);
             i < slots.size(); ++i)
            n += !slots[i].empty();
        return n;
    }

  private:
    std::vector<std::vector<Entry>> slots;
    std::int64_t cursor = 0; //!< first epoch not yet drained
    std::size_t numEntries = 0;
};

} // namespace memcon

#endif // MEMCON_COMMON_DEADLINE_WHEEL_HH
