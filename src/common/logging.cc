#include "common/logging.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace memcon
{

namespace
{
bool quietFlag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";

    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

std::string
errnoString()
{
    int err = errno;
    char buf[256] = {0};
#if defined(_GNU_SOURCE) || defined(__GLIBC__)
    // GNU strerror_r may return a static string instead of filling buf.
    return strerror_r(err, buf, sizeof(buf));
#else
    strerror_r(err, buf, sizeof(buf));
    return buf;
#endif
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace memcon
