/**
 * @file
 * A minimal named-statistics registry in the spirit of gem5's stats
 * package: components register scalar counters and formulas under a
 * dotted name, and a group can be dumped as text at the end of a run.
 */

#ifndef MEMCON_COMMON_STATS_HH
#define MEMCON_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace memcon
{

/**
 * A collection of named scalar statistics. Components hold a
 * reference to a StatGroup and bump counters through it; formulas are
 * evaluated lazily at dump time.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : groupName(std::move(name)) {}

    /** Add delta to the named counter, creating it at zero. */
    void inc(const std::string &stat, std::uint64_t delta = 1);

    /** Overwrite the named scalar value. */
    void set(const std::string &stat, double value);

    /** Accumulate a floating-point quantity. */
    void accum(const std::string &stat, double delta);

    /** Register a formula evaluated at dump()/value() time. */
    void formula(const std::string &stat, std::function<double()> fn);

    /** @return the current value of the named stat (0 if absent). */
    double value(const std::string &stat) const;

    /** @return true if the stat exists. */
    bool has(const std::string &stat) const;

    /** Reset all counters and scalars to zero (formulas retained). */
    void reset();

    /** Render "name value" lines, sorted by name. */
    std::string dump() const;

    const std::string &name() const { return groupName; }

  private:
    std::string groupName;
    std::map<std::string, double> scalars;
    std::map<std::string, std::function<double()>> formulas;
};

} // namespace memcon

#endif // MEMCON_COMMON_STATS_HH
