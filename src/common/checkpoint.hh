/**
 * @file
 * Durable campaign artifacts: checksummed checkpoints and torn-file
 * rejection (DESIGN.md §15).
 *
 * Long profiling campaigns must survive process death without
 * invalidating results, and a file a dying process was mid-write in
 * must never be mistaken for a complete one. Three pieces enforce
 * that:
 *
 *  * atomicWriteFile() - every durable artifact (checkpoint and
 *    BENCH_*.json alike) is written to a temp file in the target
 *    directory, flushed, and rename()d into place, so readers only
 *    ever observe the old complete file or the new complete file.
 *
 *  * The campaign checkpoint ("MEMCON-CKPT v1") - one CRC32-guarded
 *    record per completed sweep task (task index -> named metrics in
 *    the canonical %.17g digest serialization), a fingerprint header
 *    binding the file to (artifact, campaign seed, point count,
 *    quick flag, label set), and an END footer covering every byte
 *    above it. loadCheckpoint() is strict: a file truncated or
 *    corrupted at ANY byte is rejected, never parsed as a shorter
 *    valid checkpoint.
 *
 *  * The BENCH_*.json footer - the emitter ends every artifact with
 *    a "footer" object carrying the CRC32 and byte count of
 *    everything before it; validateArtifactJson() recomputes both,
 *    so downstream tooling can reject a torn artifact instead of
 *    charting half a campaign.
 */

#ifndef MEMCON_COMMON_CHECKPOINT_HH
#define MEMCON_COMMON_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace memcon::ckpt
{

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), the usual check value
 *  crc32("123456789") == 0xCBF43926. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);
std::uint32_t crc32(const std::string &s);

/**
 * "<payload> #<8-hex-crc>\n" - the self-checking line format every
 * durable record (campaign checkpoint, service snapshot) uses. A
 * reader that unseals each line rejects torn or bit-flipped records
 * without trusting any surrounding structure.
 */
std::string sealLine(const std::string &payload);

/**
 * Split one sealed line back into its payload, verifying the CRC.
 * Returns false if the seal is missing or does not match.
 */
bool unsealLine(const std::string &line, std::string *payload);

/**
 * Write `content` to `path` atomically: temp file in the same
 * directory, write, fsync, rename. On any failure the target is left
 * untouched (the temp file is unlinked) and `error` describes what
 * went wrong.
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string *error = nullptr);

/**
 * What binds a checkpoint to one specific campaign. Thread count and
 * wall clock are deliberately absent: the §9 determinism contract
 * makes them irrelevant to the metrics, so a campaign interrupted at
 * 8 threads may be resumed at 1 (or vice versa).
 */
struct CampaignFingerprint
{
    std::string artifact;          //!< bench identity, no spaces
    std::uint64_t campaignSeed = 0;
    std::uint64_t pointCount = 0;
    bool quick = false;
    std::uint32_t labelsCrc = 0;   //!< crc32 of all labels, '\n'-joined

    bool matches(const CampaignFingerprint &other) const;

    /** Human-readable form for mismatch diagnostics. */
    std::string describe() const;
};

/**
 * Thrown by requireFingerprintMatch(): the error text carries both
 * describe() strings (found vs expected), so a resume failure names
 * exactly which field diverged instead of a bare "mismatch".
 */
class FingerprintMismatch : public std::runtime_error
{
  public:
    FingerprintMismatch(const CampaignFingerprint &found_fp,
                        const CampaignFingerprint &expected_fp);

    const CampaignFingerprint found;
    const CampaignFingerprint expected;
};

/** Throw FingerprintMismatch unless found matches expected. */
void requireFingerprintMatch(const CampaignFingerprint &found,
                             const CampaignFingerprint &expected);

/** One completed task: its index and canonical metrics line
 *  ("name=value;..." with %.17g doubles - the digest serialization,
 *  which round-trips doubles exactly). */
struct TaskRecord
{
    std::uint64_t index = 0;
    std::string metrics;
};

/**
 * Appends task records to a checkpoint file. Every append rewrites
 * the whole file through atomicWriteFile() with a fresh END footer,
 * so the on-disk checkpoint is complete and self-validating after
 * every record - a SIGKILL between appends loses at most the tasks
 * whose records were not yet written, never the file's integrity.
 */
class CheckpointWriter
{
  public:
    /**
     * @param path      checkpoint file to (re)write
     * @param fp        the campaign this checkpoint belongs to
     * @param existing  records carried over from a resumed checkpoint
     *
     * Writes the initial file (header + existing records + footer)
     * immediately; fatal on I/O failure - a campaign that cannot be
     * checkpointed must not pretend it is.
     */
    CheckpointWriter(std::string path, const CampaignFingerprint &fp,
                     std::vector<TaskRecord> existing = {});

    /** Append one record and atomically rewrite the file. */
    void append(const TaskRecord &record);

    std::size_t recordCount() const { return count; }
    const std::string &filePath() const { return path; }

  private:
    void flush();

    std::string path;
    std::string body; //!< header + record lines (everything the
                      //!< footer's running CRC covers)
    std::size_t count = 0;
};

/** A successfully validated checkpoint. */
struct LoadedCheckpoint
{
    CampaignFingerprint fingerprint;
    std::vector<TaskRecord> records;
};

/**
 * Strictly load `path`: header, every record, and the END footer must
 * all be present and CRC-clean, with no trailing bytes. Returns false
 * with a reason on any deviation - including truncation at any byte.
 */
bool loadCheckpoint(const std::string &path, LoadedCheckpoint *out,
                    std::string *reason = nullptr);

/** Validation-only wrapper around loadCheckpoint(). */
bool validateCheckpointFile(const std::string &path,
                            std::string *reason = nullptr);

/**
 * The torn-file guard for BENCH_*.json: given the artifact body (the
 * serialized JSON up to and including the line that closes the points
 * array, `  ],\n`), return the footer + closing brace that completes
 * the file: `  "footer": {"crc32": "xxxxxxxx", "bytes": N}\n}\n`.
 */
std::string artifactFooter(const std::string &body);

/**
 * Validate a complete BENCH_*.json artifact: the file must end with
 * exactly the footer artifactFooter() derives from everything before
 * it. A file truncated at any byte fails. Returns false with a
 * reason on rejection.
 */
bool validateArtifactJson(const std::string &content,
                          std::string *reason = nullptr);

/** validateArtifactJson() over a file on disk. */
bool validateArtifactFile(const std::string &path,
                          std::string *reason = nullptr);

} // namespace memcon::ckpt

#endif // MEMCON_COMMON_CHECKPOINT_HH
