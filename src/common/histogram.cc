#include "common/histogram.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace memcon
{

LogHistogram::LogHistogram(unsigned max_exponent)
    : maxExponent(max_exponent)
{
    // Bucket 0: [0, 1). Buckets 1..maxExponent+1: [2^(i-1), 2^i).
    // Last bucket: overflow [2^maxExponent, inf).
    counts.assign(maxExponent + 2, 0);
    weights.assign(maxExponent + 2, 0.0);
}

std::size_t
LogHistogram::bucketFor(double value) const
{
    panic_if(value < 0.0, "histogram samples must be non-negative");
    if (value < 1.0)
        return 0;
    unsigned e = static_cast<unsigned>(std::floor(std::log2(value)));
    if (e >= maxExponent)
        return counts.size() - 1;
    return e + 1;
}

void
LogHistogram::add(double value, double weight_value)
{
    std::size_t b = bucketFor(value);
    counts[b] += 1;
    weights[b] += weight_value;
    total += 1;
    totalW += weight_value;
    sum += value;
}

void
LogHistogram::reset()
{
    counts.assign(counts.size(), 0);
    weights.assign(weights.size(), 0.0);
    total = 0;
    totalW = 0.0;
    sum = 0.0;
}

double
LogHistogram::bucketLow(std::size_t i) const
{
    if (i == 0)
        return 0.0;
    return std::pow(2.0, static_cast<double>(i - 1));
}

double
LogHistogram::bucketHigh(std::size_t i) const
{
    if (i + 1 == counts.size())
        return std::numeric_limits<double>::infinity();
    return std::pow(2.0, static_cast<double>(i));
}

double
LogHistogram::tailFraction(const std::vector<double> &mass,
                           double mass_total, double threshold) const
{
    if (mass_total <= 0.0)
        return 0.0;

    double above = 0.0;
    for (std::size_t i = 0; i < mass.size(); ++i) {
        double lo = bucketLow(i);
        double hi = bucketHigh(i);
        if (lo >= threshold) {
            above += mass[i];
        } else if (hi > threshold && std::isfinite(hi)) {
            // Straddling bucket: assume uniform density inside.
            double frac = (hi - threshold) / (hi - lo);
            above += mass[i] * frac;
        } else if (!std::isfinite(hi) && threshold > lo) {
            // Threshold inside the overflow bucket: all of it counts
            // as above (we cannot do better without raw samples).
            above += mass[i];
        }
    }
    return above / mass_total;
}

double
LogHistogram::fractionCountAtLeast(double threshold) const
{
    std::vector<double> mass(counts.begin(), counts.end());
    return tailFraction(mass, static_cast<double>(total), threshold);
}

double
LogHistogram::fractionWeightAtLeast(double threshold) const
{
    return tailFraction(weights, totalW, threshold);
}

double
LogHistogram::mean() const
{
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

std::string
LogHistogram::format(const std::string &unit) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        double pct = total ? 100.0 * static_cast<double>(counts[i]) /
                                  static_cast<double>(total)
                           : 0.0;
        double wpct = totalW > 0.0 ? 100.0 * weights[i] / totalW : 0.0;
        os << strprintf(">=%12.0f %-4s  n=%10llu  %6.3f%%  w=%6.3f%%\n",
                        bucketLow(i), unit.c_str(),
                        static_cast<unsigned long long>(counts[i]), pct,
                        wpct);
    }
    return os.str();
}

} // namespace memcon
