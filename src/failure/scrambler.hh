/**
 * @file
 * Vendor-internal address scrambling (Figure 2a).
 *
 * DRAM vendors map the system-visible (logical) address space onto
 * physical cell positions through an undisclosed, per-generation
 * permutation, so logically adjacent addresses are not physically
 * adjacent. We model this as a keyed bijection implemented with a
 * balanced Feistel network over the index bits: cheap, invertible,
 * and different for every chip seed, exactly the property that makes
 * system-level neighbour testing miss failures.
 */

#ifndef MEMCON_FAILURE_SCRAMBLER_HH
#define MEMCON_FAILURE_SCRAMBLER_HH

#include <cstdint>

namespace memcon::failure
{

/**
 * A keyed bijection over [0, 2^bits). Four Feistel rounds with a
 * SplitMix-based round function give thorough mixing while staying
 * exactly invertible.
 */
class KeyedPermutation
{
  public:
    /**
     * @param bits  width of the index space (1..62)
     * @param key   per-chip secret; different keys give unrelated
     *              permutations
     */
    KeyedPermutation(unsigned bits, std::uint64_t key);

    /** Map a logical index to its physical position. */
    std::uint64_t forward(std::uint64_t logical) const;

    /** Map a physical position back to the logical index. */
    std::uint64_t inverse(std::uint64_t physical) const;

    /** Size of the index space. */
    std::uint64_t size() const { return std::uint64_t{1} << numBits; }

  private:
    std::uint64_t roundFn(std::uint64_t half, unsigned round) const;

    unsigned numBits;
    unsigned halfBits;
    std::uint64_t key;
    static constexpr unsigned numRounds = 4;
};

/**
 * The full per-chip scrambler: independent keyed permutations over
 * row addresses and column (cell) addresses within a bank. The
 * identity configuration (scrambling disabled) models an idealized
 * chip whose internals are exposed.
 */
class AddressScrambler
{
  public:
    /**
     * @param row_bits    log2(rows per bank)
     * @param column_bits log2(cells per row)
     * @param chip_key    per-chip secret; 0 disables scrambling
     */
    AddressScrambler(unsigned row_bits, unsigned column_bits,
                     std::uint64_t chip_key);

    bool enabled() const { return chipKey != 0; }

    std::uint64_t physicalRow(std::uint64_t logical_row) const;
    std::uint64_t logicalRow(std::uint64_t physical_row) const;
    std::uint64_t physicalColumn(std::uint64_t logical_col) const;
    std::uint64_t logicalColumn(std::uint64_t physical_col) const;

    std::uint64_t numRows() const { return rowPerm.size(); }
    std::uint64_t numColumns() const { return colPerm.size(); }

  private:
    std::uint64_t chipKey;
    KeyedPermutation rowPerm;
    KeyedPermutation colPerm;
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_SCRAMBLER_HH
