/**
 * @file
 * Activation-count read-disturb (RowHammer) failure model.
 *
 * Every ACT of a DRAM row disturbs its physical neighbors a little;
 * enough activations of an aggressor between two refreshes of a
 * victim flip bits in the victim. The model here is victim-centric:
 * each victim row carries a charge counter that aggressor ACTs feed
 * (full weight at distance 1, a configurable fraction at distance 2 -
 * the "blast radius" DiscoRD and Blacksmith measure), and the counter
 * resets whenever the victim is refreshed. Physical adjacency comes
 * from dram::AddressMap::rowNeighbor - two pages adjacent in the flat
 * index are usually in different banks entirely, so an aggressor only
 * hammers same-bank neighbors.
 *
 * The refresh window a victim accumulates over is its *current*
 * refresh interval: 16 ms at HI-REF, 64 ms at LO-REF (both
 * campaign-compressible). This is the coupling MEMCON's demotion
 * policy never tests for - a row demoted to LO-REF accumulates 4x
 * the activations between resets, so an aggressor stream that a
 * HI-REF module tolerates flips bits once its victims are demoted.
 *
 * Per-row flip thresholds are drawn from a seeded DiscoRD-style
 * lognormal around a median with a hard floor (the weakest row a
 * module ships with); everything is a pure function of (seed, row),
 * so campaigns replay bit-identically. Crossing the threshold flips
 * one bit (SECDED-correctable); crossing it again in the same
 * accumulation window flips a second bit of the same word
 * (uncorrectable). Flips persist across refreshes - refresh restores
 * the charge of whatever value the cell holds, including a corrupted
 * one - and are repaired only by a rewrite/scrub-correct
 * (onRowRestored) or retired by the machine-check path when a read
 * observes them uncorrectable.
 *
 * The model composes into the per-read SECDED verdict through
 * FaultInjector::attachDisturb.
 */

#ifndef MEMCON_FAILURE_DISTURB_HH
#define MEMCON_FAILURE_DISTURB_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/strong_id.hh"
#include "common/units.hh"
#include "dram/address_map.hh"

namespace memcon::failure
{

struct DisturbParams
{
    /**
     * Median of the per-row flip-threshold distribution, in aggressor
     * ACTs within one victim refresh window. Contemporary DDR4 parts
     * sit around 50k; campaigns compress time and lower this together
     * with the refresh windows.
     */
    std::uint64_t medianThreshold = 50000;

    /** Log-space sigma of the lognormal threshold spread. */
    double thresholdSigma = 0.25;

    /** Hard floor under the distribution: the weakest row shipped. */
    std::uint64_t minThreshold = 4096;

    /**
     * Fraction of an ACT's disturbance charged to distance-2 victims
     * (distance-1 victims always take full weight). Quantized to
     * quarters; 0 disables the wider blast radius.
     */
    double blastRadius2Weight = 0.25;

    /** Victim refresh window while the row refreshes at HI-REF. */
    double hiWindowMs = 16.0;

    /** Victim refresh window while the row refreshes at LO-REF. */
    double loWindowMs = 64.0;

    std::uint64_t seed = 1;
};

class DisturbModel
{
  public:
    /**
     * @param map physical adjacency; must outlive the model. The
     *        identity map makes the whole module one bank.
     * @param num_rows page population; neighbors are clipped to it.
     */
    DisturbModel(const DisturbParams &params, const dram::AddressMap *map,
                 std::uint64_t num_rows);

    const DisturbParams &params() const { return cfg; }

    /**
     * Tell the model which rows currently refresh at LO-REF (longer
     * accumulation window). Unset means everything refreshes at
     * HI-REF.
     */
    void setLoRefQuery(std::function<bool(RowId)> query)
    {
        loRefQuery = std::move(query);
    }

    /** The row's flip threshold: pure function of (seed, row). */
    std::uint64_t thresholdOf(RowId victim) const;

    /**
     * The controller activated `row` at `now`: charge its physical
     * neighbors and record any threshold crossings as pending flips.
     */
    void onActivate(RowId row, Tick now);

    /**
     * The victim row was refreshed out of band (the mitigation's
     * neighbor refresh): its disturbance counter resets, but any
     * already-flipped bits persist - refresh restores corrupted
     * charge as faithfully as intact charge.
     */
    void onVictimRefreshed(RowId victim, Tick now);

    /**
     * The row's content was rewritten or re-certified: counter and
     * pending flips are both repaired.
     */
    void onRowRestored(RowId victim, Tick now);

    /** A read observed the row uncorrectable; the machine-check path
     * retires the page and its pending flips with it. */
    void retireFlips(RowId victim);

    /** Pending correctable flips (distinct single-bit upsets). */
    unsigned pendingSingle(RowId victim) const;

    /** Pending uncorrectable flips (two bits of one word). */
    unsigned pendingDouble(RowId victim) const;

    /** Does the row hold disturb corruption no read surfaced yet? */
    bool hasLatentFlip(RowId victim) const;

    /** Total single+double flips recorded so far. */
    std::uint64_t flipsRecorded() const { return flips; }

    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

  private:
    /** Charge bookkeeping of one victim row. */
    struct VictimState
    {
        /** Accumulated disturbance, in quarter-ACT units. */
        std::uint64_t charge = 0;
        /** Refresh epoch the charge belongs to; a new epoch resets. */
        std::uint64_t lastEpoch = 0;
        bool started = false;
        unsigned flippedSingle = 0;
        unsigned flippedDouble = 0;
    };

    /** Charge one victim with `units` quarter-ACTs at `now`. */
    void chargeVictim(RowId victim, std::uint64_t units, Tick now);

    /** The victim's current refresh window, in ticks. */
    std::uint64_t windowTicksOf(RowId victim) const;

    /** Which refresh window `now` falls in for this victim (the
     * victim's refresh phase is a hash of its row index, so resets
     * are staggered exactly like real per-row refresh slots). */
    std::uint64_t epochOf(RowId victim, Tick now,
                          std::uint64_t window_ticks) const;

    DisturbParams cfg;
    const dram::AddressMap *addressMap;
    std::uint64_t rows;
    std::function<bool(RowId)> loRefQuery;
    std::uint64_t quarterWeight2; //!< distance-2 charge, quarter-ACTs

    std::unordered_map<RowId, VictimState> victims;
    std::uint64_t flips = 0;
    StatGroup statGroup{"disturb"};
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_DISTURB_HH
