#include "failure/remap.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::failure
{

ColumnRemapper::ColumnRemapper(std::uint64_t data_columns,
                               std::uint64_t redundant_columns,
                               std::uint64_t num_faulty,
                               std::uint64_t seed)
    : dataColumns(data_columns), redundantColumns(redundant_columns)
{
    fatal_if(num_faulty > redundant_columns,
             "cannot repair %llu columns with %llu spares",
             static_cast<unsigned long long>(num_faulty),
             static_cast<unsigned long long>(redundant_columns));
    spareToFaulty.assign(redundant_columns, kUnmapped);
    if (seed == 0 || num_faulty == 0)
        return;

    Rng rng(seed);
    std::uint64_t spare = 0;
    while (faultyToSpare.size() < num_faulty) {
        std::uint64_t victim = rng.uniformInt(data_columns);
        if (faultyToSpare.count(victim))
            continue;
        faultyToSpare[victim] = spare;
        spareToFaulty[spare] = victim;
        ++spare;
    }
}

std::uint64_t
ColumnRemapper::storageColumn(std::uint64_t addressed_col) const
{
    panic_if(addressed_col >= dataColumns,
             "addressed column out of range");
    auto it = faultyToSpare.find(addressed_col);
    if (it == faultyToSpare.end())
        return addressed_col;
    return dataColumns + it->second;
}

std::uint64_t
ColumnRemapper::addressedColumn(std::uint64_t storage_col) const
{
    panic_if(storage_col >= totalColumns(), "storage column out of range");
    if (storage_col >= dataColumns) {
        return spareToFaulty[storage_col - dataColumns];
    }
    // A faulty original column is fused off; it stores nothing.
    if (faultyToSpare.count(storage_col))
        return kUnmapped;
    return storage_col;
}

bool
ColumnRemapper::isRemapped(std::uint64_t addressed_col) const
{
    return faultyToSpare.count(addressed_col) != 0;
}

} // namespace memcon::failure
