#include "failure/vrt.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::failure
{

VrtPopulation::VrtPopulation(const VrtParams &params,
                             std::uint64_t num_rows)
    : vrtParams(params), rows(num_rows)
{
    fatal_if(params.vrtCellsPerRow < 0.0,
             "VRT cell density must be non-negative");
    fatal_if(params.dwellHighMs <= 0.0 || params.dwellLowMs <= 0.0,
             "dwell times must be positive");
    fatal_if(num_rows == 0, "population needs rows");
}

const std::vector<VrtCell> &
VrtPopulation::cellsOfRow(RowId row) const
{
    panic_if(row.value() >= rows, "row out of range");
    auto it = cache.find(row);
    if (it != cache.end())
        return it->second;

    Rng rng(hashMix64(vrtParams.seed * 0x9e3779b97f4a7c15ULL ^
                      (row.value() + 0x7777)));
    std::vector<VrtCell> cells;
    std::uint64_t n = rng.poisson(vrtParams.vrtCellsPerRow);
    cells.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        cells.push_back({rng.uniformInt(1 << 16), rng.next()});

    auto [ins, ok] = cache.emplace(row, std::move(cells));
    (void)ok;
    return ins->second;
}

bool
VrtPopulation::isLeakyAt(const VrtCell &cell, TimeMs time_ms) const
{
    panic_if(time_ms < TimeMs{0.0}, "time must be non-negative");
    // Replay the telegraph process from t = 0 (healthy).
    Rng rng(cell.processSeed);
    double t = 0.0;
    bool leaky = false;
    while (true) {
        double dwell = rng.exponential(
            leaky ? vrtParams.dwellLowMs : vrtParams.dwellHighMs);
        if (t + dwell > time_ms.value())
            return leaky;
        t += dwell;
        leaky = !leaky;
    }
}

bool
VrtPopulation::rowFailsAt(RowId row, double interval_ms,
                          TimeMs time_ms) const
{
    if (interval_ms < vrtParams.leakyFailIntervalMs)
        return false;
    for (const VrtCell &cell : cellsOfRow(row)) {
        if (isLeakyAt(cell, time_ms))
            return true;
    }
    return false;
}

double
VrtPopulation::failingRowFraction(double interval_ms, TimeMs time_ms,
                                  std::uint64_t row_limit) const
{
    std::uint64_t limit = row_limit == 0 ? rows : row_limit;
    panic_if(limit > rows, "row limit exceeds population");
    std::uint64_t failing = 0;
    for (std::uint64_t r = 0; r < limit; ++r)
        failing += rowFailsAt(RowId{r}, interval_ms, time_ms);
    return static_cast<double>(failing) / static_cast<double>(limit);
}

} // namespace memcon::failure
