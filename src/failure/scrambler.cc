#include "failure/scrambler.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::failure
{

KeyedPermutation::KeyedPermutation(unsigned bits, std::uint64_t key_value)
    : numBits(bits), halfBits((bits + 1) / 2), key(key_value)
{
    panic_if(bits == 0 || bits > 62, "permutation width %u unsupported",
             bits);
}

std::uint64_t
KeyedPermutation::roundFn(std::uint64_t half, unsigned round) const
{
    // SplitMix finalizer over (half, round, key); truncated to the
    // low half of the index width.
    std::uint64_t mixed =
        hashMix64(half * 0x9e3779b97f4a7c15ULL + round + key * 0xda942042e4dd58b5ULL);
    return mixed & ((std::uint64_t{1} << (numBits - numBits / 2)) - 1);
}

std::uint64_t
KeyedPermutation::forward(std::uint64_t logical) const
{
    panic_if(logical >= size(), "index out of range");
    // Unbalanced Feistel over lo (floor(n/2) bits) and hi (ceil) parts.
    unsigned lo_bits = numBits / 2;
    unsigned hi_bits = numBits - lo_bits;
    std::uint64_t lo_mask = (std::uint64_t{1} << lo_bits) - 1;
    std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;

    std::uint64_t lo = logical & lo_mask;
    std::uint64_t hi = (logical >> lo_bits) & hi_mask;

    for (unsigned r = 0; r < numRounds; ++r) {
        // hi gets mixed by f(lo); swap roles each round with masks
        // kept per side so widths stay fixed.
        std::uint64_t new_hi = (hi ^ roundFn(lo, r)) & hi_mask;
        std::uint64_t new_lo = (lo ^ (roundFn(new_hi, r + 100) & lo_mask)) &
                               lo_mask;
        hi = new_hi;
        lo = new_lo;
    }
    return (hi << lo_bits) | lo;
}

std::uint64_t
KeyedPermutation::inverse(std::uint64_t physical) const
{
    panic_if(physical >= size(), "index out of range");
    unsigned lo_bits = numBits / 2;
    unsigned hi_bits = numBits - lo_bits;
    std::uint64_t lo_mask = (std::uint64_t{1} << lo_bits) - 1;
    std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;

    std::uint64_t lo = physical & lo_mask;
    std::uint64_t hi = (physical >> lo_bits) & hi_mask;

    for (unsigned i = numRounds; i-- > 0;) {
        std::uint64_t prev_lo = (lo ^ (roundFn(hi, i + 100) & lo_mask)) &
                                lo_mask;
        std::uint64_t prev_hi = (hi ^ roundFn(prev_lo, i)) & hi_mask;
        lo = prev_lo;
        hi = prev_hi;
    }
    return (hi << lo_bits) | lo;
}

AddressScrambler::AddressScrambler(unsigned row_bits, unsigned column_bits,
                                   std::uint64_t chip_key)
    : chipKey(chip_key),
      rowPerm(row_bits, chip_key == 0 ? 0 : hashMix64(chip_key ^ 0x1)),
      colPerm(column_bits, chip_key == 0 ? 0 : hashMix64(chip_key ^ 0x2))
{
}

std::uint64_t
AddressScrambler::physicalRow(std::uint64_t logical_row) const
{
    return enabled() ? rowPerm.forward(logical_row) : logical_row;
}

std::uint64_t
AddressScrambler::logicalRow(std::uint64_t physical_row) const
{
    return enabled() ? rowPerm.inverse(physical_row) : physical_row;
}

std::uint64_t
AddressScrambler::physicalColumn(std::uint64_t logical_col) const
{
    return enabled() ? colPerm.forward(logical_col) : logical_col;
}

std::uint64_t
AddressScrambler::logicalColumn(std::uint64_t physical_col) const
{
    return enabled() ? colPerm.inverse(physical_col) : physical_col;
}

} // namespace memcon::failure
