/**
 * @file
 * Memory-content providers.
 *
 * The failure model evaluates cells against the bits stored around
 * them, so all content is expressed as a function from (logical row,
 * 64-bit word index) to a word value. Two families are provided:
 *
 *  - PatternContent: the classic manufacturing test patterns (solid,
 *    checkerboard, stripes, walking 1/0, seeded random), used for the
 *    exhaustive "ALL FAIL" profiling and for Figure 3's pattern sweep.
 *
 *  - ProgramContent: synthetic program data standing in for the
 *    paper's SPEC CPU2006 memory dumps. Each benchmark persona fixes
 *    the statistics that matter to data-dependent failures - the
 *    fraction of zero words, of small-integer words, and of
 *    pointer-like words (which set the bit-transition density) - and
 *    an epoch index advances the content every "100 M instructions",
 *    as in the paper's methodology.
 */

#ifndef MEMCON_FAILURE_CONTENT_HH
#define MEMCON_FAILURE_CONTENT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace memcon::failure
{

/** Abstract source of memory content in logical address space. */
class ContentProvider
{
  public:
    virtual ~ContentProvider() = default;

    /** 64-bit word at the given logical row and word index. */
    virtual std::uint64_t wordAt(std::uint64_t row,
                                 std::uint64_t word_idx) const = 0;

    /**
     * Fill dst[0..n_words) with words 0..n_words of the row - the
     * block form the bit-parallel test path compares from (DESIGN.md
     * §19). Contract: fillRow(row, dst, n) leaves dst[w] ==
     * wordAt(row, w) for every w; the property suite pins this for
     * every provider. The default loops over the virtual wordAt;
     * concrete providers override with bulk generation that hoists
     * the per-row decisions out of the word loop.
     */
    virtual void fillRow(std::uint64_t row, std::uint64_t *dst,
                         std::size_t n_words) const;

    /** A printable identifier for reports. */
    virtual std::string name() const = 0;

    /** Single logical bit at (row, column). */
    bool
    bit(std::uint64_t row, std::uint64_t column) const
    {
        return (wordAt(row, column / 64) >> (column % 64)) & 1;
    }
};

/** The classic data patterns used in manufacturing-style testing. */
enum class PatternKind
{
    Solid0,
    Solid1,
    Checkerboard,    //!< 0101... within each row, phase alternating by row
    InvCheckerboard,
    RowStripe,       //!< rows alternate solid 0 / solid 1
    ColStripe,       //!< 8-bit wide column bands
    WalkingOne,      //!< a single 1 per 64-bit word, position = param
    WalkingZero,
    Random,          //!< seeded uniform random words, seed = param
};

std::string toString(PatternKind kind);

class PatternContent : public ContentProvider
{
  public:
    explicit PatternContent(PatternKind kind, std::uint64_t param = 0);

    std::uint64_t wordAt(std::uint64_t row,
                         std::uint64_t word_idx) const override;
    void fillRow(std::uint64_t row, std::uint64_t *dst,
                 std::size_t n_words) const override;
    std::string name() const override;

    PatternKind kind() const { return patternKind; }

    /**
     * The canonical battery of num_patterns patterns: the eight
     * classics followed by seeded random patterns, matching the
     * "100 data patterns" sweep behind Figure 3.
     */
    static std::vector<PatternContent> battery(unsigned num_patterns);

  private:
    PatternKind patternKind;
    std::uint64_t param;
};

/** Content statistics characterising one benchmark's data. */
struct ContentPersona
{
    std::string name;
    double zeroWordFraction;    //!< whole-zero 64-bit words
    double smallWordFraction;   //!< small integers (low 16 bits used)
    double pointerWordFraction; //!< canonical-pointer-shaped words
    std::uint64_t seed;

    /**
     * The 20 SPEC CPU2006 benchmarks of Figure 4, ordered as in the
     * paper, with data statistics spanning zero-dominated (perlbench)
     * to high-entropy (astar) footprints.
     */
    static std::vector<ContentPersona> specSuite();

    /** Look up a persona by name; fatal if unknown. */
    static ContentPersona byName(const std::string &name);
};

class ProgramContent : public ContentProvider
{
  public:
    /**
     * @param persona content statistics
     * @param epoch   snapshot index; the paper dumps content every
     *                100 M instructions, so epoch advances rewrite a
     *                fraction of the words
     */
    ProgramContent(ContentPersona persona, std::uint64_t epoch = 0);

    std::uint64_t wordAt(std::uint64_t row,
                         std::uint64_t word_idx) const override;
    void fillRow(std::uint64_t row, std::uint64_t *dst,
                 std::size_t n_words) const override;
    std::string name() const override;

    const ContentPersona &persona() const { return personaDesc; }
    std::uint64_t epoch() const { return epochIdx; }

    /**
     * Fraction of words rewritten per epoch advance; the rest keep
     * their epoch-0 value (programs mutate part of their footprint).
     */
    static constexpr double kEpochChurn = 0.35;

  private:
    std::uint64_t generateWord(std::uint64_t mix) const;

    ContentPersona personaDesc;
    std::uint64_t epochIdx;
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_CONTENT_HH
