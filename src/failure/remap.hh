/**
 * @file
 * Redundant-column remapping (Figure 2b).
 *
 * Manufacturing-time repair remaps faulty bitlines to spare columns
 * appended to the right of the cell array. After repair, the data a
 * system address refers to physically lives in the redundant region,
 * and its bitline neighbours are other remapped columns - the second
 * reason system-level neighbour testing cannot rely on address
 * adjacency.
 */

#ifndef MEMCON_FAILURE_REMAP_HH
#define MEMCON_FAILURE_REMAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace memcon::failure
{

class ColumnRemapper
{
  public:
    /**
     * Randomly select faulty columns and assign them spares, in
     * order, mimicking fuse-programmed repair.
     *
     * @param data_columns     number of addressable columns per row
     * @param redundant_columns spare columns appended after them
     * @param num_faulty       how many columns were repaired
     * @param seed             deterministic selection; 0 means no
     *                         repairs (identity)
     */
    ColumnRemapper(std::uint64_t data_columns,
                   std::uint64_t redundant_columns,
                   std::uint64_t num_faulty, std::uint64_t seed);

    /**
     * Where the data for an addressable column is actually stored.
     * Faulty columns land in [dataColumns, dataColumns+redundant).
     */
    std::uint64_t storageColumn(std::uint64_t addressed_col) const;

    /**
     * The addressable column whose data lives at a storage position,
     * or kUnmapped when the position holds no data (an unused spare
     * or a disabled faulty column).
     */
    std::uint64_t addressedColumn(std::uint64_t storage_col) const;

    /** Total physical columns including spares. */
    std::uint64_t totalColumns() const
    {
        return dataColumns + redundantColumns;
    }

    std::uint64_t numDataColumns() const { return dataColumns; }
    std::uint64_t numRemapped() const { return faultyToSpare.size(); }

    /** @return true if the addressable column was repaired. */
    bool isRemapped(std::uint64_t addressed_col) const;

    static constexpr std::uint64_t kUnmapped = ~std::uint64_t{0};

  private:
    std::uint64_t dataColumns;
    std::uint64_t redundantColumns;
    std::unordered_map<std::uint64_t, std::uint64_t> faultyToSpare;
    std::vector<std::uint64_t> spareToFaulty; // indexed by spare slot
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_REMAP_HH
