/**
 * @file
 * Variable retention time (VRT) - the extension hazard the paper's
 * related work (AVATAR, Qureshi et al., DSN'15) addresses.
 *
 * Some DRAM cells toggle between a high-retention and a low-
 * retention state at random (random telegraph noise in the junction
 * leakage). A cell that passed a retention test can later drop into
 * its leaky state and fail at the same refresh interval, which is
 * what makes one-shot profiling unsafe. MEMCON is naturally more
 * robust than boot-time profiling - every write eventually triggers
 * a retest with current content - but long-idle LO-REF rows would
 * still be exposed, which motivates a periodic re-scrub of idle rows
 * as an extension.
 *
 * The model: a sparse population of VRT cells per row; each cell's
 * state is a deterministic two-state telegraph process with
 * exponential dwell times, so any (cell, time) query is O(number of
 * toggles), reproducible, and agrees across queries.
 */

#ifndef MEMCON_FAILURE_VRT_HH
#define MEMCON_FAILURE_VRT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/strong_id.hh"
#include "common/units.hh"

namespace memcon::failure
{

struct VrtParams
{
    /** Poisson mean of VRT cells per row. */
    double vrtCellsPerRow = 0.02;

    /** Mean dwell time in each retention state (ms). */
    double dwellHighMs = 60000.0; //!< healthy state
    double dwellLowMs = 8000.0;   //!< leaky state

    /**
     * Refresh interval above which a cell in its leaky state fails;
     * cells never fail in the healthy state at operating intervals.
     */
    double leakyFailIntervalMs = 48.0;

    std::uint64_t seed = 1;
};

/** One VRT cell: its column and its telegraph-process identity. */
struct VrtCell
{
    std::uint64_t column;
    std::uint64_t processSeed;
};

class VrtPopulation
{
  public:
    VrtPopulation(const VrtParams &params, std::uint64_t num_rows);

    const VrtParams &params() const { return vrtParams; }
    std::uint64_t numRows() const { return rows; }

    /** Deterministic VRT cells of a row. */
    const std::vector<VrtCell> &cellsOfRow(RowId row) const;

    /**
     * @return true if the cell is in its leaky state at the given
     * time. The telegraph process starts in the healthy state at
     * t = 0 and is replayed deterministically.
     */
    bool isLeakyAt(const VrtCell &cell, TimeMs time_ms) const;

    /**
     * @return true if the row would fail at the given refresh
     * interval at the given instant (any VRT cell leaky and the
     * interval beyond its leaky threshold).
     */
    bool rowFailsAt(RowId row, double interval_ms,
                    TimeMs time_ms) const;

    /**
     * Probability-style helper for experiments: the fraction of rows
     * in [0, row_limit) failing at the instant.
     */
    double failingRowFraction(double interval_ms, TimeMs time_ms,
                              std::uint64_t row_limit = 0) const;

  private:
    VrtParams vrtParams;
    std::uint64_t rows;
    mutable std::unordered_map<RowId, std::vector<VrtCell>>
        cache;
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_VRT_HH
