#include "failure/injector.hh"

#include "common/logging.hh"

namespace memcon::failure
{

FaultInjector::FaultInjector(const FaultInjectorConfig &config,
                             std::uint64_t num_rows)
    : cfg(config), rows(num_rows)
{
    fatal_if(cfg.transientPerRowPerMs < 0.0,
             "transient rate must be non-negative");
    fatal_if(cfg.transientDoubleBitFraction < 0.0 ||
                 cfg.transientDoubleBitFraction > 1.0,
             "double-bit fraction must lie in [0, 1]");
    fatal_if(cfg.loRefIntervalMs <= 0.0,
             "LO-REF interval must be positive");
}

void
FaultInjector::attachContent(const FailureModel *model,
                             const ContentProvider *content)
{
    fatal_if((model == nullptr) != (content == nullptr),
             "content source needs both a model and a provider");
    contentModel = model;
    installedContent = content;
}

FaultInjector::RowFaults &
FaultInjector::rowState(RowId row) const
{
    panic_if(row.value() >= rows, "row %llu out of range (%llu rows)",
             static_cast<unsigned long long>(row.value()),
             static_cast<unsigned long long>(rows));
    auto [it, inserted] = transients.try_emplace(row);
    if (inserted)
        it->second.rng.seed(
            hashMix64(cfg.seed ^ (row.value() * 0x9e3779b97f4a7c15ULL)));
    return it->second;
}

void
FaultInjector::advance(RowFaults &state, RowId row,
                       TimeMs now_ms) const
{
    (void)row;
    if (cfg.transientPerRowPerMs <= 0.0)
        return;
    double mean_ms = 1.0 / cfg.transientPerRowPerMs;
    if (!state.started) {
        state.started = true;
        state.nextArrival = TimeMs{state.rng.exponential(mean_ms)};
    }
    while (state.nextArrival <= now_ms) {
        if (budgetSpent < cfg.faultBudget) {
            ++budgetSpent;
            if (state.rng.chance(cfg.transientDoubleBitFraction)) {
                ++state.pendingDouble;
                statGroup.inc("transient.double");
            } else {
                ++state.pendingSingle;
                statGroup.inc("transient.single");
            }
        } else {
            statGroup.inc("budgetDropped");
        }
        state.nextArrival += TimeMs{state.rng.exponential(mean_ms)};
    }
}

bool
FaultInjector::retentionFails(RowId row, TimeMs now_ms,
                              bool &uncorrectable) const
{
    uncorrectable = false;
    bool fails = false;
    if (vrtPop) {
        // Leaky cells grouped per 64-bit word: two in one word defeat
        // SECDED.
        std::unordered_map<std::uint64_t, unsigned> perWord;
        for (const VrtCell &cell : vrtPop->cellsOfRow(row)) {
            if (!vrtPop->isLeakyAt(cell, now_ms))
                continue;
            if (cfg.loRefIntervalMs <
                vrtPop->params().leakyFailIntervalMs)
                continue;
            fails = true;
            if (++perWord[cell.column / 64] >= 2)
                uncorrectable = true;
        }
    }
    if (!fails && contentModel &&
        contentModel->logicalRowFails(row, *installedContent,
                                      cfg.loRefIntervalMs)) {
        // Coupling failures are sparse; treat as single-bit.
        fails = true;
    }
    return fails;
}

dram::EccStatus
FaultInjector::onRead(RowId row, Tick now, bool lo_ref)
{
    RowFaults &state = rowState(row);
    TimeMs now_ms = ticksToMs(now);
    advance(state, row, now_ms);

    bool retention_uncorrectable = false;
    bool retention = lo_ref && retentionFails(row, now_ms,
                                              retention_uncorrectable);
    const unsigned disturb_single =
        disturbModel ? disturbModel->pendingSingle(row) : 0;
    const unsigned disturb_double =
        disturbModel ? disturbModel->pendingDouble(row) : 0;

    if (state.pendingDouble > 0 || retention_uncorrectable ||
        disturb_double > 0) {
        // The machine-check path retires the page: pending transient
        // and disturb corruption goes with it.
        state.pendingSingle = 0;
        state.pendingDouble = 0;
        if (disturbModel)
            disturbModel->retireFlips(row);
        statGroup.inc("observed.uncorrectable");
        return dram::EccStatus::Uncorrectable;
    }
    if (state.pendingSingle > 0 || retention || disturb_single > 0) {
        statGroup.inc("observed.corrected");
        return dram::EccStatus::CorrectedData;
    }
    return dram::EccStatus::Ok;
}

void
FaultInjector::onRowRestored(RowId row, Tick now)
{
    RowFaults &state = rowState(row);
    advance(state, row, ticksToMs(now));
    if (state.pendingSingle > 0 || state.pendingDouble > 0)
        statGroup.inc("restoredWithPending");
    state.pendingSingle = 0;
    state.pendingDouble = 0;
    if (disturbModel)
        disturbModel->onRowRestored(row, now);
}

bool
FaultInjector::hasLatentFault(RowId row, Tick now,
                              bool lo_ref) const
{
    RowFaults &state = rowState(row);
    TimeMs now_ms = ticksToMs(now);
    advance(state, row, now_ms);
    if (state.pendingSingle > 0 || state.pendingDouble > 0)
        return true;
    if (disturbModel && disturbModel->hasLatentFlip(row))
        return true;
    if (!lo_ref)
        return false;
    bool uncorrectable = false;
    return retentionFails(row, now_ms, uncorrectable);
}

} // namespace memcon::failure
