#include "failure/model.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::failure
{

namespace
{

unsigned
log2Exact(std::uint64_t v, const char *what)
{
    fatal_if(v == 0 || (v & (v - 1)) != 0,
             "%s must be a power of two, got %llu", what,
             static_cast<unsigned long long>(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

FailureModel::FailureModel(const FailureModelParams &params,
                           std::uint64_t num_rows,
                           std::uint64_t cells_per_row)
    : modelParams(params), rows(num_rows), columns(cells_per_row),
      scrambler_(log2Exact(num_rows, "num_rows"),
                 log2Exact(cells_per_row, "cells_per_row"),
                 params.scrambling ? hashMix64(params.seed ^ 0x5eed) : 0),
      remapper_(cells_per_row, params.redundantColumns,
                params.remappedColumns, hashMix64(params.seed ^ 0x4e31))
{
    fatal_if(params.vulnerableCellsPerRow < 0.0 ||
                 params.weakCellsPerRow < 0.0,
             "cell population means must be non-negative");
    fatal_if(params.nominalIntervalMs <= 0.0,
             "nominal interval must be positive");
    fatal_if(params.marginFracMin <= 0.0 || params.marginFracMin >= 1.0,
             "marginFracMin must lie in (0, 1)");
}

const FailureModel::RowPopulation &
FailureModel::population(RowId physical_row) const
{
    panic_if(physical_row.value() >= rows, "physical row out of range");
    auto it = cache.find(physical_row);
    if (it != cache.end())
        return it->second;

    Rng rng(hashMix64(modelParams.seed * 0x9e3779b97f4a7c15ULL ^
                      (physical_row.value() + 0x1234)));
    RowPopulation pop;

    std::uint64_t total_cols = remapper_.totalColumns();
    std::uint64_t n_vuln = rng.poisson(modelParams.vulnerableCellsPerRow);
    pop.vulnerable.reserve(n_vuln);
    for (std::uint64_t i = 0; i < n_vuln; ++i) {
        VulnerableCell c;
        // Interior columns only, so both neighbours exist.
        c.column = 1 + rng.uniformInt(total_cols - 2);
        c.wLeft = static_cast<float>(
            rng.uniform(modelParams.weightMin, modelParams.weightMax));
        c.wRight = static_cast<float>(
            rng.uniform(modelParams.weightMin, modelParams.weightMax));
        c.marginFrac =
            static_cast<float>(rng.uniform(modelParams.marginFracMin, 1.0));
        pop.vulnerable.push_back(c);
    }

    std::uint64_t n_weak = rng.poisson(modelParams.weakCellsPerRow);
    pop.weak.reserve(n_weak);
    for (std::uint64_t i = 0; i < n_weak; ++i) {
        WeakCell w;
        w.column = rng.uniformInt(total_cols);
        w.retentionMs = modelParams.nominalIntervalMs *
                        rng.uniform(modelParams.retentionMinFrac,
                                    modelParams.retentionMaxFrac);
        pop.weak.push_back(w);
    }

    auto [ins, ok] = cache.emplace(physical_row, std::move(pop));
    (void)ok;
    return ins->second;
}

const std::vector<VulnerableCell> &
FailureModel::cellsOfRow(RowId physical_row) const
{
    return population(physical_row).vulnerable;
}

const std::vector<WeakCell> &
FailureModel::weakCellsOfRow(RowId physical_row) const
{
    return population(physical_row).weak;
}

bool
FailureModel::rowPolarity(RowId physical_row) const
{
    return hashMix64(modelParams.seed ^
                     (physical_row.value() * 0x6b43a9b5)) &
           1;
}

double
FailureModel::leakScale(double interval_ms) const
{
    panic_if(interval_ms <= 0.0, "refresh interval must be positive");
    return std::pow(interval_ms / modelParams.nominalIntervalMs,
                    modelParams.leakExponent);
}

bool
FailureModel::chargedAt(RowId physical_row,
                        std::uint64_t storage_col,
                        const ContentProvider &content) const
{
    std::uint64_t addressed = remapper_.addressedColumn(storage_col);
    if (addressed == ColumnRemapper::kUnmapped)
        return false; // unused spare or fused-off column: not driven

    std::uint64_t logical_col = scrambler_.logicalColumn(addressed);
    std::uint64_t logical_row = scrambler_.logicalRow(physical_row.value());
    bool bit = content.bit(logical_row, logical_col);
    return bit == rowPolarity(physical_row);
}

std::vector<CellFailure>
FailureModel::evaluatePhysicalRow(RowId physical_row,
                                  const ContentProvider &content,
                                  double interval_ms) const
{
    const RowPopulation &pop = population(physical_row);
    std::vector<CellFailure> failures;
    double scale = leakScale(interval_ms);

    for (const VulnerableCell &c : pop.vulnerable) {
        bool victim = chargedAt(physical_row, c.column, content);
        bool left = chargedAt(physical_row, c.column - 1, content);
        bool right = chargedAt(physical_row, c.column + 1, content);

        double aggression = 0.0;
        if (left != victim)
            aggression += c.wLeft;
        if (right != victim)
            aggression += c.wRight;

        double margin =
            static_cast<double>(c.marginFrac) * (c.wLeft + c.wRight);
        if (aggression * scale >= margin)
            failures.push_back({physical_row, c.column, true});
    }

    for (const WeakCell &w : pop.weak) {
        if (interval_ms >= w.retentionMs)
            failures.push_back({physical_row, w.column, false});
    }
    return failures;
}

void
FailureModel::readbackPhysicalRow(RowId physical_row,
                                  const ContentProvider &content,
                                  double interval_ms,
                                  std::uint64_t *dst,
                                  std::size_t n_words) const
{
    std::uint64_t logical_row = scrambler_.logicalRow(physical_row.value());
    content.fillRow(logical_row, dst, n_words);

    for (const CellFailure &f :
         evaluatePhysicalRow(physical_row, content, interval_ms)) {
        std::uint64_t addressed = remapper_.addressedColumn(f.column);
        if (addressed == ColumnRemapper::kUnmapped)
            continue; // no logical address: invisible to the system
        std::uint64_t logical_col = scrambler_.logicalColumn(addressed);
        if (logical_col / 64 >= n_words)
            continue; // outside the compared span
        dst[logical_col / 64] ^= std::uint64_t{1} << (logical_col % 64);
    }
}

bool
FailureModel::physicalRowFails(RowId physical_row,
                               const ContentProvider &content,
                               double interval_ms) const
{
    return !evaluatePhysicalRow(physical_row, content, interval_ms).empty();
}

bool
FailureModel::logicalRowFails(RowId logical_row,
                              const ContentProvider &content,
                              double interval_ms) const
{
    return physicalRowFails(RowId{scrambler_.physicalRow(logical_row.value())},
                            content, interval_ms);
}

bool
FailureModel::physicalRowCanFail(RowId physical_row,
                                 double interval_ms) const
{
    const RowPopulation &pop = population(physical_row);
    double scale = leakScale(interval_ms);

    for (const VulnerableCell &c : pop.vulnerable) {
        // Worst case: both neighbours aggress.
        double margin =
            static_cast<double>(c.marginFrac) * (c.wLeft + c.wRight);
        if ((c.wLeft + c.wRight) * scale >= margin)
            return true;
    }
    for (const WeakCell &w : pop.weak) {
        if (interval_ms >= w.retentionMs)
            return true;
    }
    return false;
}

double
FailureModel::failingRowFraction(const ContentProvider &content,
                                 double interval_ms,
                                 std::uint64_t row_limit) const
{
    std::uint64_t limit = row_limit == 0 ? rows : row_limit;
    panic_if(limit > rows, "row limit exceeds module size");
    std::uint64_t failing = 0;
    for (std::uint64_t r = 0; r < limit; ++r)
        if (physicalRowFails(RowId{r}, content, interval_ms))
            ++failing;
    return static_cast<double>(failing) / static_cast<double>(limit);
}

double
FailureModel::worstCaseRowFraction(double interval_ms,
                                   std::uint64_t row_limit) const
{
    std::uint64_t limit = row_limit == 0 ? rows : row_limit;
    panic_if(limit > rows, "row limit exceeds module size");
    std::uint64_t failing = 0;
    for (std::uint64_t r = 0; r < limit; ++r)
        if (physicalRowCanFail(RowId{r}, interval_ms))
            ++failing;
    return static_cast<double>(failing) / static_cast<double>(limit);
}

} // namespace memcon::failure
