/**
 * @file
 * Composed fault injection for resilience experiments.
 *
 * The failure models in this directory answer "would this row fail
 * under this content at this interval?"; the online mechanism needs
 * the complementary question: "what does a *read* of this row observe
 * right now, given everything that can go wrong at once?". The
 * FaultInjector composes four fault sources into a single
 * per-(row, tick) query:
 *
 *  - the content-dependent coupling model (rows whose current data
 *    fails at the LO-REF interval),
 *  - VRT telegraph cells (a certified row whose cell dropped into its
 *    leaky state after the test - the AVATAR hazard),
 *  - transient upsets (particle strikes), a per-row Poisson process
 *    with a configurable single/double-bit split,
 *  - read-disturb flips accumulated by the DisturbModel (aggressor
 *    activations crossing a victim's threshold - RowHammer).
 *
 * Retention-based sources only bite while the row actually sits at
 * LO-REF (HI-REF is safe by construction); transients strike
 * regardless of refresh rate, and disturb flips depend on the access
 * stream, with LO-REF widening the accumulation window. Each query folds the pending faults
 * into the SECDED verdict a controller-side decode would produce:
 * one bad bit per word is CorrectedData, two in the same word is
 * Uncorrectable.
 *
 * Everything is deterministically seeded - a campaign replays
 * bit-identically - and an optional fault budget caps the number of
 * transient upsets a campaign may inject.
 */

#ifndef MEMCON_FAILURE_INJECTOR_HH
#define MEMCON_FAILURE_INJECTOR_HH

#include <cstdint>
#include <unordered_map>

#include "common/random.hh"
#include "common/strong_id.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "dram/ecc.hh"
#include "failure/content.hh"
#include "failure/disturb.hh"
#include "failure/model.hh"
#include "failure/vrt.hh"

namespace memcon::failure
{

struct FaultInjectorConfig
{
    /**
     * Poisson rate of transient upsets per row per simulated
     * millisecond. Physical rates are ~1e-15; campaigns compress time
     * and crank this up to exercise the error paths.
     */
    double transientPerRowPerMs = 0.0;

    /** Fraction of transient upsets striking two bits of one 64-bit
     * word (uncorrectable under SECDED); the rest are single-bit. */
    double transientDoubleBitFraction = 0.1;

    /**
     * Campaign-wide cap on injected transient upsets; once spent, the
     * transient process goes quiet (retention sources are state-based
     * and not budgeted).
     */
    std::uint64_t faultBudget = ~std::uint64_t{0};

    /** Interval the retention-based sources see on a LO-REF row. */
    double loRefIntervalMs = 64.0;

    std::uint64_t seed = 1;
};

class FaultInjector
{
  public:
    FaultInjector(const FaultInjectorConfig &config,
                  std::uint64_t num_rows);

    /** Attach the VRT telegraph population (optional source). */
    void attachVrt(const VrtPopulation *vrt) { vrtPop = vrt; }

    /**
     * Attach the read-disturb model (optional source). Mutable: an
     * Uncorrectable observation retires the model's pending flips the
     * same way it retires pending transients.
     */
    void attachDisturb(DisturbModel *disturb) { disturbModel = disturb; }

    /** Attach the content-dependent model + the content installed in
     * the module (optional source). */
    void attachContent(const FailureModel *model,
                       const ContentProvider *content);

    const FaultInjectorConfig &config() const { return cfg; }

    /**
     * A read of the row completes at `now`: what does the decode
     * report? `lo_ref` tells the injector whether the row currently
     * refreshes at the relaxed interval (retention sources active).
     *
     * An Uncorrectable observation retires the pending transient
     * faults (the machine-check path remaps the page); corrected
     * faults persist until the row is restored.
     */
    dram::EccStatus onRead(RowId row, Tick now, bool lo_ref);

    /**
     * The row's content was rewritten or re-certified (demand write,
     * passed test): pending transient corruption is repaired.
     */
    void onRowRestored(RowId row, Tick now);

    /**
     * Does the row hold corruption no read has surfaced yet? This is
     * the undetected-corruption predicate the resilience ablation
     * scores LO-REF rows against.
     */
    bool hasLatentFault(RowId row, Tick now, bool lo_ref) const;

    /** Transient upsets injected so far (budget consumption). */
    std::uint64_t injectedFaults() const { return budgetSpent; }

    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

  private:
    struct RowFaults
    {
        Rng rng{1};
        TimeMs nextArrival{};
        bool started = false;
        unsigned pendingSingle = 0;
        unsigned pendingDouble = 0;
    };

    /** Generate the row's transient arrivals up to `now_ms`. */
    void advance(RowFaults &state, RowId row,
                 TimeMs now_ms) const;
    RowFaults &rowState(RowId row) const;
    bool retentionFails(RowId row, TimeMs now_ms,
                        bool &uncorrectable) const;

    FaultInjectorConfig cfg;
    std::uint64_t rows;
    const VrtPopulation *vrtPop = nullptr;
    DisturbModel *disturbModel = nullptr;
    const FailureModel *contentModel = nullptr;
    const ContentProvider *installedContent = nullptr;

    mutable std::unordered_map<RowId, RowFaults> transients;
    mutable std::uint64_t budgetSpent = 0;
    mutable StatGroup statGroup{"inject"};
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_INJECTOR_HH
