/**
 * @file
 * A software stand-in for the paper's SoftMC FPGA testing
 * infrastructure (Section 5).
 *
 * The tester performs the same three-step experiment as the paper:
 * (i) install content into the module, (ii) keep it idle for the
 * target refresh interval so cells reach their lowest charge, and
 * (iii) read back and compare. Because the content is installed
 * through the system (logical) address space and the failure model
 * translates through the chip's private scrambler and remapper, a
 * "neighbouring-address" pattern written here exercises exactly the
 * mismatch Section 2 describes.
 *
 * Temperature handling follows the paper's methodology: tests at a
 * low temperature use a longer interval that is retention-equivalent
 * to the target interval at 85°C (their 4 s at 45°C ~ 328 ms at 85°C).
 */

#ifndef MEMCON_FAILURE_TESTER_HH
#define MEMCON_FAILURE_TESTER_HH

#include <cstdint>
#include <set>
#include <vector>

#include "failure/content.hh"
#include "failure/model.hh"

namespace memcon::failure
{

/**
 * Retention-equivalent interval scaling across temperature.
 * Retention shrinks exponentially with temperature; the default
 * coefficient is fitted to the paper's 4 s @ 45°C == 328 ms @ 85°C.
 *
 * @return the interval at to_celsius equivalent to interval_ms at
 *         from_celsius
 */
double temperatureScaledInterval(double interval_ms, double from_celsius,
                                 double to_celsius);

/** Outcome of one module test pass. */
struct TestResult
{
    std::uint64_t rowsTested = 0;
    std::uint64_t rowsFailing = 0;

    /**
     * Total logically visible failing bits (xor-popcount of expected
     * vs readback). Populated by the block test path; the sparse
     * per-cell paths leave it zero.
     */
    std::uint64_t failingBits = 0;

    std::vector<CellFailure> failures;

    double failingRowFraction() const
    {
        return rowsTested == 0
                   ? 0.0
                   : static_cast<double>(rowsFailing) /
                         static_cast<double>(rowsTested);
    }
};

class DramTester
{
  public:
    explicit DramTester(const FailureModel &model);

    /**
     * Write the content, idle for interval_ms, read back, compare
     * (the SoftMC experiment). Tests physical rows [0, row_limit).
     */
    TestResult testWithContent(const ContentProvider &content,
                               double interval_ms,
                               std::uint64_t row_limit = 0) const;

    /**
     * The bit-parallel form of testWithContent (DESIGN.md §19):
     * fill the expected row, read the row back as a flat word
     * buffer, and compare through the dispatched kernels. Reports
     * rowsFailing and failingBits but leaves the failures vector
     * empty - per-cell attribution needs the sparse path.
     *
     * Verdict caveat: this path sees what the memory controller
     * sees, so failures at unused spare / fused-off columns (no
     * logical address) are invisible here while testWithContent
     * reports them. On a model with redundantColumns == 0 the two
     * paths' rowsFailing match exactly (pinned by the property
     * suite).
     */
    TestResult testWithContentBlock(const ContentProvider &content,
                                    double interval_ms,
                                    std::uint64_t row_limit = 0) const;

    /**
     * Run a battery of patterns and return the union of failures -
     * what a vendor-style exhaustive pattern campaign finds *through
     * the system address space*. With scrambling enabled this misses
     * failures that manufacturer-level (physical) testing finds.
     */
    TestResult testWithPatternBattery(const std::vector<PatternContent> &battery,
                                      double interval_ms,
                                      std::uint64_t row_limit = 0) const;

    /**
     * Manufacturer-level exhaustive result: every cell that *any*
     * content could fail, derived with physical-layout knowledge.
     * This is the "ALL FAIL" reference of Figure 4.
     */
    TestResult exhaustivePhysicalTest(double interval_ms,
                                      std::uint64_t row_limit = 0) const;

    /**
     * Distinct cells failing per pattern, for the Figure 3 sweep:
     * element i is the set of (row, column) cells that fail under
     * battery[i].
     */
    std::vector<std::set<std::pair<RowId, std::uint64_t>>>
    perPatternFailingCells(const std::vector<PatternContent> &battery,
                           double interval_ms,
                           std::uint64_t row_limit = 0) const;

    /** Per-pattern failing-bit totals from the block battery sweep. */
    struct PatternBitCounts
    {
        /** Logically visible bits differing under this pattern. */
        std::uint64_t failingBits = 0;
        /** Of those, bits no earlier battery pattern had flagged. */
        std::uint64_t newFailingBits = 0;
    };

    /**
     * Bit-parallel battery sweep for the Figure 3 pattern-coverage
     * curves: per pattern, the visible failing-bit count and how many
     * of those bits are new versus all preceding patterns. The
     * per-row "seen" masks are maintained with the bulk or/andnot
     * kernels, so the whole sweep never materializes per-cell sets.
     */
    std::vector<PatternBitCounts>
    batteryFailingBitCounts(const std::vector<PatternContent> &battery,
                            double interval_ms,
                            std::uint64_t row_limit = 0) const;

  private:
    std::uint64_t rowLimitOrAll(std::uint64_t row_limit) const;

    /** Words per row in the block views (ceil of cells / 64). */
    std::size_t rowWords() const;

    const FailureModel &model;
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_TESTER_HH
