#include "failure/disturb.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memcon::failure
{

namespace
{

constexpr std::uint64_t kThresholdSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kPhaseSalt = 0xbf58476d1ce4e5b9ULL;

/** Quarter-ACT charge units of one full-weight activation. */
constexpr std::uint64_t kQuartersPerAct = 4;

} // namespace

DisturbModel::DisturbModel(const DisturbParams &params,
                           const dram::AddressMap *map,
                           std::uint64_t num_rows)
    : cfg(params), addressMap(map), rows(num_rows)
{
    fatal_if(addressMap == nullptr, "disturb model needs an address map");
    fatal_if(cfg.medianThreshold == 0, "median threshold must be positive");
    fatal_if(cfg.minThreshold == 0, "minimum threshold must be positive");
    fatal_if(cfg.thresholdSigma < 0.0, "threshold sigma must be >= 0");
    fatal_if(cfg.blastRadius2Weight < 0.0 || cfg.blastRadius2Weight > 1.0,
             "blast-radius weight must lie in [0, 1]");
    fatal_if(cfg.hiWindowMs <= 0.0 || cfg.loWindowMs <= 0.0,
             "refresh windows must be positive");
    fatal_if(cfg.loWindowMs < cfg.hiWindowMs,
             "LO-REF window cannot be shorter than HI-REF");
    quarterWeight2 = static_cast<std::uint64_t>(
        cfg.blastRadius2Weight * kQuartersPerAct + 0.5);
}

std::uint64_t
DisturbModel::thresholdOf(RowId victim) const
{
    Rng rng(hashMix64(cfg.seed ^ (victim.value() * kThresholdSalt)));
    const double drawn = static_cast<double>(cfg.medianThreshold) *
                         std::exp(cfg.thresholdSigma * rng.gaussian());
    const auto threshold = static_cast<std::uint64_t>(drawn);
    return std::max(cfg.minThreshold, threshold);
}

std::uint64_t
DisturbModel::windowTicksOf(RowId victim) const
{
    const bool lo = loRefQuery && loRefQuery(victim);
    const Tick window = msToTicks(lo ? cfg.loWindowMs : cfg.hiWindowMs);
    return std::max<std::uint64_t>(window.value(), 1);
}

std::uint64_t
DisturbModel::epochOf(RowId victim, Tick now,
                      std::uint64_t window_ticks) const
{
    const std::uint64_t phase =
        hashMix64(cfg.seed ^ (victim.value() * kPhaseSalt)) % window_ticks;
    return (now.value() + phase) / window_ticks;
}

void
DisturbModel::chargeVictim(RowId victim, std::uint64_t units, Tick now)
{
    VictimState &state = victims[victim];
    const std::uint64_t window = windowTicksOf(victim);
    const std::uint64_t epoch = epochOf(victim, now, window);
    if (!state.started || epoch != state.lastEpoch) {
        // The victim was refreshed since the last charge: disturbance
        // accumulated so far is restored (flips are not).
        state.charge = 0;
        state.lastEpoch = epoch;
        state.started = true;
    }
    state.charge += units;
    statGroup.inc("charges", units);

    const std::uint64_t threshold = thresholdOf(victim) * kQuartersPerAct;
    while (state.charge >= threshold &&
           state.flippedDouble == 0) {
        state.charge -= threshold;
        ++flips;
        if (state.flippedSingle == 0) {
            ++state.flippedSingle;
            statGroup.inc("flips.single");
        } else {
            // The next-weakest cell sits in the same word often
            // enough at these densities: two flips defeat SECDED.
            ++state.flippedDouble;
            statGroup.inc("flips.double");
        }
    }
}

void
DisturbModel::onActivate(RowId row, Tick now)
{
    panic_if(row.value() >= rows, "row %llu out of range (%llu rows)",
             static_cast<unsigned long long>(row.value()),
             static_cast<unsigned long long>(rows));
    statGroup.inc("acts");
    for (int delta : {-1, 1}) {
        if (auto victim = addressMap->rowNeighbor(row.value(), delta, rows))
            chargeVictim(RowId{*victim}, kQuartersPerAct, now);
    }
    if (quarterWeight2 == 0)
        return;
    for (int delta : {-2, 2}) {
        if (auto victim = addressMap->rowNeighbor(row.value(), delta, rows))
            chargeVictim(RowId{*victim}, quarterWeight2, now);
    }
}

void
DisturbModel::onVictimRefreshed(RowId victim, Tick now)
{
    VictimState &state = victims[victim];
    const std::uint64_t window = windowTicksOf(victim);
    state.charge = 0;
    state.lastEpoch = epochOf(victim, now, window);
    state.started = true;
    statGroup.inc("victimRefreshes");
}

void
DisturbModel::onRowRestored(RowId victim, Tick now)
{
    auto it = victims.find(victim);
    if (it == victims.end())
        return;
    VictimState &state = it->second;
    if (state.flippedSingle > 0 || state.flippedDouble > 0)
        statGroup.inc("restoredWithFlips");
    state.flippedSingle = 0;
    state.flippedDouble = 0;
    state.charge = 0;
    state.lastEpoch = epochOf(victim, now, windowTicksOf(victim));
    state.started = true;
}

void
DisturbModel::retireFlips(RowId victim)
{
    auto it = victims.find(victim);
    if (it == victims.end())
        return;
    if (it->second.flippedSingle > 0 || it->second.flippedDouble > 0)
        statGroup.inc("retired");
    it->second.flippedSingle = 0;
    it->second.flippedDouble = 0;
    it->second.charge = 0;
}

unsigned
DisturbModel::pendingSingle(RowId victim) const
{
    auto it = victims.find(victim);
    return it == victims.end() ? 0 : it->second.flippedSingle;
}

unsigned
DisturbModel::pendingDouble(RowId victim) const
{
    auto it = victims.find(victim);
    return it == victims.end() ? 0 : it->second.flippedDouble;
}

bool
DisturbModel::hasLatentFlip(RowId victim) const
{
    return pendingSingle(victim) > 0 || pendingDouble(victim) > 0;
}

} // namespace memcon::failure
