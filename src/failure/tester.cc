#include "failure/tester.hh"

#include <cmath>

#include "common/logging.hh"

namespace memcon::failure
{

double
temperatureScaledInterval(double interval_ms, double from_celsius,
                          double to_celsius)
{
    // k fitted to the paper's equivalence 4 s @ 45°C == 328 ms @ 85°C:
    // k = ln(4000 / 328) / 40 per °C.
    static const double k = std::log(4000.0 / 328.0) / 40.0;
    return interval_ms * std::exp(-k * (to_celsius - from_celsius));
}

DramTester::DramTester(const FailureModel &model_ref) : model(model_ref) {}

std::uint64_t
DramTester::rowLimitOrAll(std::uint64_t row_limit) const
{
    std::uint64_t limit = row_limit == 0 ? model.numRows() : row_limit;
    fatal_if(limit > model.numRows(),
             "row limit %llu exceeds module rows %llu",
             static_cast<unsigned long long>(limit),
             static_cast<unsigned long long>(model.numRows()));
    return limit;
}

TestResult
DramTester::testWithContent(const ContentProvider &content,
                            double interval_ms,
                            std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;
    for (std::uint64_t r = 0; r < limit; ++r) {
        auto fails =
            model.evaluatePhysicalRow(RowId{r}, content, interval_ms);
        if (!fails.empty()) {
            ++result.rowsFailing;
            result.failures.insert(result.failures.end(), fails.begin(),
                                   fails.end());
        }
    }
    return result;
}

TestResult
DramTester::testWithPatternBattery(
    const std::vector<PatternContent> &battery, double interval_ms,
    std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;

    std::set<std::pair<RowId, std::uint64_t>> seen;
    std::vector<bool> row_failed(limit, false);
    for (const PatternContent &pattern : battery) {
        for (std::uint64_t r = 0; r < limit; ++r) {
            auto fails =
                model.evaluatePhysicalRow(RowId{r}, pattern, interval_ms);
            for (const CellFailure &f : fails) {
                if (seen.insert({f.physicalRow, f.column}).second)
                    result.failures.push_back(f);
                row_failed[r] = true;
            }
        }
    }
    for (bool failed : row_failed)
        if (failed)
            ++result.rowsFailing;
    return result;
}

TestResult
DramTester::exhaustivePhysicalTest(double interval_ms,
                                   std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;
    for (std::uint64_t r = 0; r < limit; ++r) {
        if (model.physicalRowCanFail(RowId{r}, interval_ms))
            ++result.rowsFailing;
    }
    return result;
}

std::vector<std::set<std::pair<RowId, std::uint64_t>>>
DramTester::perPatternFailingCells(
    const std::vector<PatternContent> &battery, double interval_ms,
    std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    std::vector<std::set<std::pair<RowId, std::uint64_t>>> out;
    out.reserve(battery.size());
    for (const PatternContent &pattern : battery) {
        std::set<std::pair<RowId, std::uint64_t>> cells;
        for (std::uint64_t r = 0; r < limit; ++r) {
            for (const CellFailure &f :
                 model.evaluatePhysicalRow(RowId{r}, pattern,
                                           interval_ms)) {
                cells.insert({f.physicalRow, f.column});
            }
        }
        out.push_back(std::move(cells));
    }
    return out;
}

} // namespace memcon::failure
