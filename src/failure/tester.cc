#include "failure/tester.hh"

#include <cmath>
#include <cstring>

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace memcon::failure
{

double
temperatureScaledInterval(double interval_ms, double from_celsius,
                          double to_celsius)
{
    // k fitted to the paper's equivalence 4 s @ 45°C == 328 ms @ 85°C:
    // k = ln(4000 / 328) / 40 per °C.
    static const double k = std::log(4000.0 / 328.0) / 40.0;
    return interval_ms * std::exp(-k * (to_celsius - from_celsius));
}

DramTester::DramTester(const FailureModel &model_ref) : model(model_ref) {}

std::uint64_t
DramTester::rowLimitOrAll(std::uint64_t row_limit) const
{
    std::uint64_t limit = row_limit == 0 ? model.numRows() : row_limit;
    fatal_if(limit > model.numRows(),
             "row limit %llu exceeds module rows %llu",
             static_cast<unsigned long long>(limit),
             static_cast<unsigned long long>(model.numRows()));
    return limit;
}

TestResult
DramTester::testWithContent(const ContentProvider &content,
                            double interval_ms,
                            std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;
    for (std::uint64_t r = 0; r < limit; ++r) {
        auto fails =
            model.evaluatePhysicalRow(RowId{r}, content, interval_ms);
        if (!fails.empty()) {
            ++result.rowsFailing;
            result.failures.insert(result.failures.end(), fails.begin(),
                                   fails.end());
        }
    }
    return result;
}

std::size_t
DramTester::rowWords() const
{
    return static_cast<std::size_t>((model.cellsPerRow() + 63) / 64);
}

TestResult
DramTester::testWithContentBlock(const ContentProvider &content,
                                 double interval_ms,
                                 std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    const std::size_t n_words = rowWords();
    TestResult result;
    result.rowsTested = limit;

    Arena arena;
    std::uint64_t *expected = arena.allocate<std::uint64_t>(n_words);
    std::uint64_t *readback = arena.allocate<std::uint64_t>(n_words);

    for (std::uint64_t r = 0; r < limit; ++r) {
        std::uint64_t logical_row = model.scrambler().logicalRow(r);
        content.fillRow(logical_row, expected, n_words);
        model.readbackPhysicalRow(RowId{r}, content, interval_ms,
                                  readback, n_words);
        if (!simd::rowsEqual(expected, readback, n_words)) {
            ++result.rowsFailing;
            result.failingBits +=
                simd::xorPopcount(expected, readback, n_words);
        }
    }
    return result;
}

TestResult
DramTester::testWithPatternBattery(
    const std::vector<PatternContent> &battery, double interval_ms,
    std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;

    std::set<std::pair<RowId, std::uint64_t>> seen;
    std::vector<bool> row_failed(limit, false);
    for (const PatternContent &pattern : battery) {
        for (std::uint64_t r = 0; r < limit; ++r) {
            auto fails =
                model.evaluatePhysicalRow(RowId{r}, pattern, interval_ms);
            for (const CellFailure &f : fails) {
                if (seen.insert({f.physicalRow, f.column}).second)
                    result.failures.push_back(f);
                row_failed[r] = true;
            }
        }
    }
    for (bool failed : row_failed)
        if (failed)
            ++result.rowsFailing;
    return result;
}

TestResult
DramTester::exhaustivePhysicalTest(double interval_ms,
                                   std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    TestResult result;
    result.rowsTested = limit;
    for (std::uint64_t r = 0; r < limit; ++r) {
        if (model.physicalRowCanFail(RowId{r}, interval_ms))
            ++result.rowsFailing;
    }
    return result;
}

std::vector<std::set<std::pair<RowId, std::uint64_t>>>
DramTester::perPatternFailingCells(
    const std::vector<PatternContent> &battery, double interval_ms,
    std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    std::vector<std::set<std::pair<RowId, std::uint64_t>>> out;
    out.reserve(battery.size());
    for (const PatternContent &pattern : battery) {
        std::set<std::pair<RowId, std::uint64_t>> cells;
        for (std::uint64_t r = 0; r < limit; ++r) {
            for (const CellFailure &f :
                 model.evaluatePhysicalRow(RowId{r}, pattern,
                                           interval_ms)) {
                cells.insert({f.physicalRow, f.column});
            }
        }
        out.push_back(std::move(cells));
    }
    return out;
}

std::vector<DramTester::PatternBitCounts>
DramTester::batteryFailingBitCounts(
    const std::vector<PatternContent> &battery, double interval_ms,
    std::uint64_t row_limit) const
{
    std::uint64_t limit = rowLimitOrAll(row_limit);
    const std::size_t n_words = rowWords();
    std::vector<PatternBitCounts> out(battery.size());

    Arena arena;
    std::uint64_t *expected = arena.allocate<std::uint64_t>(n_words);
    std::uint64_t *readback = arena.allocate<std::uint64_t>(n_words);
    std::uint64_t *diff = arena.allocate<std::uint64_t>(n_words);
    std::uint64_t *fresh = arena.allocate<std::uint64_t>(n_words);
    // One seen-mask per row, accumulated across the battery.
    std::uint64_t *seen = arena.allocate<std::uint64_t>(limit * n_words);
    std::memset(seen, 0, limit * n_words * sizeof(std::uint64_t));

    for (std::size_t i = 0; i < battery.size(); ++i) {
        const PatternContent &pattern = battery[i];
        for (std::uint64_t r = 0; r < limit; ++r) {
            std::uint64_t logical_row = model.scrambler().logicalRow(r);
            pattern.fillRow(logical_row, expected, n_words);
            model.readbackPhysicalRow(RowId{r}, pattern, interval_ms,
                                      readback, n_words);
            for (std::size_t w = 0; w < n_words; ++w)
                diff[w] = expected[w] ^ readback[w];
            std::uint64_t bits = simd::popcountWords(diff, n_words);
            if (bits == 0)
                continue;
            out[i].failingBits += bits;

            // New bits = diff with everything already seen masked
            // off; then fold this pattern's diff into the row mask.
            std::uint64_t *row_seen = seen + r * n_words;
            std::memcpy(fresh, diff, n_words * sizeof(std::uint64_t));
            simd::andNotWords(fresh, row_seen, n_words);
            out[i].newFailingBits +=
                simd::popcountWords(fresh, n_words);
            simd::orWords(row_seen, diff, n_words);
        }
    }
    return out;
}

} // namespace memcon::failure
