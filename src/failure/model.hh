/**
 * @file
 * The data-dependent DRAM failure model.
 *
 * This is the stand-in for the paper's FPGA-tested real DRAM chips.
 * Failures are produced by a sparse population of vulnerable cells:
 *
 *  - Each physical row holds Poisson(vulnerableCellsPerRow) coupling-
 *    sensitive cells. A vulnerable cell has coupling weights to its
 *    two bitline neighbours (wLeft, wRight) and a margin
 *    m = marginFrac * (wLeft + wRight).
 *
 *  - A cell's charge state is polarity-relative: a true cell is
 *    charged when storing 1, an anti cell when storing 0 (per-row
 *    polarity, as in real arrays).
 *
 *  - With content installed, the aggression on a victim is
 *    a = wLeft * [neighbour charge != victim charge]
 *      + wRight * [neighbour charge != victim charge],
 *    i.e. adjacent-bitline charge contrast couples disturbance in.
 *
 *  - Leakage grows with the refresh interval t: the cell fails iff
 *    a * (t / nominal)^leakExponent >= m. This makes failure sets
 *    monotone in t and reproduces the experimental observation that
 *    data-dependent failures grow quickly at relaxed refresh.
 *
 *  - A second, smaller population of retention-weak cells fails
 *    whenever t exceeds the cell's retention time, independent of
 *    content (the paper's footnote 1: easy to detect, not the hard
 *    problem).
 *
 * Address scrambling and column remapping sit between the logical
 * (system) view and the physical array, so content written to
 * logically adjacent addresses does not land in physically adjacent
 * cells - the property that defeats system-level neighbour testing
 * (Section 2).
 *
 * Calibration: with the default parameters, ~13.5% of rows contain at
 * least one cell that some content can fail at the nominal interval
 * ("ALL FAIL", Figure 4), while program-like content fails 0.3%-6% of
 * rows depending on its bit-transition density. marginFrac is drawn
 * above (hiRefInterval/nominal)^leakExponent, which makes the HI-REF
 * rate provably safe - the guarantee MEMCON's mitigation relies on.
 */

#ifndef MEMCON_FAILURE_MODEL_HH
#define MEMCON_FAILURE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/strong_id.hh"

#include "failure/content.hh"
#include "failure/remap.hh"
#include "failure/scrambler.hh"

namespace memcon::failure
{

/** A coupling-vulnerable cell at a fixed physical position. */
struct VulnerableCell
{
    std::uint64_t column; //!< storage-column position in the row
    float wLeft;          //!< coupling weight to column-1
    float wRight;         //!< coupling weight to column+1
    float marginFrac;     //!< margin as a fraction of (wLeft+wRight)
};

/** A retention-weak cell that fails past its retention time. */
struct WeakCell
{
    std::uint64_t column;
    double retentionMs;
};

/** One observed failure: where, and why. */
struct CellFailure
{
    RowId physicalRow;
    std::uint64_t column;
    bool dataDependent; //!< false for retention-weak failures
};

struct FailureModelParams
{
    /** Poisson mean of coupling-vulnerable cells per row. */
    double vulnerableCellsPerRow = 0.144;

    /** Poisson mean of retention-weak cells per row. */
    double weakCellsPerRow = 0.01;

    /**
     * Refresh interval at which a maximally-aggressed vulnerable
     * cell is guaranteed to fail (the characterization interval).
     */
    double nominalIntervalMs = 64.0;

    /** Leakage growth exponent in (t/nominal)^beta. */
    double leakExponent = 2.0;

    /** marginFrac lower bound; keeps HI-REF (nominal/4) safe. */
    double marginFracMin = 0.07;

    /** Coupling-weight range. */
    double weightMin = 0.2;
    double weightMax = 1.0;

    /** Weak-cell retention range as multiples of nominal. */
    double retentionMinFrac = 0.3;
    double retentionMaxFrac = 4.0;

    /** Per-module seed; also keys the scrambler and remapper. */
    std::uint64_t seed = 1;

    /** Disable vendor address scrambling (exposes internals). */
    bool scrambling = true;

    /** Spare columns per row and how many carry repairs. */
    std::uint64_t redundantColumns = 128;
    std::uint64_t remappedColumns = 24;
};

class FailureModel
{
  public:
    /**
     * @param params   model parameters
     * @param num_rows physical rows in the modelled module (power of 2)
     * @param cells_per_row addressable cells (bits) per row (power of 2)
     */
    FailureModel(const FailureModelParams &params, std::uint64_t num_rows,
                 std::uint64_t cells_per_row);

    const FailureModelParams &params() const { return modelParams; }
    std::uint64_t numRows() const { return rows; }
    std::uint64_t cellsPerRow() const { return columns; }

    const AddressScrambler &scrambler() const { return scrambler_; }
    const ColumnRemapper &remapper() const { return remapper_; }

    /** Deterministic vulnerable-cell population of a physical row. */
    const std::vector<VulnerableCell> &
    cellsOfRow(RowId physical_row) const;

    /** Deterministic weak-cell population of a physical row. */
    const std::vector<WeakCell> &
    weakCellsOfRow(RowId physical_row) const;

    /** True/anti polarity of a physical row (true = charged on 1). */
    bool rowPolarity(RowId physical_row) const;

    /**
     * Failures in one physical row with the given logical content
     * installed, after the row idles for interval_ms.
     */
    std::vector<CellFailure>
    evaluatePhysicalRow(RowId physical_row,
                        const ContentProvider &content,
                        double interval_ms) const;

    /** @return true if the row has any failure under the content. */
    bool physicalRowFails(RowId physical_row,
                          const ContentProvider &content,
                          double interval_ms) const;

    /** Logical-row variant (applies the row scrambler first). */
    bool logicalRowFails(RowId logical_row,
                         const ContentProvider &content,
                         double interval_ms) const;

    /**
     * Worst-case query: could *any* content fail this row at the
     * interval? This is what exhaustive manufacturer testing with
     * physical-layout knowledge establishes ("ALL FAIL").
     */
    bool physicalRowCanFail(RowId physical_row,
                            double interval_ms) const;

    /**
     * Fraction of rows in [0, limit) that fail with the content /
     * that could fail with any content.
     */
    double failingRowFraction(const ContentProvider &content,
                              double interval_ms,
                              std::uint64_t row_limit = 0) const;
    double worstCaseRowFraction(double interval_ms,
                                std::uint64_t row_limit = 0) const;

    /**
     * The charge state ("charged" = capacitor holds charge) of the
     * cell at a storage column given the installed logical content.
     * Unused spare columns and fused-off faulty columns are never
     * charged.
     */
    bool chargedAt(RowId physical_row, std::uint64_t storage_col,
                   const ContentProvider &content) const;

    /**
     * The logical words read back from one physical row after it
     * idles for interval_ms with the content installed: fillRow of
     * the scrambled logical row, with each *logically visible*
     * failing cell's bit flipped (a failure always reads as the
     * discharged state, i.e. the stored bit inverted). Failures at
     * unused spare or fused-off columns have no logical address and
     * are invisible here - the block test path (DESIGN.md §19)
     * therefore sees exactly what the memory controller would see.
     */
    void readbackPhysicalRow(RowId physical_row,
                             const ContentProvider &content,
                             double interval_ms, std::uint64_t *dst,
                             std::size_t n_words) const;

  private:
    struct RowPopulation
    {
        std::vector<VulnerableCell> vulnerable;
        std::vector<WeakCell> weak;
    };

    const RowPopulation &population(RowId physical_row) const;
    double leakScale(double interval_ms) const;

    FailureModelParams modelParams;
    std::uint64_t rows;
    std::uint64_t columns;
    AddressScrambler scrambler_;
    ColumnRemapper remapper_;

    mutable std::unordered_map<RowId, RowPopulation> cache;
};

} // namespace memcon::failure

#endif // MEMCON_FAILURE_MODEL_HH
