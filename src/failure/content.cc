#include "failure/content.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace memcon::failure
{

void
ContentProvider::fillRow(std::uint64_t row, std::uint64_t *dst,
                         std::size_t n_words) const
{
    // Default: one virtual call per word. This is the only sanctioned
    // per-word wordAt loop outside the providers themselves - the
    // memcon_analyze content-wordat rule flags any other caller.
    for (std::size_t w = 0; w < n_words; ++w)
        dst[w] = wordAt(row, w);
}

std::string
toString(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Solid0:
        return "solid0";
      case PatternKind::Solid1:
        return "solid1";
      case PatternKind::Checkerboard:
        return "checkerboard";
      case PatternKind::InvCheckerboard:
        return "inv-checkerboard";
      case PatternKind::RowStripe:
        return "row-stripe";
      case PatternKind::ColStripe:
        return "col-stripe";
      case PatternKind::WalkingOne:
        return "walking-1";
      case PatternKind::WalkingZero:
        return "walking-0";
      case PatternKind::Random:
        return "random";
    }
    panic("unknown pattern kind");
}

PatternContent::PatternContent(PatternKind kind, std::uint64_t param_value)
    : patternKind(kind), param(param_value)
{
}

std::uint64_t
PatternContent::wordAt(std::uint64_t row, std::uint64_t word_idx) const
{
    switch (patternKind) {
      case PatternKind::Solid0:
        return 0;
      case PatternKind::Solid1:
        return ~std::uint64_t{0};
      case PatternKind::Checkerboard:
        return (row & 1) ? 0x5555555555555555ULL : 0xaaaaaaaaaaaaaaaaULL;
      case PatternKind::InvCheckerboard:
        return (row & 1) ? 0xaaaaaaaaaaaaaaaaULL : 0x5555555555555555ULL;
      case PatternKind::RowStripe:
        return (row & 1) ? ~std::uint64_t{0} : 0;
      case PatternKind::ColStripe:
        // 8-bit wide bands: bytes alternate 0x00 / 0xff.
        return 0xff00ff00ff00ff00ULL;
      case PatternKind::WalkingOne:
        return std::uint64_t{1} << (param % 64);
      case PatternKind::WalkingZero:
        return ~(std::uint64_t{1} << (param % 64));
      case PatternKind::Random:
        return hashMix64(param * 0x9e3779b97f4a7c15ULL ^
                         hashMix64(row * 131 + word_idx));
    }
    panic("unknown pattern kind");
}

void
PatternContent::fillRow(std::uint64_t row, std::uint64_t *dst,
                        std::size_t n_words) const
{
    // Every pattern except Random is constant across a row, so the
    // switch resolves once and the loop is a plain fill.
    switch (patternKind) {
      case PatternKind::Random:
        for (std::size_t w = 0; w < n_words; ++w)
            dst[w] = hashMix64(param * 0x9e3779b97f4a7c15ULL ^
                               hashMix64(row * 131 + w));
        return;
      default: {
        const std::uint64_t word = wordAt(row, 0);
        for (std::size_t w = 0; w < n_words; ++w)
            dst[w] = word;
        return;
      }
    }
}

std::string
PatternContent::name() const
{
    if (patternKind == PatternKind::Random ||
        patternKind == PatternKind::WalkingOne ||
        patternKind == PatternKind::WalkingZero) {
        return strprintf("%s[%llu]", toString(patternKind).c_str(),
                         static_cast<unsigned long long>(param));
    }
    return toString(patternKind);
}

std::vector<PatternContent>
PatternContent::battery(unsigned num_patterns)
{
    std::vector<PatternContent> out;
    const PatternKind classics[] = {
        PatternKind::Solid0,       PatternKind::Solid1,
        PatternKind::Checkerboard, PatternKind::InvCheckerboard,
        PatternKind::RowStripe,    PatternKind::ColStripe,
    };
    for (PatternKind k : classics) {
        if (out.size() >= num_patterns)
            return out;
        out.emplace_back(k);
    }
    for (unsigned i = 0; i < 8 && out.size() < num_patterns; ++i)
        out.emplace_back(PatternKind::WalkingOne, i * 8 + 1);
    for (unsigned i = 0; i < 8 && out.size() < num_patterns; ++i)
        out.emplace_back(PatternKind::WalkingZero, i * 8 + 3);
    std::uint64_t seed = 1;
    while (out.size() < num_patterns)
        out.emplace_back(PatternKind::Random, seed++);
    return out;
}

std::vector<ContentPersona>
ContentPersona::specSuite()
{
    // Ordered as in Figure 4. Data statistics are synthetic but span
    // the spectrum from zero-dominated integer codes to high-entropy
    // floating-point/pointer-chasing footprints. The fractions are
    // calibrated so that, with the default FailureModelParams, each
    // benchmark's failing-row percentage lands near the paper's
    // 0.38%-5.6% Figure 4 spread.
    //                name        zero   small  ptr   seed
    return {
        {"perlbench",  0.960, 0.03, 0.004, 2001},
        {"bzip2",      0.868, 0.10, 0.01, 2002},
        {"gcc",        0.818, 0.10, 0.05, 2003},
        {"mcf",        0.809, 0.05, 0.10, 2004},
        {"zeusmp",     0.784, 0.04, 0.02, 2005},
        {"cactusADM",  0.802, 0.04, 0.02, 2006},
        {"gobmk",      0.789, 0.12, 0.04, 2007},
        {"namd",       0.714, 0.03, 0.02, 2008},
        {"soplex",     0.724, 0.06, 0.05, 2009},
        {"dealII",     0.699, 0.05, 0.06, 2010},
        {"calculix",   0.677, 0.05, 0.03, 2011},
        {"hmmer",      0.636, 0.08, 0.02, 2012},
        {"libquantum", 0.735, 0.08, 0.02, 2013},
        {"GemsFDTD",   0.629, 0.03, 0.02, 2014},
        {"h264ref",    0.626, 0.06, 0.03, 2015},
        {"tonto",      0.574, 0.04, 0.02, 2016},
        {"omnetpp",    0.571, 0.05, 0.10, 2017},
        {"lbm",        0.485, 0.02, 0.01, 2018},
        {"xalancbmk",  0.498, 0.04, 0.12, 2019},
        {"astar",      0.361, 0.03, 0.08, 2020},
    };
}

ContentPersona
ContentPersona::byName(const std::string &name)
{
    for (const auto &p : specSuite())
        if (p.name == name)
            return p;
    fatal("unknown content persona '%s'", name.c_str());
}

ProgramContent::ProgramContent(ContentPersona persona, std::uint64_t epoch)
    : personaDesc(std::move(persona)), epochIdx(epoch)
{
    fatal_if(personaDesc.zeroWordFraction + personaDesc.smallWordFraction +
                     personaDesc.pointerWordFraction >
                 1.0,
             "persona '%s' word-class fractions exceed 1",
             personaDesc.name.c_str());
}

std::uint64_t
ProgramContent::generateWord(std::uint64_t mix) const
{
    // Classify the word deterministically, then draw its value from
    // an independent hash so class boundaries do not correlate with
    // content bits.
    double cls = static_cast<double>(hashMix64(mix) >> 11) * 0x1.0p-53;
    std::uint64_t val = hashMix64(mix ^ 0xabcdef1234567890ULL);

    double z = personaDesc.zeroWordFraction;
    double s = z + personaDesc.smallWordFraction;
    double p = s + personaDesc.pointerWordFraction;

    if (cls < z)
        return 0;
    if (cls < s)
        return val & 0xffff; // small integer: high 48 bits zero
    if (cls < p)
        return 0x00007f0000000000ULL | (val & 0x000000ffffffffc0ULL);
    return val; // high-entropy payload
}

std::uint64_t
ProgramContent::wordAt(std::uint64_t row, std::uint64_t word_idx) const
{
    std::uint64_t base = personaDesc.seed * 0x2545f4914f6cdd1dULL ^
                         hashMix64(row * 4099 + word_idx);

    // Decide the last epoch at which this word changed: each epoch
    // rewrites kEpochChurn of the footprint.
    std::uint64_t last_changed = 0;
    for (std::uint64_t e = epochIdx; e > 0; --e) {
        double u = static_cast<double>(hashMix64(base ^ (e * 0x51ed2701)) >>
                                       11) *
                   0x1.0p-53;
        if (u < kEpochChurn) {
            last_changed = e;
            break;
        }
    }
    return generateWord(base ^ hashMix64(last_changed + 1));
}

void
ProgramContent::fillRow(std::uint64_t row, std::uint64_t *dst,
                        std::size_t n_words) const
{
    // Same word function as wordAt, devirtualized and with the
    // row-invariant seed product hoisted out of the loop.
    const std::uint64_t seeded = personaDesc.seed * 0x2545f4914f6cdd1dULL;
    const std::uint64_t row_base = row * 4099;
    for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t base = seeded ^ hashMix64(row_base + w);
        std::uint64_t last_changed = 0;
        for (std::uint64_t e = epochIdx; e > 0; --e) {
            double u = static_cast<double>(
                           hashMix64(base ^ (e * 0x51ed2701)) >> 11) *
                       0x1.0p-53;
            if (u < kEpochChurn) {
                last_changed = e;
                break;
            }
        }
        dst[w] = generateWord(base ^ hashMix64(last_changed + 1));
    }
}

std::string
ProgramContent::name() const
{
    return strprintf("%s@%llu", personaDesc.name.c_str(),
                     static_cast<unsigned long long>(epochIdx));
}

} // namespace memcon::failure
