/**
 * @file
 * Policy tuner: sweep MEMCON's design knobs for one workload and
 * print a recommendation. Covers the ablations DESIGN.md calls out:
 * test mode (Read&Compare vs Copy&Compare), LO-REF interval, quantum
 * length, write-buffer capacity, and concurrent-test budget.
 *
 * Run: ./build/examples/policy_tuner [app-name]
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/cost_model.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "VideoEncode";
    trace::AppPersona app = trace::AppPersona::byName(name);
    std::printf("tuning MEMCON for %s (%.0f s trace)\n",
                app.name.c_str(), app.durationSec);

    std::printf("\n1. Test mode and LO-REF interval (cost model):\n");
    TextTable cost_table;
    cost_table.header({"LO-REF", "mode", "test cost", "MinWriteInterval",
                       "reduction bound"});
    for (double lo : {64.0, 128.0, 256.0}) {
        for (TestMode mode :
             {TestMode::ReadAndCompare, TestMode::CopyAndCompare}) {
            CostModelConfig cfg;
            cfg.loRefMs = lo;
            CostModel cm(cfg);
            cost_table.row(
                {strprintf("%.0f ms", lo), toString(mode),
                 strprintf("%.0f ns", cm.testCostNs(mode)),
                 strprintf("%.0f ms", cm.minWriteIntervalMs(mode).value()),
                 TextTable::pct(1.0 - 16.0 / lo, 0)});
        }
    }
    std::printf("%s", cost_table.render().c_str());

    std::printf("\n2. Quantum and buffer capacity (measured):\n");
    TextTable sweep;
    sweep.header({"quantum", "buffer", "reduction", "tests", "drops",
                  "mispredict%"});
    double best_reduction = 0.0;
    double best_quantum = 0.0;
    for (double quantum : {512.0, 1024.0, 2048.0}) {
        for (std::size_t buffer : {std::size_t{500}, std::size_t{4000}}) {
            MemconConfig cfg;
            cfg.quantumMs = TimeMs{quantum};
            cfg.writeBufferCapacity = buffer;
            MemconEngine engine(cfg);
            MemconResult r = engine.runOnApp(app);
            double mispred =
                r.testsRun == 0 ? 0.0
                                : 100.0 * r.testsMispredicted /
                                      static_cast<double>(r.testsRun);
            sweep.row({strprintf("%.0f ms", quantum),
                       std::to_string(buffer),
                       TextTable::pct(r.reduction(), 1),
                       std::to_string(r.testsRun),
                       std::to_string(r.bufferDrops),
                       strprintf("%.1f%%", mispred)});
            if (buffer == 4000 && r.reduction() > best_reduction) {
                best_reduction = r.reduction();
                best_quantum = quantum;
            }
        }
    }
    std::printf("%s", sweep.render().c_str());

    std::printf("\n3. Concurrent-test budget:\n");
    TextTable budget;
    budget.header({"tests per 64ms", "reduction", "skipped (budget)"});
    for (unsigned slots : {64u, 256u, 1024u}) {
        MemconConfig cfg;
        cfg.testSlotsPer64ms = slots;
        MemconEngine engine(cfg);
        MemconResult r = engine.runOnApp(app);
        budget.row({std::to_string(slots),
                    TextTable::pct(r.reduction(), 1),
                    std::to_string(r.testsSkippedBudget)});
    }
    std::printf("%s", budget.render().c_str());

    std::printf("\nrecommendation: quantum %.0f ms, Read&Compare, "
                "LO-REF 64 ms, 4000-entry buffer -> %.1f%% refresh "
                "reduction (bound 75%%)\n",
                best_quantum, best_reduction * 100.0);
    return 0;
}
