/**
 * @file
 * Failure explorer: an interactive-style tour of the failure
 * substrate, the software stand-in for a SoftMC FPGA rig.
 *
 * Demonstrates:
 *  - why system-level pattern testing misses failures (address
 *    scrambling and column remapping),
 *  - how failure counts grow with the refresh interval,
 *  - temperature-equivalent test intervals,
 *  - the content dependence that motivates MEMCON.
 *
 * Run: ./build/examples/failure_explorer
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "failure/content.hh"
#include "failure/model.hh"
#include "failure/tester.hh"

using namespace memcon;
using namespace memcon::failure;

namespace
{

void
section(const char *title)
{
    std::printf("\n### %s\n", title);
}

} // namespace

int
main()
{
    const std::uint64_t rows = 1 << 13;

    section("1. Scrambling defeats address-based neighbour tests");
    {
        FailureModelParams with, without;
        with.seed = without.seed = 7;
        without.scrambling = false;

        FailureModel scrambled(with, rows, 1 << 16);
        FailureModel exposed(without, rows, 1 << 16);

        auto battery = PatternContent::battery(8);
        double found_scrambled =
            DramTester(scrambled)
                .testWithPatternBattery(battery, 64.0)
                .failingRowFraction();
        double found_exposed =
            DramTester(exposed)
                .testWithPatternBattery(battery, 64.0)
                .failingRowFraction();
        double truth = DramTester(scrambled)
                           .exhaustivePhysicalTest(64.0)
                           .failingRowFraction();

        std::printf("  classic 8-pattern battery finds:\n");
        std::printf("    with vendor scrambling   : %5.2f%% of rows\n",
                    found_scrambled * 100);
        std::printf("    with internals exposed   : %5.2f%% of rows\n",
                    found_exposed * 100);
        std::printf("    physically exhaustive    : %5.2f%% of rows\n",
                    truth * 100);
        std::printf("  -> a checkerboard in the system address space "
                    "is not a checkerboard in the array.\n");
    }

    section("2. Failures grow with the refresh interval");
    {
        FailureModelParams p;
        p.seed = 8;
        FailureModel model(p, rows, 1 << 16);
        DramTester tester(model);
        ProgramContent content(ContentPersona::byName("omnetpp"), 0);

        TextTable t;
        t.header({"refresh interval", "failing rows"});
        for (double ms : {16.0, 32.0, 48.0, 64.0, 96.0, 128.0, 256.0}) {
            double frac =
                tester.testWithContent(content, ms).failingRowFraction();
            t.row({strprintf("%.0f ms", ms), TextTable::pct(frac, 2)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("  -> HI-REF (16 ms) is failure-free; relaxing the "
                    "rate exposes data-dependent cells.\n");
    }

    section("3. Temperature-equivalent test intervals");
    {
        std::printf("  testing at 45C needs %.0f ms to emulate 328 ms "
                    "at 85C (paper: 4000 ms)\n",
                    temperatureScaledInterval(328.0, 85.0, 45.0));
        std::printf("  a 64 ms interval at 85C equals %.0f ms at 45C\n",
                    temperatureScaledInterval(64.0, 85.0, 45.0));
    }

    section("4. Content decides which rows fail");
    {
        FailureModelParams p;
        p.seed = 9;
        FailureModel model(p, rows, 1 << 16);
        DramTester tester(model);

        TextTable t;
        t.header({"content", "failing rows", "vs ALL FAIL"});
        double all =
            tester.exhaustivePhysicalTest(64.0).failingRowFraction();
        for (const char *name :
             {"perlbench", "gcc", "hmmer", "lbm", "astar"}) {
            ProgramContent c(ContentPersona::byName(name), 0);
            double frac =
                tester.testWithContent(c, 64.0).failingRowFraction();
            t.row({name, TextTable::pct(frac, 2),
                   strprintf("%.1fx fewer", all / frac)});
        }
        t.row({"ALL FAIL (any content)", TextTable::pct(all, 2), "1x"});
        std::printf("%s", t.render().c_str());
        std::printf("  -> mitigating only the current content's "
                    "failures is far cheaper than mitigating all of "
                    "them. That is MEMCON's opening move.\n");
    }
    return 0;
}
