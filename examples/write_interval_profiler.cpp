/**
 * @file
 * Write-interval profiler: analyze an application's per-page write
 * behaviour the way Section 4 does, then evaluate what PRIL would
 * extract from it at different quantum lengths.
 *
 * Run: ./build/examples/write_interval_profiler [app-name]
 * (default: AdobePremiere; see tab01_workloads for the 12 names)
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "AdobePremiere";
    AppPersona app = AppPersona::byName(name);

    std::printf("profiling %s (%s): %.0f s trace, %.1f GB footprint, "
                "%llu modelled pages\n",
                app.name.c_str(), app.type.c_str(), app.durationSec,
                app.footprintGB,
                static_cast<unsigned long long>(app.pages));

    WriteIntervalAnalyzer a = analyzeApp(app);
    std::printf("\nwrite-interval distribution (%llu intervals):\n",
                static_cast<unsigned long long>(a.numIntervals()));
    std::printf("%s", a.histogram().format("ms").c_str());

    std::printf("\nheadline statistics:\n");
    std::printf("  writes within 1 ms        : %.2f%%\n",
                a.fractionWritesBelow(TimeMs{1.0}) * 100);
    std::printf("  writes starting >=1024 ms : %.3f%%\n",
                a.fractionWritesAtLeast(TimeMs{1024.0}) * 100);
    std::printf("  time in >=1024 ms gaps    : %.1f%%\n",
                a.timeFractionAtLeast(TimeMs{1024.0}) * 100);
    LineFit fit = a.paretoFit(TimeMs{1.0}, TimeMs{32768.0});
    std::printf("  Pareto tail fit           : alpha=%.3f R^2=%.3f\n",
                -fit.slope, fit.rSquared);

    std::printf("\nprediction quality by current interval length:\n");
    TextTable t;
    t.header({"CIL (ms)", "P(RIL>1024)", "coverage"});
    for (double c : {64.0, 256.0, 512.0, 1024.0, 2048.0, 8192.0}) {
        t.row({TextTable::num(c, 0),
               strprintf("%.2f", a.probRemainingAtLeast(TimeMs{c}, TimeMs{1024.0})),
               TextTable::pct(a.coverageAtCil(TimeMs{c}, TimeMs{1024.0}), 1)});
    }
    std::printf("%s", t.render().c_str());

    std::printf("\nwhat MEMCON extracts (HI 16 ms / LO 64 ms):\n");
    TextTable e;
    e.header({"quantum", "refresh reduction", "LO-REF time", "tests",
              "mispredicted"});
    for (double q : {512.0, 1024.0, 2048.0}) {
        core::MemconConfig cfg;
        cfg.quantumMs = TimeMs{q};
        core::MemconEngine engine(cfg);
        core::MemconResult r = engine.runOnApp(app);
        e.row({strprintf("%.0f ms", q),
               TextTable::pct(r.reduction(), 1),
               TextTable::pct(r.loCoverage(), 1),
               std::to_string(r.testsRun),
               std::to_string(r.testsMispredicted)});
    }
    std::printf("%s", e.render().c_str());
    std::printf("(upper bound with these refresh rates: 75%%)\n");
    return 0;
}
