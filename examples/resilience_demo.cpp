/**
 * @file
 * Resilience demo: what happens when the field disagrees with the
 * profile.
 *
 * MEMCON certifies rows against their current content, but a verdict
 * can go stale afterwards: a VRT cell toggles into its leaky state,
 * or a particle strike corrupts a row outright. This demo wires the
 * FaultInjector into the controller's ECC probe and walks the
 * graceful-degradation loop end to end:
 *
 *   corrected error on a LO-REF row  -> demote + backoff re-test
 *   uncorrectable error              -> panic-fallback to blanket
 *                                       HI-REF, then re-certify
 *   idle LO-REF rows                 -> periodic re-scrub
 *
 * Build and run:
 *   cmake --preset default && cmake --build --preset default
 *   ./build/examples/resilience_demo
 */

#include <cstdio>
#include <memory>

#include "core/online_memcon.hh"
#include "failure/injector.hh"
#include "failure/vrt.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    dram::Geometry geom;
    geom.rowsPerBank = 32; // 256 rows
    auto timing =
        dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});

    // VRT cells that toggle on the run's (compressed) timescale, plus
    // a transient-upset process hot enough to watch.
    failure::VrtParams vrt_params;
    vrt_params.vrtCellsPerRow = 0.05;
    vrt_params.dwellHighMs = 0.6;
    vrt_params.dwellLowMs = 0.4;
    vrt_params.seed = 9;
    failure::VrtPopulation vrt(vrt_params, geom.totalRows());

    failure::FaultInjectorConfig inj_cfg;
    inj_cfg.transientPerRowPerMs = 0.2;
    inj_cfg.transientDoubleBitFraction = 0.1;
    inj_cfg.seed = 5;
    failure::FaultInjector injector(inj_cfg, geom.totalRows());
    injector.attachVrt(&vrt);

    Tick now{};

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    OnlineMemcon::installObserver(mc_cfg, slot);
    mc_cfg.eccProbe = [&](std::uint64_t addr, Tick t) {
        RowId row = geom.flatRowIndex(geom.decompose(addr));
        return injector.onRead(row, t, slot && slot->isLoRef(row));
    };
    auto inner = mc_cfg.writeObserver;
    mc_cfg.writeObserver = [&, inner](std::uint64_t addr, Tick t) {
        injector.onRowRestored(
            geom.flatRowIndex(geom.decompose(addr)), t);
        if (inner)
            inner(addr, t);
    };
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    om_cfg.resilience.retestBackoff = usToTicks(20.0);
    om_cfg.resilience.fallbackHold = usToTicks(60.0);
    om_cfg.resilience.scrubPeriod = usToTicks(60.0);
    auto om = std::make_unique<OnlineMemcon>(
        geom, mc, om_cfg, [&](RowId row) {
            return injector.hasLatentFault(row, now, true);
        });
    slot = om.get();

    trace::CpuAccessStream stream(
        trace::CpuPersona::byName("perlbench"), 3);
    sim::SimpleCore core(0, std::move(stream), mc, 0,
                         geom.totalBlocks());

    std::printf("t(us)  LO-REF  reduction  fallback  pinned\n");
    const Tick horizon = msToTicks(2.0);
    Tick next_report = usToTicks(200.0);
    while (now < horizon) {
        now += timing.tCk;
        mc.tick(now);
        om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
        if (now >= next_report) {
            next_report += usToTicks(200.0);
            std::printf("%5.0f  %5.1f%%  %8.1f%%  %8s  %6llu\n",
                        ticksToMs(now) * 1000.0,
                        100.0 * om->loRefFraction(),
                        100.0 * mc.refreshReduction(),
                        om->inFallback() ? "ACTIVE" : "-",
                        static_cast<unsigned long long>(
                            om->pinnedRows()));
        }
    }

    std::printf("\nevent counters:\n%s\n", om->stats().dump().c_str());
    std::printf("transients injected: %llu\n",
                static_cast<unsigned long long>(
                    injector.injectedFaults()));
    return 0;
}
