/**
 * @file
 * Trace tool: export the synthetic workloads to the text trace
 * formats (so they can be inspected or replaced with real captures)
 * and replay a trace file through MEMCON.
 *
 * Usage:
 *   trace_tool export-write <app-name> <file>   write-interval trace
 *   trace_tool export-cpu <bench-name> <n> <file>  CPU access trace
 *   trace_tool replay <file>                    run MEMCON on a trace
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "core/engine.hh"
#include "trace/trace_io.hh"

using namespace memcon;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool export-write <app-name> <file>\n"
                 "  trace_tool export-cpu <bench-name> <n> <file>\n"
                 "  trace_tool replay <file>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "export-write" && argc == 4) {
        trace::AppPersona app = trace::AppPersona::byName(argv[2]);
        trace::WriteTrace trace = trace::traceFromPersona(app);
        std::ofstream out(argv[3]);
        fatal_if(!out, "cannot open '%s' for writing", argv[3]);
        trace::writeWriteTrace(out, trace);
        std::printf("wrote %llu writes over %zu pages (%.0f ms) to %s\n",
                    static_cast<unsigned long long>(trace.totalWrites()),
                    trace.pageWrites.size(), trace.durationMs, argv[3]);
        return 0;
    }

    if (cmd == "export-cpu" && argc == 5) {
        trace::CpuPersona bench = trace::CpuPersona::byName(argv[2]);
        std::size_t n =
            static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
        fatal_if(n == 0, "need a positive access count");
        auto accesses = trace::captureCpuTrace(bench, n);
        std::ofstream out(argv[4]);
        fatal_if(!out, "cannot open '%s' for writing", argv[4]);
        trace::writeCpuTrace(out, accesses);
        std::printf("wrote %zu accesses of %s to %s\n", n, argv[2],
                    argv[4]);
        return 0;
    }

    if (cmd == "replay" && argc == 3) {
        std::ifstream in(argv[2]);
        fatal_if(!in, "cannot open '%s'", argv[2]);
        trace::WriteTrace trace;
        try {
            trace = trace::readWriteTrace(in);
        } catch (const trace::TraceError &e) {
            // The parser reports data errors as exceptions so library
            // callers can recover; at the CLI boundary they are fatal.
            fatal("cannot parse '%s': %s", argv[2], e.what());
        }
        std::printf("replaying %llu writes over %zu pages (%.0f ms)\n",
                    static_cast<unsigned long long>(trace.totalWrites()),
                    trace.pageWrites.size(), trace.durationMs);

        core::MemconEngine engine{core::MemconConfig{}};
        core::MemconResult r =
            engine.run(trace.pageWrites, trace.durationMs);
        std::printf("  refresh reduction : %.1f%% (bound %.0f%%)\n",
                    r.reduction() * 100.0,
                    engine.upperBoundReduction() * 100.0);
        std::printf("  LO-REF coverage   : %.1f%%\n",
                    r.loCoverage() * 100.0);
        std::printf("  tests             : %llu (%llu mispredicted)\n",
                    static_cast<unsigned long long>(r.testsRun),
                    static_cast<unsigned long long>(r.testsMispredicted));
        return 0;
    }
    return usage();
}
