/**
 * @file
 * memcond demo: the always-on multi-tenant MEMCON service.
 *
 * Hosts four tenants on one service - three polite ones and one
 * antagonist offering ~8x its quota - and walks the service-mode
 * machinery end to end:
 *
 *   - per-tenant ingest rings with explicit backpressure (drops are
 *     counted, never silent),
 *   - admission control: quota-first grants isolate the in-quota
 *     tenants from the antagonist's excess demand,
 *   - the staged overload governor (shed scans -> stretch quanta ->
 *     shed tenants) escalating under pressure and cooling back down,
 *   - crash-safe snapshots: the run seals a CRC-sealed snapshot every
 *     8 rounds, and a second service instance then resumes from disk
 *     by replaying the ingest journal - the demo checks the resumed
 *     digest is bit-identical to the live one.
 *
 * Build and run:
 *   cmake --preset default && cmake --build --preset default
 *   ./build/examples/memcond_demo
 */

#include <cstdio>
#include <cstdlib>

#include "common/supervisor.hh"
#include "service/memcond.hh"

using namespace memcon;

namespace
{

service::MemcondConfig
demoConfig()
{
    service::MemcondConfig cfg;
    cfg.seed = 7;
    cfg.threads = 2;
    cfg.rounds = 40;
    cfg.roundTicks = usToTicks(20.0);

    cfg.admission.globalBudgetPerRound = 24;
    cfg.admission.maxGrantPerRound = 16;

    cfg.governor.coolRounds = 3;

    cfg.tenant.geometry.rowsPerBank = 16; // 128 rows per tenant
    cfg.tenant.ringCapacity = 64;
    cfg.tenant.memcon.quantum = usToTicks(50.0);
    cfg.tenant.memcon.testIdle = usToTicks(20.0);
    cfg.tenant.memcon.retargetPeriod = usToTicks(25.0);
    cfg.tenant.memcon.testEngine.slots = 4;
    cfg.tenant.memcon.testEngine.wordsPerRow = 8;

    cfg.snapshotEveryRounds = 8;
    cfg.snapshotPath = "memcond_demo.snapshot";
    return cfg;
}

std::vector<service::TenantSpec>
demoTenants()
{
    return {
        {"alice", /*priority=*/2, /*rateScale=*/1.0, /*quota=*/8},
        {"bob", 2, 1.0, 8},
        {"carol", 1, 1.0, 8},
        {"mallory", 1, 8.0, 8}, // the antagonist: ~8x its quota
    };
}

void
printStageTimeline(const std::vector<service::GovernorStage> &stages)
{
    std::printf("governor timeline:\n");
    std::size_t start = 0;
    for (std::size_t r = 1; r <= stages.size(); ++r) {
        if (r == stages.size() || stages[r] != stages[start]) {
            std::printf("  rounds %3zu-%-3zu %s\n", start, r - 1,
                        service::toString(stages[start]));
            start = r;
        }
    }
}

} // namespace

int
main()
{
    std::vector<service::TenantSpec> tenants = demoTenants();

    std::printf("== live service: %zu tenants, 40 rounds ==\n",
                tenants.size());
    service::Memcond live(demoConfig(), tenants);
    try {
        live.run();
    } catch (const service::ServiceError &e) {
        std::fprintf(stderr, "service failed: %s\n", e.what());
        // A watchdog cancellation surfaces as a ServiceError; the
        // daemon exits with the documented symbolic code.
        std::fprintf(stderr, "exiting with %s (%d)\n",
                     kWatchdogExitCodeName, kWatchdogExitCode);
        return kWatchdogExitCode;
    }

    printStageTimeline(live.stageHistory());

    std::printf("\nper-tenant telemetry:\n");
    for (std::size_t i = 0; i < live.tenantCount(); ++i)
        std::printf("%s\n", live.tenantTelemetry(i).dump().c_str());

    std::printf("admission verdicts: admit=%llu throttle=%llu "
                "reject=%llu\n",
                (unsigned long long)
                    live.admissionController().admitCount(),
                (unsigned long long)
                    live.admissionController().throttleCount(),
                (unsigned long long)
                    live.admissionController().rejectCount());

    const std::string live_digest = live.digest();
    std::printf("\nlive digest:    %s\n", live_digest.c_str());

    // Crash-restore: a second instance rebuilds everything from the
    // sealed snapshot + ingest journal and must land on the same
    // bits.
    std::printf("== resuming a second instance from the snapshot ==\n");
    service::Memcond restored(demoConfig(), tenants);
    try {
        restored.run(/*resume=*/true);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "resume failed: %s\n", e.what());
        return 1;
    }
    const std::string resumed_digest = restored.digest();
    std::printf("resumed digest: %s\n", resumed_digest.c_str());

    if (live_digest != resumed_digest) {
        std::fprintf(stderr, "DIGEST MISMATCH - crash restore broke\n");
        return 1;
    }
    std::printf("digests match: the resumed service is bit-identical\n");
    std::remove("memcond_demo.snapshot");
    return 0;
}
