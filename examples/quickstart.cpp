/**
 * @file
 * Quickstart: the MEMCON pipeline in ~60 lines.
 *
 * 1. Model a DRAM module with data-dependent failures.
 * 2. Generate a write workload for one application.
 * 3. Run MEMCON: PRIL predicts long-idle pages, tests them against
 *    their current content, and moves clean rows to LO-REF.
 * 4. Report the refresh reduction, test activity, and mitigation.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/engine.hh"
#include "failure/content.hh"
#include "failure/model.hh"
#include "trace/app_model.hh"

using namespace memcon;

int
main()
{
    // A DRAM module: 2^12 rows of 64 Kb cells, with vendor address
    // scrambling, remapped columns, and coupling-vulnerable cells
    // that fail depending on neighbouring content at the 64 ms
    // LO-REF interval.
    failure::FailureModelParams fm_params;
    fm_params.nominalIntervalMs = 64.0;
    fm_params.seed = 42;
    failure::FailureModel module(fm_params, 1 << 12, 1 << 16);

    // The program whose data sits in the module.
    failure::ContentPersona data = failure::ContentPersona::byName("gcc");

    // MEMCON with the paper's defaults: HI-REF 16 ms, LO-REF 64 ms,
    // 1024 ms quantum, 4000-entry write buffer, Read&Compare tests.
    core::MemconConfig config;
    core::MemconEngine memcon(config);

    // A Table 1 workload: Netflix's write behaviour.
    trace::AppPersona app = trace::AppPersona::byName("Netflix");

    // Wire the failure model in: a page's content epoch advances
    // with each write, and a test fails when the current content
    // cannot survive the LO-REF interval.
    auto oracle = [&](std::uint64_t page, std::uint64_t write_count) {
        failure::ProgramContent content(data, write_count);
        return module.logicalRowFails(RowId{page % module.numRows()},
                                      content, config.loRefMs);
    };

    core::MemconResult result = memcon.runOnApp(app, oracle);

    std::printf("MEMCON quickstart: %s running with %s data\n",
                app.name.c_str(), data.name.c_str());
    std::printf("  pages tracked           : %llu\n",
                static_cast<unsigned long long>(result.pages));
    std::printf("  writes observed         : %llu\n",
                static_cast<unsigned long long>(result.writes));
    std::printf("  tests run               : %llu (passed %llu, "
                "failed %llu)\n",
                static_cast<unsigned long long>(result.testsRun),
                static_cast<unsigned long long>(result.testsPassed),
                static_cast<unsigned long long>(result.testsFailed));
    std::printf("  refresh ops (baseline)  : %.0f\n",
                result.refreshOpsBaseline);
    std::printf("  refresh ops (MEMCON)    : %.0f\n",
                result.refreshOpsMemcon);
    std::printf("  refresh reduction       : %.1f%%  (upper bound "
                "%.0f%%)\n",
                result.reduction() * 100.0,
                memcon.upperBoundReduction() * 100.0);
    std::printf("  time at LO-REF          : %.1f%%\n",
                result.loCoverage() * 100.0);
    std::printf("  rows kept safe at HI-REF: %llu failing tests "
                "mitigated\n",
                static_cast<unsigned long long>(result.testsFailed));
    return 0;
}
