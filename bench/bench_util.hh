/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries. Every
 * binary prints the rows/series of one paper artifact in a uniform
 * layout: a banner naming the figure, the paper's reference numbers,
 * and the regenerated measurements.
 *
 * Benches ported to the parallel sweep runner (runner.hh) also print
 * a campaign line (seed, threads, points) under the banner and emit
 * a machine-readable BENCH_<artifact>.json next to the table output.
 */

#ifndef MEMCON_BENCH_BENCH_UTIL_HH
#define MEMCON_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace memcon::bench
{

/** Print the figure banner. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::printf("==============================================================\n");
    std::printf("%s - %s\n", artifact.c_str(), caption.c_str());
    std::printf("==============================================================\n");
}

/** Print a short note line (assumptions, paper reference values). */
inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

} // namespace memcon::bench

// The bench binaries are leaf translation units; pulling the helpers
// into the global namespace keeps their main() bodies readable.
using memcon::bench::banner; // NOLINT
using memcon::bench::note;   // NOLINT

#endif // MEMCON_BENCH_BENCH_UTIL_HH
