/**
 * @file
 * Hot-path microbench for the MEMCON engine: the streaming k-way
 * merge + deadline-wheel path priced against the reference
 * materialize-then-sort + scan path (MemconConfig::referenceEventPath)
 * on the same synthetic traces. Emits BENCH_micro_engine_ops.json so
 * the events/sec, per-quantum cost, and peak-memory trajectory of the
 * engine is tracked across revisions.
 *
 * Every metric in the digest is a deterministic counter (writes,
 * quanta, heap pushes, wheel pops, estimated peak event bytes);
 * wall-clock enters only through the runner's per-point wall_seconds
 * (median across --repeat), which stays outside the digest, so
 * --repeat N never trips the repeat-invariance check.
 *
 * Run with --repeat 5 when comparing numbers across PRs.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "runner.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

/**
 * A 100k-page synthetic trace: every page gets one write at a
 * hash-derived time, so the event stream is maximally wide (many
 * pages) and shallow (one event per page) - the regime where the
 * reference path's per-quantum full page scan and O(W) event
 * materialization dominate.
 */
std::vector<std::vector<TimeMs>>
syntheticTrace(std::uint64_t seed, std::size_t pages, double duration_ms)
{
    std::vector<std::vector<TimeMs>> writes(pages);
    for (std::size_t p = 0; p < pages; ++p) {
        Rng rng(deriveTaskSeed(seed, p));
        writes[p].push_back(TimeMs{rng.uniform(0.0, duration_ms)});
    }
    return writes;
}

/** The deterministic counters every point reports. */
bench::Metrics
counters(const MemconConfig &cfg, const MemconResult &r)
{
    double quanta =
        r.durationMs > 0.0 ? r.durationMs / cfg.quantumMs.value() : 0.0;
    // Peak resident estimate of the event plumbing: the reference
    // path holds every event (16-byte {time, page}); the streaming
    // path holds one 16-byte heap node per concurrently live stream.
    double event_bytes =
        cfg.referenceEventPath
            ? static_cast<double>(r.writes) * 16.0
            : static_cast<double>(r.peakLiveStreams) * 16.0;
    return bench::Metrics{
        {"writes", static_cast<double>(r.writes)},
        {"quanta", quanta},
        {"tests_run", static_cast<double>(r.testsRun)},
        {"scrub_tests", static_cast<double>(r.scrubTests)},
        {"heap_pushes", static_cast<double>(r.heapPushes)},
        {"wheel_pops", static_cast<double>(r.wheelPops)},
        {"peak_live_streams", static_cast<double>(r.peakLiveStreams)},
        {"est_peak_event_bytes", event_bytes},
    };
}

MemconConfig
scrubbyConfig(bool reference)
{
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{64.0};
    // Budget and period chosen so the steady-state scrub demand
    // (~pages / scrub_epochs per quantum) fits inside the test
    // budget: the wheel then stays O(due) per quantum instead of
    // churning a budget-starved backlog (which degrades to the
    // reference path's O(pages) - the regime the seed engine is in
    // at every quantum regardless).
    cfg.testSlotsPer64ms = 4096;
    cfg.scrubPeriodMs = 16384.0;
    cfg.referenceEventPath = reference;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("micro_engine_ops",
                  "streaming engine vs reference event path");
    note("Same traces, bit-identical metrics; only the wall clock and "
         "the event-plumbing counters differ between the paths.");
    note(strprintf("kernel set: %s%s (MEMCON_FORCE_SCALAR pins scalar)",
                   simd::activeKernelSetName(),
                   simd::scalarForced() ? " [forced]" : ""));

    const std::size_t pages = 100000; // the acceptance-bar trace width
    const double duration_ms = opts.quick ? 20000.0 : 60000.0;
    const std::size_t scale_pages = pages / 4;

    bench::SweepRunner runner("micro_engine_ops", opts);

    // Both paths of a pair replay the SAME pre-generated trace
    // (shared seed, built outside the timed lambdas), so the wall
    // clock prices only the engine and the metric counters differ
    // only in the plumbing columns.
    const std::uint64_t trace_seed = deriveTaskSeed(opts.campaignSeed, 0);
    const auto trace_full = syntheticTrace(trace_seed, pages, duration_ms);
    const auto trace_quarter =
        syntheticTrace(trace_seed, scale_pages, duration_ms);

    // (a) headline: full mechanism (PRIL + scrub) on 100k pages.
    for (bool reference : {true, false}) {
        runner.add(
            std::string("headline/") + (reference ? "ref" : "stream"),
            [&trace_full, duration_ms,
             reference](const bench::TaskContext &) {
                MemconConfig cfg = scrubbyConfig(reference);
                MemconEngine engine(cfg);
                return counters(cfg,
                                engine.run(trace_full, duration_ms));
            });
    }

    // (b) merge only: scrub off, long quantum - prices the k-way
    // merge against materialize+stable_sort with no scan advantage.
    for (bool reference : {true, false}) {
        runner.add(
            std::string("merge_only/") + (reference ? "ref" : "stream"),
            [&trace_full, duration_ms,
             reference](const bench::TaskContext &) {
                MemconConfig cfg;
                cfg.quantumMs = TimeMs{1024.0};
                cfg.referenceEventPath = reference;
                MemconEngine engine(cfg);
                return counters(cfg,
                                engine.run(trace_full, duration_ms));
            });
    }

    // (c) scrub scaling: same config at pages/4 - per-quantum cost
    // should scale with page count on the reference path only.
    for (bool reference : {true, false}) {
        runner.add(
            std::string("scaled_down/") + (reference ? "ref" : "stream"),
            [&trace_quarter, duration_ms,
             reference](const bench::TaskContext &) {
                MemconConfig cfg = scrubbyConfig(reference);
                MemconEngine engine(cfg);
                return counters(cfg,
                                engine.run(trace_quarter, duration_ms));
            });
    }

    // (d) runOnApp: generator streaming vs full materialization.
    for (bool reference : {true, false}) {
        runner.add(
            std::string("app/") + (reference ? "ref" : "stream"),
            [=](const bench::TaskContext &) {
                trace::AppPersona persona =
                    trace::AppPersona::table1Suite()[0];
                persona.seed = trace_seed;
                if (opts.quick) {
                    persona.pages = 4000;
                    persona.durationSec = 60.0;
                }
                MemconConfig cfg;
                cfg.referenceEventPath = reference;
                MemconEngine engine(cfg);
                return counters(cfg, engine.runOnApp(persona));
            });
    }

    const std::vector<bench::PointResult> &results = runner.run();

    TextTable table;
    table.header({"scenario", "path", "events", "events/sec",
                  "ns/quantum", "est peak event MB"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const bench::PointResult &r = results[i];
        double wall = runner.pointWallSeconds(i);
        double events = r.metric("writes");
        double quanta = r.metric("quanta");
        std::string scenario = r.label.substr(0, r.label.find('/'));
        std::string path = r.label.substr(r.label.find('/') + 1);
        table.row({scenario, path,
                   TextTable::num(events, 0),
                   wall > 0.0 ? TextTable::num(events / wall, 0) : "-",
                   quanta > 0.0
                       ? TextTable::num(wall * 1e9 / quanta, 0)
                       : "-",
                   TextTable::num(
                       r.metric("est_peak_event_bytes") / 1048576.0,
                       2)});
    }
    std::printf("%s", table.render().c_str());

    // The acceptance bars: the streaming path must clear 4x the
    // reference path's events/sec on the 100k-page headline trace and
    // 1.5x on the scan-free merge_only pair (ISSUE 9).
    double wall_ref = runner.pointWallSeconds(0);
    double wall_stream = runner.pointWallSeconds(1);
    if (wall_stream > 0.0)
        note(strprintf("headline speedup: %.2fx events/sec over the "
                       "reference path (target >= 4x)",
                       wall_ref / wall_stream));
    double wall_merge_ref = runner.pointWallSeconds(2);
    double wall_merge_stream = runner.pointWallSeconds(3);
    if (wall_merge_stream > 0.0)
        note(strprintf("merge_only speedup: %.2fx events/sec over the "
                       "reference path (target >= 1.5x)",
                       wall_merge_ref / wall_merge_stream));
    double q_full = runner.pointWallSeconds(0) / results[0].metric("quanta");
    double q_quarter =
        runner.pointWallSeconds(4) / results[4].metric("quanta");
    note(strprintf("reference per-quantum cost at 100k vs 25k pages: "
                   "%.0f ns vs %.0f ns (scan scales with pages)",
                   q_full * 1e9, q_quarter * 1e9));
    note(strprintf(
        "streaming per-quantum cost at 100k vs 25k pages: "
        "%.0f ns vs %.0f ns (wheel scales with due entries)",
        runner.pointWallSeconds(1) * 1e9 / results[1].metric("quanta"),
        runner.pointWallSeconds(5) * 1e9 / results[5].metric("quanta")));
    runner.finish();
    return 0;
}
