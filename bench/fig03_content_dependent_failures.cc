/**
 * @file
 * Regenerates Figure 3: DRAM cells failing with different data
 * content. A simulated chip is tested with 100 data patterns at the
 * 328 ms-equivalent refresh interval; each pattern exposes a
 * different subset of the vulnerable cells, demonstrating that
 * failures are conditional on memory content.
 *
 * The paper plots (failing cell ID, pattern ID) dots; we print the
 * per-pattern failing-cell counts plus the overlap statistics that
 * the dot plot conveys (how many cells fail under only some
 * patterns).
 */

#include <map>
#include <set>

#include "bench_util.hh"
#include "common/table.hh"
#include "failure/model.hh"
#include "failure/tester.hh"

using namespace memcon;
using namespace memcon::failure;

int
main()
{
    bench::banner("Figure 3", "DRAM cells failing with different data "
                              "content (100-pattern sweep)");
    note("Chip model: 16384 rows x 64Kb, scrambled + remapped, tested "
         "at the 328 ms-equivalent interval (4 s @ 45C).");

    FailureModelParams params;
    params.nominalIntervalMs = 328.0;
    params.seed = 2017;
    FailureModel model(params, 1 << 14, 1 << 16);
    DramTester tester(model);

    auto battery = PatternContent::battery(100);
    auto per_pattern = tester.perPatternFailingCells(battery, 328.0);

    // Assign stable IDs to all observed failing cells, as the figure
    // does for its x axis.
    std::map<std::pair<RowId, std::uint64_t>, unsigned> cell_id;
    std::map<unsigned, unsigned> patterns_per_cell;
    for (const auto &cells : per_pattern) {
        for (const auto &cell : cells) {
            auto [it, fresh] =
                cell_id.emplace(cell, static_cast<unsigned>(cell_id.size()));
            ++patterns_per_cell[it->second];
        }
    }

    TextTable table;
    table.header({"pattern-id", "pattern", "failing-cells",
                  "new-cells-vs-prior"});
    std::set<std::pair<RowId, std::uint64_t>> seen;
    for (std::size_t i = 0; i < battery.size(); ++i) {
        unsigned fresh = 0;
        for (const auto &cell : per_pattern[i])
            fresh += seen.insert(cell).second;
        if (i < 12 || i + 1 == battery.size() ||
            per_pattern[i].size() == 0) {
            table.row({std::to_string(i), battery[i].name(),
                       std::to_string(per_pattern[i].size()),
                       std::to_string(fresh)});
        }
    }
    std::printf("%s", table.render().c_str());
    note("(middle random patterns elided; every pattern was run)");

    // The figure's message: cells fail conditionally.
    unsigned total_cells = static_cast<unsigned>(cell_id.size());
    unsigned always = 0, rare = 0;
    for (const auto &[id, count] : patterns_per_cell) {
        if (count == battery.size())
            ++always;
        if (count <= battery.size() / 10)
            ++rare;
    }
    std::printf("\n");
    note(strprintf("distinct failing cells across all patterns: %u",
                   total_cells));
    note(strprintf("cells failing under EVERY pattern: %u (%.1f%%)",
                   always, 100.0 * always / total_cells));
    note(strprintf("cells failing under <=10%% of patterns: %u (%.1f%%)",
                   rare, 100.0 * rare / total_cells));
    note("Paper: each vertical line in Fig 3 has gaps - a cell fails "
         "only under some contents. The rare/conditional population "
         "above reproduces that.");

    // The same battery through the bit-parallel sweep (DESIGN.md
    // §19): per-pattern visible failing bits plus the coverage curve
    // (bits no earlier pattern flagged), maintained with the bulk
    // or/andnot kernels instead of per-cell sets. Counts cover the
    // logically visible bits only, so they sit at or below the
    // cell-level numbers above (spare columns have no address here).
    auto bit_counts = tester.batteryFailingBitCounts(battery, 328.0);
    std::uint64_t total_bits = 0, covered = 0;
    std::size_t patterns_to_90 = 0;
    for (const auto &c : bit_counts)
        total_bits += c.newFailingBits;
    for (std::size_t i = 0; i < bit_counts.size(); ++i) {
        covered += bit_counts[i].newFailingBits;
        if (patterns_to_90 == 0 && covered * 10 >= total_bits * 9)
            patterns_to_90 = i + 1;
    }
    std::printf("\n");
    note(strprintf("bit-parallel sweep: %llu distinct visible failing "
                   "bits across the battery",
                   static_cast<unsigned long long>(total_bits)));
    note(strprintf("patterns to reach 90%% of that coverage: %zu of "
                   "%zu - the long tail is why exhaustive pattern "
                   "campaigns keep finding new cells",
                   patterns_to_90, bit_counts.size()));
    return 0;
}
