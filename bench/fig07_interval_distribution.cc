/**
 * @file
 * Regenerates Figure 7: the distribution of per-page write intervals
 * for the three representative workloads (ACBrotherhood, Netflix,
 * SystemMgt). Prints the percentage of writes per power-of-two
 * interval bucket from 1 ms to 32768 ms, plus the headline marginals
 * of Section 4.1.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 7", "distribution of write intervals");
    note("Paper: >95% of writes within 1 ms; <0.43% of writes exceed "
         "1024 ms on average.");

    for (const char *name : {"ACBrotherHood", "Netflix", "SystemMgt"}) {
        AppPersona persona = AppPersona::byName(name);
        WriteIntervalAnalyzer a = analyzeApp(persona);

        std::printf("\n-- %s (%s, %.0f s trace, %llu writes)\n", name,
                    persona.type.c_str(), persona.durationSec,
                    static_cast<unsigned long long>(a.numIntervals()));

        TextTable table;
        table.header({"interval-bucket(ms)", "% of writes"});
        table.row({"< 1", TextTable::pct(a.fractionWritesBelow(TimeMs{1.0}), 3)});
        for (double lo = 1.0; lo <= 16384.0; lo *= 2.0) {
            double frac = a.fractionWritesAtLeast(TimeMs{lo}) -
                          a.fractionWritesAtLeast(TimeMs{lo * 2.0});
            table.row({strprintf("[%.0f, %.0f)", lo, lo * 2.0),
                       TextTable::pct(frac, 4)});
        }
        table.row({">= 32768",
                   TextTable::pct(a.fractionWritesAtLeast(TimeMs{32768.0}), 4)});
        std::printf("%s", table.render().c_str());
        note(strprintf("writes < 1 ms: %.2f%%;  writes >= 1024 ms: "
                       "%.3f%%",
                       a.fractionWritesBelow(TimeMs{1.0}) * 100.0,
                       a.fractionWritesAtLeast(TimeMs{1024.0}) * 100.0));
    }
    return 0;
}
