/**
 * @file
 * Regenerates Table 1: the evaluated long-running workloads and
 * their characteristics, plus the generator statistics of each
 * persona (writes produced, pages touched, hot/cold/read-only
 * split) so the trace substitution is auditable.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Table 1", "evaluated long-running workloads");

    TextTable table;
    table.header({"application", "type", "time(s)", "mem(GB)",
                  "threads", "pages", "read-only", "hot", "writes"});
    for (const AppPersona &p : AppPersona::table1Suite()) {
        std::uint64_t writes = 0, ro = 0, hot = 0;
        for (std::uint64_t page = 0; page < p.pages; ++page) {
            PageWriteProcess proc(p, page);
            if (proc.isReadOnly()) {
                ++ro;
                continue;
            }
            hot += proc.isHot();
            writes += proc.writeTimes().size();
        }
        table.row({p.name, p.type, TextTable::num(p.durationSec, 1),
                   TextTable::num(p.footprintGB, 1),
                   std::to_string(p.threads), std::to_string(p.pages),
                   std::to_string(ro), std::to_string(hot),
                   std::to_string(writes)});
    }
    std::printf("%s", table.render().c_str());
    note("time/mem/threads columns reproduce Table 1; the page-class "
         "and write-volume columns document the synthetic trace "
         "generator standing in for the HMTT FPGA traces.");
    return 0;
}
