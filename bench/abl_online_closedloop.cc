/**
 * @file
 * Ablation: the closed-loop, cycle-domain MEMCON.
 *
 * Unlike Figure 15/16 (which model MEMCON's refresh reduction as a
 * configured tREFI stretch), this run lets the mechanism act on the
 * simulator's real request stream: PRIL observes demand writes, test
 * traffic is injected per candidate row, rows migrate between HI and
 * LO-REF, and the controller's refresh cadence follows the measured
 * LO-REF fraction. Quanta are time-compressed (cycle simulation
 * covers milliseconds, not seconds); the control flow is the real
 * one.
 *
 * One sweep point per (workload, configuration); the access-stream
 * seed derives from the campaign seed, so the table is reproducible
 * from the banner and bit-identical for any --threads value.
 */

#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/online_memcon.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

bench::Metrics
runOne(const char *persona_name, bool with_memcon, std::uint64_t seed,
       bool quick)
{
    dram::Geometry geom;
    geom.rowsPerBank = 64; // 512 rows: testable within the window
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    if (with_memcon)
        OnlineMemcon::installObserver(mc_cfg, slot);
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    std::unique_ptr<OnlineMemcon> om;
    if (with_memcon) {
        om = std::make_unique<OnlineMemcon>(geom, mc, om_cfg);
        slot = om.get();
    }

    trace::CpuAccessStream stream(
        trace::CpuPersona::byName(persona_name), seed);
    sim::SimpleCore core(0, std::move(stream), mc, 0,
                         geom.totalBlocks());
    // Run for a fixed simulated duration so the closed loop has the
    // same wall-clock opportunity under every workload.
    Tick now{};
    const Tick horizon = msToTicks(quick ? 0.2 : 1.0);
    while (now < horizon) {
        now += timing.tCk;
        mc.tick(now);
        if (om)
            om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
    }

    return bench::Metrics{
        {"ipc", core.ipc()},
        {"refresh_per_ms", mc.stats().value("refresh") / ticksToMs(now).value()},
        {"lo_fraction", om ? om->loRefFraction() : 0.0},
        {"emergent_reduction", om ? om->emergentReduction() : 0.0},
        {"tests", om ? static_cast<double>(om->testsStarted()) : 0.0},
        {"aborts", om ? static_cast<double>(om->testsAborted()) : 0.0},
        {"demotions", om ? static_cast<double>(om->demotions()) : 0.0},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Ablation: closed-loop MEMCON",
                  "emergent refresh reduction from the live request "
                  "stream");
    note("512-row module, 20 us quanta (time-compressed), 1 ms of "
         "simulated time per run. The reduction is measured, not "
         "configured.");

    const std::vector<const char *> workloads = {"perlbench", "h264ref",
                                                 "omnetpp"};
    bench::SweepRunner runner("abl_online_closedloop", opts);
    for (const char *name : workloads) {
        for (bool with_memcon : {false, true}) {
            runner.add(std::string(name) +
                           (with_memcon ? "/memcon" : "/baseline"),
                       [name, with_memcon](const bench::TaskContext &ctx) {
                           return runOne(name, with_memcon, ctx.seed,
                                         ctx.quick);
                       });
        }
    }
    runner.run();

    TextTable t;
    t.header({"workload", "config", "IPC", "REF/ms", "LO-REF rows",
              "emergent reduction", "tests", "aborts", "demotions"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const bench::PointResult &base = runner.results()[w * 2];
        const bench::PointResult &mem = runner.results()[w * 2 + 1];
        t.row({workloads[w], "baseline 16ms",
               TextTable::num(base.metric("ipc"), 3),
               TextTable::num(base.metric("refresh_per_ms"), 1), "-", "-",
               "-", "-", "-"});
        t.row({workloads[w], "online MEMCON",
               TextTable::num(mem.metric("ipc"), 3),
               TextTable::num(mem.metric("refresh_per_ms"), 1),
               TextTable::pct(mem.metric("lo_fraction"), 1),
               TextTable::pct(mem.metric("emergent_reduction"), 1),
               TextTable::num(mem.metric("tests"), 0),
               TextTable::num(mem.metric("aborts"), 0),
               TextTable::num(mem.metric("demotions"), 0)});
    }
    std::printf("%s", t.render().c_str());
    note("Write-light workloads settle most rows at LO-REF and cut "
         "the REF rate accordingly; write-heavy ones keep more rows "
         "at HI-REF - the mechanism adapts by itself.");
    runner.finish();
    return 0;
}
