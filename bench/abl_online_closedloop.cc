/**
 * @file
 * Ablation: the closed-loop, cycle-domain MEMCON.
 *
 * Unlike Figure 15/16 (which model MEMCON's refresh reduction as a
 * configured tREFI stretch), this run lets the mechanism act on the
 * simulator's real request stream: PRIL observes demand writes, test
 * traffic is injected per candidate row, rows migrate between HI and
 * LO-REF, and the controller's refresh cadence follows the measured
 * LO-REF fraction. Quanta are time-compressed (cycle simulation
 * covers milliseconds, not seconds); the control flow is the real
 * one.
 */

#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/online_memcon.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

struct Outcome
{
    double ipc;
    double refreshPerMs;
    double loFraction;
    double emergentReduction;
    std::uint64_t tests;
    std::uint64_t aborts;
    std::uint64_t demotions;
};

Outcome
runOne(const char *persona_name, bool with_memcon)
{
    dram::Geometry geom;
    geom.rowsPerBank = 64; // 512 rows: testable within the window
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, 16.0);

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    if (with_memcon)
        OnlineMemcon::installObserver(mc_cfg, slot);
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    std::unique_ptr<OnlineMemcon> om;
    if (with_memcon) {
        om = std::make_unique<OnlineMemcon>(geom, mc, om_cfg);
        slot = om.get();
    }

    trace::CpuAccessStream stream(
        trace::CpuPersona::byName(persona_name), 3);
    sim::SimpleCore core(0, std::move(stream), mc, 0,
                         geom.totalBlocks());
    // Run for a fixed simulated duration so the closed loop has the
    // same wall-clock opportunity under every workload.
    Tick now = 0;
    const Tick horizon = msToTicks(1.0);
    while (now < horizon) {
        now += timing.tCk;
        mc.tick(now);
        if (om)
            om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
    }

    Outcome o;
    o.ipc = core.ipc();
    o.refreshPerMs = mc.stats().value("refresh") / ticksToMs(now);
    o.loFraction = om ? om->loRefFraction() : 0.0;
    o.emergentReduction = om ? om->emergentReduction() : 0.0;
    o.tests = om ? om->testsStarted() : 0;
    o.aborts = om ? om->testsAborted() : 0;
    o.demotions = om ? om->demotions() : 0;
    return o;
}

} // namespace

int
main()
{
    bench::banner("Ablation: closed-loop MEMCON",
                  "emergent refresh reduction from the live request "
                  "stream");
    note("512-row module, 20 us quanta (time-compressed), 1 ms of "
         "simulated time per run. The reduction is measured, not "
         "configured.");

    TextTable t;
    t.header({"workload", "config", "IPC", "REF/ms", "LO-REF rows",
              "emergent reduction", "tests", "aborts", "demotions"});
    for (const char *name : {"perlbench", "h264ref", "omnetpp"}) {
        Outcome base = runOne(name, false);
        Outcome mem = runOne(name, true);
        t.row({name, "baseline 16ms", TextTable::num(base.ipc, 3),
               TextTable::num(base.refreshPerMs, 1), "-", "-", "-", "-",
               "-"});
        t.row({name, "online MEMCON", TextTable::num(mem.ipc, 3),
               TextTable::num(mem.refreshPerMs, 1),
               TextTable::pct(mem.loFraction, 1),
               TextTable::pct(mem.emergentReduction, 1),
               std::to_string(mem.tests), std::to_string(mem.aborts),
               std::to_string(mem.demotions)});
    }
    std::printf("%s", t.render().c_str());
    note("Write-light workloads settle most rows at LO-REF and cut "
         "the REF rate accordingly; write-heavy ones keep more rows "
         "at HI-REF - the mechanism adapts by itself.");
    return 0;
}
