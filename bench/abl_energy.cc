/**
 * @file
 * Ablation: refresh energy by policy. The paper motivates MEMCON
 * with energy efficiency alongside performance; this bench converts
 * each policy's refresh-operation count into energy with the
 * IDD-based model and also reports simulator-measured whole-run
 * energy breakdowns at each chip density.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "core/policies.hh"
#include "dram/energy.hh"
#include "sim/system.hh"

using namespace memcon;

int
main()
{
    bench::banner("Ablation: energy",
                  "refresh energy by policy and density");

    // Part 1: per-row refresh energy over one Table 1 run.
    {
        auto timing =
            dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
        dram::EnergyModel em(dram::PowerParams::ddr3_1600(), timing);

        core::MemconEngine engine{core::MemconConfig{}};
        core::MemconResult r = engine.runOnApp(
            trace::AppPersona::byName("AdobePremiere"));

        double base_j = em.refreshEnergyFromOps(r.refreshOpsBaseline);
        double memcon_j = em.refreshEnergyFromOps(r.refreshOpsMemcon);
        double raidr_ops =
            r.refreshOpsBaseline *
            (1.0 - core::raidrPolicy(0.16, 16.0, 64.0, 16.0).reduction);
        double ideal_ops = r.refreshOpsBaseline * 0.25;

        TextTable t;
        t.header({"policy", "row-refresh ops", "energy (mJ)",
                  "vs baseline"});
        auto row = [&](const char *name, double ops) {
            double j = em.refreshEnergyFromOps(ops);
            t.row({name, TextTable::num(ops, 0),
                   TextTable::num(j * 1e3, 2),
                   TextTable::pct(j / base_j, 1)});
        };
        row("16 ms baseline", r.refreshOpsBaseline);
        row("RAIDR", raidr_ops);
        row("MEMCON", r.refreshOpsMemcon);
        row("64 ms ideal", ideal_ops);
        std::printf("%s", t.render().c_str());
        note(strprintf("MEMCON refresh energy: %.1f%% of baseline "
                       "(mirrors its %.1f%% op reduction)",
                       memcon_j / base_j * 100.0,
                       r.reduction() * 100.0));
    }

    // Part 2: whole-system energy from the cycle simulator.
    std::printf("\n");
    note("Cycle-simulator energy breakdown (mcf, 1 core, 300K insts):");
    TextTable t2;
    t2.header({"density", "policy", "act/pre(mJ)", "rd/wr(mJ)",
               "refresh(mJ)", "backgnd(mJ)", "total(mJ)"});
    for (dram::Density d : {dram::Density::Gb8, dram::Density::Gb32}) {
        for (double reduction : {0.0, 0.75}) {
            sim::SystemConfig cfg;
            cfg.cores = 1;
            cfg.density = d;
            cfg.refreshReduction = reduction;
            std::vector<trace::CpuPersona> mix{
                trace::CpuPersona::byName("mcf")};
            sim::System sys(cfg, mix);
            sim::RunResult r = sys.run(300000);

            auto timing = dram::TimingParams::ddr3_1600(d, TimeMs{16.0});
            dram::EnergyModel em(dram::PowerParams::ddr3_1600(),
                                 timing);
            auto e = em.fromControllerStats(
                sys.controller().channel().stats(),
                sys.controller().stats(), r.totalTicks, 0.6);
            t2.row({dram::toString(d),
                    reduction == 0.0 ? "16 ms baseline" : "MEMCON 75%",
                    TextTable::num(e.actPre * 1e3, 3),
                    TextTable::num((e.read + e.write) * 1e3, 3),
                    TextTable::num(e.refresh * 1e3, 3),
                    TextTable::num(e.background * 1e3, 3),
                    TextTable::num(e.total() * 1e3, 3)});
        }
    }
    std::printf("%s", t2.render().c_str());
    note("Refresh's energy share grows with density (tRFC), so "
         "MEMCON's savings grow with it too - same trend as Fig 15's "
         "performance.");
    return 0;
}
