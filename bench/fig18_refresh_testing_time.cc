/**
 * @file
 * Regenerates Figure 18: the time MEMCON spends on refresh
 * operations and on testing (split into correctly-predicted and
 * mispredicted tests), normalized to the time the baseline spends on
 * refresh at 16 ms. Paper: refresh lands at 25-40% of baseline and
 * testing is negligible (~0.01%).
 *
 * Normalization note: the engine tracks the written footprint (the
 * pages with write activity); the module's remaining rows are
 * read-only and sit at LO-REF after one test. We therefore report
 * module-level numbers for an 8 GB DIMM (2^20 rows of 8 KB), with
 * the tracked pages embedded in it, exactly as the paper's module-
 * wide accounting does.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Figure 18",
                  "time on refresh + testing, normalized to baseline "
                  "refresh");
    note("Baseline: every row refreshed at 16 ms. Module: 2^20 rows "
         "(8 GB / 8 KB).");

    const double module_rows = 1 << 20;
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{512.0};
    MemconEngine engine(cfg);
    CostModelConfig cm_cfg;
    CostModel cm(cm_cfg);

    TextTable table;
    table.header({"application", "refresh", "testing(correct)",
                  "testing(mispred)", "testing total"});

    double sum_test = 0.0;
    unsigned n = 0;
    for (const trace::AppPersona &p : trace::AppPersona::table1Suite()) {
        MemconResult r = engine.runOnApp(p);

        // Embed the tracked footprint in the full module: untracked
        // rows behave like unwritten pages (HI for the first two
        // quanta, then LO) and are tested once each.
        double untracked = module_rows - static_cast<double>(r.pages);
        double ro_hi_ms = 2.0 * cfg.quantumMs.value();
        double ro_ops = untracked * (ro_hi_ms / cfg.hiRefMs +
                                     (r.durationMs - ro_hi_ms) /
                                         cfg.loRefMs);
        double ops_module = r.refreshOpsMemcon + ro_ops;
        double ops_baseline =
            module_rows * r.durationMs / cfg.hiRefMs;
        double refresh_frac = ops_module / ops_baseline;

        // Read-only rows are tested once at startup; that one-time
        // scrub is not part of steady-state testing time (the paper
        // counts runtime testing triggered by writes).
        double test_ns = r.testTimeNs;
        double baseline_ns = ops_baseline * cm.refreshOpNs();
        double test_frac = test_ns / baseline_ns;
        double correct_share =
            r.testsRun == 0
                ? 1.0
                : static_cast<double>(r.testsCorrect) /
                      static_cast<double>(r.testsRun);

        table.row({p.name, TextTable::pct(refresh_frac, 1),
                   strprintf("%.4f%%", test_frac * correct_share * 100),
                   strprintf("%.4f%%",
                             test_frac * (1.0 - correct_share) * 100),
                   strprintf("%.4f%%", test_frac * 100)});
        sum_test += test_frac;
        ++n;
    }
    std::printf("%s", table.render().c_str());
    note(strprintf("average testing time: %.4f%% of baseline refresh "
                   "time (paper: ~0.01%%)",
                   sum_test / n * 100));
    note("Refresh time lands near the 25% LO-REF floor, matching the "
         "paper's 25-40% bars.");
    return 0;
}
