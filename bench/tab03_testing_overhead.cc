/**
 * @file
 * Regenerates Table 3: the average performance loss caused by the
 * extra memory accesses of 256/512/1024 concurrent tests per 64 ms,
 * relative to an ideal system with free testing, for single-core and
 * 4-core systems.
 *
 * Paper: 0.54%/1.03%/1.88% (single-core) and 0.05%/0.09%/0.48%
 * (4-core) - testing is effectively free because it is deprioritised
 * behind demand traffic.
 */

#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::sim;

namespace
{

constexpr InstCount kInstsPerCore = 150000;
constexpr unsigned kNumMixes = 15;

double
avgLossPct(unsigned cores, unsigned tests,
           const std::vector<std::vector<trace::CpuPersona>> &mixes)
{
    double sum = 0.0;
    for (unsigned m = 0; m < mixes.size(); ++m) {
        std::vector<trace::CpuPersona> mix(mixes[m].begin(),
                                           mixes[m].begin() + cores);
        SystemConfig ideal;
        ideal.cores = cores;
        ideal.refreshReduction = 0.75; // MEMCON's refresh schedule
        ideal.seed = 3000 + m;
        SystemConfig tested = ideal;
        tested.concurrentTests = tests;
        double i = System(ideal, mix).run(kInstsPerCore).ipcSum();
        double t = System(tested, mix).run(kInstsPerCore).ipcSum();
        sum += (i - t) / i;
    }
    return 100.0 * sum / mixes.size();
}

} // namespace

int
main()
{
    bench::banner("Table 3",
                  "performance loss due to MEMCON's test accesses");
    note("Loss vs an ideal system where testing is free. Paper: "
         "0.54/1.03/1.88% (1-core), 0.05/0.09/0.48% (4-core) for "
         "256/512/1024 concurrent tests.");

    auto mixes = trace::CpuPersona::randomMixes(kNumMixes, 4, 42);

    TextTable table;
    table.header({"system", "256 tests", "512 tests", "1024 tests"});
    for (unsigned cores : {1u, 4u}) {
        std::vector<std::string> row{
            strprintf("%u-core", cores)};
        for (unsigned tests : {256u, 512u, 1024u})
            row.push_back(
                strprintf("%.2f%%", avgLossPct(cores, tests, mixes)));
        table.row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    note("Conclusion: extra accesses due to testing have negligible "
         "performance impact.");
    return 0;
}
