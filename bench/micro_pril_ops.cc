/**
 * @file
 * Hot-path microbench for the hardware-modelled bookkeeping paths:
 * the flat-set PRIL predictor priced against the seed hash-set
 * reference (onWrite churn and quantum swap), block content fills
 * vs the per-word virtual wordAt loop, row compares through the
 * dispatched kernels vs forced scalar, and block row readback vs
 * the sparse per-cell evaluation. Emits BENCH_micro_pril_ops.json
 * so the per-access cost trajectory behind the §6.4 "off the
 * critical path" argument is tracked across revisions.
 *
 * Every metric is a deterministic counter (writes, candidates,
 * drops, checksums, failing bits); wall-clock enters only through
 * the runner's per-point wall_seconds, which stays outside the
 * digest, so --repeat N never trips the repeat-invariance check.
 * Both members of every pair replay identical pre-generated inputs,
 * so their metric columns must agree (fataled in-bench) and the wall
 * ratio prices exactly the implementation difference.
 */

#include <cstdint>
#include <vector>

#include "bench_util.hh"
#include "common/arena.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "core/pril.hh"
#include "failure/content.hh"
#include "failure/model.hh"
#include "runner.hh"

using namespace memcon;

namespace
{

constexpr std::uint64_t kPages = 1u << 20;
constexpr std::size_t kBufferCap = 4000;

/**
 * The quantum-swap scenario models one bank-sharded predictor (the
 * post-PR-7 engine runs one PrilPredictor per bank), so its page
 * population is a bank's share of the 2^20 pages. The smaller write
 * map also stays cache-resident on the host, so the measured wall
 * prices the bookkeeping structures rather than host-DRAM misses on
 * the map words - the cost the two implementations share by design.
 */
constexpr std::uint64_t kSwapPages = 1u << 17;

/** Shared deterministic inputs, generated once outside the timing. */
struct Inputs
{
    std::vector<std::uint64_t> onwriteSeq; //!< mixed re-write traffic
    std::vector<std::uint64_t> swapSeq;    //!< mostly-distinct pages
    std::size_t swapWritesPerQuantum = 0;
    std::size_t swapQuanta = 0;
    std::size_t onwriteQuanta = 0;
};

Inputs
makeInputs(std::uint64_t seed, bool quick)
{
    Inputs in;
    // onWrite scenario: 4096-page working set cycled many times, so
    // roughly half the accesses are re-writes (buffer erases) - the
    // per-write churn mix the predictor sees under real traffic.
    const std::size_t onwrite_len = quick ? 1u << 20 : 1u << 23;
    Rng rng(deriveTaskSeed(seed, 1));
    std::vector<std::uint64_t> window(4096);
    for (auto &p : window)
        p = rng.uniformInt(kPages);
    in.onwriteSeq.reserve(onwrite_len);
    for (std::size_t i = 0; i < onwrite_len; ++i)
        in.onwriteSeq.push_back(window[i & 4095]);
    in.onwriteQuanta = onwrite_len / 4096;

    // quantum_swap scenario: each quantum writes ~capacity distinct
    // pages, so the buffer fills and the swap pays the full
    // candidate-extraction cost (sort + node frees on the reference
    // implementation; map visit + O(1) clear on the flat one).
    in.swapWritesPerQuantum = kBufferCap;
    in.swapQuanta = quick ? 64 : 512;
    Rng swap_rng(deriveTaskSeed(seed, 2));
    in.swapSeq.reserve(in.swapWritesPerQuantum * in.swapQuanta);
    for (std::size_t i = 0; i < in.swapWritesPerQuantum * in.swapQuanta;
         ++i)
        in.swapSeq.push_back(swap_rng.uniformInt(kSwapPages));
    return in;
}

/** Run the onWrite mix on either predictor implementation. */
template <typename Pril>
bench::Metrics
runOnWrite(const Inputs &in)
{
    Pril pril(kPages, kBufferCap);
    std::uint64_t candidates = 0;
    std::size_t i = 0;
    for (std::uint64_t page : in.onwriteSeq) {
        pril.onWrite(PageId{page});
        if ((++i & 0xfff) == 0)
            candidates += pril.endQuantum().size();
    }
    return bench::Metrics{
        {"writes", static_cast<double>(in.onwriteSeq.size())},
        {"candidates", static_cast<double>(candidates)},
        {"drops", static_cast<double>(pril.bufferDrops())},
        {"peak_occupancy",
         static_cast<double>(pril.peakBufferOccupancy())},
    };
}

/**
 * Run the swap-heavy mix on either predictor implementation. The flat
 * predictor goes through endQuantumInto() - the batched extraction the
 * engine's streaming loop calls, which reuses the caller's candidate
 * scratch instead of allocating a vector per quantum.
 */
template <typename Pril>
bench::Metrics
runQuantumSwap(const Inputs &in)
{
    Pril pril(kSwapPages, kBufferCap);
    std::uint64_t candidates = 0;
    std::uint64_t candidate_sum = 0;
    std::size_t at = 0;
    std::vector<PageId> scratch;
    for (std::size_t q = 0; q < in.swapQuanta; ++q) {
        for (std::size_t w = 0; w < in.swapWritesPerQuantum; ++w)
            pril.onWrite(PageId{in.swapSeq[at++]});
        if constexpr (requires { pril.endQuantumInto(scratch); })
            pril.endQuantumInto(scratch);
        else
            scratch = pril.endQuantum();
        for (PageId page : scratch) {
            ++candidates;
            candidate_sum += page.value();
        }
    }
    return bench::Metrics{
        {"quanta", static_cast<double>(in.swapQuanta)},
        {"candidates", static_cast<double>(candidates)},
        {"candidate_sum", static_cast<double>(candidate_sum)},
        {"drops", static_cast<double>(pril.bufferDrops())},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("micro_pril_ops",
                  "PRIL, content, and compare kernel hot paths");
    note(strprintf("kernel set: %s%s (MEMCON_FORCE_SCALAR pins scalar)",
                   simd::activeKernelSetName(),
                   simd::scalarForced() ? " [forced]" : ""));
    note("Paired points replay identical inputs; equal metric columns "
         "are enforced, so the wall ratio prices the implementation.");

    const Inputs inputs = makeInputs(opts.campaignSeed, opts.quick);
    const std::size_t content_rows = opts.quick ? 512 : 4096;
    const std::size_t row_words = 1024; // 8 KB row
    const std::size_t compare_rows = opts.quick ? 1u << 10 : 1u << 13;
    const std::size_t eval_rows = opts.quick ? 256 : 2048;

    bench::SweepRunner runner("micro_pril_ops", opts);

    // (a) onWrite churn: hash-set node traffic vs flat-set probes.
    runner.add("onwrite/ref", [&inputs](const bench::TaskContext &) {
        return runOnWrite<core::ReferencePrilPredictor>(inputs);
    });
    runner.add("onwrite/flat", [&inputs](const bench::TaskContext &) {
        return runOnWrite<core::PrilPredictor>(inputs);
    });

    // (b) quantum swap at full buffers: sorted extraction + node
    // frees vs batched map visit + O(1) epoch clear (target >= 3x).
    runner.add("quantum_swap/ref", [&inputs](const bench::TaskContext &) {
        return runQuantumSwap<core::ReferencePrilPredictor>(inputs);
    });
    runner.add("quantum_swap/flat", [&inputs](const bench::TaskContext &) {
        return runQuantumSwap<core::PrilPredictor>(inputs);
    });

    // (c) content generation: per-word virtual dispatch vs the block
    // fillRow override. Checksums must match exactly.
    for (bool block : {false, true}) {
        runner.add(std::string("content_fill/") +
                       (block ? "block" : "wordat"),
                   [block, content_rows,
                    row_words](const bench::TaskContext &) {
                       failure::ProgramContent content(
                           failure::ContentPersona::byName("astar"), 3);
                       Arena arena;
                       std::uint64_t *buf =
                           arena.allocate<std::uint64_t>(row_words);
                       std::uint64_t checksum = 0;
                       for (std::size_t r = 0; r < content_rows; ++r) {
                           if (block) {
                               content.fillRow(r, buf, row_words);
                           } else {
                               // The priced per-word baseline.
                               for (std::size_t w = 0; w < row_words; ++w)
                                   // lint:allow(content-wordat)
                                   buf[w] = content.wordAt(r, w);
                           }
                           checksum ^= hashMix64(
                               simd::popcountWords(buf, row_words) +
                               buf[0] + buf[row_words - 1] + r);
                       }
                       return bench::Metrics{
                           {"rows", static_cast<double>(content_rows)},
                           {"checksum",
                            static_cast<double>(checksum >> 11)},
                       };
                   });
    }

    // (d) row compare: forced-scalar kernels vs the dispatched set on
    // identical buffers (equal mismatch counts by construction).
    for (bool active : {false, true}) {
        runner.add(
            std::string("row_compare/") + (active ? "active" : "scalar"),
            [active, compare_rows, row_words,
             &opts](const bench::TaskContext &) {
                const simd::KernelSet &k = active
                                               ? simd::activeKernels()
                                               : simd::scalarKernels();
                Arena arena;
                std::uint64_t *a =
                    arena.allocate<std::uint64_t>(row_words);
                std::uint64_t *b =
                    arena.allocate<std::uint64_t>(row_words);
                Rng rng(deriveTaskSeed(opts.campaignSeed, 7));
                std::uint64_t mismatches = 0;
                std::uint64_t bits = 0;
                for (std::size_t r = 0; r < compare_rows; ++r) {
                    std::uint64_t base = hashMix64(r * 0x9e37 + 1);
                    for (std::size_t w = 0; w < row_words; ++w) {
                        a[w] = hashMix64(base + w);
                        b[w] = a[w];
                    }
                    // Every eighth row decays one bit somewhere.
                    if ((r & 7) == 0)
                        b[rng.uniformInt(row_words)] ^=
                            std::uint64_t{1} << rng.uniformInt(64);
                    if (!k.equal(a, b, row_words)) {
                        ++mismatches;
                        bits += k.xorPopcount(a, b, row_words);
                    }
                }
                return bench::Metrics{
                    {"rows", static_cast<double>(compare_rows)},
                    {"mismatch_rows", static_cast<double>(mismatches)},
                    {"mismatch_bits", static_cast<double>(bits)},
                };
            });
    }

    // (e) row readback: sparse per-cell evaluation vs the block
    // readback + xor-popcount path the Fig 3/4 sweeps run on.
    for (bool block : {false, true}) {
        runner.add(
            std::string("row_readback/") + (block ? "block" : "sparse"),
            [block, eval_rows](const bench::TaskContext &) {
                failure::FailureModelParams params;
                failure::FailureModel model(params, 1 << 14, 1 << 16);
                failure::ProgramContent content(
                    failure::ContentPersona::byName("gcc"), 0);
                const std::size_t n_words = (1 << 16) / 64;
                Arena arena;
                std::uint64_t *expected =
                    arena.allocate<std::uint64_t>(n_words);
                std::uint64_t *readback =
                    arena.allocate<std::uint64_t>(n_words);
                std::uint64_t failures = 0;
                for (std::size_t r = 0; r < eval_rows; ++r) {
                    if (block) {
                        std::uint64_t logical =
                            model.scrambler().logicalRow(r);
                        content.fillRow(logical, expected, n_words);
                        model.readbackPhysicalRow(RowId{r}, content,
                                                  64.0, readback,
                                                  n_words);
                        failures += simd::xorPopcount(
                            expected, readback, n_words);
                    } else {
                        for (const failure::CellFailure &f :
                             model.evaluatePhysicalRow(RowId{r},
                                                       content, 64.0)) {
                            // Count only logically visible failures,
                            // to match the block path's view.
                            if (model.remapper().addressedColumn(
                                    f.column) !=
                                failure::ColumnRemapper::kUnmapped)
                                ++failures;
                        }
                    }
                }
                return bench::Metrics{
                    {"rows", static_cast<double>(eval_rows)},
                    {"visible_failing_bits",
                     static_cast<double>(failures)},
                };
            });
    }

    const std::vector<bench::PointResult> &results = runner.run();

    TextTable table;
    table.header({"scenario", "impl", "wall ms", "speedup"});
    for (std::size_t i = 0; i < results.size(); i += 2) {
        const std::string &ref_label = results[i].label;
        const std::string &new_label = results[i + 1].label;
        double ref_wall = runner.pointWallSeconds(i);
        double new_wall = runner.pointWallSeconds(i + 1);
        std::string scenario = ref_label.substr(0, ref_label.find('/'));
        table.row({scenario, ref_label.substr(ref_label.find('/') + 1),
                   TextTable::num(ref_wall * 1e3, 2), "1.00x"});
        table.row({scenario, new_label.substr(new_label.find('/') + 1),
                   TextTable::num(new_wall * 1e3, 2),
                   new_wall > 0.0
                       ? strprintf("%.2fx", ref_wall / new_wall)
                       : "-"});
    }
    std::printf("%s", table.render().c_str());

    // Paired points must agree on every shared metric: same inputs,
    // same semantics, different implementation.
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        for (const bench::Metric &m : results[i].metrics) {
            fatal_if(m.value != results[i + 1].metric(m.name),
                     "metric '%s' diverged between %s and %s",
                     m.name.c_str(), results[i].label.c_str(),
                     results[i + 1].label.c_str());
        }
    }

    double swap_ref = runner.pointWallSeconds(2);
    double swap_flat = runner.pointWallSeconds(3);
    if (swap_flat > 0.0)
        note(strprintf("quantum-swap speedup: %.2fx over the hash-set "
                       "reference (target >= 3x)",
                       swap_ref / swap_flat));
    double fill_wordat = runner.pointWallSeconds(4);
    double fill_block = runner.pointWallSeconds(5);
    if (fill_block > 0.0)
        note(strprintf("content fill speedup: %.2fx block over the "
                       "per-word virtual loop",
                       fill_wordat / fill_block));
    runner.finish();
    return 0;
}
