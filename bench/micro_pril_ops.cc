/**
 * @file
 * Google-benchmark microbenchmarks of the hardware-modelled hot
 * paths: PRIL write tracking and quantum turnover, failure-model row
 * evaluation, the channel timing engine, and content generation.
 * These bound the per-access software cost of the simulation
 * substrate (not a paper artifact, but the basis for the §6.4
 * "off the critical path" argument).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/pril.hh"
#include "dram/channel.hh"
#include "failure/content.hh"
#include "failure/model.hh"

using namespace memcon;

namespace
{

void
BM_PrilOnWrite(benchmark::State &state)
{
    core::PrilPredictor pril(1 << 20, 4000);
    Rng rng(1);
    std::vector<std::uint64_t> pages(4096);
    for (auto &p : pages)
        p = rng.uniformInt(1 << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        pril.onWrite(PageId{pages[i++ & 4095]});
        if ((i & 0xfff) == 0)
            pril.endQuantum();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrilOnWrite);

void
BM_PrilQuantumTurnover(benchmark::State &state)
{
    const std::int64_t writes = state.range(0);
    core::PrilPredictor pril(1 << 20, 8192);
    Rng rng(2);
    for (auto _ : state) {
        state.PauseTiming();
        for (std::int64_t w = 0; w < writes; ++w)
            pril.onWrite(PageId{rng.uniformInt(1 << 20)});
        state.ResumeTiming();
        benchmark::DoNotOptimize(pril.endQuantum());
    }
}
BENCHMARK(BM_PrilQuantumTurnover)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_FailureModelRowEvaluation(benchmark::State &state)
{
    failure::FailureModelParams params;
    failure::FailureModel model(params, 1 << 14, 1 << 16);
    failure::ProgramContent content(
        failure::ContentPersona::byName("gcc"), 0);
    std::uint64_t row = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluatePhysicalRow(RowId{row}, content, 64.0));
        row = (row + 1) & ((1 << 14) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailureModelRowEvaluation);

void
BM_ContentWordGeneration(benchmark::State &state)
{
    failure::ProgramContent content(
        failure::ContentPersona::byName("astar"), 3);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(content.wordAt(i & 1023, i >> 10));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContentWordGeneration);

void
BM_ChannelCommandIssue(benchmark::State &state)
{
    dram::Geometry g;
    g.rowsPerBank = 1 << 12;
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    dram::Channel chan(g, timing);
    Tick now{};
    std::uint64_t row = 0;
    unsigned bank = 0;
    for (auto _ : state) {
        now = std::max(now + timing.tCk,
                       chan.earliestIssueTick(dram::Command::Act, 0,
                                              bank, RowId{row}));
        chan.issue(dram::Command::Act, 0, bank, RowId{row}, now);
        now = std::max(now + timing.tCk,
                       chan.earliestIssueTick(dram::Command::RdA, 0,
                                              bank, RowId{row}));
        chan.issue(dram::Command::RdA, 0, bank, RowId{row}, now);
        bank = (bank + 1) % g.banks;
        row = (row + 1) & (g.rowsPerBank - 1);
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_ChannelCommandIssue);

} // namespace

BENCHMARK_MAIN();
