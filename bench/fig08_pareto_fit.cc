/**
 * @file
 * Regenerates Figure 8: the Pareto fit of the write-interval
 * survival function P(length > x) on the log-log scale for the three
 * representative workloads, with the R^2 values the paper quotes
 * (0.944, 0.937, 0.986).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 8",
                  "Pareto distribution of write intervals (log-log fit)");
    note("Paper R^2: ACBrotherhood 0.944, Netflix 0.937, SystemMgt "
         "0.986. P(len > x) = k * x^-alpha.");

    for (const char *name : {"ACBrotherHood", "Netflix", "SystemMgt"}) {
        WriteIntervalAnalyzer a = analyzeApp(AppPersona::byName(name));

        std::printf("\n-- %s\n", name);
        TextTable table;
        table.header({"x (ms)", "P(interval > x)"});
        for (auto [x, p] : a.survivalCurve(TimeMs{32768.0}))
            table.row({TextTable::num(x, 0), strprintf("%.6f", p)});
        std::printf("%s", table.render().c_str());

        LineFit fit = a.paretoFit(TimeMs{1.0}, TimeMs{32768.0});
        note(strprintf("fit: alpha = %.3f, k = 10^%.3f, R^2 = %.4f",
                       -fit.slope, fit.intercept, fit.rSquared));
    }
    std::printf("\n");
    note("All three survival curves track a straight line on log-log "
         "axes with high R^2 - the Pareto behaviour PRIL exploits.");
    return 0;
}
