/**
 * @file
 * Ablations of MEMCON's design choices (DESIGN.md §6):
 *  - write-buffer capacity (footnote 10's drop-on-full),
 *  - the single-write-per-quantum tracking filter is exercised
 *    implicitly (hot pages), so we report how much opportunity it
 *    costs by comparing against an unbounded predictor,
 *  - test mode (Read&Compare vs Copy&Compare) end to end,
 *  - silent-write detection (footnote 9),
 *  - concurrent-test budget.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Ablation: design choices",
                  "buffer capacity, test mode, silent writes, budget");

    trace::AppPersona app = trace::AppPersona::byName("VideoEncode");
    note(strprintf("workload: %s (%.0f s)", app.name.c_str(),
                   app.durationSec));

    std::printf("\n(a) write-buffer capacity (paper: 4000 entries "
                "suffice)\n");
    TextTable buf;
    buf.header({"capacity", "reduction", "drops"});
    for (std::size_t cap : {50ul, 200ul, 1000ul, 4000ul, 100000ul}) {
        MemconConfig cfg;
        cfg.writeBufferCapacity = cap;
        MemconResult r = MemconEngine(cfg).runOnApp(app);
        buf.row({std::to_string(cap), TextTable::pct(r.reduction(), 1),
                 std::to_string(r.bufferDrops)});
    }
    std::printf("%s", buf.render().c_str());

    std::printf("\n(b) test mode (cost per test feeds Fig 18's "
                "testing time)\n");
    TextTable mode;
    mode.header({"mode", "reduction", "test time (ms)",
                 "test/baseline-refresh"});
    for (TestMode m :
         {TestMode::ReadAndCompare, TestMode::CopyAndCompare}) {
        MemconConfig cfg;
        cfg.mode = m;
        MemconResult r = MemconEngine(cfg).runOnApp(app);
        mode.row({toString(m), TextTable::pct(r.reduction(), 1),
                  TextTable::num(r.testTimeNs * 1e-6, 2),
                  strprintf("%.3f%%",
                            r.testTimeOverBaselineRefresh() * 100)});
    }
    std::printf("%s", mode.render().c_str());

    std::printf("\n(c) silent-write detection (footnote 9)\n");
    TextTable silent;
    silent.header({"silent fraction", "detection", "reduction",
                   "writes skipped"});
    for (double frac : {0.0, 0.2, 0.4}) {
        for (bool detect : {false, true}) {
            if (frac == 0.0 && detect)
                continue;
            MemconConfig cfg;
            cfg.silentWriteFraction = frac;
            cfg.detectSilentWrites = detect;
            MemconResult r = MemconEngine(cfg).runOnApp(app);
            silent.row({TextTable::pct(frac, 0),
                        detect ? "on" : "off",
                        TextTable::pct(r.reduction(), 1),
                        std::to_string(r.silentWritesSkipped)});
        }
    }
    std::printf("%s", silent.render().c_str());

    std::printf("\n(d) concurrent-test budget\n");
    TextTable budget;
    budget.header({"tests per 64 ms", "reduction", "skipped"});
    for (unsigned slots : {16u, 64u, 256u, 1024u}) {
        MemconConfig cfg;
        cfg.testSlotsPer64ms = slots;
        MemconResult r = MemconEngine(cfg).runOnApp(app);
        budget.row({std::to_string(slots),
                    TextTable::pct(r.reduction(), 1),
                    std::to_string(r.testsSkippedBudget)});
    }
    std::printf("%s", budget.render().c_str());
    note("Conclusions: the 4000-entry buffer is loss-free; "
         "Copy&Compare trades controller SRAM for a 1.5x test cost; "
         "silent-write detection only helps; modest test budgets "
         "already capture the opportunity.");
    return 0;
}
