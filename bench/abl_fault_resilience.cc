/**
 * @file
 * Ablation: fault injection vs. the graceful-degradation layer.
 *
 * The closed-loop MEMCON run (abl_online_closedloop) trusts its own
 * verdicts; this ablation stresses that trust. A FaultInjector feeds
 * the controller's ECC probe with VRT telegraph flips plus a swept
 * rate of transient upsets, and the run is scored on *undetected
 * corruption*: rows serving demand at LO-REF while holding a fault no
 * read has surfaced yet.
 *
 * Three configurations per fault rate:
 *  - resilience off: the trusting baseline. ECC events are counted
 *    but nothing acts on them; latent corruption accumulates.
 *  - resilience on: corrected errors demote + re-test with backoff,
 *    uncorrectable errors trigger the panic-fallback.
 *  - resilience + scrub: additionally, idle LO-REF rows are
 *    re-certified round-robin through the test slots, closing the
 *    window on rows that see neither writes nor demand reads.
 *
 * One sweep point per (rate, layer); the VRT and injector seeds are
 * derived from the campaign seed, so rerunning with any --threads
 * value reproduces every number bit-identically.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/online_memcon.hh"
#include "failure/injector.hh"
#include "failure/vrt.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

enum class Layer
{
    Off,      //!< resilience disabled (trusting baseline)
    On,       //!< demotion + fallback, no scrub
    OnScrub,  //!< demotion + fallback + idle-row re-scrub
};

const char *
layerName(Layer layer)
{
    switch (layer) {
    case Layer::Off:
        return "resilience off";
    case Layer::On:
        return "resilience on";
    case Layer::OnScrub:
        return "on + scrub";
    }
    return "?";
}

bench::Metrics
runOne(double transient_rate, Layer layer, std::uint64_t seed, bool quick)
{
    dram::Geometry geom;
    geom.rowsPerBank = 64; // 512 rows
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});

    // The AVATAR hazard, time-compressed: cells toggle on the same
    // scale the run covers, so certifications go stale mid-run. The
    // VRT population and injector draw decorrelated sub-seeds from
    // the task seed.
    failure::VrtParams vrt_params;
    vrt_params.vrtCellsPerRow = 0.05;
    vrt_params.dwellHighMs = 0.6;
    vrt_params.dwellLowMs = 0.4;
    vrt_params.seed = hashMix64(seed ^ 0x5e711e5ce);
    failure::VrtPopulation vrt(vrt_params, geom.totalRows());

    failure::FaultInjectorConfig inj_cfg;
    inj_cfg.transientPerRowPerMs = transient_rate;
    inj_cfg.transientDoubleBitFraction = 0.1;
    inj_cfg.seed = hashMix64(seed ^ 0x1faf11);
    failure::FaultInjector injector(inj_cfg, geom.totalRows());
    injector.attachVrt(&vrt);

    Tick now{};

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    OnlineMemcon::installObserver(mc_cfg, slot);
    mc_cfg.eccProbe = [&](std::uint64_t addr, Tick t) {
        RowId row = geom.flatRowIndex(geom.decompose(addr));
        bool lo = slot && slot->isLoRef(row);
        return injector.onRead(row, t, lo);
    };
    // Chain the injector's restore semantics behind MEMCON's write
    // observer: a demand write rewrites the row's content.
    auto inner = mc_cfg.writeObserver;
    mc_cfg.writeObserver = [&, inner](std::uint64_t addr, Tick t) {
        injector.onRowRestored(geom.flatRowIndex(geom.decompose(addr)),
                               t);
        if (inner)
            inner(addr, t);
    };
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    om_cfg.resilience.enabled = layer != Layer::Off;
    om_cfg.resilience.retestBackoff = usToTicks(20.0);
    om_cfg.resilience.fallbackHold = usToTicks(60.0);
    // Sized so a full pass over the LO set takes ~1 ms: enough to
    // close the idle-row window without crowding certification out
    // of the test slots.
    om_cfg.resilience.scrubPeriod =
        layer == Layer::OnScrub ? usToTicks(60.0) : Tick{};
    om_cfg.resilience.scrubRowsPerSweep = 8;
    // The test verdicts consult the injector's latent state: a row
    // holding unsurfaced corruption fails its (re-)certification.
    auto om = std::make_unique<OnlineMemcon>(
        geom, mc, om_cfg, [&](RowId row) {
            return injector.hasLatentFault(row, now, true);
        });
    slot = om.get();

    trace::CpuAccessStream stream(
        trace::CpuPersona::byName("perlbench"), hashMix64(seed ^ 0xc02e));
    sim::SimpleCore core(0, std::move(stream), mc, 0,
                         geom.totalBlocks());

    const Tick horizon = msToTicks(quick ? 0.5 : 2.0);
    const Tick sample_period = usToTicks(40.0);
    Tick next_sample = sample_period;
    std::uint64_t samples = 0, latent_sum = 0, latent_peak = 0;
    while (now < horizon) {
        now += timing.tCk;
        mc.tick(now);
        om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
        if (now >= next_sample) {
            next_sample += sample_period;
            std::uint64_t latent = 0;
            for (std::uint64_t r = 0; r < geom.totalRows(); ++r)
                if (om->isLoRef(RowId{r}) &&
                    injector.hasLatentFault(RowId{r}, now, true))
                    ++latent;
            ++samples;
            latent_sum += latent;
            latent_peak = std::max(latent_peak, latent);
        }
    }

    return bench::Metrics{
        {"lo_fraction", om->loRefFraction()},
        {"reduction", om->emergentReduction()},
        {"corrected", om->stats().value("ecc.corrected")},
        {"uncorrectable", om->stats().value("ecc.uncorrectable")},
        {"fallbacks", om->stats().value("fallback.entries")},
        {"pinned", static_cast<double>(om->pinnedRows())},
        {"scrub_failed", om->stats().value("scrub.failed")},
        {"avg_latent_lo_rows",
         samples ? static_cast<double>(latent_sum) / samples : 0.0},
        {"peak_latent_lo_rows", static_cast<double>(latent_peak)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Ablation: fault injection vs. graceful degradation",
                  "undetected corruption on LO-REF rows under VRT + "
                  "transient upsets");
    note("512-row module, 2 ms simulated, VRT cells toggling on the "
         "run's timescale plus a swept transient-upset rate. 'latent "
         "LO rows' = rows serving demand at LO-REF while holding a "
         "fault no read has surfaced (sampled every 40 us).");

    const std::vector<double> rates = {0.0, 0.1, 0.4};
    const std::vector<Layer> layers = {Layer::Off, Layer::On,
                                       Layer::OnScrub};
    bench::SweepRunner runner("abl_fault_resilience", opts);
    for (double rate : rates) {
        for (Layer layer : layers) {
            runner.add(strprintf("rate%.1f/%s", rate, layerName(layer)),
                       [rate, layer](const bench::TaskContext &ctx) {
                           return runOne(rate, layer, ctx.seed,
                                         ctx.quick);
                       });
        }
    }
    runner.run();

    TextTable t;
    t.header({"upsets/row/ms", "config", "LO-REF", "reduction",
              "corr", "uncorr", "fallbacks", "pinned", "scrub fails",
              "latent LO rows (avg/peak)"});
    std::size_t idx = 0;
    for (double rate : rates) {
        for (Layer layer : layers) {
            const bench::PointResult &o = runner.results()[idx++];
            t.row({TextTable::num(rate, 1), layerName(layer),
                   TextTable::pct(o.metric("lo_fraction"), 1),
                   TextTable::pct(o.metric("reduction"), 1),
                   TextTable::num(o.metric("corrected"), 0),
                   TextTable::num(o.metric("uncorrectable"), 0),
                   TextTable::num(o.metric("fallbacks"), 0),
                   TextTable::num(o.metric("pinned"), 0),
                   TextTable::num(o.metric("scrub_failed"), 0),
                   TextTable::num(o.metric("avg_latent_lo_rows"), 2) +
                       " / " +
                       TextTable::num(o.metric("peak_latent_lo_rows"),
                                      0)});
        }
    }
    std::printf("%s", t.render().c_str());
    note("With the layer off, ECC events are counted but nothing acts "
         "on them: latent corruption rides at LO-REF until a write "
         "happens by. The layer converts every corrected error into "
         "an immediate demotion and every uncorrectable into a "
         "blanket-HI-REF fallback; the scrub additionally catches "
         "rows whose certification went stale while idle.");
    runner.finish();
    return 0;
}
