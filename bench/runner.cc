#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"

namespace memcon::bench
{

namespace
{

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::printf(
        "usage: %s [options]\n"
        "  --threads N   worker threads (default: hardware concurrency;\n"
        "                results are bit-identical for any N)\n"
        "  --seed S      campaign seed (default 42); every task seed is\n"
        "                derived from it\n"
        "  --quick       tiny configuration (smoke tests)\n"
        "  --repeat N    run the sweep N times and report per-point\n"
        "                wall-clock medians (metrics must not change\n"
        "                across repeats)\n"
        "  --json PATH   write the machine-readable results to PATH\n"
        "                (default BENCH_<artifact>.json)\n"
        "  --no-json     skip the JSON emitter\n"
        "  --help        this text\n",
        argv0);
    std::exit(exit_code);
}

const char *
requireValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("missing value after '%s'", argv[i]);
    return argv[++i];
}

/** Shortest decimal form that round-trips a double (for JSON). */
std::string
jsonNumber(double v)
{
    return strprintf("%.17g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            opts.threads = static_cast<unsigned>(
                std::strtoul(requireValue(argc, argv, i), nullptr, 10));
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.campaignSeed =
                std::strtoull(requireValue(argc, argv, i), nullptr, 10);
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--repeat") == 0) {
            opts.repeat = static_cast<unsigned>(
                std::strtoul(requireValue(argc, argv, i), nullptr, 10));
            fatal_if(opts.repeat == 0, "--repeat must be >= 1");
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opts.writeJson = false;
        } else if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            usage(argv[0], 2);
        }
    }
    return opts;
}

double
PointResult::metric(const std::string &name) const
{
    for (const Metric &m : metrics)
        if (m.name == name)
            return m.value;
    fatal("point '%s' has no metric '%s'", label.c_str(), name.c_str());
}

std::string
resultsDigest(const std::vector<PointResult> &results)
{
    std::string out;
    for (const PointResult &r : results) {
        out += r.label;
        out += '|';
        for (const Metric &m : r.metrics) {
            out += m.name;
            out += '=';
            out += jsonNumber(m.value);
            out += ';';
        }
        out += '\n';
    }
    return out;
}

SweepRunner::SweepRunner(std::string artifact_name, SweepOptions options)
    : artifact(std::move(artifact_name)), opts(std::move(options))
{
}

void
SweepRunner::add(std::string label,
                 std::function<Metrics(const TaskContext &)> fn)
{
    fatal_if(executed, "cannot add points after run()");
    points.push_back(SweepPoint{std::move(label), std::move(fn)});
}

const std::vector<PointResult> &
SweepRunner::run()
{
    if (executed)
        return reduced;
    executed = true;

    resolvedThreads = opts.threads;
    if (resolvedThreads == 0) {
        resolvedThreads = std::thread::hardware_concurrency();
        if (resolvedThreads == 0)
            resolvedThreads = 1;
    }

    std::printf("  campaign: seed=%llu threads=%u points=%zu repeats=%u%s\n",
                static_cast<unsigned long long>(opts.campaignSeed),
                resolvedThreads, points.size(), opts.repeat,
                opts.quick ? " quick" : "");

    reduced.assign(points.size(), PointResult{});
    pointWall.assign(points.size(), 0.0);
    std::vector<std::vector<double>> wall_samples(
        points.size(), std::vector<double>(opts.repeat, 0.0));
    std::string first_digest;
    std::vector<std::future<void>> futures;
    futures.reserve(points.size());

    // lint:allow(wall-clock) - wallClockSeconds is reporting-only
    auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(resolvedThreads);
        // Repeats run back to back on the same pool; each re-executes
        // every point with the same derived seed, so any metric drift
        // across repeats is a determinism bug and is fatal below.
        for (unsigned rep = 0; rep < opts.repeat; ++rep) {
            std::vector<PointResult> batch(points.size());
            futures.clear();
            for (std::size_t i = 0; i < points.size(); ++i) {
                // Each task writes only its own slot; the per-task
                // seed is a pure function of (campaign seed, index),
                // so the reduced vector is invariant under thread
                // count and completion order.
                futures.push_back(
                    pool.submit([this, i, rep, &batch, &wall_samples] {
                        TaskContext ctx;
                        ctx.seed = deriveTaskSeed(opts.campaignSeed, i);
                        ctx.index = i;
                        ctx.quick = opts.quick;
                        // lint:allow(wall-clock) - timing only
                        auto t0 = std::chrono::steady_clock::now();
                        batch[i].label = points[i].label;
                        batch[i].metrics = points[i].run(ctx);
                        wall_samples[i][rep] =
                            std::chrono::duration<double>(
                                // lint:allow(wall-clock)
                                std::chrono::steady_clock::now() - t0)
                                .count();
                    }));
            }
            // Join every task before unwinding: a thrown point must
            // not destroy this repeat's slots while later tasks are
            // still writing into them. The failure propagated is the
            // lowest-index one, independent of completion order.
            std::exception_ptr first_failure;
            for (std::future<void> &f : futures) {
                try {
                    f.get();
                } catch (...) {
                    if (!first_failure)
                        first_failure = std::current_exception();
                }
            }
            if (first_failure)
                std::rethrow_exception(first_failure);
            if (rep == 0) {
                reduced = std::move(batch);
                first_digest = resultsDigest(reduced);
            } else {
                fatal_if(resultsDigest(batch) != first_digest,
                         "repeat %u changed the metrics digest - the "
                         "bench is nondeterministic",
                         rep);
            }
        }
    }
    // lint:allow(wall-clock) - never feeds metrics or seeds
    wallClockSeconds = std::chrono::duration<double>(
                           // lint:allow(wall-clock)
                           std::chrono::steady_clock::now() - start)
                           .count();
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<double> &s = wall_samples[i];
        std::sort(s.begin(), s.end());
        pointWall[i] = s[s.size() / 2];
    }
    return reduced;
}

const std::vector<PointResult> &
SweepRunner::results() const
{
    fatal_if(!executed, "results() before run()");
    return reduced;
}

double
SweepRunner::pointWallSeconds(std::size_t point_index) const
{
    fatal_if(!executed, "pointWallSeconds() before run()");
    fatal_if(point_index >= pointWall.size(),
             "point index %zu out of range", point_index);
    return pointWall[point_index];
}

double
SweepRunner::metric(std::size_t point_index, const std::string &name) const
{
    fatal_if(!executed, "metric() before run()");
    fatal_if(point_index >= reduced.size(), "point index %zu out of range",
             point_index);
    return reduced[point_index].metric(name);
}

void
SweepRunner::finish() const
{
    fatal_if(!executed, "finish() before run()");
    if (!opts.writeJson)
        return;

    std::string path = opts.jsonPath.empty()
                           ? "BENCH_" + artifact + ".json"
                           : opts.jsonPath;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }

    out << "{\n";
    out << "  \"artifact\": \"" << jsonEscape(artifact) << "\",\n";
    out << "  \"campaign_seed\": " << opts.campaignSeed << ",\n";
    out << "  \"threads\": " << resolvedThreads << ",\n";
    out << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    out << "  \"repeats\": " << opts.repeat << ",\n";
    out << "  \"points_total\": " << reduced.size() << ",\n";
    out << "  \"wall_clock_seconds\": " << jsonNumber(wallClockSeconds)
        << ",\n";
    out << "  \"points\": [\n";
    for (std::size_t i = 0; i < reduced.size(); ++i) {
        const PointResult &r = reduced[i];
        out << "    {\"label\": \"" << jsonEscape(r.label)
            << "\", \"wall_seconds\": " << jsonNumber(pointWall[i])
            << ", \"metrics\": {";
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            if (m)
                out << ", ";
            out << '"' << jsonEscape(r.metrics[m].name)
                << "\": " << jsonNumber(r.metrics[m].value);
        }
        out << "}}" << (i + 1 < reduced.size() ? "," : "") << '\n';
    }
    out << "  ]\n";
    out << "}\n";
    out.close();
    std::printf("  wrote %s (%.2f s wall, %u threads)\n", path.c_str(),
                wallClockSeconds, resolvedThreads);
}

} // namespace memcon::bench
