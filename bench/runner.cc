#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/supervisor.hh"
#include "common/thread_pool.hh"

namespace memcon::bench
{

namespace
{

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::printf(
        "usage: %s [options]\n"
        "  --threads N           worker threads (default: hardware\n"
        "                        concurrency; results are bit-identical\n"
        "                        for any N)\n"
        "  --seed S              campaign seed (default 42); every task\n"
        "                        seed is derived from it\n"
        "  --quick               tiny configuration (smoke tests)\n"
        "  --repeat N            run the sweep N times and report\n"
        "                        per-point wall-clock medians (metrics\n"
        "                        must not change across repeats)\n"
        "  --json PATH           write the machine-readable results to\n"
        "                        PATH (default BENCH_<artifact>.json)\n"
        "  --no-json             skip the JSON emitter\n"
        "  --digest-out PATH     write the one-line metrics digest to\n"
        "                        PATH, for cross-run comparison (e.g.\n"
        "                        native vs MEMCON_FORCE_SCALAR=1)\n"
        "  --checkpoint PATH     record each completed task to PATH so\n"
        "                        a killed campaign can be resumed\n"
        "  --resume PATH         resume a campaign from its checkpoint;\n"
        "                        replayed tasks are not re-run and the\n"
        "                        final metrics are bit-identical to an\n"
        "                        uninterrupted run\n"
        "  --task-timeout-ms N   arm the hung-task watchdog: a task\n"
        "                        over its deadline (max of N and 8x the\n"
        "                        median completed-task wall clock) is\n"
        "                        abandoned and requeued\n"
        "  --task-retries N      requeues granted per abandoned task\n"
        "                        (default 2) before the campaign fails\n"
        "  --address-map NAME    dram::AddressMap preset for benches\n"
        "                        that shard by bank (e.g. identity,\n"
        "                        paper-ddr3-8bank, zen-ddr4-64bank);\n"
        "                        empty keeps the bench's default\n"
        "  --validate PATH       check a BENCH_*.json or checkpoint for\n"
        "                        torn/corrupt content and exit\n"
        "  --help                this text\n"
        "exit codes: 0 ok, 1 fatal, %d usage, %d invalid artifact,\n"
        "            %d interrupted (checkpoint flushed, resumable),\n"
        "            %d watchdog gave up on a hung task\n",
        argv0, kExitUsage, kExitInvalidArtifact, kExitInterrupted,
        kExitWatchdog);
    std::exit(exit_code);
}

const char *
requireValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("missing value after '%s'", argv[i]);
    return argv[++i];
}

/** Shortest decimal form that round-trips a double (for JSON). */
std::string
jsonNumber(double v)
{
    return strprintf("%.17g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** --validate: classify the file by its magic and check it. */
[[noreturn]] void
validateAndExit(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        std::exit(kExitInvalidArtifact);
    }
    std::string magic(11, '\0');
    in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
    magic.resize(static_cast<std::size_t>(in.gcount()));
    in.close();

    const bool is_ckpt = magic.rfind("MEMCON-CKPT", 0) == 0;
    std::string reason;
    const bool ok = is_ckpt
                        ? ckpt::validateCheckpointFile(path, &reason)
                        : ckpt::validateArtifactFile(path, &reason);
    if (ok) {
        std::printf("%s: valid %s\n", path,
                    is_ckpt ? "checkpoint" : "artifact");
        std::exit(0);
    }
    std::fprintf(stderr, "%s: INVALID %s: %s\n", path,
                 is_ckpt ? "checkpoint" : "artifact", reason.c_str());
    std::exit(kExitInvalidArtifact);
}

/**
 * Campaign interrupt flag. The handler only sets it; the runner's
 * task wrappers poll it to stop admission, and run() turns it into a
 * drained, checkpoint-flushed kExitInterrupted exit. A lock-free
 * std::atomic<int> is both async-signal-safe (the store is a single
 * instruction, no locks) and a proper cross-thread synchronisation
 * point for the worker threads that poll it — volatile sig_atomic_t
 * would only cover the signal-vs-interrupted-thread half.
 */
std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free store");

extern "C" void
campaignSignalHandler(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

/** Installs SIGINT/SIGTERM graceful-shutdown handlers for the span
 *  of a campaign; restores the previous handlers on scope exit. */
class ScopedCampaignSignals
{
  public:
    ScopedCampaignSignals()
    {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = campaignSignalHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;
        sigaction(SIGINT, &sa, &oldInt);
        sigaction(SIGTERM, &sa, &oldTerm);
    }

    ~ScopedCampaignSignals()
    {
        sigaction(SIGINT, &oldInt, nullptr);
        sigaction(SIGTERM, &oldTerm, nullptr);
    }

  private:
    struct sigaction oldInt, oldTerm;
};

} // namespace

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            opts.threads = static_cast<unsigned>(
                std::strtoul(requireValue(argc, argv, i), nullptr, 10));
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.campaignSeed =
                std::strtoull(requireValue(argc, argv, i), nullptr, 10);
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(arg, "--repeat") == 0) {
            opts.repeat = static_cast<unsigned>(
                std::strtoul(requireValue(argc, argv, i), nullptr, 10));
            fatal_if(opts.repeat == 0, "--repeat must be >= 1");
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opts.writeJson = false;
        } else if (std::strcmp(arg, "--digest-out") == 0) {
            opts.digestOutPath = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--checkpoint") == 0) {
            opts.checkpointPath = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--resume") == 0) {
            opts.resumePath = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--task-timeout-ms") == 0) {
            opts.taskTimeoutMs =
                std::strtod(requireValue(argc, argv, i), nullptr);
            fatal_if(opts.taskTimeoutMs <= 0.0,
                     "--task-timeout-ms must be > 0");
        } else if (std::strcmp(arg, "--address-map") == 0) {
            opts.addressMap = requireValue(argc, argv, i);
        } else if (std::strcmp(arg, "--task-retries") == 0) {
            opts.taskRetries = static_cast<unsigned>(
                std::strtoul(requireValue(argc, argv, i), nullptr, 10));
        } else if (std::strcmp(arg, "--validate") == 0) {
            validateAndExit(requireValue(argc, argv, i));
        } else if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            usage(argv[0], kExitUsage);
        }
    }
    return opts;
}

double
PointResult::metric(const std::string &name) const
{
    for (const Metric &m : metrics)
        if (m.name == name)
            return m.value;
    fatal("point '%s' has no metric '%s'", label.c_str(), name.c_str());
}

std::string
metricsLine(const Metrics &metrics)
{
    std::string out;
    for (const Metric &m : metrics) {
        out += m.name;
        out += '=';
        out += jsonNumber(m.value);
        out += ';';
    }
    return out;
}

Metrics
parseMetricsLine(const std::string &line)
{
    Metrics out;
    std::size_t pos = 0;
    while (pos < line.size()) {
        std::size_t semi = line.find(';', pos);
        fatal_if(semi == std::string::npos,
                 "malformed metrics record '%s'", line.c_str());
        std::string item = line.substr(pos, semi - pos);
        // The value (%.17g) never contains '=', so the last '=' is
        // the separator even if a metric name ever carried one.
        std::size_t eq = item.rfind('=');
        fatal_if(eq == std::string::npos,
                 "malformed metrics item '%s'", item.c_str());
        const char *value = item.c_str() + eq + 1;
        char *end = nullptr;
        double v = std::strtod(value, &end);
        fatal_if(end == value || *end != '\0',
                 "malformed metric value in '%s'", item.c_str());
        out.push_back(Metric{item.substr(0, eq), v});
        pos = semi + 1;
    }
    return out;
}

std::string
resultsDigest(const std::vector<PointResult> &results)
{
    std::string out;
    for (const PointResult &r : results) {
        out += r.label;
        out += '|';
        out += metricsLine(r.metrics);
        out += '\n';
    }
    return out;
}

SweepRunner::SweepRunner(std::string artifact_name, SweepOptions options)
    : artifact(std::move(artifact_name)), opts(std::move(options))
{
}

void
SweepRunner::add(std::string label,
                 std::function<Metrics(const TaskContext &)> fn)
{
    fatal_if(executed, "cannot add points after run()");
    points.push_back(SweepPoint{std::move(label), std::move(fn)});
}

const std::vector<PointResult> &
SweepRunner::run()
{
    if (executed)
        return reduced;
    executed = true;

    const bool checkpointing =
        !opts.checkpointPath.empty() || !opts.resumePath.empty();
    fatal_if(checkpointing && opts.repeat != 1,
             "--repeat is incompatible with --checkpoint/--resume");

    resolvedThreads = opts.threads;
    if (resolvedThreads == 0) {
        resolvedThreads = std::thread::hardware_concurrency();
        if (resolvedThreads == 0)
            resolvedThreads = 1;
    }

    // The fingerprint that binds checkpoints to this campaign. Thread
    // count is absent on purpose: §9 makes it metrics-irrelevant, so
    // interrupt at 8 threads and resume at 1 freely.
    ckpt::CampaignFingerprint fp;
    fp.artifact = artifact;
    fp.campaignSeed = opts.campaignSeed;
    fp.pointCount = points.size();
    fp.quick = opts.quick;
    {
        std::string joined;
        for (const SweepPoint &p : points) {
            joined += p.label;
            joined += '\n';
        }
        fp.labelsCrc = ckpt::crc32(joined);
    }

    reduced.assign(points.size(), PointResult{});
    pointWall.assign(points.size(), 0.0);
    std::vector<char> have(points.size(), 0);
    std::vector<ckpt::TaskRecord> carried;

    if (!opts.resumePath.empty()) {
        ckpt::LoadedCheckpoint loaded;
        std::string reason;
        fatal_if(!ckpt::loadCheckpoint(opts.resumePath, &loaded, &reason),
                 "cannot resume from '%s': %s", opts.resumePath.c_str(),
                 reason.c_str());
        try {
            ckpt::requireFingerprintMatch(loaded.fingerprint, fp);
        } catch (const ckpt::FingerprintMismatch &e) {
            fatal("checkpoint '%s' belongs to a different campaign: %s",
                  opts.resumePath.c_str(), e.what());
        }
        for (const ckpt::TaskRecord &rec : loaded.records) {
            fatal_if(rec.index >= points.size(),
                     "checkpoint record for task %llu out of range",
                     static_cast<unsigned long long>(rec.index));
            if (have[rec.index])
                continue;
            reduced[rec.index].label = points[rec.index].label;
            reduced[rec.index].metrics = parseMetricsLine(rec.metrics);
            have[rec.index] = 1;
            carried.push_back(rec);
            ++resumedCount;
        }
    }

    std::unique_ptr<ckpt::CheckpointWriter> writer;
    std::mutex ckpt_mutex;
    if (checkpointing) {
        const std::string &path = !opts.checkpointPath.empty()
                                      ? opts.checkpointPath
                                      : opts.resumePath;
        writer = std::make_unique<ckpt::CheckpointWriter>(
            path, fp, std::move(carried));
    }

    std::unique_ptr<Supervisor> sup;
    if (opts.taskTimeoutMs > 0.0) {
        SupervisorConfig scfg;
        scfg.floorTimeoutMs = opts.taskTimeoutMs;
        scfg.maxAttempts = 1 + opts.taskRetries;
        sup = std::make_unique<Supervisor>(scfg, points.size());
    }

    std::printf("  campaign: seed=%llu threads=%u points=%zu repeats=%u%s\n",
                static_cast<unsigned long long>(opts.campaignSeed),
                resolvedThreads, points.size(), opts.repeat,
                opts.quick ? " quick" : "");
    if (resumedCount > 0)
        std::printf("  resume: replayed %zu/%zu tasks from %s\n",
                    resumedCount, points.size(), opts.resumePath.c_str());
    if (sup)
        std::printf("  watchdog: task deadline >= %.0f ms, %u attempts "
                    "per task\n",
                    opts.taskTimeoutMs, 1 + opts.taskRetries);

    ScopedCampaignSignals signal_guard;
    g_signal = 0;

    std::string first_digest;
    std::vector<std::vector<double>> wall_samples(
        points.size(), std::vector<double>(opts.repeat, 0.0));
    std::vector<std::future<void>> futures;
    futures.reserve(points.size());
    Supervisor *supervisor = sup.get();
    ckpt::CheckpointWriter *ckpt_writer = writer.get();
    bool stopped_early = false;

    // lint:allow(wall-clock) - wallClockSeconds is reporting-only
    auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(resolvedThreads);
        // Repeats run back to back on the same pool; each re-executes
        // every point with the same derived seed, so any metric drift
        // across repeats is a determinism bug and is fatal below.
        for (unsigned rep = 0; rep < opts.repeat; ++rep) {
            std::vector<PointResult> batch(points.size());
            // Tasks replayed from the checkpoint are already reduced;
            // seed their slots so the digest covers the whole sweep.
            for (std::size_t i = 0; i < points.size(); ++i)
                if (have[i])
                    batch[i] = reduced[i];
            futures.clear();
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (have[i])
                    continue;
                // Each task writes only its own slot; the per-task
                // seed is a pure function of (campaign seed, index),
                // so the reduced vector is invariant under thread
                // count and completion order. Admission stops as soon
                // as a shutdown signal or a watchdog campaign failure
                // is observed; in-flight tasks drain normally.
                futures.push_back(pool.submit([this, i, rep, &batch,
                                               &wall_samples, supervisor,
                                               ckpt_writer,
                                               &ckpt_mutex] {
                    const unsigned max_attempts =
                        supervisor ? 1 + opts.taskRetries : 1;
                    for (unsigned attempt = 0; attempt < max_attempts;
                         ++attempt) {
                        if (g_signal ||
                            (supervisor && supervisor->campaignFailed()))
                            return;
                        TaskContext ctx;
                        ctx.seed = deriveTaskSeed(opts.campaignSeed, i);
                        ctx.index = i;
                        ctx.quick = opts.quick;
                        // lint:allow(wall-clock) - timing only
                        auto t0 = std::chrono::steady_clock::now();
                        if (supervisor)
                            supervisor->beginTask(i, points[i].label,
                                                  attempt, ctx.token);
                        try {
                            batch[i].label = points[i].label;
                            batch[i].metrics = points[i].run(ctx);
                            double wall =
                                std::chrono::duration<double>(
                                    // lint:allow(wall-clock)
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
                            if (supervisor)
                                supervisor->endTask(i, true,
                                                    wall * 1000.0);
                            wall_samples[i][rep] = wall;
                            if (ckpt_writer) {
                                std::lock_guard<std::mutex> lock(
                                    ckpt_mutex);
                                ckpt_writer->append(
                                    {i, metricsLine(batch[i].metrics)});
                                if (opts.checkpointHook)
                                    opts.checkpointHook(
                                        ckpt_writer->recordCount());
                            }
                            return;
                        } catch (const TaskCancelled &) {
                            if (!supervisor)
                                throw;
                            supervisor->endTask(i, false, 0.0);
                            if (attempt + 1 < max_attempts)
                                warn("task %zu ('%s') abandoned on "
                                     "attempt %u/%u; requeueing",
                                     i, points[i].label.c_str(),
                                     attempt + 1, max_attempts);
                        } catch (...) {
                            if (supervisor)
                                supervisor->endTask(i, false, 0.0);
                            throw;
                        }
                    }
                    supervisor->reportExhausted(i, points[i].label);
                }));
            }
            // Join every task before unwinding: a thrown point must
            // not destroy this repeat's slots while later tasks are
            // still writing into them. The failure propagated is the
            // lowest-index one, independent of completion order.
            std::exception_ptr first_failure;
            for (std::future<void> &f : futures) {
                try {
                    f.get();
                } catch (...) {
                    if (!first_failure)
                        first_failure = std::current_exception();
                }
            }
            if (first_failure)
                std::rethrow_exception(first_failure);
            if (g_signal || (supervisor && supervisor->campaignFailed())) {
                stopped_early = true;
                break;
            }
            if (rep == 0) {
                reduced = std::move(batch);
                first_digest = resultsDigest(reduced);
            } else {
                fatal_if(resultsDigest(batch) != first_digest,
                         "repeat %u changed the metrics digest - the "
                         "bench is nondeterministic",
                         rep);
            }
        }
    }
    // lint:allow(wall-clock) - never feeds metrics or seeds
    wallClockSeconds = std::chrono::duration<double>(
                           // lint:allow(wall-clock)
                           std::chrono::steady_clock::now() - start)
                           .count();

    // Join the watchdog before any exit path so no monitor thread can
    // outlive the campaign (TSan-visible thread leak otherwise).
    bool watchdog_failed = false;
    std::string watchdog_reason;
    if (sup) {
        watchdog_failed = sup->campaignFailed();
        watchdog_reason = sup->failureReason();
        sup.reset();
    }
    if (watchdog_failed) {
        std::size_t done = 0;
        if (writer)
            done = writer->recordCount();
        std::fflush(stdout);
        std::fprintf(stderr,
                     "campaign failed by watchdog: %s "
                     "(%zu/%zu tasks checkpointed); exiting with "
                     "%s (%d)\n",
                     watchdog_reason.c_str(), done, points.size(),
                     kWatchdogExitCodeName, kExitWatchdog);
        std::exit(kExitWatchdog);
    }
    if (stopped_early) {
        std::fflush(stdout);
        if (writer)
            std::fprintf(stderr,
                         "campaign interrupted by signal %d: %zu/%zu "
                         "tasks checkpointed to %s; resume with "
                         "--resume %s\n",
                         static_cast<int>(g_signal),
                         writer->recordCount(), points.size(),
                         writer->filePath().c_str(),
                         writer->filePath().c_str());
        else
            std::fprintf(stderr,
                         "campaign interrupted by signal %d "
                         "(no --checkpoint given, progress lost)\n",
                         static_cast<int>(g_signal));
        std::exit(kExitInterrupted);
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<double> &s = wall_samples[i];
        std::sort(s.begin(), s.end());
        pointWall[i] = s[s.size() / 2];
    }
    return reduced;
}

const std::vector<PointResult> &
SweepRunner::results() const
{
    fatal_if(!executed, "results() before run()");
    return reduced;
}

double
SweepRunner::pointWallSeconds(std::size_t point_index) const
{
    fatal_if(!executed, "pointWallSeconds() before run()");
    fatal_if(point_index >= pointWall.size(),
             "point index %zu out of range", point_index);
    return pointWall[point_index];
}

double
SweepRunner::metric(std::size_t point_index, const std::string &name) const
{
    fatal_if(!executed, "metric() before run()");
    fatal_if(point_index >= reduced.size(), "point index %zu out of range",
             point_index);
    return reduced[point_index].metric(name);
}

void
SweepRunner::finish() const
{
    fatal_if(!executed, "finish() before run()");

    if (!opts.digestOutPath.empty()) {
        std::ofstream dout(opts.digestOutPath,
                           std::ios::binary | std::ios::trunc);
        fatal_if(!dout, "cannot write digest to %s",
                 opts.digestOutPath.c_str());
        dout << resultsDigest(reduced) << '\n';
    }

    if (!opts.writeJson)
        return;

    std::string path = opts.jsonPath.empty()
                           ? "BENCH_" + artifact + ".json"
                           : opts.jsonPath;

    std::string out;
    out += "{\n";
    out += "  \"artifact\": \"" + jsonEscape(artifact) + "\",\n";
    out += "  \"campaign_seed\": " +
           strprintf("%llu",
                     static_cast<unsigned long long>(opts.campaignSeed)) +
           ",\n";
    out += "  \"threads\": " + strprintf("%u", resolvedThreads) + ",\n";
    out += std::string("  \"quick\": ") +
           (opts.quick ? "true" : "false") + ",\n";
    out += "  \"repeats\": " + strprintf("%u", opts.repeat) + ",\n";
    out += "  \"points_total\": " + strprintf("%zu", reduced.size()) +
           ",\n";
    out += "  \"tasks_resumed\": " + strprintf("%zu", resumedCount) +
           ",\n";
    out += "  \"wall_clock_seconds\": " + jsonNumber(wallClockSeconds) +
           ",\n";
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < reduced.size(); ++i) {
        const PointResult &r = reduced[i];
        out += "    {\"label\": \"" + jsonEscape(r.label) +
               "\", \"wall_seconds\": " + jsonNumber(pointWall[i]) +
               ", \"metrics\": {";
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            if (m)
                out += ", ";
            out += '"' + jsonEscape(r.metrics[m].name) +
                   "\": " + jsonNumber(r.metrics[m].value);
        }
        out += "}}";
        out += (i + 1 < reduced.size() ? "," : "");
        out += '\n';
    }
    out += "  ],\n";

    // Atomic write + checksum footer: a reader either sees the whole
    // artifact (footer validates) or, after a crash, the previous one
    // - never a torn file that parses as valid (DESIGN.md §15).
    std::string error;
    if (!ckpt::atomicWriteFile(path, out + ckpt::artifactFooter(out),
                               &error)) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     error.c_str());
        return;
    }
    std::printf("  wrote %s (%.2f s wall, %u threads)\n", path.c_str(),
                wallClockSeconds, resolvedThreads);
}

} // namespace memcon::bench
