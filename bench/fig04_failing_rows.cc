/**
 * @file
 * Regenerates Figure 4: the percentage of rows that exhibit
 * data-dependent failures with each SPEC CPU2006 benchmark's memory
 * content, versus the exhaustive any-content profile ("ALL FAIL").
 *
 * Methodology mirrors Section 5: per benchmark, content snapshots
 * are taken every 100M instructions (content epochs), the module is
 * filled with the program's data, held idle for the 328 ms-equivalent
 * interval, and read back. We report the mean over 5 epochs (0.5B
 * instructions) with min/max, as the paper's error bars do.
 */

#include <algorithm>

#include "bench_util.hh"
#include "common/table.hh"
#include "failure/content.hh"
#include "failure/model.hh"
#include "failure/tester.hh"

using namespace memcon;
using namespace memcon::failure;

int
main()
{
    bench::banner("Figure 4",
                  "% of rows failing: program content vs ALL FAIL");
    note("Paper: 0.38%-5.6% with program content vs 13.5% ALL FAIL "
         "(2.4x-35.2x fewer).");

    FailureModelParams params;
    params.nominalIntervalMs = 328.0;
    params.seed = 2017;
    const std::uint64_t rows = 1 << 15;
    FailureModel model(params, rows, 1 << 16);
    DramTester tester(model);

    TextTable table;
    table.header({"benchmark", "failing-rows", "min", "max",
                  "visible-bits/epoch"});

    double lowest = 1.0, highest = 0.0;
    for (const auto &persona : ContentPersona::specSuite()) {
        double sum = 0.0, mn = 1.0, mx = 0.0;
        std::uint64_t bits = 0;
        const unsigned epochs = 5; // 0.5 B instructions
        for (unsigned e = 0; e < epochs; ++e) {
            ProgramContent content(persona, e);
            double frac =
                tester.testWithContent(content, 328.0).failingRowFraction();
            sum += frac;
            mn = std::min(mn, frac);
            mx = std::max(mx, frac);
            // The bit-parallel pass prices severity, not just row
            // verdicts: how many visible bits the controller would
            // actually see flip under this content (DESIGN.md §19).
            bits += tester.testWithContentBlock(content, 328.0)
                        .failingBits;
        }
        double mean = sum / epochs;
        lowest = std::min(lowest, mean);
        highest = std::max(highest, mean);
        table.row({persona.name, TextTable::pct(mean, 2),
                   TextTable::pct(mn, 2), TextTable::pct(mx, 2),
                   TextTable::num(
                       static_cast<double>(bits) / epochs, 1)});
    }

    double all_fail =
        tester.exhaustivePhysicalTest(328.0).failingRowFraction();
    table.row({"ALL FAIL", TextTable::pct(all_fail, 2), "", ""});
    std::printf("%s", table.render().c_str());

    std::printf("\n");
    note(strprintf("content range: %.2f%% - %.2f%%  (paper: 0.38%% - "
                   "5.6%%)",
                   lowest * 100.0, highest * 100.0));
    note(strprintf("ALL FAIL: %.2f%%  (paper: 13.5%%)", all_fail * 100.0));
    note(strprintf("ratio: %.1fx - %.1fx fewer failures with program "
                   "content (paper: 2.4x - 35.2x)",
                   all_fail / highest, all_fail / lowest));
    return 0;
}
