/**
 * @file
 * The deterministic parallel experiment runner the figure/table
 * benches are built on.
 *
 * A bench is expressed as a vector of independent SweepPoint tasks.
 * Each task receives a TaskContext whose seed is derived purely from
 * (campaign seed, task index) - see deriveTaskSeed() - and returns an
 * ordered list of named metrics. The runner executes the points on a
 * fixed ThreadPool and reduces the results in task-index order, so
 * the reduced metrics (and therefore every table and JSON file a
 * bench emits) are bit-identical for any --threads value, including
 * 1. Wall-clock time and thread count are recorded but excluded from
 * the determinism contract.
 *
 * Alongside the human-readable banner/table output, finish() writes
 * BENCH_<artifact>.json - campaign config, per-point metrics,
 * wall-clock, thread count - so successive revisions can track the
 * perf and accuracy trajectory of every artifact mechanically. The
 * file is written atomically and ends with a checksum footer
 * (common/checkpoint.hh), so a killed run can never leave a
 * silently-truncated artifact; `--validate PATH` checks one.
 *
 * Campaigns are additionally crash-safe (DESIGN.md §15):
 *
 *  * `--checkpoint PATH` records every completed task (index ->
 *    metrics, CRC-sealed, atomically rewritten) as it finishes;
 *    `--resume PATH` validates the checkpoint's campaign fingerprint,
 *    replays the recorded tasks without re-running them, and executes
 *    only the missing ones - the reduced digest is bit-identical to
 *    an uninterrupted run (the §9 contract extended across process
 *    death).
 *  * SIGINT/SIGTERM stop task admission, drain in-flight tasks,
 *    flush the checkpoint, and exit with kExitInterrupted.
 *  * `--task-timeout-ms` arms a hung-task watchdog
 *    (common/supervisor.hh): a task exceeding its deadline is asked
 *    to abandon via its CancelToken and requeued up to --task-retries
 *    times; exhaustion fails the campaign with kExitWatchdog.
 */

#ifndef MEMCON_BENCH_RUNNER_HH
#define MEMCON_BENCH_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/supervisor.hh"
#include "common/thread_pool.hh"

namespace memcon::bench
{

/**
 * Documented campaign exit codes (the full table lives in DESIGN.md
 * §15). 0 is success and 1 the generic fatal(); the supervisor layer
 * adds:
 */
inline constexpr int kExitUsage = 2;            //!< bad CLI arguments
inline constexpr int kExitInvalidArtifact = 3;  //!< --validate failed
inline constexpr int kExitInterrupted = 75;     //!< signal; resumable

/** Hung task gave out; the value is owned by supervisor.hh. */
inline constexpr int kExitWatchdog = kWatchdogExitCode;

/** Campaign-level options shared by every ported bench binary. */
struct SweepOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /** Campaign seed; every task seed is derived from it. */
    std::uint64_t campaignSeed = 42;

    /** Tiny-config mode for smoke tests (each bench scales itself). */
    bool quick = false;

    /** Output path; empty means BENCH_<artifact>.json in the CWD. */
    std::string jsonPath;

    /** Disable the JSON emitter (unit tests, ad-hoc runs). */
    bool writeJson = true;

    /**
     * Write the final metrics digest (one line) to this path, so CI
     * can `cmp` runs - e.g. native vs MEMCON_FORCE_SCALAR=1 - without
     * parsing JSON. Empty disables it.
     */
    std::string digestOutPath;

    /**
     * Execute the whole sweep this many times and report per-point
     * wall-clock medians, so timings are stable enough to compare
     * across revisions. Metrics must be identical on every repeat
     * (the runner fatals on a digest mismatch - a repeat-sensitive
     * bench is a determinism bug, not noise). Incompatible with
     * checkpointing.
     */
    unsigned repeat = 1;

    /** Write a per-task checkpoint here; empty disables it. */
    std::string checkpointPath;

    /**
     * Resume from this checkpoint: its fingerprint must match the
     * campaign, recorded tasks are replayed from it, and new
     * completions keep appending to it (unless checkpointPath names
     * a different file).
     */
    std::string resumePath;

    /**
     * Hung-task watchdog deadline floor in ms; 0 leaves the watchdog
     * off. The effective per-task deadline adapts upward to 8x the
     * median completed-task wall clock.
     */
    double taskTimeoutMs = 0.0;

    /** Requeues granted to a task the watchdog abandoned. */
    unsigned taskRetries = 2;

    /**
     * dram::AddressMap preset name for benches that shard the engine
     * by bank (--address-map); empty keeps the bench's own default.
     * A plain string here - the runner stays dram-agnostic; benches
     * resolve it via dram::AddressMap::preset() (fatal on a typo,
     * with the known names in the message).
     */
    std::string addressMap;

    /**
     * Test hook: called (under the checkpoint lock) after each
     * checkpoint record lands on disk, with the record count so far.
     * The kill-resume tests use it to die at a deterministic point.
     */
    std::function<void(std::size_t)> checkpointHook;
};

/**
 * Parse the common sweep flags: --threads N, --seed S, --quick,
 * --repeat N, --json PATH, --no-json, --checkpoint PATH,
 * --resume PATH, --task-timeout-ms N, --task-retries N,
 * --validate PATH, --help. Unknown arguments are fatal so a typo
 * cannot silently fall back to defaults. --validate checks a
 * BENCH_*.json or checkpoint file and exits immediately (0 valid,
 * kExitInvalidArtifact torn/corrupt).
 */
SweepOptions parseSweepArgs(int argc, char **argv);

/** What a SweepPoint task is given to run with. */
struct TaskContext
{
    std::uint64_t seed; //!< deriveTaskSeed(campaignSeed, index)
    std::size_t index;  //!< the task's position in the sweep
    bool quick;         //!< shrink the config for smoke testing

    /**
     * Cooperative cancellation: long-running points should call
     * token.throwIfCancelled() at loop boundaries so the watchdog
     * can abandon and requeue them. Ignoring it is safe - the task
     * just cannot be reclaimed before it returns.
     */
    CancelToken token;
};

/** One named measurement produced by a sweep point. */
struct Metric
{
    std::string name;
    double value;
};

using Metrics = std::vector<Metric>;

/** One independent unit of work in a sweep. */
struct SweepPoint
{
    std::string label;
    std::function<Metrics(const TaskContext &)> run;
};

/** A completed point: its label plus the metrics it returned. */
struct PointResult
{
    std::string label;
    Metrics metrics;

    /** Look up a metric by name; fatal if absent. */
    double metric(const std::string &name) const;
};

/**
 * Canonical serialization of reduced results ("label|name=value;..."
 * with %.17g doubles, one line per point). Two campaigns are
 * bit-identical iff their digests are byte-identical; the determinism
 * tests compare digests across thread counts.
 */
std::string resultsDigest(const std::vector<PointResult> &results);

/**
 * Canonical serialization of one point's metrics ("name=value;"
 * with %.17g doubles) - the checkpoint record payload. %.17g
 * round-trips doubles exactly, so metrics replayed from a checkpoint
 * are bit-identical to freshly computed ones.
 */
std::string metricsLine(const Metrics &metrics);

/** Parse a metricsLine() payload back; fatal on malformed input. */
Metrics parseMetricsLine(const std::string &line);

class SweepRunner
{
  public:
    /**
     * @param artifact  bench identity, e.g. "fig14_refresh_reduction";
     *                  names the emitted BENCH_<artifact>.json
     */
    SweepRunner(std::string artifact, SweepOptions options);

    /** Append a sweep point; tasks run in submission (index) order. */
    void add(std::string label,
             std::function<Metrics(const TaskContext &)> fn);

    std::size_t numPoints() const { return points.size(); }

    /**
     * Execute every point on the pool and reduce in task-index order.
     * Prints the campaign line (seed, threads, points) so any run is
     * reproducible from its own output. If tasks threw, the exception
     * of the lowest-index failing task is rethrown. Runs once;
     * subsequent calls return the same results.
     *
     * Does not return if the campaign was interrupted by a signal
     * (exits kExitInterrupted after draining and flushing the
     * checkpoint) or failed by the watchdog (exits kExitWatchdog).
     */
    const std::vector<PointResult> &run();

    /** Results of run(); fatal if called before run(). */
    const std::vector<PointResult> &results() const;

    /** Metric of one point, by index and name; fatal on mismatch. */
    double metric(std::size_t point_index, const std::string &name) const;

    /**
     * Write BENCH_<artifact>.json (unless --no-json) and print where
     * it went. Call after rendering the human-readable output. The
     * write is atomic and the file ends with a checksum footer.
     */
    void finish() const;

    const SweepOptions &options() const { return opts; }
    const std::string &artifactName() const { return artifact; }

    /** Worker threads the campaign actually used. */
    unsigned threadsUsed() const { return resolvedThreads; }

    /** Tasks replayed from the resume checkpoint instead of run. */
    std::size_t tasksResumed() const { return resumedCount; }

    /**
     * Wall-clock of the parallel section, summed over repeats (not
     * deterministic).
     */
    double wallSeconds() const { return wallClockSeconds; }

    /**
     * Median across repeats of one point's own wall-clock seconds
     * (not deterministic; excluded from digests and metrics; 0 for
     * tasks replayed from a checkpoint).
     */
    double pointWallSeconds(std::size_t point_index) const;

  private:
    std::string artifact;
    SweepOptions opts;
    std::vector<SweepPoint> points;
    std::vector<PointResult> reduced;
    std::vector<double> pointWall;
    unsigned resolvedThreads = 1;
    std::size_t resumedCount = 0;
    double wallClockSeconds = 0.0;
    bool executed = false;
};

} // namespace memcon::bench

#endif // MEMCON_BENCH_RUNNER_HH
