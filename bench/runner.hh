/**
 * @file
 * The deterministic parallel experiment runner the figure/table
 * benches are built on.
 *
 * A bench is expressed as a vector of independent SweepPoint tasks.
 * Each task receives a TaskContext whose seed is derived purely from
 * (campaign seed, task index) - see deriveTaskSeed() - and returns an
 * ordered list of named metrics. The runner executes the points on a
 * fixed ThreadPool and reduces the results in task-index order, so
 * the reduced metrics (and therefore every table and JSON file a
 * bench emits) are bit-identical for any --threads value, including
 * 1. Wall-clock time and thread count are recorded but excluded from
 * the determinism contract.
 *
 * Alongside the human-readable banner/table output, finish() writes
 * BENCH_<artifact>.json - campaign config, per-point metrics,
 * wall-clock, thread count - so successive revisions can track the
 * perf and accuracy trajectory of every artifact mechanically.
 */

#ifndef MEMCON_BENCH_RUNNER_HH
#define MEMCON_BENCH_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace memcon::bench
{

/** Campaign-level options shared by every ported bench binary. */
struct SweepOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /** Campaign seed; every task seed is derived from it. */
    std::uint64_t campaignSeed = 42;

    /** Tiny-config mode for smoke tests (each bench scales itself). */
    bool quick = false;

    /** Output path; empty means BENCH_<artifact>.json in the CWD. */
    std::string jsonPath;

    /** Disable the JSON emitter (unit tests, ad-hoc runs). */
    bool writeJson = true;

    /**
     * Execute the whole sweep this many times and report per-point
     * wall-clock medians, so timings are stable enough to compare
     * across revisions. Metrics must be identical on every repeat
     * (the runner fatals on a digest mismatch - a repeat-sensitive
     * bench is a determinism bug, not noise).
     */
    unsigned repeat = 1;
};

/**
 * Parse the common sweep flags: --threads N, --seed S, --quick,
 * --repeat N, --json PATH, --no-json, --help. Unknown arguments are
 * fatal so a typo cannot silently fall back to defaults.
 */
SweepOptions parseSweepArgs(int argc, char **argv);

/** What a SweepPoint task is given to run with. */
struct TaskContext
{
    std::uint64_t seed; //!< deriveTaskSeed(campaignSeed, index)
    std::size_t index;  //!< the task's position in the sweep
    bool quick;         //!< shrink the config for smoke testing
};

/** One named measurement produced by a sweep point. */
struct Metric
{
    std::string name;
    double value;
};

using Metrics = std::vector<Metric>;

/** One independent unit of work in a sweep. */
struct SweepPoint
{
    std::string label;
    std::function<Metrics(const TaskContext &)> run;
};

/** A completed point: its label plus the metrics it returned. */
struct PointResult
{
    std::string label;
    Metrics metrics;

    /** Look up a metric by name; fatal if absent. */
    double metric(const std::string &name) const;
};

/**
 * Canonical serialization of reduced results ("label|name=value;..."
 * with %.17g doubles, one line per point). Two campaigns are
 * bit-identical iff their digests are byte-identical; the determinism
 * tests compare digests across thread counts.
 */
std::string resultsDigest(const std::vector<PointResult> &results);

class SweepRunner
{
  public:
    /**
     * @param artifact  bench identity, e.g. "fig14_refresh_reduction";
     *                  names the emitted BENCH_<artifact>.json
     */
    SweepRunner(std::string artifact, SweepOptions options);

    /** Append a sweep point; tasks run in submission (index) order. */
    void add(std::string label,
             std::function<Metrics(const TaskContext &)> fn);

    std::size_t numPoints() const { return points.size(); }

    /**
     * Execute every point on the pool and reduce in task-index order.
     * Prints the campaign line (seed, threads, points) so any run is
     * reproducible from its own output. If tasks threw, the exception
     * of the lowest-index failing task is rethrown. Runs once;
     * subsequent calls return the same results.
     */
    const std::vector<PointResult> &run();

    /** Results of run(); fatal if called before run(). */
    const std::vector<PointResult> &results() const;

    /** Metric of one point, by index and name; fatal on mismatch. */
    double metric(std::size_t point_index, const std::string &name) const;

    /**
     * Write BENCH_<artifact>.json (unless --no-json) and print where
     * it went. Call after rendering the human-readable output.
     */
    void finish() const;

    const SweepOptions &options() const { return opts; }
    const std::string &artifactName() const { return artifact; }

    /** Worker threads the campaign actually used. */
    unsigned threadsUsed() const { return resolvedThreads; }

    /**
     * Wall-clock of the parallel section, summed over repeats (not
     * deterministic).
     */
    double wallSeconds() const { return wallClockSeconds; }

    /**
     * Median across repeats of one point's own wall-clock seconds
     * (not deterministic; excluded from digests and metrics).
     */
    double pointWallSeconds(std::size_t point_index) const;

  private:
    std::string artifact;
    SweepOptions opts;
    std::vector<SweepPoint> points;
    std::vector<PointResult> reduced;
    std::vector<double> pointWall;
    unsigned resolvedThreads = 1;
    double wallClockSeconds = 0.0;
    bool executed = false;
};

} // namespace memcon::bench

#endif // MEMCON_BENCH_RUNNER_HH
