/**
 * @file
 * Regenerates Figure 6: accumulated cost (latency) over time for the
 * HI-REF configuration vs MEMCON in both test modes, and the derived
 * MinWriteInterval values. Reproduces the appendix arithmetic
 * exactly: 39 ns per refresh, 1068/1602 ns per test, crossovers at
 * 560 ms (Read&Compare) and 864 ms (Copy&Compare), plus the 128/256
 * ms LO-REF variants (480/448 ms).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/cost_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Figure 6", "accumulated cost and MinWriteInterval");

    CostModel cm;
    note(strprintf("refresh op: %.0f ns; Read&Compare: %.0f ns; "
                   "Copy&Compare: %.0f ns (appendix: 39/1068/1602)",
                   cm.refreshOpNs(),
                   cm.testCostNs(TestMode::ReadAndCompare),
                   cm.testCostNs(TestMode::CopyAndCompare)));

    TextTable curve;
    curve.header({"time(ms)", "HI-REF(ns)", "Read&Compare(ns)",
                  "Copy&Compare(ns)"});
    for (const CostPoint &p : cm.curve(TimeMs{1040.0})) {
        // Sample every 64 ms plus the crossover vicinity.
        long t = static_cast<long>(p.timeMs.value());
        bool show = t % 64 == 0 || (t >= 544 && t <= 576) ||
                    (t >= 848 && t <= 880);
        if (show) {
            curve.row({TextTable::num(p.timeMs.value(), 0),
                       TextTable::num(p.hiRefNs, 0),
                       TextTable::num(p.readCompareNs, 0),
                       TextTable::num(p.copyCompareNs, 0)});
        }
    }
    std::printf("%s\n", curve.render().c_str());

    TextTable mwi;
    mwi.header({"LO-REF interval", "mode", "MinWriteInterval",
                "paper"});
    struct Row
    {
        double lo;
        TestMode mode;
        const char *paper;
    };
    for (const Row &r :
         {Row{64.0, TestMode::ReadAndCompare, "560 ms"},
          Row{64.0, TestMode::CopyAndCompare, "864 ms"},
          Row{128.0, TestMode::ReadAndCompare, "480 ms"},
          Row{256.0, TestMode::ReadAndCompare, "448 ms"}}) {
        CostModelConfig cfg;
        cfg.loRefMs = r.lo;
        CostModel m(cfg);
        mwi.row({strprintf("%.0f ms", r.lo), toString(r.mode),
                 strprintf("%.0f ms", m.minWriteIntervalMs(r.mode).value()),
                 r.paper});
    }
    std::printf("%s", mwi.render().c_str());
    note("Conclusion (Section 3.3): testing amortizes at a minimum "
         "write interval of 448-864 ms depending on mode and LO-REF "
         "interval.");
    return 0;
}
