/**
 * @file
 * Regenerates Figure 17: the fraction of total execution time spent
 * operating at the LO-REF state (PRIL coverage) for CIL 512, 1024,
 * and 2048 ms. Paper: 95% on average.
 *
 * One sweep point per (application, CIL), seeded from the campaign
 * seed and executed on the parallel runner; results are bit-identical
 * for any --threads value.
 */

#include <algorithm>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "runner.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Figure 17",
                  "execution-time coverage of PRIL (time at LO-REF)");
    note("Paper: ~95% of execution time at LO-REF on average "
         "(read-only and long-idle rows).");

    const double cils[] = {512.0, 1024.0, 2048.0};
    std::vector<trace::AppPersona> suite =
        trace::AppPersona::table1Suite();
    if (opts.quick)
        suite.resize(2);

    bench::SweepRunner runner("fig17_pril_coverage", opts);
    for (const trace::AppPersona &p : suite) {
        for (double cil : cils) {
            runner.add(
                p.name + "/cil" + std::to_string(static_cast<int>(cil)),
                [persona = p, cil](const bench::TaskContext &ctx) {
                    trace::AppPersona local = persona;
                    local.seed = ctx.seed;
                    if (ctx.quick) {
                        local.pages = std::min<std::uint64_t>(
                            local.pages, 4000);
                        local.durationSec =
                            std::min(local.durationSec, 60.0);
                    }
                    MemconConfig cfg;
                    cfg.quantumMs = TimeMs{cil};
                    MemconEngine engine(cfg);
                    return bench::Metrics{
                        {"coverage",
                         engine.runOnApp(local).loCoverage()}};
                });
        }
    }
    runner.run();

    TextTable table;
    table.header({"application", "CIL 512", "CIL 1024", "CIL 2048"});
    double sums[3] = {0.0, 0.0, 0.0};
    for (std::size_t a = 0; a < suite.size(); ++a) {
        std::vector<std::string> row{suite[a].name};
        for (std::size_t i = 0; i < 3; ++i) {
            double cov = runner.metric(a * 3 + i, "coverage");
            sums[i] += cov;
            row.push_back(TextTable::pct(cov, 1));
        }
        table.row(std::move(row));
    }
    double n = static_cast<double>(suite.size());
    table.row({"AVERAGE", TextTable::pct(sums[0] / n, 1),
               TextTable::pct(sums[1] / n, 1),
               TextTable::pct(sums[2] / n, 1)});
    std::printf("%s", table.render().c_str());
    runner.finish();
    return 0;
}
