/**
 * @file
 * Regenerates Figure 17: the fraction of total execution time spent
 * operating at the LO-REF state (PRIL coverage) for CIL 512, 1024,
 * and 2048 ms. Paper: 95% on average.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Figure 17",
                  "execution-time coverage of PRIL (time at LO-REF)");
    note("Paper: ~95% of execution time at LO-REF on average "
         "(read-only and long-idle rows).");

    const double cils[] = {512.0, 1024.0, 2048.0};
    TextTable table;
    table.header({"application", "CIL 512", "CIL 1024", "CIL 2048"});

    double sums[3] = {0.0, 0.0, 0.0};
    unsigned n = 0;
    for (const trace::AppPersona &p : trace::AppPersona::table1Suite()) {
        std::vector<std::string> row{p.name};
        for (unsigned i = 0; i < 3; ++i) {
            MemconConfig cfg;
            cfg.quantumMs = cils[i];
            MemconEngine engine(cfg);
            double cov = engine.runOnApp(p).loCoverage();
            sums[i] += cov;
            row.push_back(TextTable::pct(cov, 1));
        }
        table.row(std::move(row));
        ++n;
    }
    table.row({"AVERAGE", TextTable::pct(sums[0] / n, 1),
               TextTable::pct(sums[1] / n, 1),
               TextTable::pct(sums[2] / n, 1)});
    std::printf("%s", table.render().c_str());
    return 0;
}
