/**
 * @file
 * Regenerates Figure 9: the fraction of write-interval time each
 * Table 1 workload spends in long write intervals (>= 1024 ms).
 * Paper average: 89.5%.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 9",
                  "execution time dominated by long write intervals");
    note("Paper: intervals >= 1024 ms hold 89.5% of write-interval "
         "time on average.");

    TextTable table;
    table.header({"application", "time in <1024ms", "time in >=1024ms"});
    double sum = 0.0;
    unsigned n = 0;
    for (const AppPersona &p : AppPersona::table1Suite()) {
        WriteIntervalAnalyzer a = analyzeApp(p);
        double ge = a.timeFractionAtLeast(TimeMs{1024.0});
        table.row({p.name, TextTable::pct(1.0 - ge, 1),
                   TextTable::pct(ge, 1)});
        sum += ge;
        ++n;
    }
    table.row({"AVERAGE", TextTable::pct(1.0 - sum / n, 1),
               TextTable::pct(sum / n, 1)});
    std::printf("%s", table.render().c_str());
    return 0;
}
