/**
 * @file
 * Regenerates Figure 15: MEMCON's performance improvement over the
 * aggressive 16 ms-refresh baseline, modelling 60% and 75% refresh
 * reductions, for single-core and 4-core systems with 8/16/32 Gb
 * chips. As in Section 6.2, the cycle simulator models the refresh
 * reduction as a stretched effective tREFI plus 256 concurrent
 * tests' worth of injected read/write traffic per 64 ms.
 *
 * Paper: 10%/17%/40% to 12%/22%/50% (single-core) and 10%/23%/52% to
 * 17%/29%/65% (4-core) for 8/16/32 Gb. Absolute numbers depend on
 * the workload pool; the shape - monotone in chip density and core
 * count - is the reproduction target.
 *
 * Sweep decomposition: one point per (cores, density, mix) running
 * the shared baseline plus both reductions; the geomean reduction
 * happens serially in task-index order, so the figure is
 * bit-identical for any --threads value.
 */

#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::sim;

namespace
{

double
geomean(const std::vector<double> &xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Figure 15",
                  "MEMCON speedup over the 16 ms baseline (60%/75% "
                  "refresh reduction)");
    note("30 SPEC/TPC/STREAM workload mixes; testing traffic (256 "
         "tests per 64 ms) included, as in the paper.");
    note("Paper bands - 1-core: 10-12% (8Gb), 17-22% (16Gb), 40-50% "
         "(32Gb); 4-core: 10-17%, 23-29%, 52-65%.");

    const unsigned num_mixes = opts.quick ? 3 : 30;
    const InstCount insts_per_core = opts.quick ? 20000 : 150000;
    auto mixes =
        trace::CpuPersona::randomMixes(num_mixes, 4, opts.campaignSeed);

    const unsigned core_counts[] = {1, 4};
    const dram::Density densities[] = {
        dram::Density::Gb8, dram::Density::Gb16, dram::Density::Gb32};

    bench::SweepRunner runner("fig15_performance", opts);
    for (unsigned cores : core_counts) {
        for (dram::Density d : densities) {
            for (unsigned m = 0; m < num_mixes; ++m) {
                std::vector<trace::CpuPersona> mix(
                    mixes[m].begin(), mixes[m].begin() + cores);
                runner.add(
                    strprintf("%uc/%s/mix%02u", cores,
                              dram::toString(d).c_str(), m),
                    [cores, d, mix, insts_per_core](
                        const bench::TaskContext &ctx) {
                        SystemConfig base;
                        base.cores = cores;
                        base.density = d;
                        base.seed = ctx.seed;
                        double b = System(base, mix)
                                       .run(insts_per_core)
                                       .ipcSum();
                        bench::Metrics out;
                        for (double reduction : {0.60, 0.75}) {
                            SystemConfig fast = base;
                            fast.refreshReduction = reduction;
                            fast.concurrentTests = 256;
                            double f = System(fast, mix)
                                           .run(insts_per_core)
                                           .ipcSum();
                            out.push_back(
                                {reduction == 0.60 ? "r60" : "r75",
                                 f / b});
                        }
                        return out;
                    });
            }
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (unsigned cores : core_counts) {
        std::printf("\n-- %u-core system\n", cores);
        TextTable table;
        table.header({"chip density", "60% reduction", "75% reduction"});
        for (dram::Density d : densities) {
            std::vector<double> r60, r75;
            for (unsigned m = 0; m < num_mixes; ++m, ++idx) {
                r60.push_back(runner.metric(idx, "r60"));
                r75.push_back(runner.metric(idx, "r75"));
            }
            table.row({dram::toString(d),
                       strprintf("+%.1f%%", (geomean(r60) - 1.0) * 100.0),
                       strprintf("+%.1f%%",
                                 (geomean(r75) - 1.0) * 100.0)});
        }
        std::printf("%s", table.render().c_str());
    }
    note("Shape check: improvement grows with chip density (tRFC "
         "350 -> 530 -> 890 ns) and with core count.");
    runner.finish();
    return 0;
}
