/**
 * @file
 * Regenerates Figure 15: MEMCON's performance improvement over the
 * aggressive 16 ms-refresh baseline, modelling 60% and 75% refresh
 * reductions, for single-core and 4-core systems with 8/16/32 Gb
 * chips. As in Section 6.2, the cycle simulator models the refresh
 * reduction as a stretched effective tREFI plus 256 concurrent
 * tests' worth of injected read/write traffic per 64 ms.
 *
 * Paper: 10%/17%/40% to 12%/22%/50% (single-core) and 10%/23%/52% to
 * 17%/29%/65% (4-core) for 8/16/32 Gb. Absolute numbers depend on
 * the workload pool; the shape - monotone in chip density and core
 * count - is the reproduction target.
 */

#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::sim;

namespace
{

constexpr InstCount kInstsPerCore = 150000;
constexpr unsigned kNumMixes = 30;

double
geomean(const std::vector<double> &xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/**
 * Geometric-mean speedups over the baseline across all workloads for
 * 60% and 75% refresh reductions (one shared baseline run per mix).
 */
std::pair<double, double>
speedups(unsigned cores, dram::Density density,
         const std::vector<std::vector<trace::CpuPersona>> &mixes)
{
    std::vector<double> r60, r75;
    for (unsigned m = 0; m < mixes.size(); ++m) {
        std::vector<trace::CpuPersona> mix(mixes[m].begin(),
                                           mixes[m].begin() + cores);
        SystemConfig base;
        base.cores = cores;
        base.density = density;
        base.seed = 1000 + m;
        double b = System(base, mix).run(kInstsPerCore).ipcSum();
        for (double reduction : {0.60, 0.75}) {
            SystemConfig fast = base;
            fast.refreshReduction = reduction;
            fast.concurrentTests = 256; // testing overhead included
            double f = System(fast, mix).run(kInstsPerCore).ipcSum();
            (reduction == 0.60 ? r60 : r75).push_back(f / b);
        }
    }
    return {geomean(r60), geomean(r75)};
}

} // namespace

int
main()
{
    bench::banner("Figure 15",
                  "MEMCON speedup over the 16 ms baseline (60%/75% "
                  "refresh reduction)");
    note("30 SPEC/TPC/STREAM workload mixes; testing traffic (256 "
         "tests per 64 ms) included, as in the paper.");
    note("Paper bands - 1-core: 10-12% (8Gb), 17-22% (16Gb), 40-50% "
         "(32Gb); 4-core: 10-17%, 23-29%, 52-65%.");

    auto mixes = trace::CpuPersona::randomMixes(kNumMixes, 4, 42);

    for (unsigned cores : {1u, 4u}) {
        std::printf("\n-- %u-core system\n", cores);
        TextTable table;
        table.header({"chip density", "60% reduction", "75% reduction"});
        for (dram::Density d :
             {dram::Density::Gb8, dram::Density::Gb16,
              dram::Density::Gb32}) {
            auto [s60, s75] = speedups(cores, d, mixes);
            table.row({dram::toString(d),
                       strprintf("+%.1f%%", (s60 - 1.0) * 100.0),
                       strprintf("+%.1f%%", (s75 - 1.0) * 100.0)});
        }
        std::printf("%s", table.render().c_str());
    }
    note("Shape check: improvement grows with chip density (tRFC "
         "350 -> 530 -> 890 ns) and with core count.");
    return 0;
}
