/**
 * @file
 * Regenerates Figure 11: the probability that the remaining interval
 * length (RIL) exceeds 1024 ms as a function of the current interval
 * length (CIL), for all 12 Table 1 applications. The decreasing-
 * hazard-rate shape - low at small CIL, 50-80% around 512 ms,
 * approaching 1 by 16384 ms - is what makes PRIL work.
 */

#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 11",
                  "P(RIL > 1024 ms) as a function of CIL");
    note("Paper: ~50-80% at CIL = 512 ms; approaches 1 past 16384 ms.");

    std::vector<double> cils;
    for (double c = 1.0; c <= 32768.0; c *= 2.0)
        cils.push_back(c);

    TextTable table;
    std::vector<std::string> header{"application"};
    for (double c : cils)
        header.push_back(strprintf("%.0f", c));
    table.header(header);

    std::vector<double> sums(cils.size(), 0.0);
    unsigned n = 0;
    for (const AppPersona &p : AppPersona::table1Suite()) {
        WriteIntervalAnalyzer a = analyzeApp(p);
        std::vector<std::string> row{p.name};
        for (std::size_t i = 0; i < cils.size(); ++i) {
            double prob = a.probRemainingAtLeast(TimeMs{cils[i]}, TimeMs{1024.0});
            sums[i] += prob;
            row.push_back(strprintf("%.2f", prob));
        }
        table.row(std::move(row));
        ++n;
    }
    std::vector<std::string> avg{"AVERAGE"};
    for (double s : sums)
        avg.push_back(strprintf("%.2f", s / n));
    table.row(std::move(avg));
    std::printf("%s", table.render().c_str());
    note("Columns are CIL values in ms.");
    return 0;
}
