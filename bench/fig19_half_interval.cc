/**
 * @file
 * Regenerates Figure 19: sensitivity to cache size. Halving every
 * write interval (more last-level-cache pressure evicts dirty lines
 * sooner) shifts the interval distribution left, but the
 * P(RIL > 1024 ms | CIL) curve barely moves - so MEMCON's prediction
 * quality is robust to cache effects.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 19",
                  "write-interval sensitivity to cache pressure "
                  "(halved intervals)");

    AppPersona persona = AppPersona::byName("ACBrotherHood");
    WriteIntervalAnalyzer full = analyzeApp(persona);
    WriteIntervalAnalyzer half = analyzeAppScaled(persona, 0.5);

    std::printf("\n(a) interval distribution, %s\n", persona.name.c_str());
    TextTable dist;
    dist.header({"x (ms)", "P(>x) full", "P(>x) half"});
    for (double x = 1.0; x <= 32768.0; x *= 4.0) {
        dist.row({TextTable::num(x, 0),
                  strprintf("%.5f", full.fractionWritesAtLeast(TimeMs{x})),
                  strprintf("%.5f", half.fractionWritesAtLeast(TimeMs{x}))});
    }
    std::printf("%s", dist.render().c_str());

    std::printf("\n(b) P(RIL > 1024 ms) vs CIL\n");
    TextTable prob;
    prob.header({"CIL (ms)", "full", "half"});
    for (double c : {512.0, 1024.0, 2048.0}) {
        prob.row({TextTable::num(c, 0),
                  strprintf("%.3f", full.probRemainingAtLeast(TimeMs{c}, TimeMs{1024.0})),
                  strprintf("%.3f", half.probRemainingAtLeast(TimeMs{c}, TimeMs{1024.0}))});
    }
    std::printf("%s", prob.render().c_str());
    note("Paper conclusion: the distribution shifts slightly left but "
         "P(RIL > 1024) does not change significantly - cache size "
         "does not significantly impact MEMCON.");
    return 0;
}
