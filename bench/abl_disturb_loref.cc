/**
 * @file
 * Ablation: does LO-REF demotion open a RowHammer window, and does
 * scrub-wheel victim refresh close it - at what test-overhead cost?
 *
 * MEMCON's demotion policy quadruples a row's refresh interval after a
 * content test passes; a disturbance-accumulation model (DiscoRD-style
 * per-row thresholds, Blacksmith-style aggressor personas) says that
 * also quadruples the ACT count a victim accumulates between resets.
 * Three arms per persona:
 *
 *  - all-HI: loRefEnabled=false. Tests run and are paid for, but no
 *    row ever relaxes its refresh. The victim-flip floor.
 *  - LO-REF: the paper's mechanism, disturb guard off. Victims of the
 *    aggressor sit at LO-REF with a 4x accumulation window - the
 *    unmitigated coupling this ablation exists to demonstrate.
 *  - LO+guard: the mitigation arm. The controller's ACT stream feeds
 *    DisturbGuard; aggressors crossing the alert threshold get their
 *    neighbors refreshed through the request machinery, chronic
 *    victims enter the demote/backoff/pin ladder, and a bank under
 *    sustained hammering degrades to HI-REF until pressure stops.
 *
 * The aggressor co-runs with benign demand traffic; flips are scored
 * from the model's ground truth (flips recorded) and from what demand
 * reads actually surfaced (SECDED corrected/uncorrectable). The
 * mitigation's price is reported as victim refreshes plus extra test
 * traffic. In full (non-quick) mode the bench fatals unless the
 * acceptance ordering holds: LO-REF flips strictly above the all-HI
 * floor, and the guard back within the configured band of it.
 *
 * Every number is bit-identical for any --threads; the CI disturb job
 * runs this at 1 and 8 threads and compares digests.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/online_memcon.hh"
#include "failure/disturb.hh"
#include "failure/injector.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"
#include "trace/hammer.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

enum class Arm
{
    AllHi,   //!< loRefEnabled=false: the victim-flip floor
    LoRef,   //!< the paper's mechanism, guard off (unmitigated)
    LoGuard, //!< mechanism + victim refresh + degradation ladder
};

const char *
armName(Arm arm)
{
    switch (arm) {
    case Arm::AllHi:
        return "all-HI";
    case Arm::LoRef:
        return "LO-REF";
    case Arm::LoGuard:
        return "LO+guard";
    }
    return "?";
}

/**
 * Per-persona operating point. The access rate tops out near 12/us
 * empirically: one DDR3 bank sustains ~20 ACTs/us, but the bank also
 * carries benign demand and lowest-priority test reads - much above
 * 12/us the queue stays occupied, the test engine starves, no row
 * ever reaches LO-REF, and the ablation measures nothing.
 *
 * The threshold distribution is scaled per persona so the hard floor
 * sits between that persona's HI- and LO-window accumulations: the
 * personas concentrate very different charge rates on their best
 * victim (a sandwiched double-sided victim collects both aggressors'
 * full rate; a fuzzed pattern dilutes its rate across aggressors and
 * amplitude hits), and what the ablation isolates is the *window
 * ratio*, not the absolute threshold scale.
 */
struct PersonaTuning
{
    double actsPerUs;
    std::uint64_t medianThreshold;
    std::uint64_t minThreshold;
};

PersonaTuning
tuningFor(trace::HammerKind kind)
{
    switch (kind) {
    case trace::HammerKind::SingleSided:
        return {12.0, 3000, 1700}; // victims ~6/us: HI 1.5k, LO 6k
    case trace::HammerKind::DoubleSided:
        return {10.0, 3500, 2600}; // center 10/us: HI 2.5k, LO 10k
    case trace::HammerKind::ManySided:
        return {12.0, 3000, 1700}; // interior ~6/us: HI 1.5k, LO 6k
    case trace::HammerKind::Fuzzed:
        return {12.0, 2500, 1200}; // best ~3.5/us: HI .9k, LO 3.5k
    }
    return {12.0, 3000, 1700};
}

bench::Metrics
runOne(trace::HammerKind kind, Arm arm, std::uint64_t seed, bool quick)
{
    dram::Geometry geom;
    geom.rowsPerBank = 64; // 512 rows
    auto timing =
        dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    const dram::AddressMap map = dram::AddressMap::blocked(3, 6);

    // Windows compressed onto the run's timescale with the same 4x
    // HI:LO ratio as the real 16/64 ms pair; thresholds scaled per
    // persona (see tuningFor) so rows hold at HI-REF and flip at
    // LO-REF - exactly the coupling under test.
    const PersonaTuning tune = tuningFor(kind);
    failure::DisturbParams dp;
    dp.hiWindowMs = 0.25;
    dp.loWindowMs = 1.0;
    dp.medianThreshold = tune.medianThreshold;
    dp.minThreshold = tune.minThreshold;
    dp.seed = hashMix64(seed ^ 0xd157);
    failure::DisturbModel disturb(dp, &map, geom.totalRows());

    // The injector carries no faults of its own here: the SECDED
    // verdict stream is pure read-disturb.
    failure::FaultInjectorConfig inj_cfg;
    inj_cfg.transientPerRowPerMs = 0.0;
    inj_cfg.seed = hashMix64(seed ^ 0x1faf11);
    failure::FaultInjector injector(inj_cfg, geom.totalRows());
    injector.attachDisturb(&disturb);

    Tick now{};

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    OnlineMemcon::installObserver(mc_cfg, slot);
    mc_cfg.eccProbe = [&](std::uint64_t addr, Tick t) {
        RowId row = geom.flatRowIndex(geom.decompose(addr));
        bool lo = slot && slot->isLoRef(row);
        return injector.onRead(row, t, lo);
    };
    auto inner_write = mc_cfg.writeObserver;
    mc_cfg.writeObserver = [&, inner_write](std::uint64_t addr, Tick t) {
        injector.onRowRestored(geom.flatRowIndex(geom.decompose(addr)),
                               t);
        if (inner_write)
            inner_write(addr, t);
    };
    // Chain the failure model behind MEMCON's ACT observer: every
    // activation the controller issues - demand, test, and the
    // guard's own victim refreshes alike - disturbs neighbors.
    auto inner_act = mc_cfg.activateObserver;
    mc_cfg.activateObserver = [&, inner_act](std::uint64_t addr, Tick t) {
        disturb.onActivate(geom.flatRowIndex(geom.decompose(addr)), t);
        if (inner_act)
            inner_act(addr, t);
    };
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    om_cfg.addressMap = map;
    om_cfg.loRefEnabled = arm != Arm::AllHi;
    om_cfg.resilience.enabled = true;
    om_cfg.resilience.retestBackoff = usToTicks(20.0);
    om_cfg.resilience.fallbackHold = usToTicks(60.0);
    if (arm == Arm::LoGuard) {
        om_cfg.disturbGuard.enabled = true;
        // Alert well under the weakest row's threshold: a victim
        // accumulates at most ~2 aggressors x 256 ACTs between
        // refreshes, under every persona's floor.
        om_cfg.disturbGuard.actAlertThreshold = 256;
        om_cfg.disturbGuard.crossingWindow = usToTicks(200.0);
        om_cfg.disturbGuard.bankCrossingLimit = 64;
        om_cfg.disturbGuard.bankDegradeHold = usToTicks(100.0);
        om_cfg.victimRefresher = [&](RowId victim, Tick t) {
            disturb.onVictimRefreshed(victim, t);
        };
    }
    auto om = std::make_unique<OnlineMemcon>(
        geom, mc, om_cfg, [&](RowId row) {
            return injector.hasLatentFault(row, now, true);
        });
    slot = om.get();
    disturb.setLoRefQuery(
        [&](RowId row) { return slot->isLoRef(row); });

    // Benign demand traffic is confined to the lower half of every
    // bank's rows (RoBaRaCoCh keeps the per-bank row coordinate in
    // the address high bits, so a block span caps it). The upper half
    // is never written - exactly the population the ascending RO
    // sweep promotes to LO-REF first, and where the attacker aims:
    // cold rows are the ones that hold their relaxed interval.
    const std::uint64_t benign_rows = geom.rowsPerBank / 2;
    const std::uint64_t benign_blocks =
        benign_rows * geom.banks * geom.columnsPerRow;
    trace::CpuAccessStream benign(
        trace::CpuPersona::byName("perlbench"), hashMix64(seed ^ 0xc02e));
    sim::SimpleCore core(0, std::move(benign), mc, 0, benign_blocks);

    // The attacker: one aggressor persona hammering bank 0's cold
    // band.
    trace::HammerSpec hs;
    hs.kind = kind;
    hs.bank = 0;
    hs.sides = 4;
    hs.actsPerUs = tune.actsPerUs;
    hs.horizonMs = quick ? 0.5 : 2.0;
    hs.rowLo = benign_rows;
    hs.seed = hashMix64(seed ^ 0xa66);
    trace::HammerStream hammer(hs, map, geom.totalRows());

    const Tick horizon = msToTicks(hs.horizonMs);
    const Tick sample_period = usToTicks(40.0);
    Tick next_sample = sample_period;
    std::uint64_t samples = 0, latent_sum = 0, latent_peak = 0;
    bool held = false;
    sim::Request held_req;
    while (now < horizon) {
        now += timing.tCk;
        // Drain due aggressor accesses as demand reads; a full
        // controller queue holds the access and retries next cycle.
        Tick at{};
        std::uint64_t row = 0;
        while (true) {
            if (!held) {
                if (!hammer.peek(&at, &row) || at > now)
                    break;
                hammer.pop();
                held_req = sim::Request{};
                held_req.type = sim::Request::Type::Read;
                held_req.addr =
                    geom.compose(geom.rowFromFlatIndex(RowId{row}));
                held = true;
            }
            if (!mc.enqueue(sim::Request{held_req}, now))
                break;
            held = false;
        }
        mc.tick(now);
        om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
        if (now >= next_sample) {
            next_sample += sample_period;
            std::uint64_t latent = 0;
            for (std::uint64_t r = 0; r < geom.totalRows(); ++r)
                if (om->isLoRef(RowId{r}) &&
                    disturb.hasLatentFlip(RowId{r}))
                    ++latent;
            ++samples;
            latent_sum += latent;
            latent_peak = std::max(latent_peak, latent);
        }
    }

    return bench::Metrics{
        {"flips", static_cast<double>(disturb.flipsRecorded())},
        {"flips_single", disturb.stats().value("flips.single")},
        {"flips_double", disturb.stats().value("flips.double")},
        {"corrected", om->stats().value("ecc.corrected")},
        {"uncorrectable", om->stats().value("ecc.uncorrectable")},
        {"victim_refreshes",
         static_cast<double>(om->victimRefreshes())},
        {"tests", static_cast<double>(om->testsStarted())},
        {"bank_degrades", om->stats().value("disturb.bankDegrades")},
        {"pinned", static_cast<double>(om->pinnedRows())},
        {"lo_fraction", om->loRefFraction()},
        {"reduction", om->emergentReduction()},
        {"avg_latent_lo_rows",
         samples ? static_cast<double>(latent_sum) / samples : 0.0},
        {"peak_latent_lo_rows", static_cast<double>(latent_peak)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Ablation: LO-REF demotion vs. read disturb",
                  "victim flips under aggressor personas, with and "
                  "without scrub-wheel victim refresh");
    note("512-row module, one aggressor persona hammering bank 0's "
         "cold band at 10-12 accesses/us beside benign demand "
         "traffic. Disturb windows compressed to 0.25/1.0 ms (HI/LO, "
         "the real 4x ratio); per-row lognormal thresholds scaled so "
         "each persona's floor splits its HI/LO accumulations.");

    const std::vector<trace::HammerKind> kinds = {
        trace::HammerKind::SingleSided, trace::HammerKind::DoubleSided,
        trace::HammerKind::ManySided, trace::HammerKind::Fuzzed};
    const std::vector<Arm> arms = {Arm::AllHi, Arm::LoRef,
                                   Arm::LoGuard};
    bench::SweepRunner runner("abl_disturb_loref", opts);
    std::size_t kind_index = 0;
    for (trace::HammerKind kind : kinds) {
        // All three arms of a persona share one world seed: same
        // aggressor pattern, same per-row thresholds, same benign
        // stream. The only difference between arms is policy, so the
        // flip ordering is a genuine ablation, not seed noise.
        const std::uint64_t world =
            deriveTaskSeed(opts.campaignSeed, 1000 + kind_index++);
        for (Arm arm : arms) {
            runner.add(strprintf("%s/%s", trace::hammerKindName(kind),
                                 armName(arm)),
                       [kind, arm, world](const bench::TaskContext &ctx) {
                           return runOne(kind, arm, world, ctx.quick);
                       });
        }
    }
    runner.run();

    TextTable t;
    t.header({"persona", "arm", "flips", "1b/2b", "ECC c/u",
              "victim refr", "tests", "bank degr", "LO-REF",
              "reduction", "latent LO (avg/peak)"});
    std::size_t idx = 0;
    for (trace::HammerKind kind : kinds) {
        for (Arm arm : arms) {
            const bench::PointResult &o = runner.results()[idx++];
            t.row({trace::hammerKindName(kind), armName(arm),
                   TextTable::num(o.metric("flips"), 0),
                   TextTable::num(o.metric("flips_single"), 0) + "/" +
                       TextTable::num(o.metric("flips_double"), 0),
                   TextTable::num(o.metric("corrected"), 0) + "/" +
                       TextTable::num(o.metric("uncorrectable"), 0),
                   TextTable::num(o.metric("victim_refreshes"), 0),
                   TextTable::num(o.metric("tests"), 0),
                   TextTable::num(o.metric("bank_degrades"), 0),
                   TextTable::pct(o.metric("lo_fraction"), 1),
                   TextTable::pct(o.metric("reduction"), 1),
                   TextTable::num(o.metric("avg_latent_lo_rows"), 2) +
                       " / " +
                       TextTable::num(o.metric("peak_latent_lo_rows"),
                                      0)});
        }
    }
    std::printf("%s", t.render().c_str());

    // The acceptance ordering, checked per persona on the full run
    // (the quick horizon is too short for clean separation): LO-REF
    // must raise flips above the all-HI floor, and the guard must pull
    // them back to within the floor plus a small band while still
    // paying victim refreshes for it.
    if (!opts.quick) {
        idx = 0;
        for (trace::HammerKind kind : kinds) {
            const double hi =
                runner.results()[idx + 0].metric("flips");
            const double lo =
                runner.results()[idx + 1].metric("flips");
            const double guarded =
                runner.results()[idx + 2].metric("flips");
            const double refreshes =
                runner.results()[idx + 2].metric("victim_refreshes");
            idx += 3;
            fatal_if(lo <= hi,
                     "%s: LO-REF arm did not raise flips (%g vs %g)",
                     trace::hammerKindName(kind), lo, hi);
            fatal_if(guarded > hi + 0.25 * (lo - hi),
                     "%s: guard left flips at %g (floor %g, "
                     "unmitigated %g)",
                     trace::hammerKindName(kind), guarded, hi, lo);
            fatal_if(refreshes == 0.0,
                     "%s: guard arm issued no victim refreshes",
                     trace::hammerKindName(kind));
            const double overhead =
                runner.results()[idx - 1].metric("tests") +
                refreshes -
                runner.results()[idx - 2].metric("tests");
            note(strprintf("%s: flips %g -> %g (floor %g), mitigation "
                           "overhead %+g test-slot ops",
                           trace::hammerKindName(kind), lo, guarded, hi,
                           overhead));
        }
        note("acceptance ordering verified: LO-REF raises flips, "
             "victim refresh restores the floor band");
    }
    runner.finish();
    return 0;
}
