/**
 * @file
 * Ablation: memcond service-mode overload behavior.
 *
 * Sweeps tenant count x offered load (antagonist rate multiple) x
 * antagonist share over the always-on service host, plus a solo
 * reference point for the focus tenant. Each point is one full
 * deterministic service run; per point we record:
 *
 *   - the focus (in-quota, priority-2) tenant's emergent refresh
 *     reduction - compared against the solo point, quota-first
 *     admission plus offender-targeted governor stages should hold
 *     it within 5% of solo no matter the antagonist,
 *   - explicit-loss accounting: backpressure drops, shed drops,
 *     throttle time (never silent - the reconcile metric checks
 *     generated == applied + drops + backlog for every tenant and
 *     must be 0),
 *   - the governor ladder: escalation count and the highest stage
 *     reached.
 *
 * Emits BENCH_service_overload.json with the standard CRC footer.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "runner.hh"
#include "service/memcond.hh"

using namespace memcon;

namespace
{

service::MemcondConfig
serviceConfig(unsigned tenants, std::uint64_t seed, bool quick)
{
    service::MemcondConfig cfg;
    cfg.seed = seed;
    cfg.threads = 1; // the sweep runner parallelizes across points
    cfg.rounds = quick ? 12 : 32;
    cfg.roundTicks = usToTicks(20.0);

    // Oversubscribed on purpose: quotas sum to 8N but the budget is
    // 6N, so a hot antagonist pushes the governor all the way to
    // ShedTenants. Grants are capped at the quota, which makes the
    // focus tenant's service identical to its solo run by
    // construction (no leftover windfall to diverge on).
    cfg.admission.globalBudgetPerRound =
        std::max<std::uint64_t>(8, 6ull * tenants);
    cfg.admission.maxGrantPerRound = 8;

    cfg.tenant.geometry.rowsPerBank = 16; // 128 rows per tenant
    cfg.tenant.ringCapacity = 64;
    cfg.tenant.memcon.quantum = usToTicks(50.0);
    cfg.tenant.memcon.testIdle = usToTicks(20.0);
    cfg.tenant.memcon.retargetPeriod = usToTicks(25.0);
    cfg.tenant.memcon.testEngine.slots = 4;
    cfg.tenant.memcon.testEngine.wordsPerRow = 8;
    return cfg;
}

/**
 * N tenants: tenant 0 is the in-quota focus (priority 2), the last
 * `antagonists` are overload sources (priority 1, rateScale-times
 * their quota), the middle ones are polite fill.
 */
std::vector<service::TenantSpec>
tenantMix(unsigned tenants, unsigned antagonists, double antag_rate)
{
    std::vector<service::TenantSpec> specs;
    for (unsigned i = 0; i < tenants; ++i) {
        service::TenantSpec t;
        t.name = "t" + std::to_string(i);
        t.quotaPerRound = 8;
        if (i >= tenants - antagonists) {
            t.priority = 1;
            t.rateScale = antag_rate;
        } else {
            t.priority = 2;
            t.rateScale = 1.0;
        }
        specs.push_back(t);
    }
    return specs;
}

bench::Metrics
runOne(unsigned tenants, unsigned antagonists, double antag_rate,
       std::uint64_t seed, bool quick)
{
    service::Memcond svc(serviceConfig(tenants, seed, quick),
                         tenantMix(tenants, antagonists, antag_rate));
    svc.run();

    double reconcile = 0.0;
    double offered = 0.0, applied = 0.0, antag_shed = 0.0;
    for (std::size_t i = 0; i < svc.tenantCount(); ++i) {
        const service::TenantSession &t = svc.tenant(i);
        const double backlog =
            static_cast<double>(t.ringBacklog()) +
            (t.hasHeldEvent() ? 1.0 : 0.0);
        const double gap =
            static_cast<double>(t.generatedCount()) -
            (static_cast<double>(t.appliedCount()) +
             static_cast<double>(t.droppedBackpressure()) +
             static_cast<double>(t.droppedShed()) + backlog);
        reconcile = std::max(reconcile, std::abs(gap));
        offered += static_cast<double>(t.generatedCount());
        applied += static_cast<double>(t.appliedCount());
        if (t.spec().priority == 1)
            antag_shed += static_cast<double>(t.droppedShed());
    }

    double max_stage = 0.0;
    for (service::GovernorStage s : svc.stageHistory())
        max_stage = std::max(max_stage,
                             static_cast<double>(
                                 static_cast<unsigned>(s)));

    const service::TenantSession &focus = svc.tenant(0);
    return bench::Metrics{
        {"reduction_t0", focus.memcon().emergentReduction()},
        {"lo_fraction_t0", focus.memcon().loRefFraction()},
        {"drops_bp_t0",
         static_cast<double>(focus.droppedBackpressure())},
        {"drops_shed_t0", static_cast<double>(focus.droppedShed())},
        {"throttle_ticks_t0",
         static_cast<double>(focus.throttledTicks())},
        {"p99_ingest_ticks_t0", focus.p99IngestTicks()},
        {"offered", offered},
        {"applied", applied},
        {"antag_shed", antag_shed},
        {"escalations",
         static_cast<double>(svc.overloadGovernor().escalations())},
        {"max_stage", max_stage},
        {"reconcile", reconcile},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Ablation: memcond service overload",
                  "multi-tenant service mode under antagonist load");
    note("One service run per point: 128-row modules, 20 us rounds, "
         "8-event quotas, global budget 8 x tenants. Tenant 0 is the "
         "in-quota focus; antagonists offer rate x their quota.");

    struct Point
    {
        std::string label;
        unsigned tenants;
        unsigned antagonists;
        double rate;
    };
    std::vector<Point> points;
    points.push_back({"solo", 1, 0, 1.0});
    const std::vector<unsigned> tenant_counts =
        opts.quick ? std::vector<unsigned>{2} :
                     std::vector<unsigned>{2, 4};
    const std::vector<double> rates =
        opts.quick ? std::vector<double>{4.0} :
                     std::vector<double>{2.0, 4.0, 8.0};
    for (unsigned n : tenant_counts)
        for (double rate : rates) {
            points.push_back({strprintf("t%u/antag1_x%g", n, rate), n, 1,
                              rate});
            if (n >= 4)
                points.push_back({strprintf("t%u/antag%u_x%g", n, n / 2,
                                            rate),
                                  n, n / 2, rate});
        }

    bench::SweepRunner runner("service_overload", opts);
    // Every point runs the SAME service seed (not the per-task seed):
    // tenant 0's traffic is identical across points, so "vs solo"
    // isolates the co-location effect rather than seed noise.
    const std::uint64_t service_seed = opts.campaignSeed;
    for (const Point &p : points)
        runner.add(p.label, [p, service_seed](
                                const bench::TaskContext &ctx) {
            return runOne(p.tenants, p.antagonists, p.rate,
                          service_seed, ctx.quick);
        });
    runner.run();

    const double solo = runner.results()[0].metric("reduction_t0");
    TextTable t;
    t.header({"point", "t0 reduction", "vs solo", "t0 drops", "t0 thr",
              "antag shed", "escal", "max stage", "reconcile"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const bench::PointResult &r = runner.results()[i];
        const double red = r.metric("reduction_t0");
        const double delta = solo > 0.0 ? (red - solo) / solo : 0.0;
        t.row({points[i].label, TextTable::pct(red, 2),
               i == 0 ? "-" : TextTable::pct(delta, 2),
               TextTable::num(r.metric("drops_bp_t0") +
                                  r.metric("drops_shed_t0"),
                              0),
               TextTable::num(r.metric("throttle_ticks_t0"), 0),
               TextTable::num(r.metric("antag_shed"), 0),
               TextTable::num(r.metric("escalations"), 0),
               TextTable::num(r.metric("max_stage"), 0),
               TextTable::num(r.metric("reconcile"), 0)});
    }
    std::printf("%s", t.render().c_str());
    note("reconcile must be 0 everywhere: every offered event is "
         "applied, counted as an explicit drop, or still queued. The "
         "focus tenant's reduction stays within 5% of solo because "
         "admission is quota-first and the governor's scan/stretch "
         "stages target over-quota tenants only.");
    runner.finish();
    return 0;
}
