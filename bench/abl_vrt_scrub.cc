/**
 * @file
 * Ablation: variable retention time and idle-row re-scrubbing.
 *
 * VRT cells toggle into a leaky state after profiling has passed
 * them - the reason the paper's related work (AVATAR) distrusts
 * one-shot profiles. MEMCON retests a row whenever its content
 * changes, so written rows self-heal; rows that stay idle at LO-REF
 * keep their stale verdict. This bench measures the exposure window
 * and the cost of closing it with a periodic background re-scrub of
 * LO-REF rows (an extension the engine's budget machinery already
 * prices).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/cost_model.hh"
#include "failure/vrt.hh"

using namespace memcon;
using namespace memcon::failure;

int
main()
{
    bench::banner("Ablation: VRT exposure and re-scrub cost",
                  "why online retesting beats one-shot profiling");

    VrtParams params;
    params.vrtCellsPerRow = 0.05; // sparse, like field observations
    params.dwellHighMs = 120000.0;
    params.dwellLowMs = 20000.0;
    const std::uint64_t rows = 1 << 14;
    VrtPopulation pop(params, rows);

    std::printf("\n(a) rows whose VRT verdict went stale after a "
                "boot-time profile at t=0\n");
    TextTable t;
    t.header({"time since profile", "rows now failing @64ms",
              "of which unseen at t=0"});
    // Baseline profile at t ~ 0.
    std::vector<bool> profiled(rows);
    for (std::uint64_t r = 0; r < rows; ++r)
        profiled[r] = pop.rowFailsAt(RowId{r}, 64.0, TimeMs{1.0});
    for (double t_ms :
         {60000.0, 300000.0, 900000.0, 1800000.0, 3600000.0}) {
        std::uint64_t failing = 0, unseen = 0;
        for (std::uint64_t r = 0; r < rows; ++r) {
            if (pop.rowFailsAt(RowId{r}, 64.0, TimeMs{t_ms})) {
                ++failing;
                unseen += !profiled[r];
            }
        }
        t.row({strprintf("%.0f min", t_ms / 60000.0),
               std::to_string(failing), std::to_string(unseen)});
    }
    std::printf("%s", t.render().c_str());
    note("Every 'unseen' row is a silent-corruption hazard for "
         "profile-once schemes; MEMCON retests written rows "
         "automatically.");

    std::printf("\n(b) cost of re-scrubbing idle LO-REF rows "
                "periodically\n");
    core::CostModel cm;
    TextTable s;
    s.header({"re-scrub period", "extra tests/row/hour",
              "added latency (ns/row/hour)",
              "vs LO-REF refresh latency"});
    double lo_refresh_per_hour = 3600000.0 / 64.0 * cm.refreshOpNs();
    for (double period_min : {5.0, 15.0, 60.0}) {
        double tests_per_hour = 60.0 / period_min;
        double ns = tests_per_hour *
                    cm.testCostNs(core::TestMode::ReadAndCompare);
        s.row({strprintf("%.0f min", period_min),
               TextTable::num(tests_per_hour, 1),
               TextTable::num(ns, 0),
               TextTable::pct(ns / lo_refresh_per_hour, 2)});
    }
    std::printf("%s", s.render().c_str());
    note("Even a 5-minute re-scrub adds well under 1% of the LO-REF "
         "refresh latency budget - closing the VRT exposure is "
         "cheap.");
    return 0;
}
