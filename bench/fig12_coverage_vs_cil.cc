/**
 * @file
 * Regenerates Figure 12: the coverage of write-interval time (the
 * exploitable fraction of total interval time in correctly-predicted
 * long intervals) as a function of the current interval length used
 * for prediction. The paper picks CIL = 512-2048 ms as the
 * accuracy/coverage sweet spot (coverage ~65-85% on average).
 */

#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace memcon;
using namespace memcon::trace;

int
main()
{
    bench::banner("Figure 12",
                  "coverage of write-interval time vs CIL");
    note("Coverage at CIL c: sum over intervals X > c+1024 of (X - c), "
         "over total interval time. Decreases with c.");

    std::vector<double> cils;
    for (double c = 1.0; c <= 32768.0; c *= 2.0)
        cils.push_back(c);

    TextTable table;
    std::vector<std::string> header{"application"};
    for (double c : cils)
        header.push_back(strprintf("%.0f", c));
    table.header(header);

    std::vector<double> sums(cils.size(), 0.0);
    unsigned n = 0;
    for (const AppPersona &p : AppPersona::table1Suite()) {
        WriteIntervalAnalyzer a = analyzeApp(p);
        std::vector<std::string> row{p.name};
        for (std::size_t i = 0; i < cils.size(); ++i) {
            double cov = a.coverageAtCil(TimeMs{cils[i]}, TimeMs{1024.0});
            sums[i] += cov;
            row.push_back(strprintf("%.2f", cov));
        }
        table.row(std::move(row));
        ++n;
    }
    std::vector<std::string> avg{"AVERAGE"};
    for (double s : sums)
        avg.push_back(strprintf("%.2f", s / n));
    table.row(std::move(avg));
    std::printf("%s", table.render().c_str());
    note("Columns are CIL values in ms. The paper's operating points "
         "(512/1024/2048 ms) balance this coverage against the "
         "Figure 11 accuracy.");
    return 0;
}
