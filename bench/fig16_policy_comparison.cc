/**
 * @file
 * Regenerates Figure 16: MEMCON versus other refresh mechanisms -
 * a 32 ms fixed baseline, RAIDR (16% of rows pinned at HI-REF by an
 * any-content profile), and the ideal 64 ms configuration - all
 * expressed as speedup over the aggressive 16 ms baseline, for
 * single-core and 4-core systems at 8/16/32 Gb.
 *
 * Paper: MEMCON > RAIDR > 32 ms everywhere, and MEMCON within 3-5%
 * of the 64 ms ideal.
 */

#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/policies.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::sim;

namespace
{

constexpr InstCount kInstsPerCore = 150000;
constexpr unsigned kNumMixes = 15;

double
geomean(const std::vector<double> &xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
speedup(unsigned cores, dram::Density density, double reduction,
        bool with_tests,
        const std::vector<std::vector<trace::CpuPersona>> &mixes)
{
    std::vector<double> ratios;
    for (unsigned m = 0; m < mixes.size(); ++m) {
        std::vector<trace::CpuPersona> mix(mixes[m].begin(),
                                           mixes[m].begin() + cores);
        SystemConfig base;
        base.cores = cores;
        base.density = density;
        base.seed = 2000 + m;
        SystemConfig alt = base;
        alt.refreshReduction = reduction;
        if (with_tests)
            alt.concurrentTests = 256;
        double b = System(base, mix).run(kInstsPerCore).ipcSum();
        double a = System(alt, mix).run(kInstsPerCore).ipcSum();
        ratios.push_back(a / b);
    }
    return geomean(ratios);
}

} // namespace

int
main()
{
    bench::banner("Figure 16",
                  "comparison with other refresh mechanisms (speedup "
                  "over the 16 ms baseline)");
    note("Policies: 32 ms fixed; RAIDR with 16% of rows at HI-REF "
         "(matches the Figure 4 any-content profile); MEMCON with "
         "its measured ~70% reduction + test traffic; ideal 64 ms.");

    auto mixes = trace::CpuPersona::randomMixes(kNumMixes, 4, 42);

    core::RefreshPolicy p32 = core::fixedRefreshPolicy(32.0, 16.0);
    core::RefreshPolicy raidr = core::raidrPolicy(0.16, 16.0, 64.0, 16.0);
    core::RefreshPolicy memcon = core::memconPolicy(0.70);
    core::RefreshPolicy ideal = core::fixedRefreshPolicy(64.0, 16.0);

    for (unsigned cores : {1u, 4u}) {
        std::printf("\n-- %u-core system\n", cores);
        TextTable table;
        table.header({"chip density", "32ms", "RAIDR", "MEMCON",
                      "64ms (ideal)"});
        for (dram::Density d :
             {dram::Density::Gb8, dram::Density::Gb16,
              dram::Density::Gb32}) {
            auto cell = [&](const core::RefreshPolicy &p,
                            bool with_tests) {
                double s =
                    speedup(cores, d, p.reduction, with_tests, mixes);
                return strprintf("%.3f", s);
            };
            table.row({dram::toString(d), cell(p32, false),
                       cell(raidr, false), cell(memcon, true),
                       cell(ideal, false)});
        }
        std::printf("%s", table.render().c_str());
    }
    note("Expected ordering per row: 32ms < RAIDR < MEMCON <= ideal, "
         "with MEMCON within a few percent of ideal (Section 6.3).");
    return 0;
}
