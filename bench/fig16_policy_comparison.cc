/**
 * @file
 * Regenerates Figure 16: MEMCON versus other refresh mechanisms -
 * a 32 ms fixed baseline, RAIDR (16% of rows pinned at HI-REF by an
 * any-content profile), and the ideal 64 ms configuration - all
 * expressed as speedup over the aggressive 16 ms baseline, for
 * single-core and 4-core systems at 8/16/32 Gb.
 *
 * Paper: MEMCON > RAIDR > 32 ms everywhere, and MEMCON within 3-5%
 * of the 64 ms ideal.
 *
 * Sweep decomposition: one point per (cores, density, mix) running
 * the shared 16 ms baseline plus all four policies; the geomean
 * reduction happens serially in task-index order, so the figure is
 * bit-identical for any --threads value.
 */

#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/policies.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

using namespace memcon;
using namespace memcon::sim;

namespace
{

double
geomean(const std::vector<double> &xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

struct PolicyCol
{
    const char *metric;
    double reduction;
    bool withTests;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Figure 16",
                  "comparison with other refresh mechanisms (speedup "
                  "over the 16 ms baseline)");
    note("Policies: 32 ms fixed; RAIDR with 16% of rows at HI-REF "
         "(matches the Figure 4 any-content profile); MEMCON with "
         "its measured ~70% reduction + test traffic; ideal 64 ms.");

    const unsigned num_mixes = opts.quick ? 3 : 15;
    const InstCount insts_per_core = opts.quick ? 20000 : 150000;
    auto mixes =
        trace::CpuPersona::randomMixes(num_mixes, 4, opts.campaignSeed);

    core::RefreshPolicy p32 = core::fixedRefreshPolicy(32.0, 16.0);
    core::RefreshPolicy raidr = core::raidrPolicy(0.16, 16.0, 64.0, 16.0);
    core::RefreshPolicy memcon = core::memconPolicy(0.70);
    core::RefreshPolicy ideal = core::fixedRefreshPolicy(64.0, 16.0);
    const std::vector<PolicyCol> cols = {
        {"s32", p32.reduction, false},
        {"raidr", raidr.reduction, false},
        {"memcon", memcon.reduction, true},
        {"ideal", ideal.reduction, false},
    };

    const unsigned core_counts[] = {1, 4};
    const dram::Density densities[] = {
        dram::Density::Gb8, dram::Density::Gb16, dram::Density::Gb32};

    bench::SweepRunner runner("fig16_policy_comparison", opts);
    for (unsigned cores : core_counts) {
        for (dram::Density d : densities) {
            for (unsigned m = 0; m < num_mixes; ++m) {
                std::vector<trace::CpuPersona> mix(
                    mixes[m].begin(), mixes[m].begin() + cores);
                runner.add(
                    strprintf("%uc/%s/mix%02u", cores,
                              dram::toString(d).c_str(), m),
                    [cores, d, mix, cols, insts_per_core](
                        const bench::TaskContext &ctx) {
                        SystemConfig base;
                        base.cores = cores;
                        base.density = d;
                        base.seed = ctx.seed;
                        double b = System(base, mix)
                                       .run(insts_per_core)
                                       .ipcSum();
                        bench::Metrics out;
                        for (const PolicyCol &c : cols) {
                            SystemConfig alt = base;
                            alt.refreshReduction = c.reduction;
                            if (c.withTests)
                                alt.concurrentTests = 256;
                            double a = System(alt, mix)
                                           .run(insts_per_core)
                                           .ipcSum();
                            out.push_back({c.metric, a / b});
                        }
                        return out;
                    });
            }
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (unsigned cores : core_counts) {
        std::printf("\n-- %u-core system\n", cores);
        TextTable table;
        table.header({"chip density", "32ms", "RAIDR", "MEMCON",
                      "64ms (ideal)"});
        for (dram::Density d : densities) {
            std::vector<std::vector<double>> per_col(cols.size());
            for (unsigned m = 0; m < num_mixes; ++m, ++idx)
                for (std::size_t c = 0; c < cols.size(); ++c)
                    per_col[c].push_back(
                        runner.metric(idx, cols[c].metric));
            std::vector<std::string> row{dram::toString(d)};
            for (std::size_t c = 0; c < cols.size(); ++c)
                row.push_back(strprintf("%.3f", geomean(per_col[c])));
            table.row(std::move(row));
        }
        std::printf("%s", table.render().c_str());
    }
    note("Expected ordering per row: 32ms < RAIDR < MEMCON <= ideal, "
         "with MEMCON within a few percent of ideal (Section 6.3).");
    runner.finish();
    return 0;
}
