/**
 * @file
 * Cost-benefit sweep of the read-disturb mitigation (extension figure,
 * companion to the abl_disturb_loref ablation).
 *
 * The guard's one first-order knob is the aggressor alert threshold:
 * how many ACTs an aggressor may issue before its neighbors are
 * refreshed out of band. Lower is safer and more expensive - every
 * crossing spends victim-refresh request slots and, for chronic
 * aggressors, demotes victims back to HI-REF, eating into the refresh
 * reduction MEMCON exists to deliver. This sweep runs a double-sided
 * attacker against the closed loop across alert thresholds from "off"
 * down to a quarter of the weakest row's flip threshold and reports
 * both sides of the trade: residual victim flips on one axis, victim
 * refreshes + test traffic + retained refresh reduction on the other.
 *
 * Deterministic for any --threads; smoke-tested via --quick.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/online_memcon.hh"
#include "failure/disturb.hh"
#include "failure/injector.hh"
#include "runner.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"
#include "trace/hammer.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

bench::Metrics
runOne(std::uint64_t alert, std::uint64_t seed, bool quick)
{
    dram::Geometry geom;
    geom.rowsPerBank = 64; // 512 rows
    auto timing =
        dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    const dram::AddressMap map = dram::AddressMap::blocked(3, 6);

    failure::DisturbParams dp;
    dp.hiWindowMs = 0.25;
    dp.loWindowMs = 1.0;
    dp.medianThreshold = 3500;
    dp.minThreshold = 2600;
    dp.seed = hashMix64(seed ^ 0xd157);
    failure::DisturbModel disturb(dp, &map, geom.totalRows());

    failure::FaultInjectorConfig inj_cfg;
    inj_cfg.transientPerRowPerMs = 0.0;
    inj_cfg.seed = hashMix64(seed ^ 0x1faf11);
    failure::FaultInjector injector(inj_cfg, geom.totalRows());
    injector.attachDisturb(&disturb);

    Tick now{};

    OnlineMemcon *slot = nullptr;
    sim::ControllerConfig mc_cfg;
    OnlineMemcon::installObserver(mc_cfg, slot);
    mc_cfg.eccProbe = [&](std::uint64_t addr, Tick t) {
        RowId row = geom.flatRowIndex(geom.decompose(addr));
        bool lo = slot && slot->isLoRef(row);
        return injector.onRead(row, t, lo);
    };
    auto inner_write = mc_cfg.writeObserver;
    mc_cfg.writeObserver = [&, inner_write](std::uint64_t addr, Tick t) {
        injector.onRowRestored(geom.flatRowIndex(geom.decompose(addr)),
                               t);
        if (inner_write)
            inner_write(addr, t);
    };
    auto inner_act = mc_cfg.activateObserver;
    mc_cfg.activateObserver = [&, inner_act](std::uint64_t addr, Tick t) {
        disturb.onActivate(geom.flatRowIndex(geom.decompose(addr)), t);
        if (inner_act)
            inner_act(addr, t);
    };
    sim::MemoryController mc(geom, timing, mc_cfg);

    OnlineMemconConfig om_cfg;
    om_cfg.quantum = usToTicks(20.0);
    om_cfg.testIdle = usToTicks(10.0);
    om_cfg.retargetPeriod = usToTicks(10.0);
    om_cfg.testEngine.slots = 16;
    om_cfg.testEngine.wordsPerRow = 64;
    om_cfg.addressMap = map;
    om_cfg.resilience.enabled = true;
    om_cfg.resilience.retestBackoff = usToTicks(20.0);
    om_cfg.resilience.fallbackHold = usToTicks(60.0);
    if (alert != 0) {
        om_cfg.disturbGuard.enabled = true;
        om_cfg.disturbGuard.actAlertThreshold = alert;
        om_cfg.disturbGuard.crossingWindow = usToTicks(200.0);
        om_cfg.disturbGuard.bankCrossingLimit = 64;
        om_cfg.disturbGuard.bankDegradeHold = usToTicks(100.0);
        om_cfg.victimRefresher = [&](RowId victim, Tick t) {
            disturb.onVictimRefreshed(victim, t);
        };
    }
    auto om = std::make_unique<OnlineMemcon>(
        geom, mc, om_cfg, [&](RowId row) {
            return injector.hasLatentFault(row, now, true);
        });
    slot = om.get();
    disturb.setLoRefQuery(
        [&](RowId row) { return slot->isLoRef(row); });

    // Benign traffic writes only the lower half of each bank's rows;
    // the attacker hammers the never-written upper band, which the RO
    // sweep promotes to LO-REF (see abl_disturb_loref for the layout
    // rationale).
    const std::uint64_t benign_rows = geom.rowsPerBank / 2;
    const std::uint64_t benign_blocks =
        benign_rows * geom.banks * geom.columnsPerRow;
    trace::CpuAccessStream benign(
        trace::CpuPersona::byName("perlbench"), hashMix64(seed ^ 0xc02e));
    sim::SimpleCore core(0, std::move(benign), mc, 0, benign_blocks);

    trace::HammerSpec hs;
    hs.kind = trace::HammerKind::DoubleSided;
    hs.bank = 0;
    hs.actsPerUs = 10.0;
    hs.horizonMs = quick ? 0.5 : 2.0;
    hs.rowLo = benign_rows;
    hs.seed = hashMix64(seed ^ 0xa66);
    trace::HammerStream hammer(hs, map, geom.totalRows());

    const Tick horizon = msToTicks(hs.horizonMs);
    bool held = false;
    sim::Request held_req;
    while (now < horizon) {
        now += timing.tCk;
        Tick at{};
        std::uint64_t row = 0;
        while (true) {
            if (!held) {
                if (!hammer.peek(&at, &row) || at > now)
                    break;
                hammer.pop();
                held_req = sim::Request{};
                held_req.type = sim::Request::Type::Read;
                held_req.addr =
                    geom.compose(geom.rowFromFlatIndex(RowId{row}));
                held = true;
            }
            if (!mc.enqueue(sim::Request{held_req}, now))
                break;
            held = false;
        }
        mc.tick(now);
        om->tick(now);
        for (unsigned k = 0; k < 5; ++k)
            core.tick(now);
    }

    return bench::Metrics{
        {"flips", static_cast<double>(disturb.flipsRecorded())},
        {"victim_refreshes",
         static_cast<double>(om->victimRefreshes())},
        {"tests", static_cast<double>(om->testsStarted())},
        {"crossings",
         static_cast<double>(om->disturbGuard().crossings())},
        {"bank_degrades", om->stats().value("disturb.bankDegrades")},
        {"pinned", static_cast<double>(om->pinnedRows())},
        {"lo_fraction", om->loRefFraction()},
        {"reduction", om->emergentReduction()},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Fig 20 (extension): disturb mitigation trade-off",
                  "residual victim flips vs. victim-refresh cost "
                  "across guard alert thresholds");
    note("Double-sided attacker at 10 ACTs/us on bank 0's cold band "
         "of a 512-row module. Alert 0 = guard off (the unmitigated "
         "mechanism); "
         "lower thresholds refresh victims earlier, spending request "
         "slots and refresh reduction for fewer flips.");

    const std::vector<std::uint64_t> alerts = {0, 2048, 512, 128};
    bench::SweepRunner runner("fig20_disturb_tradeoff", opts);
    // One world seed across the sweep: every alert threshold faces
    // the same attacker, thresholds, and benign stream, so the curve
    // isolates the knob.
    const std::uint64_t world = deriveTaskSeed(opts.campaignSeed, 2000);
    for (std::uint64_t alert : alerts) {
        runner.add(alert == 0 ? std::string("off")
                              : strprintf("alert%llu",
                                          (unsigned long long)alert),
                   [alert, world](const bench::TaskContext &ctx) {
                       return runOne(alert, world, ctx.quick);
                   });
    }
    runner.run();

    TextTable t;
    t.header({"alert ACTs", "flips", "victim refr", "crossings",
              "tests", "bank degr", "pinned", "LO-REF", "reduction"});
    std::size_t idx = 0;
    for (std::uint64_t alert : alerts) {
        const bench::PointResult &o = runner.results()[idx++];
        t.row({alert == 0 ? "off" : TextTable::num((double)alert, 0),
               TextTable::num(o.metric("flips"), 0),
               TextTable::num(o.metric("victim_refreshes"), 0),
               TextTable::num(o.metric("crossings"), 0),
               TextTable::num(o.metric("tests"), 0),
               TextTable::num(o.metric("bank_degrades"), 0),
               TextTable::num(o.metric("pinned"), 0),
               TextTable::pct(o.metric("lo_fraction"), 1),
               TextTable::pct(o.metric("reduction"), 1)});
    }
    std::printf("%s", t.render().c_str());
    note("The knee is where victim refreshes stop buying flips: past "
         "it the guard only taxes the reduction. disturbHardenedPolicy"
         "() (core/policies) folds the measured overhead and degraded-"
         "bank fraction back into a policy-level reduction figure.");
    runner.finish();
    return 0;
}
