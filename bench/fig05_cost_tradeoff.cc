/**
 * @file
 * Regenerates Figure 5: the trade-off between the cost and the
 * frequency of testing. The average cost per unit time of a row that
 * is tested at the start of each write interval is compared against
 * the flat HI-REF cost: frequent testing (short intervals) costs more
 * than always refreshing aggressively; infrequent testing costs less,
 * approaching the LO-REF floor.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/cost_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Figure 5",
                  "average cost vs testing frequency (per row)");

    CostModel cm;
    double hi_avg = cm.hiRefAverageNsPerMs();
    double lo_floor = cm.refreshOpNs() / cm.config().loRefMs;
    note(strprintf("HI-REF average cost: %.3f ns/ms; LO-REF floor: "
                   "%.3f ns/ms",
                   hi_avg, lo_floor));

    TextTable table;
    table.header({"write-interval(ms)", "R&C avg(ns/ms)",
                  "C&C avg(ns/ms)", "vs HI-REF (R&C)"});
    for (double interval :
         {16.0, 64.0, 128.0, 256.0, 448.0, 560.0, 864.0, 1024.0, 2048.0,
          8192.0, 32768.0}) {
        double rc = cm.averageCostNsPerMs(TestMode::ReadAndCompare,
                                          TimeMs{interval});
        double cc = cm.averageCostNsPerMs(TestMode::CopyAndCompare,
                                          TimeMs{interval});
        std::string verdict = rc > hi_avg ? "worse (skip test)"
                                          : "better (test)";
        table.row({TextTable::num(interval, 0), TextTable::num(rc, 3),
                   TextTable::num(cc, 3), verdict});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\n");
    note("Shape check (Fig 5b vs 5a): frequent testing exceeds the "
         "HI-REF cost; past MinWriteInterval the tested row is "
         "cheaper, approaching the LO-REF floor - which is why "
         "MEMCON tests selectively (Fig 5c).");
    return 0;
}
