/**
 * @file
 * Regenerates Figure 14: MEMCON's reduction in refresh operation
 * count versus the aggressive 16 ms baseline, for CIL (quantum) 512,
 * 1024, and 2048 ms, with the 75% upper bound. Paper: 64.7%-74.5%,
 * close to the bound and insensitive to the CIL choice.
 *
 * One sweep point per (application, CIL); each point derives its
 * persona seed from the campaign seed, so the whole figure is
 * reproducible from the seed in the banner and bit-identical for any
 * --threads value.
 */

#include <algorithm>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "runner.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("Figure 14", "reduction in refresh count with MEMCON");
    note("HI-REF 16 ms / LO-REF 64 ms; upper bound 75%. Paper: "
         "64.7%-74.5% across apps, stable across CIL 512-2048 ms.");

    const double cils[] = {512.0, 1024.0, 2048.0};
    std::vector<trace::AppPersona> suite =
        trace::AppPersona::table1Suite();
    if (opts.quick)
        suite.resize(2);

    bench::SweepRunner runner("fig14_refresh_reduction", opts);
    for (const trace::AppPersona &p : suite) {
        for (double cil : cils) {
            runner.add(
                p.name + "/cil" + std::to_string(static_cast<int>(cil)),
                [persona = p, cil](const bench::TaskContext &ctx) {
                    trace::AppPersona local = persona;
                    local.seed = ctx.seed;
                    if (ctx.quick) {
                        local.pages = std::min<std::uint64_t>(
                            local.pages, 4000);
                        local.durationSec =
                            std::min(local.durationSec, 60.0);
                    }
                    MemconConfig cfg;
                    cfg.quantumMs = TimeMs{cil};
                    MemconEngine engine(cfg);
                    return bench::Metrics{
                        {"reduction", engine.runOnApp(local).reduction()}};
                });
        }
    }
    runner.run();

    TextTable table;
    table.header({"application", "CIL 512", "CIL 1024", "CIL 2048",
                  "upper-bound"});
    double sums[3] = {0.0, 0.0, 0.0};
    for (std::size_t a = 0; a < suite.size(); ++a) {
        std::vector<std::string> row{suite[a].name};
        for (std::size_t i = 0; i < 3; ++i) {
            double red = runner.metric(a * 3 + i, "reduction");
            sums[i] += red;
            row.push_back(TextTable::pct(red, 1));
        }
        row.push_back("75.0%");
        table.row(std::move(row));
    }
    double n = static_cast<double>(suite.size());
    table.row({"AVERAGE", TextTable::pct(sums[0] / n, 1),
               TextTable::pct(sums[1] / n, 1),
               TextTable::pct(sums[2] / n, 1), "75.0%"});
    std::printf("%s", table.render().c_str());
    note("The reduction approaches the 75% bound and varies little "
         "with the quantum length, as in the paper.");
    runner.finish();
    return 0;
}
