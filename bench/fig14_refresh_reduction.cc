/**
 * @file
 * Regenerates Figure 14: MEMCON's reduction in refresh operation
 * count versus the aggressive 16 ms baseline, for CIL (quantum) 512,
 * 1024, and 2048 ms, with the 75% upper bound. Paper: 64.7%-74.5%,
 * close to the bound and insensitive to the CIL choice.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::core;

int
main()
{
    bench::banner("Figure 14", "reduction in refresh count with MEMCON");
    note("HI-REF 16 ms / LO-REF 64 ms; upper bound 75%. Paper: "
         "64.7%-74.5% across apps, stable across CIL 512-2048 ms.");

    const double cils[] = {512.0, 1024.0, 2048.0};
    TextTable table;
    table.header({"application", "CIL 512", "CIL 1024", "CIL 2048",
                  "upper-bound"});

    double sums[3] = {0.0, 0.0, 0.0};
    unsigned n = 0;
    for (const trace::AppPersona &p : trace::AppPersona::table1Suite()) {
        std::vector<std::string> row{p.name};
        for (unsigned i = 0; i < 3; ++i) {
            MemconConfig cfg;
            cfg.quantumMs = cils[i];
            MemconEngine engine(cfg);
            double red = engine.runOnApp(p).reduction();
            sums[i] += red;
            row.push_back(TextTable::pct(red, 1));
        }
        row.push_back("75.0%");
        table.row(std::move(row));
        ++n;
    }
    table.row({"AVERAGE", TextTable::pct(sums[0] / n, 1),
               TextTable::pct(sums[1] / n, 1),
               TextTable::pct(sums[2] / n, 1), "75.0%"});
    std::printf("%s", table.render().c_str());
    note("The reduction approaches the 75% bound and varies little "
         "with the quantum length, as in the paper.");
    return 0;
}
