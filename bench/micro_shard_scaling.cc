/**
 * @file
 * Bank-sharded engine scaling microbench: the 1M-page campaign over
 * the zen-ddr4-64bank map (DESIGN.md §17), run at shardThreads 1, 2,
 * 4, and 8, against the flat identity-map engine as the semantic
 * baseline. Emits BENCH_micro_shard_scaling.json so the events/sec
 * trajectory of the sharded hot path is tracked across revisions.
 *
 * Two invariants are enforced in-bench, not just reported:
 *
 *  - every sharded point must report BIT-IDENTICAL digest-surface
 *    metrics for every shardThreads value (the deterministic
 *    cross-shard reduction contract), and
 *  - those metrics must equal the flat run's exactly, because the
 *    campaign is provisioned so no shared resource binds (no buffer
 *    drops, no budget skips, no budget-starved deferrals) - the
 *    regime where sharding is a pure implementation detail.
 *
 * A violation is fatal. Wall clock stays outside the digest, so
 * --repeat N prices the scaling stably without tripping the runner's
 * repeat-invariance check.
 *
 * The acceptance bar: >= 5x events/sec at shardThreads 8 over
 * shardThreads 1 on the full 1M-page trace (hardware permitting -
 * the note prints the measured ratio either way).
 *
 * --address-map NAME swaps the sharded preset (any multi-bank map);
 * the flat baseline always runs the identity map.
 */

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/engine.hh"
#include "dram/address_map.hh"
#include "runner.hh"

using namespace memcon;
using namespace memcon::core;

namespace
{

/**
 * The campaign trace: every page gets a handful of hash-timed writes,
 * so all 64 banks carry live PRIL candidates, deadline-wheel entries,
 * and scrub load for the whole duration.
 */
std::vector<std::vector<TimeMs>>
campaignTrace(std::uint64_t seed, std::size_t pages, double duration_ms)
{
    std::vector<std::vector<TimeMs>> writes(pages);
    for (std::size_t p = 0; p < pages; ++p) {
        Rng rng(deriveTaskSeed(seed, p));
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(3));
        std::vector<double> times;
        times.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            times.push_back(rng.uniform(0.0, duration_ms));
        std::sort(times.begin(), times.end());
        for (double t : times)
            writes[p].push_back(TimeMs{t});
    }
    return writes;
}

/**
 * Provisioned so nothing shared binds: the budget covers every page
 * in one quantum (the read-only sweep and the worst-case scrub wave
 * both burst to module size), and the buffer never drops - the
 * preconditions for flat == sharded exact equality (asserted below,
 * not assumed; a 65536-slot budget over 1M pages defers work and
 * lets each shard's private budget diverge from the flat run's).
 */
MemconConfig
campaignConfig(std::size_t pages)
{
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{64.0};
    cfg.testSlotsPer64ms = static_cast<std::uint64_t>(pages);
    cfg.scrubPeriodMs = 8192.0;
    cfg.writeBufferCapacity = pages;
    return cfg;
}

/** The digest-surface metrics (identical for flat and sharded). */
bench::Metrics
digestMetrics(const MemconResult &r)
{
    return bench::Metrics{
        {"writes", static_cast<double>(r.writes)},
        {"tests_run", static_cast<double>(r.testsRun)},
        {"scrub_tests", static_cast<double>(r.scrubTests)},
        {"buffer_drops", static_cast<double>(r.bufferDrops)},
        {"tests_skipped", static_cast<double>(r.testsSkippedBudget)},
        {"tests_deferred", static_cast<double>(r.testsDeferredBudget)},
        {"refresh_ops", static_cast<double>(r.refreshOpsMemcon)},
        {"hi_ms", r.hiTimeMs},
        {"lo_ms", r.loTimeMs},
        {"test_time_ns", r.testTimeNs},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::SweepOptions opts = bench::parseSweepArgs(argc, argv);
    bench::banner("micro_shard_scaling",
                  "bank-sharded engine vs flat, 64-bank campaign");

    const std::string map_name =
        opts.addressMap.empty() ? "zen-ddr4-64bank" : opts.addressMap;
    const dram::AddressMap map = dram::AddressMap::preset(map_name);
    note(strprintf("sharded map: %s", map.describe().c_str()));
    note("flat baseline and every shardThreads point must agree "
         "bit-for-bit (fatal otherwise)");

    const std::size_t pages =
        opts.quick ? (std::size_t{1} << 16) : (std::size_t{1} << 20);
    const double duration_ms = opts.quick ? 4000.0 : 16000.0;
    const std::vector<unsigned> thread_points = {1, 2, 4, 8};

    // One shared trace, built outside the timed lambdas, so the wall
    // clock prices only the engine.
    const auto trace = campaignTrace(deriveTaskSeed(opts.campaignSeed, 0),
                                     pages, duration_ms);

    // The scaling points must run alone on the pool (--threads > 1
    // would overlap them and corrupt the wall clocks), so the runner
    // is pinned to one worker; shardThreads provides the parallelism
    // being measured.
    bench::SweepOptions run_opts = opts;
    run_opts.threads = 1;
    bench::SweepRunner runner("micro_shard_scaling", run_opts);

    runner.add("flat/identity", [&](const bench::TaskContext &) {
        MemconEngine engine(campaignConfig(pages));
        return digestMetrics(engine.run(trace, duration_ms));
    });
    for (unsigned t : thread_points) {
        runner.add(strprintf("sharded/t%u", t),
                   [&, t](const bench::TaskContext &) {
                       MemconConfig cfg = campaignConfig(pages);
                       cfg.addressMap = map;
                       cfg.shardThreads = t;
                       MemconEngine engine(cfg);
                       return digestMetrics(engine.run(trace, duration_ms));
                   });
    }

    const std::vector<bench::PointResult> &results = runner.run();

    // Invariant 1: the campaign really is in the uncoupled regime
    // (no drops, no skips, and no budget-starved deferrals - the
    // third one is the subtle coupling: deferred work is retried, so
    // it never shows up in tests_skipped).
    fatal_if(results[0].metric("buffer_drops") != 0.0 ||
                 results[0].metric("tests_skipped") != 0.0 ||
                 results[0].metric("tests_deferred") != 0.0,
             "flat run hit a shared-resource limit; the equality "
             "contract does not apply to this configuration");
    // Invariant 2: every point, flat included, reduced to the same
    // bits.
    const std::string flat_line = bench::metricsLine(results[0].metrics);
    for (std::size_t i = 1; i < results.size(); ++i)
        fatal_if(bench::metricsLine(results[i].metrics) != flat_line,
                 "point '%s' diverged from the flat engine:\n  %s\nvs\n"
                 "  %s",
                 results[i].label.c_str(),
                 bench::metricsLine(results[i].metrics).c_str(),
                 flat_line.c_str());
    note("all points bit-identical to the flat engine");

    TextTable table;
    table.header({"point", "events", "wall s", "events/sec", "speedup"});
    const double wall_t1 = runner.pointWallSeconds(1);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double wall = runner.pointWallSeconds(i);
        const double events = results[i].metric("writes") +
                              results[i].metric("tests_run") +
                              results[i].metric("scrub_tests");
        table.row({results[i].label, TextTable::num(events, 0),
                   TextTable::num(wall, 3),
                   wall > 0.0 ? TextTable::num(events / wall, 0) : "-",
                   i >= 1 && wall > 0.0
                       ? TextTable::num(wall_t1 / wall, 2) + "x"
                       : "-"});
    }
    std::printf("%s", table.render().c_str());

    const double wall_t8 = runner.pointWallSeconds(results.size() - 1);
    if (wall_t8 > 0.0)
        note(strprintf("shardThreads 8 speedup: %.2fx events/sec over "
                       "shardThreads 1 (target >= 5x on the full "
                       "1M-page trace)",
                       wall_t1 / wall_t8));
    runner.finish();
    return 0;
}
