/**
 * @file
 * Unit and behavioural tests for the cycle-level simulator: the
 * FR-FCFS controller (queueing, scheduling, refresh, write drain,
 * test-traffic priority), the simple core model, and the full
 * system.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"
#include "sim/controller.hh"
#include "sim/system.hh"
#include "trace/cpu_gen.hh"

namespace memcon::sim
{
namespace
{

dram::Geometry
smallGeom()
{
    dram::Geometry g;
    g.channels = 1;
    g.ranks = 1;
    g.banks = 8;
    g.rowsPerBank = 1 << 12;
    return g;
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : geom(smallGeom()),
          timing(dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0}))
    {
        cfg.refreshEnabled = false; // most tests want a quiet channel
        mc = std::make_unique<MemoryController>(geom, timing, cfg);
    }

    /** Run the controller for a number of DRAM cycles. */
    void
    spin(Tick &now, unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            now += timing.tCk;
            mc->tick(now);
        }
    }

    Request
    makeRead(std::uint64_t addr, Tick *done_at)
    {
        Request r;
        r.type = Request::Type::Read;
        r.addr = addr;
        r.onComplete = [done_at](const Request &) {
            *done_at = Tick{1}; // flag completion; value rewritten below
        };
        return r;
    }

    dram::Geometry geom;
    dram::TimingParams timing;
    ControllerConfig cfg;
    std::unique_ptr<MemoryController> mc;
};

TEST_F(ControllerTest, ReadCompletesWithCallback)
{
    bool done = false;
    Request r;
    r.type = Request::Type::Read;
    r.addr = 0x1000;
    r.onComplete = [&done](const Request &) { done = true; };
    Tick now{};
    ASSERT_TRUE(mc->enqueue(std::move(r), now));
    spin(now, 100);
    EXPECT_TRUE(done);
    EXPECT_TRUE(mc->idle());
    EXPECT_EQ(mc->stats().value("completed.read"), 1.0);
}

TEST_F(ControllerTest, QueueCapacityEnforced)
{
    Tick now{};
    for (std::size_t i = 0; i < cfg.readQueueCapacity; ++i) {
        Request r;
        r.type = Request::Type::Read;
        r.addr = i * 64;
        ASSERT_TRUE(mc->enqueue(std::move(r), now));
    }
    Request extra;
    extra.type = Request::Type::Read;
    extra.addr = 0;
    EXPECT_FALSE(mc->enqueue(std::move(extra), now));
    EXPECT_EQ(mc->stats().value("queueFull"), 1.0);
}

TEST_F(ControllerTest, RowHitFasterThanRowMiss)
{
    // First read opens the row; a second read to the same row
    // completes sooner than one to a different row of the same bank.
    auto latency_of = [&](std::uint64_t warm_addr,
                          std::uint64_t probe_addr) {
        ControllerConfig c;
        c.refreshEnabled = false;
        MemoryController m(geom, timing, c);
        Tick now{};
        bool warm_done = false;
        Request w;
        w.type = Request::Type::Read;
        w.addr = warm_addr;
        w.onComplete = [&](const Request &) { warm_done = true; };
        EXPECT_TRUE(m.enqueue(std::move(w), now));
        while (!warm_done) {
            now += timing.tCk;
            m.tick(now);
        }
        Tick issue = now;
        Tick done_at{};
        Request p;
        p.type = Request::Type::Read;
        p.addr = probe_addr;
        p.onComplete = [&](const Request &) { done_at = Tick{1}; };
        EXPECT_TRUE(m.enqueue(std::move(p), now));
        while (done_at == Tick{}) {
            now += timing.tCk;
            m.tick(now);
        }
        return now - issue;
    };

    // Same row (column 1 of row 0) vs a different row in that bank.
    std::uint64_t same_row = 64;
    std::uint64_t other_row = geom.rowBytes() * geom.banks; // row 1, bank 0
    Tick hit = latency_of(0, same_row);
    Tick miss = latency_of(0, other_row);
    EXPECT_LT(hit, miss);
}

TEST_F(ControllerTest, WritesAreDrainedAndCounted)
{
    Tick now{};
    for (int i = 0; i < 8; ++i) {
        Request w;
        w.type = Request::Type::Write;
        w.addr = static_cast<std::uint64_t>(i) * 64;
        ASSERT_TRUE(mc->enqueue(std::move(w), now));
    }
    spin(now, 2000);
    EXPECT_TRUE(mc->idle());
    EXPECT_EQ(mc->stats().value("completed.write"), 8.0);
}

TEST_F(ControllerTest, DemandReadsOutrankTestTraffic)
{
    Tick now{};
    // A test read to one row and a demand read to another, same bank.
    bool test_done = false, demand_done = false;
    Tick test_at{}, demand_at{};

    Request t;
    t.type = Request::Type::Read;
    t.addr = geom.rowBytes() * geom.banks * 2; // row 2, bank 0
    t.isTest = true;
    t.onComplete = [&](const Request &) {
        test_done = true;
        test_at = Tick{1};
    };
    Request d;
    d.type = Request::Type::Read;
    d.addr = 0; // row 0, bank 0
    d.onComplete = [&](const Request &) {
        demand_done = true;
        demand_at = Tick{1};
    };
    // Enqueue the test first; FR-FCFS with demand priority must still
    // serve the demand read first.
    ASSERT_TRUE(mc->enqueue(std::move(t), now));
    ASSERT_TRUE(mc->enqueue(std::move(d), now));
    while (!test_done || !demand_done) {
        now += timing.tCk;
        mc->tick(now);
        if (demand_done && demand_at == Tick{1}) {
            demand_at = now;
        }
        if (test_done && test_at == Tick{1}) {
            test_at = now;
        }
    }
    EXPECT_LT(demand_at, test_at);
}

TEST_F(ControllerTest, RefreshCadenceMatchesEffectiveTrefi)
{
    ControllerConfig c;
    c.refreshEnabled = true;
    c.refreshReduction = 0.0;
    MemoryController m(geom, timing, c);
    Tick now{};
    Tick horizon = usToTicks(1000); // 1 ms
    while (now < horizon) {
        now += timing.tCk;
        m.tick(now);
    }
    double expected =
        static_cast<double>(horizon / timing.cyc(timing.tREFI));
    EXPECT_NEAR(m.stats().value("refresh"), expected, 2.0);
}

/** Refresh-reduction sweep: the REF count scales by 1 - reduction. */
class RefreshReduction : public ::testing::TestWithParam<double>
{
};

TEST_P(RefreshReduction, ScalesRefreshCount)
{
    double reduction = GetParam();
    dram::Geometry geom = smallGeom();
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    ControllerConfig base_cfg, red_cfg;
    base_cfg.refreshEnabled = red_cfg.refreshEnabled = true;
    red_cfg.refreshReduction = reduction;
    MemoryController base(geom, timing, base_cfg);
    MemoryController red(geom, timing, red_cfg);
    Tick now{};
    Tick horizon = usToTicks(2000);
    while (now < horizon) {
        now += timing.tCk;
        base.tick(now);
        red.tick(now);
    }
    double ratio =
        red.stats().value("refresh") / base.stats().value("refresh");
    EXPECT_NEAR(ratio, 1.0 - reduction, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Reductions, RefreshReduction,
                         ::testing::Values(0.25, 0.5, 0.6, 0.75));

TEST(SystemTest, ComputeBoundCoreNearsIssueWidth)
{
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.seed = 3;
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName(
        "perlbench")}; // 0.8 MPKI, nearly compute bound
    System sys(cfg, mix);
    RunResult r = sys.run(200000);
    EXPECT_GT(r.ipc[0], 2.0);
    EXPECT_LE(r.ipc[0], 4.0);
}

TEST(SystemTest, MemoryBoundCoreIsThrottled)
{
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.seed = 3;
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("mcf")};
    System sys(cfg, mix);
    RunResult r = sys.run(200000);
    EXPECT_LT(r.ipc[0], 1.0);
}

TEST(SystemTest, DeterministicRuns)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.seed = 9;
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("mcf"),
                                       trace::CpuPersona::byName("lbm")};
    System a(cfg, mix), b(cfg, mix);
    RunResult ra = a.run(100000), rb = b.run(100000);
    EXPECT_EQ(ra.totalTicks, rb.totalTicks);
    EXPECT_EQ(ra.ipc, rb.ipc);
    EXPECT_EQ(ra.refreshCount, rb.refreshCount);
}

TEST(SystemTest, RefreshReductionImprovesMemoryBoundIpc)
{
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("mcf")};
    SystemConfig base;
    base.cores = 1;
    base.density = dram::Density::Gb32;
    SystemConfig fast = base;
    fast.refreshReduction = 0.75;
    RunResult rb = System(base, mix).run(300000);
    RunResult rf = System(fast, mix).run(300000);
    EXPECT_GT(rf.ipc[0], rb.ipc[0] * 1.15);
}

TEST(SystemTest, SpeedupGrowsWithChipDensity)
{
    // Figure 15's key trend: denser chips suffer more from refresh,
    // so eliminating refreshes helps more.
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("lbm")};
    auto speedup_at = [&](dram::Density d) {
        SystemConfig base;
        base.cores = 1;
        base.density = d;
        SystemConfig fast = base;
        fast.refreshReduction = 0.75;
        double b = System(base, mix).run(200000).ipc[0];
        double f = System(fast, mix).run(200000).ipc[0];
        return f / b;
    };
    double s8 = speedup_at(dram::Density::Gb8);
    double s32 = speedup_at(dram::Density::Gb32);
    EXPECT_GT(s32, s8);
    EXPECT_GT(s8, 1.0);
}

TEST(SystemTest, MismatchedMixIsFatal)
{
    SystemConfig cfg;
    cfg.cores = 2;
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("mcf")};
    EXPECT_EXIT(System(cfg, mix), ::testing::ExitedWithCode(1),
                "mix has");
}

TEST(TestTraffic, InjectorPacesTests)
{
    dram::Geometry geom = smallGeom();
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    ControllerConfig c;
    c.refreshEnabled = false;
    MemoryController mc(geom, timing, c);
    TestTrafficSource src(geom, mc, 256, false, 1);
    Tick now{};
    Tick horizon = msToTicks(4.0); // 1/16 of a 64 ms window
    while (now < horizon) {
        now += timing.tCk;
        mc.tick(now);
        src.tick(now);
    }
    // 256 tests per 64 ms -> 16 per 4 ms (+/- pipeline slack).
    EXPECT_NEAR(static_cast<double>(src.testsStarted()), 16.0, 2.0);
    // Read&Compare mode issues only reads.
    EXPECT_EQ(mc.stats().value("enq.write"), 0.0);
    EXPECT_GT(mc.stats().value("enq.read"), 0.0);
}

TEST(TestTraffic, CopyModeAddsWrites)
{
    dram::Geometry geom = smallGeom();
    auto timing = dram::TimingParams::ddr3_1600(dram::Density::Gb8, TimeMs{16.0});
    ControllerConfig c;
    c.refreshEnabled = false;
    MemoryController mc(geom, timing, c);
    TestTrafficSource src(geom, mc, 256, true, 1);
    Tick now{};
    while (now < msToTicks(2.0)) {
        now += timing.tCk;
        mc.tick(now);
        src.tick(now);
    }
    EXPECT_GT(mc.stats().value("enq.write"), 0.0);
}

TEST(SystemTest, TestTrafficOverheadIsSmall)
{
    // Table 3: even 1024 concurrent tests per 64 ms cost only a few
    // percent of performance.
    std::vector<trace::CpuPersona> mix{trace::CpuPersona::byName("milc")};
    SystemConfig base;
    base.cores = 1;
    base.refreshReduction = 0.75;
    SystemConfig tested = base;
    tested.concurrentTests = 1024;
    double b = System(base, mix).run(200000).ipc[0];
    double t = System(tested, mix).run(200000).ipc[0];
    EXPECT_LT(b / t - 1.0, 0.08);
    EXPECT_GE(b / t, 0.999);
}

} // namespace
} // namespace memcon::sim
