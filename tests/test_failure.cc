/**
 * @file
 * Unit and property tests for the failure substrate: keyed
 * permutations, the address scrambler, column remapping, content
 * providers, the data-dependent failure model, and the SoftMC-style
 * tester - including the calibration bands the reproduction targets
 * (Figure 4's 13.5% ALL-FAIL and 0.38-5.6% content spread).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "failure/content.hh"
#include "failure/model.hh"
#include "failure/remap.hh"
#include "failure/scrambler.hh"
#include "failure/tester.hh"

namespace memcon::failure
{
namespace
{

/** Bijectivity sweep over widths and keys. */
class PermutationBijective
    : public ::testing::TestWithParam<std::pair<unsigned, std::uint64_t>>
{
};

TEST_P(PermutationBijective, ForwardInverseRoundTrip)
{
    auto [bits, key] = GetParam();
    KeyedPermutation perm(bits, key);
    Rng rng(55);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.uniformInt(perm.size());
        std::uint64_t f = perm.forward(v);
        ASSERT_LT(f, perm.size());
        ASSERT_EQ(perm.inverse(f), v);
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndKeys, PermutationBijective,
    ::testing::Values(std::pair{4u, 1ull}, std::pair{9u, 77ull},
                      std::pair{15u, 0xdeadbeefull}, std::pair{17u, 3ull},
                      std::pair{24u, 0xabcdull}));

TEST(KeyedPermutation, ExhaustiveBijectionSmallWidth)
{
    KeyedPermutation perm(8, 1234);
    std::set<std::uint64_t> images;
    for (std::uint64_t v = 0; v < 256; ++v)
        images.insert(perm.forward(v));
    EXPECT_EQ(images.size(), 256u); // a true permutation
}

TEST(KeyedPermutation, DifferentKeysDifferentPermutations)
{
    KeyedPermutation a(12, 1), b(12, 2);
    int same = 0;
    for (std::uint64_t v = 0; v < 1000; ++v)
        same += a.forward(v) == b.forward(v);
    EXPECT_LT(same, 10);
}

TEST(KeyedPermutation, ActuallyScrambles)
{
    KeyedPermutation perm(16, 42);
    // Neighbouring inputs should rarely stay neighbours.
    int adjacent = 0;
    for (std::uint64_t v = 0; v + 1 < 1000; ++v) {
        std::uint64_t d = perm.forward(v) > perm.forward(v + 1)
                              ? perm.forward(v) - perm.forward(v + 1)
                              : perm.forward(v + 1) - perm.forward(v);
        adjacent += d == 1;
    }
    EXPECT_LT(adjacent, 5);
}

TEST(AddressScrambler, KeyZeroIsIdentity)
{
    AddressScrambler s(10, 12, 0);
    EXPECT_FALSE(s.enabled());
    for (std::uint64_t r = 0; r < 100; ++r) {
        EXPECT_EQ(s.physicalRow(r), r);
        EXPECT_EQ(s.physicalColumn(r), r);
    }
}

TEST(AddressScrambler, RoundTripsWhenEnabled)
{
    AddressScrambler s(10, 12, 777);
    EXPECT_TRUE(s.enabled());
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t r = rng.uniformInt(s.numRows());
        std::uint64_t c = rng.uniformInt(s.numColumns());
        ASSERT_EQ(s.logicalRow(s.physicalRow(r)), r);
        ASSERT_EQ(s.logicalColumn(s.physicalColumn(c)), c);
    }
}

TEST(ColumnRemapper, IdentityWithoutRepairs)
{
    ColumnRemapper rm(1024, 32, 0, 0);
    EXPECT_EQ(rm.numRemapped(), 0u);
    for (std::uint64_t c = 0; c < 1024; c += 13) {
        EXPECT_EQ(rm.storageColumn(c), c);
        EXPECT_EQ(rm.addressedColumn(c), c);
    }
}

TEST(ColumnRemapper, RemappedColumnsLandInSpares)
{
    ColumnRemapper rm(1024, 32, 8, 99);
    EXPECT_EQ(rm.numRemapped(), 8u);
    unsigned remapped_seen = 0;
    for (std::uint64_t c = 0; c < 1024; ++c) {
        std::uint64_t sc = rm.storageColumn(c);
        if (rm.isRemapped(c)) {
            ++remapped_seen;
            EXPECT_GE(sc, 1024u);
            EXPECT_LT(sc, 1024u + 32);
        } else {
            EXPECT_EQ(sc, c);
        }
        // Round-trip through the inverse.
        ASSERT_EQ(rm.addressedColumn(sc), c);
    }
    EXPECT_EQ(remapped_seen, 8u);
}

TEST(ColumnRemapper, FusedOffAndUnusedSparesAreUnmapped)
{
    ColumnRemapper rm(1024, 32, 8, 99);
    for (std::uint64_t c = 0; c < 1024; ++c) {
        if (rm.isRemapped(c))
            EXPECT_EQ(rm.addressedColumn(c), ColumnRemapper::kUnmapped);
    }
    unsigned unused = 0;
    for (std::uint64_t s = 1024; s < 1024 + 32; ++s)
        unused += rm.addressedColumn(s) == ColumnRemapper::kUnmapped;
    EXPECT_EQ(unused, 32u - 8u);
}

TEST(ColumnRemapper, TooManyFaultsIsFatal)
{
    EXPECT_EXIT(ColumnRemapper(64, 4, 8, 1),
                ::testing::ExitedWithCode(1), "cannot repair");
}

TEST(PatternContent, SolidPatterns)
{
    PatternContent zeros(PatternKind::Solid0);
    PatternContent ones(PatternKind::Solid1);
    for (std::uint64_t w = 0; w < 16; ++w) {
        EXPECT_EQ(zeros.wordAt(3, w), 0u);
        EXPECT_EQ(ones.wordAt(3, w), ~std::uint64_t{0});
    }
    EXPECT_FALSE(zeros.bit(0, 17));
    EXPECT_TRUE(ones.bit(0, 17));
}

TEST(PatternContent, CheckerboardAlternates)
{
    PatternContent cb(PatternKind::Checkerboard);
    // Adjacent bits differ within a row.
    for (unsigned b = 0; b + 1 < 64; ++b)
        EXPECT_NE(cb.bit(0, b), cb.bit(0, b + 1));
    // Phase flips between rows.
    EXPECT_NE(cb.bit(0, 0), cb.bit(1, 0));
    PatternContent inv(PatternKind::InvCheckerboard);
    EXPECT_NE(cb.bit(0, 0), inv.bit(0, 0));
}

TEST(PatternContent, RowStripeAndWalking)
{
    PatternContent rs(PatternKind::RowStripe);
    EXPECT_EQ(rs.wordAt(0, 0), 0u);
    EXPECT_EQ(rs.wordAt(1, 0), ~std::uint64_t{0});

    PatternContent w1(PatternKind::WalkingOne, 5);
    EXPECT_EQ(w1.wordAt(9, 9), std::uint64_t{1} << 5);
    PatternContent w0(PatternKind::WalkingZero, 5);
    EXPECT_EQ(w0.wordAt(9, 9), ~(std::uint64_t{1} << 5));
}

TEST(PatternContent, RandomIsDeterministicPerSeed)
{
    PatternContent a(PatternKind::Random, 7), b(PatternKind::Random, 7),
        c(PatternKind::Random, 8);
    EXPECT_EQ(a.wordAt(5, 6), b.wordAt(5, 6));
    EXPECT_NE(a.wordAt(5, 6), c.wordAt(5, 6));
}

TEST(PatternContent, BatteryComposition)
{
    auto battery = PatternContent::battery(100);
    EXPECT_EQ(battery.size(), 100u);
    EXPECT_EQ(battery[0].kind(), PatternKind::Solid0);
    // Short batteries only get classics.
    EXPECT_EQ(PatternContent::battery(3).size(), 3u);
    // Names are unique (each pattern is distinct).
    std::set<std::string> names;
    for (const auto &p : battery)
        names.insert(p.name());
    EXPECT_EQ(names.size(), battery.size());
}

TEST(ContentPersona, SuiteHas20ValidBenchmarks)
{
    auto suite = ContentPersona::specSuite();
    ASSERT_EQ(suite.size(), 20u);
    std::set<std::string> names;
    for (const auto &p : suite) {
        names.insert(p.name);
        EXPECT_GE(p.zeroWordFraction, 0.0);
        EXPECT_LE(p.zeroWordFraction + p.smallWordFraction +
                      p.pointerWordFraction,
                  1.0);
    }
    EXPECT_EQ(names.size(), 20u);
    EXPECT_EQ(ContentPersona::byName("astar").name, "astar");
    EXPECT_EXIT(ContentPersona::byName("nonexistent"),
                ::testing::ExitedWithCode(1), "unknown content persona");
}

TEST(ProgramContent, DeterministicPerEpoch)
{
    ContentPersona p = ContentPersona::byName("astar");
    ProgramContent a(p, 0), b(p, 0), c(p, 1);
    EXPECT_EQ(a.wordAt(10, 20), b.wordAt(10, 20));
    // Epoch churn redraws kEpochChurn of the words; the observable
    // change rate is lower because a redraw can land on the same
    // value (zero words especially), so bound rather than match.
    int changed = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        changed += a.wordAt(i, i % 128) != c.wordAt(i, i % 128);
    double frac = changed / double(n);
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, ProgramContent::kEpochChurn + 0.02);
}

TEST(ProgramContent, ZeroFractionMatchesPersona)
{
    ContentPersona p = ContentPersona::byName("perlbench");
    ProgramContent content(p, 0);
    int zeros = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        zeros += content.wordAt(i % 512, i / 512) == 0;
    EXPECT_NEAR(zeros / double(n), p.zeroWordFraction, 0.02);
}

class FailureModelTest : public ::testing::Test
{
  protected:
    FailureModelTest()
    {
        params.nominalIntervalMs = 64.0;
        params.seed = 11;
    }

    FailureModelParams params;
    static constexpr std::uint64_t kRows = 1 << 13;
    static constexpr std::uint64_t kCols = 1 << 16;
};

TEST_F(FailureModelTest, DeterministicPopulations)
{
    FailureModel a(params, kRows, kCols), b(params, kRows, kCols);
    for (std::uint64_t r = 0; r < 200; ++r) {
        const auto &ca = a.cellsOfRow(RowId{r});
        const auto &cb = b.cellsOfRow(RowId{r});
        ASSERT_EQ(ca.size(), cb.size());
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i].column, cb[i].column);
            EXPECT_EQ(ca[i].marginFrac, cb[i].marginFrac);
        }
    }
}

TEST_F(FailureModelTest, PopulationDensityMatchesPoissonMean)
{
    FailureModel m(params, kRows, kCols);
    std::uint64_t total = 0;
    for (std::uint64_t r = 0; r < kRows; ++r)
        total += m.cellsOfRow(RowId{r}).size();
    double mean = total / double(kRows);
    EXPECT_NEAR(mean, params.vulnerableCellsPerRow, 0.02);
}

TEST_F(FailureModelTest, HiRefIsSafeForAnyContent)
{
    FailureModel m(params, kRows, kCols);
    // At nominal/4 (the HI-REF rate) even worst-case content cannot
    // fail a cell - the guarantee MEMCON's mitigation rests on.
    EXPECT_EQ(m.worstCaseRowFraction(params.nominalIntervalMs / 4.0, 2048),
              0.0);
    for (auto kind : {PatternKind::Checkerboard, PatternKind::Solid0}) {
        PatternContent pat(kind);
        EXPECT_EQ(m.failingRowFraction(pat, 16.0, 2048), 0.0);
    }
}

TEST_F(FailureModelTest, FailuresMonotoneInRefreshInterval)
{
    FailureModel m(params, kRows, kCols);
    ProgramContent content(ContentPersona::byName("astar"), 0);
    for (std::uint64_t r = 0; r < 4096; ++r) {
        auto fails_64 = m.evaluatePhysicalRow(RowId{r}, content, 64.0);
        auto fails_128 = m.evaluatePhysicalRow(RowId{r}, content, 128.0);
        // Every failure at 64 ms persists at 128 ms.
        std::set<std::uint64_t> at128;
        for (const auto &f : fails_128)
            at128.insert(f.column);
        for (const auto &f : fails_64)
            ASSERT_TRUE(at128.count(f.column))
                << "row " << r << " col " << f.column;
    }
}

TEST_F(FailureModelTest, ContentFailuresSubsetOfWorstCase)
{
    FailureModel m(params, kRows, kCols);
    ProgramContent content(ContentPersona::byName("lbm"), 0);
    for (std::uint64_t r = 0; r < 4096; ++r) {
        if (m.physicalRowFails(RowId{r}, content, 64.0))
            ASSERT_TRUE(m.physicalRowCanFail(RowId{r}, 64.0));
    }
}

TEST_F(FailureModelTest, DifferentContentDifferentFailures)
{
    // Figure 3's core observation: which cells fail depends on what
    // is stored around them.
    FailureModel m(params, kRows, kCols);
    PatternContent a(PatternKind::Random, 1), b(PatternKind::Random, 2);
    std::set<std::pair<RowId, std::uint64_t>> fa, fb;
    for (std::uint64_t r = 0; r < 4096; ++r) {
        for (const auto &f : m.evaluatePhysicalRow(RowId{r}, a, 64.0))
            fa.insert({f.physicalRow, f.column});
        for (const auto &f : m.evaluatePhysicalRow(RowId{r}, b, 64.0))
            fb.insert({f.physicalRow, f.column});
    }
    EXPECT_FALSE(fa.empty());
    EXPECT_FALSE(fb.empty());
    EXPECT_NE(fa, fb);
}

TEST_F(FailureModelTest, WeakCellsFailRegardlessOfContent)
{
    params.vulnerableCellsPerRow = 0.0;
    params.weakCellsPerRow = 0.5;
    FailureModel m(params, kRows, kCols);
    PatternContent zeros(PatternKind::Solid0);
    PatternContent ones(PatternKind::Solid1);
    // Past the maximum retention, every weak cell fails with any
    // content.
    double far = params.nominalIntervalMs * params.retentionMaxFrac * 1.01;
    std::uint64_t with_zeros = 0, with_ones = 0;
    for (std::uint64_t r = 0; r < 512; ++r) {
        with_zeros += m.evaluatePhysicalRow(RowId{r}, zeros, far).size();
        with_ones += m.evaluatePhysicalRow(RowId{r}, ones, far).size();
    }
    EXPECT_EQ(with_zeros, with_ones);
    EXPECT_GT(with_zeros, 0u);
}

TEST_F(FailureModelTest, LogicalViewConsistentWithScrambler)
{
    FailureModel m(params, kRows, kCols);
    ProgramContent content(ContentPersona::byName("astar"), 0);
    for (std::uint64_t lr = 0; lr < 512; ++lr) {
        std::uint64_t pr = m.scrambler().physicalRow(lr);
        ASSERT_EQ(m.logicalRowFails(RowId{lr}, content, 64.0),
                  m.physicalRowFails(RowId{pr}, content, 64.0));
    }
}

TEST(FailureCalibration, AllFailFractionNearPaper)
{
    FailureModelParams p;
    p.nominalIntervalMs = 328.0;
    FailureModel m(p, 1 << 14, 1 << 16);
    DramTester tester(m);
    double all = tester.exhaustivePhysicalTest(328.0).failingRowFraction();
    // Paper: 13.5% of rows fail under exhaustive testing.
    EXPECT_NEAR(all, 0.135, 0.012);
}

TEST(FailureCalibration, ContentSpreadNearPaper)
{
    FailureModelParams p;
    p.nominalIntervalMs = 328.0;
    FailureModel m(p, 1 << 13, 1 << 16);
    DramTester tester(m);

    double low = tester
                     .testWithContent(
                         ProgramContent(
                             ContentPersona::byName("perlbench"), 0),
                         328.0)
                     .failingRowFraction();
    double high = tester
                      .testWithContent(
                          ProgramContent(ContentPersona::byName("astar"),
                                         0),
                          328.0)
                      .failingRowFraction();
    // Paper: 0.38% (min) to 5.6% (max) of rows fail with program
    // content - 2.4x to 35.2x fewer than ALL FAIL.
    EXPECT_GT(low, 0.001);
    EXPECT_LT(low, 0.008);
    EXPECT_GT(high, 0.040);
    EXPECT_LT(high, 0.075);
    double all =
        tester.exhaustivePhysicalTest(328.0).failingRowFraction();
    EXPECT_GT(all / low, 15.0);
    EXPECT_LT(all / high, 4.0);
}

TEST(DramTester, PatternBatteryUnionAndPerPattern)
{
    FailureModelParams p;
    p.seed = 5;
    FailureModel m(p, 1 << 12, 1 << 16);
    DramTester tester(m);
    auto battery = PatternContent::battery(8);
    auto per = tester.perPatternFailingCells(battery, 64.0);
    ASSERT_EQ(per.size(), battery.size());

    auto combined = tester.testWithPatternBattery(battery, 64.0);
    std::set<std::pair<RowId, std::uint64_t>> union_cells;
    for (const auto &s : per)
        union_cells.insert(s.begin(), s.end());
    EXPECT_EQ(combined.failures.size(), union_cells.size());
}

TEST(DramTester, SystemLevelBatteryMissesWorstCaseUnderScrambling)
{
    // Section 2(i): without layout knowledge, pattern campaigns
    // through the system address space find fewer failures than the
    // manufacturer's exhaustive physical profile.
    FailureModelParams p;
    p.seed = 6;
    FailureModel m(p, 1 << 12, 1 << 16);
    DramTester tester(m);
    auto battery = PatternContent::battery(16);
    double via_patterns =
        tester.testWithPatternBattery(battery, 64.0).failingRowFraction();
    double physical =
        tester.exhaustivePhysicalTest(64.0).failingRowFraction();
    EXPECT_LT(via_patterns, physical);
    EXPECT_GT(via_patterns, 0.0);
}

TEST(Temperature, ScalingMatchesPaperAnchor)
{
    // Section 5: a 4 s interval at 45°C corresponds to 328 ms at 85°C.
    EXPECT_NEAR(temperatureScaledInterval(4000.0, 45.0, 85.0), 328.0, 0.5);
    // Identity at equal temperatures; monotone in temperature.
    EXPECT_DOUBLE_EQ(temperatureScaledInterval(100.0, 85.0, 85.0), 100.0);
    EXPECT_GT(temperatureScaledInterval(100.0, 85.0, 45.0), 100.0);
}

TEST(DramTester, RowLimitBounds)
{
    FailureModelParams p;
    FailureModel m(p, 1 << 12, 1 << 16);
    DramTester tester(m);
    PatternContent zeros(PatternKind::Solid0);
    auto res = tester.testWithContent(zeros, 64.0, 128);
    EXPECT_EQ(res.rowsTested, 128u);
    EXPECT_EXIT(tester.testWithContent(zeros, 64.0, 1 << 13),
                ::testing::ExitedWithCode(1), "exceeds module rows");
}

} // namespace
} // namespace memcon::failure
