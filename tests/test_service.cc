/**
 * @file
 * Tests for the memcond service mode (DESIGN.md §16): the SPSC ingest
 * ring (including a real cross-thread stress for TSan), admission
 * verdicts, the overload governor's ladder and hysteresis, whole-
 * service determinism across thread counts, the accounting identity,
 * antagonist isolation, snapshot round-trips, and crash-safe resume -
 * in-process (a snapshot hook that throws simulates the crash) and
 * across a real SIGKILL via the service_testbed subprocess.
 *
 * Suite names carry the "IngestRing"/"Memcond" prefixes the tsan
 * ctest preset filters on, so all of this also runs under
 * ThreadSanitizer.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "dram/address_map.hh"
#include "service/memcond.hh"

using namespace memcon;
using namespace memcon::service;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Unique scratch path per test so parallel ctest runs don't race. */
std::string
scratch(const std::string &stem)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string("service_") + info->test_suite_name() + "_" +
           info->name() + "_" + stem;
}

/**
 * A small oversubscribed service: 128-row modules, 20 us rounds,
 * 8-event quotas against a 20-event global budget, grants capped at
 * the quota (which is what makes the focus tenant's service identical
 * to its solo run).
 */
MemcondConfig
smallConfig(std::uint64_t seed, unsigned threads,
            std::uint64_t rounds = 12)
{
    MemcondConfig cfg;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.rounds = rounds;
    cfg.roundTicks = usToTicks(20.0);
    cfg.admission.globalBudgetPerRound = 20;
    cfg.admission.maxGrantPerRound = 8;
    cfg.governor.coolRounds = 3;
    cfg.tenant.geometry.rowsPerBank = 16;
    cfg.tenant.ringCapacity = 32;
    cfg.tenant.memcon.quantum = usToTicks(50.0);
    cfg.tenant.memcon.testIdle = usToTicks(20.0);
    cfg.tenant.memcon.retargetPeriod = usToTicks(25.0);
    cfg.tenant.memcon.testEngine.slots = 4;
    cfg.tenant.memcon.testEngine.wordsPerRow = 8;
    return cfg;
}

/** focus + calm (in quota, priority 2), meek + mallory (priority 1);
 *  mallory offers `antag_rate` times its quota. */
std::vector<TenantSpec>
fourTenants(double antag_rate = 6.0)
{
    TenantSpec focus{"focus", 2, 1.0, 8};
    TenantSpec calm{"calm", 2, 1.0, 8};
    TenantSpec meek{"meek", 1, 1.0, 8};
    TenantSpec mallory{"mallory", 1, antag_rate, 8};
    return {focus, calm, meek, mallory};
}

/** generated == applied + drops + backlog + held, per tenant. */
void
expectAccountingIdentity(const Memcond &svc)
{
    for (std::size_t i = 0; i < svc.tenantCount(); ++i) {
        const TenantSession &t = svc.tenant(i);
        const std::uint64_t backlog =
            t.ringBacklog() + (t.hasHeldEvent() ? 1 : 0);
        EXPECT_EQ(t.generatedCount(),
                  t.appliedCount() + t.droppedBackpressure() +
                      t.droppedShed() + backlog)
            << "tenant " << t.spec().name;
    }
}

} // namespace

// ---------------------------------------------------------------------
// The SPSC ingest ring.
// ---------------------------------------------------------------------

TEST(IngestRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(IngestRing(1).capacity(), 1u);
    EXPECT_EQ(IngestRing(5).capacity(), 8u);
    EXPECT_EQ(IngestRing(64).capacity(), 64u);
    EXPECT_EQ(IngestRing(65).capacity(), 128u);
}

TEST(IngestRing, FifoOrderAndExplicitBackpressure)
{
    IngestRing ring(4);
    EXPECT_TRUE(ring.empty());
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.tryPush({Tick{i * 10}, i}), PushResult::Ok);
    // Full is a verdict, not an exception or a silent drop.
    EXPECT_EQ(ring.tryPush({Tick{99}, 99}), PushResult::Full);
    EXPECT_EQ(ring.size(), 4u);

    // contents() sees the queued events front to back.
    std::vector<WriteEvent> seen = ring.contents();
    ASSERT_EQ(seen.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(seen[i].row, i);

    // peek exposes the head without consuming; popFront consumes it.
    WriteEvent ev;
    ASSERT_TRUE(ring.peek(&ev));
    EXPECT_EQ(ev.row, 0u);
    ASSERT_TRUE(ring.peek(&ev));
    EXPECT_EQ(ev.row, 0u);
    ring.popFront();
    ASSERT_TRUE(ring.tryPop(&ev));
    EXPECT_EQ(ev.row, 1u);

    // Space freed by pops is reusable (the indices are free-running).
    EXPECT_EQ(ring.tryPush({Tick{40}, 4}), PushResult::Ok);
    std::uint64_t expect = 2;
    while (ring.tryPop(&ev))
        EXPECT_EQ(ev.row, expect++);
    EXPECT_EQ(expect, 5u);
    EXPECT_FALSE(ring.peek(&ev));
}

TEST(IngestRing, SpscCrossThreadStressKeepsOrder)
{
    // Real concurrency for TSan: one producer thread, one consumer
    // thread, a deliberately tiny ring so both sides hit their wait
    // loops constantly.
    constexpr std::uint64_t kEvents = 20000;
    IngestRing ring(8);

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            WriteEvent ev{Tick{i}, i};
            while (ring.tryPush(ev) == PushResult::Full)
                std::this_thread::yield();
        }
    });

    std::uint64_t next = 0;
    while (next < kEvents) {
        WriteEvent ev;
        if (!ring.tryPop(&ev)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(ev.row, next);
        ASSERT_EQ(ev.at, Tick{next});
        ++next;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------
// Admission control: typed verdicts.
// ---------------------------------------------------------------------

TEST(MemcondAdmission, OpenSessionRejectionsCarryReasons)
{
    AdmissionConfig cfg;
    cfg.maxSessions = 2;
    cfg.maxQuotaPerRound = 16;
    AdmissionController ac(cfg);

    EXPECT_EQ(ac.openSession("a", 8).kind, VerdictKind::Admit);

    Verdict zero = ac.openSession("b", 0);
    EXPECT_EQ(zero.kind, VerdictKind::Reject);
    EXPECT_NE(zero.reason.find("zero"), std::string::npos);

    Verdict greedy = ac.openSession("b", 17);
    EXPECT_EQ(greedy.kind, VerdictKind::Reject);
    EXPECT_NE(greedy.reason.find("cap"), std::string::npos);

    EXPECT_EQ(ac.openSession("b", 8).kind, VerdictKind::Admit);
    Verdict full = ac.openSession("c", 8);
    EXPECT_EQ(full.kind, VerdictKind::Reject);
    EXPECT_NE(full.reason.find("full"), std::string::npos);
    EXPECT_NE(full.reason.find("c"), std::string::npos);

    EXPECT_EQ(ac.activeSessions(), 2u);
    EXPECT_EQ(ac.admitCount(), 2u);
    EXPECT_EQ(ac.rejectCount(), 3u);

    ac.closeSession();
    EXPECT_EQ(ac.openSession("c", 8).kind, VerdictKind::Admit);
}

TEST(MemcondAdmission, QuotaFirstIsolatesInQuotaDemand)
{
    AdmissionConfig cfg;
    cfg.globalBudgetPerRound = 12;
    cfg.maxGrantPerRound = 0; // no per-tenant ceiling
    AdmissionController ac(cfg);

    // Tenant 0 wants 4 (in quota); tenant 1 wants 100 (way over its
    // quota of 8). Quota-first: 0 gets all 4, 1 gets its quota 8,
    // leftover 0.
    std::vector<TenantDemand> d(2);
    d[0] = {.backlog = 1, .lastOffered = 3, .quota = 8, .priority = 1};
    d[1] = {.backlog = 60, .lastOffered = 40, .quota = 8, .priority = 2};
    std::vector<Verdict> v = ac.planRound(d, usToTicks(20.0));
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].kind, VerdictKind::Admit);
    EXPECT_EQ(v[0].grant, 4u);
    EXPECT_EQ(v[1].kind, VerdictKind::Admit);
    EXPECT_EQ(v[1].grant, 8u);
}

TEST(MemcondAdmission, LeftoverBudgetFollowsPriorityThenIndex)
{
    AdmissionConfig cfg;
    cfg.globalBudgetPerRound = 30;
    AdmissionController ac(cfg);

    // Quotas cover 8+8+8 = 24; 6 left over. The priority-3 tenant
    // (index 2) absorbs all of it despite the index-order tie breaker
    // favoring earlier tenants at equal priority.
    std::vector<TenantDemand> d(3);
    d[0] = {.backlog = 10, .lastOffered = 0, .quota = 8, .priority = 1};
    d[1] = {.backlog = 10, .lastOffered = 0, .quota = 8, .priority = 1};
    d[2] = {.backlog = 20, .lastOffered = 0, .quota = 8, .priority = 3};
    std::vector<Verdict> v = ac.planRound(d, usToTicks(20.0));
    EXPECT_EQ(v[0].grant, 8u);
    EXPECT_EQ(v[1].grant, 8u);
    EXPECT_EQ(v[2].grant, 14u);

    // Equal priorities: leftover goes to the lower index.
    AdmissionController ac2(cfg);
    d[2].priority = 1;
    v = ac2.planRound(d, usToTicks(20.0));
    EXPECT_EQ(v[0].grant, 10u);
    EXPECT_EQ(v[1].grant, 10u);
    EXPECT_EQ(v[2].grant, 10u);
}

TEST(MemcondAdmission, ThrottleAndRejectVerdictsAreExplicit)
{
    AdmissionConfig cfg;
    cfg.globalBudgetPerRound = 8;
    AdmissionController ac(cfg);

    // Tenant 0's quota swallows the whole budget; tenant 1 has
    // demand, gets nothing, and must see Throttle with a concrete
    // retry tick - not a zero-grant Admit it can't distinguish.
    // Tenant 2 is shed: Reject, with the governor named.
    const Tick round_end = usToTicks(40.0);
    std::vector<TenantDemand> d(3);
    d[0] = {.backlog = 8, .lastOffered = 0, .quota = 8, .priority = 2};
    d[1] = {.backlog = 5, .lastOffered = 0, .quota = 8, .priority = 1};
    d[2] = {.backlog = 5, .lastOffered = 0, .quota = 8, .priority = 1,
            .shed = true};
    std::vector<Verdict> v = ac.planRound(d, round_end);
    EXPECT_EQ(v[0].kind, VerdictKind::Admit);
    EXPECT_EQ(v[0].grant, 8u);
    EXPECT_EQ(v[1].kind, VerdictKind::Throttle);
    EXPECT_EQ(v[1].retryAfter, round_end);
    EXPECT_EQ(v[2].kind, VerdictKind::Reject);
    EXPECT_NE(v[2].reason.find("governor"), std::string::npos);

    // A tenant with no demand at all is an Admit{0}, not a throttle:
    // production resumes immediately next round (no deadlock).
    std::vector<TenantDemand> idle(1);
    idle[0] = {.backlog = 0, .lastOffered = 0, .quota = 8, .priority = 1};
    EXPECT_EQ(ac.planRound(idle, round_end)[0].kind, VerdictKind::Admit);

    EXPECT_EQ(ac.admitCount(), 2u);
    EXPECT_EQ(ac.throttleCount(), 1u);
    EXPECT_EQ(ac.rejectCount(), 1u);
}

// ---------------------------------------------------------------------
// The overload governor's ladder.
// ---------------------------------------------------------------------

TEST(MemcondGovernor, EscalatesOneStagePerRoundInDocumentedOrder)
{
    OverloadGovernor g{GovernorConfig{}};
    EXPECT_EQ(g.stage(), GovernorStage::Normal);
    EXPECT_EQ(g.update(2.0), GovernorStage::ShedScans);
    EXPECT_EQ(g.update(2.0), GovernorStage::StretchQuanta);
    EXPECT_EQ(g.update(2.0), GovernorStage::ShedTenants);
    // The ladder is bounded: no stage beyond ShedTenants.
    EXPECT_EQ(g.update(50.0), GovernorStage::ShedTenants);
    EXPECT_EQ(g.escalations(), 3u);

    EXPECT_STREQ(toString(GovernorStage::Normal), "normal");
    EXPECT_STREQ(toString(GovernorStage::ShedScans), "shed-scans");
    EXPECT_STREQ(toString(GovernorStage::StretchQuanta),
                 "stretch-quanta");
    EXPECT_STREQ(toString(GovernorStage::ShedTenants), "shed-tenants");
}

TEST(MemcondGovernor, HysteresisRequiresSustainedCalm)
{
    GovernorConfig cfg;
    cfg.coolRounds = 3;
    OverloadGovernor g(cfg);
    g.update(2.0);
    g.update(2.0);
    ASSERT_EQ(g.stage(), GovernorStage::StretchQuanta);

    // Two calm rounds, then a round inside the hysteresis band
    // (exit 0.75 <= p <= enter 1.0): the streak resets, no step down.
    EXPECT_EQ(g.update(0.1), GovernorStage::StretchQuanta);
    EXPECT_EQ(g.update(0.1), GovernorStage::StretchQuanta);
    EXPECT_EQ(g.update(0.9), GovernorStage::StretchQuanta);
    EXPECT_EQ(g.calmStreak(), 0u);

    // Three consecutive calm rounds step down exactly one stage.
    g.update(0.1);
    g.update(0.1);
    EXPECT_EQ(g.update(0.1), GovernorStage::ShedScans);
    EXPECT_EQ(g.relaxations(), 1u);

    // Restore re-seats the whole ladder.
    g.restore(GovernorStage::ShedTenants, 2, 7, 4);
    EXPECT_EQ(g.stage(), GovernorStage::ShedTenants);
    EXPECT_EQ(g.calmStreak(), 2u);
    EXPECT_EQ(g.escalations(), 7u);
    EXPECT_EQ(g.relaxations(), 4u);
}

// ---------------------------------------------------------------------
// Whole-service behavior.
// ---------------------------------------------------------------------

TEST(MemcondService, RefusedTenantThrowsWithAdmissionReason)
{
    MemcondConfig cfg = smallConfig(5, 1);
    cfg.admission.maxSessions = 2;
    try {
        Memcond svc(cfg, fourTenants());
        FAIL() << "admission should have refused tenant 3 of 4";
    } catch (const ServiceError &e) {
        EXPECT_NE(std::string(e.what()).find("refused admission"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("meek"), std::string::npos);
    }
}

TEST(MemcondService, DigestIsBitIdenticalAcrossThreadCounts)
{
    Memcond one(smallConfig(5, 1), fourTenants());
    one.run();
    Memcond four(smallConfig(5, 4), fourTenants());
    four.run();

    EXPECT_EQ(one.digest(), four.digest());
    EXPECT_EQ(one.metricsLines(), four.metricsLines());
    EXPECT_EQ(one.stageHistory(), four.stageHistory());
    EXPECT_EQ(one.stageHistory().size(), 12u);
}

TEST(MemcondService, TenantFingerprintsMatchAcrossThreadCounts)
{
    // Regression for the PRIL flat-set migration (DESIGN.md §19):
    // per-tenant mechanism fingerprints - which serialize PRIL state
    // including write-buffer membership - must not depend on the
    // worker thread count. Each tenant's event sequence is identical
    // either way; the fingerprint serialization must be a function of
    // that state alone.
    Memcond one(smallConfig(9, 1), fourTenants());
    one.run();
    ServiceSnapshot snap_one = one.snapshotState();

    Memcond eight(smallConfig(9, 8), fourTenants());
    eight.run();
    ServiceSnapshot snap_eight = eight.snapshotState();

    ASSERT_EQ(snap_one.tenants.size(), snap_eight.tenants.size());
    for (std::size_t i = 0; i < snap_one.tenants.size(); ++i)
        EXPECT_EQ(snap_one.tenants[i].fingerprint,
                  snap_eight.tenants[i].fingerprint)
            << "tenant " << snap_one.tenants[i].name;

    // The stronger form: an 8-thread service restores a snapshot the
    // 1-thread service wrote. replaySnapshot() refuses the resume
    // unless every rebuilt tenant fingerprint matches the snapshot
    // bit-for-bit, so a clean run(true) IS the assertion.
    std::string path = scratch("snap_xthread.txt");
    saveServiceSnapshot(path, snap_one);
    MemcondConfig cfg8 = smallConfig(9, 8);
    cfg8.snapshotPath = path;
    Memcond resumed(cfg8, fourTenants());
    resumed.run(true);
    EXPECT_TRUE(resumed.resumed());
    EXPECT_EQ(resumed.digest(), one.digest());
    std::remove(path.c_str());
}

TEST(MemcondService, AccountingIdentityAndLadderUnderOverload)
{
    Memcond svc(smallConfig(5, 2, 16), fourTenants());
    svc.run();

    expectAccountingIdentity(svc);

    // The antagonist drove the ladder to tenant shedding, and its
    // losses are explicit shed drops - never silent.
    GovernorStage max_stage = GovernorStage::Normal;
    for (GovernorStage s : svc.stageHistory())
        max_stage = std::max(max_stage, s);
    EXPECT_EQ(max_stage, GovernorStage::ShedTenants);
    EXPECT_GT(svc.overloadGovernor().escalations(), 0u);
    EXPECT_GT(svc.tenant(3).droppedShed(), 0u);

    // The in-quota, priority-2 tenants are never the ones shed.
    EXPECT_EQ(svc.tenant(0).droppedShed(), 0u);
    EXPECT_EQ(svc.tenant(1).droppedShed(), 0u);

    // Telemetry mirrors the counters it claims to export.
    StatGroup g = svc.tenantTelemetry(3);
    EXPECT_DOUBLE_EQ(g.value("offered"),
                     static_cast<double>(svc.tenant(3).generatedCount()));
    EXPECT_DOUBLE_EQ(g.value("drops.shed"),
                     static_cast<double>(svc.tenant(3).droppedShed()));
    EXPECT_DOUBLE_EQ(g.value("applied"),
                     static_cast<double>(svc.tenant(3).appliedCount()));

    // Verdict counters reconcile with the rounds planned: one verdict
    // per tenant per round (openSession admits add 4 more).
    const std::uint64_t verdicts = svc.admissionController().admitCount() +
                                   svc.admissionController().throttleCount() +
                                   svc.admissionController().rejectCount();
    EXPECT_EQ(verdicts, 16u * 4u + 4u);
}

TEST(MemcondService, BankPlacedTenantsWriteOnlyTheirBanks)
{
    // Tenants declare bank sets over the module's 8-bank map: every
    // event the service journal records for a placed tenant must land
    // in a declared bank, the placement must be deterministic across
    // thread counts, and the accounting identity still holds.
    const dram::AddressMap map = dram::AddressMap::paperDdr3_8bank();
    auto placedSpecs = [] {
        std::vector<TenantSpec> specs = fourTenants();
        specs[0].bankSet = {0, 1};
        specs[3].bankSet = {6, 7}; // the antagonist, fenced off
        return specs;
    };
    MemcondConfig cfg = smallConfig(7, 1);
    cfg.tenant.memcon.addressMap = map;
    Memcond svc(cfg, placedSpecs());
    svc.run();
    expectAccountingIdentity(svc);

    ServiceSnapshot snap = svc.snapshotState();
    std::uint64_t focus_events = 0;
    for (const RoundRecord &r : snap.journal) {
        for (const WriteEvent &e : r.applied[0]) {
            EXPECT_LT(map.shardOf(e.row), 2u) << "row " << e.row;
            ++focus_events;
        }
        for (const WriteEvent &e : r.applied[3])
            EXPECT_GE(map.shardOf(e.row), 6u) << "row " << e.row;
    }
    EXPECT_GT(focus_events, 0u);

    MemcondConfig cfg4 = smallConfig(7, 4);
    cfg4.tenant.memcon.addressMap = map;
    Memcond par(cfg4, placedSpecs());
    par.run();
    EXPECT_EQ(par.digest(), svc.digest());
}

TEST(MemcondService, InQuotaTenantIsIsolatedFromAntagonist)
{
    // Solo reference: the focus tenant alone. Same service seed, so
    // its traffic is identical in the co-located run (tenant seeds
    // derive from the tenant index).
    Memcond solo(smallConfig(5, 1, 16), {TenantSpec{"focus", 2, 1.0, 8}});
    solo.run();
    Memcond coloc(smallConfig(5, 1, 16), fourTenants(8.0));
    coloc.run();

    const double solo_red = solo.tenant(0).memcon().emergentReduction();
    const double coloc_red = coloc.tenant(0).memcon().emergentReduction();
    ASSERT_GT(solo_red, 0.0);
    // The acceptance bound is 5%; quota-first admission plus
    // offender-targeted governor stages actually make it exact.
    EXPECT_NEAR(coloc_red, solo_red, 0.05 * solo_red);
    EXPECT_EQ(coloc.tenant(0).droppedShed(), 0u);
}

TEST(MemcondService, GenerousWatchdogDoesNotPerturbTheRun)
{
    Memcond plain(smallConfig(5, 2), fourTenants());
    plain.run();

    MemcondConfig cfg = smallConfig(5, 2);
    cfg.supervisorTimeoutMs = 30000.0;
    Memcond watched(cfg, fourTenants());
    watched.run();

    // Supervision is wall-clock-only bookkeeping; the simulated
    // outcome must be bit-identical with and without it.
    EXPECT_EQ(watched.digest(), plain.digest());
}

// ---------------------------------------------------------------------
// Snapshots: round trip, strictness, in-process crash resume.
// ---------------------------------------------------------------------

TEST(MemcondSnapshot, EncodeDecodeRoundTripsTheLiveService)
{
    MemcondConfig cfg = smallConfig(5, 2);
    Memcond svc(cfg, fourTenants());
    svc.run();

    ServiceSnapshot snap = svc.snapshotState();
    EXPECT_EQ(snap.roundsDone, cfg.rounds);
    EXPECT_EQ(snap.journal.size(), cfg.rounds);

    const std::string encoded = encodeServiceSnapshot(snap);
    ServiceSnapshot back = decodeServiceSnapshot(encoded);
    // Decode(encode()) is the identity: re-encoding yields the same
    // bytes, which covers every field including the journal events.
    EXPECT_EQ(encodeServiceSnapshot(back), encoded);
    EXPECT_TRUE(back.fingerprint.matches(snap.fingerprint));
    EXPECT_EQ(back.roundsDone, snap.roundsDone);
    ASSERT_EQ(back.tenants.size(), 4u);
    EXPECT_EQ(back.tenants[3].name, "mallory");
    EXPECT_EQ(back.tenants[3].droppedShed,
              svc.tenant(3).droppedShed());
}

TEST(MemcondSnapshot, SaveLoadRoundTripsThroughDisk)
{
    std::string path = scratch("snap.txt");
    MemcondConfig cfg = smallConfig(7, 1, 6);
    Memcond svc(cfg, fourTenants());
    svc.run();

    ServiceSnapshot snap = svc.snapshotState();
    saveServiceSnapshot(path, snap);
    ServiceSnapshot back = loadServiceSnapshot(path);
    EXPECT_EQ(encodeServiceSnapshot(back), encodeServiceSnapshot(snap));

    EXPECT_THROW(loadServiceSnapshot(path + ".does_not_exist"),
                 ServiceError);
    std::remove(path.c_str());
}

namespace
{

/** The in-process stand-in for SIGKILL: thrown from the snapshot
 *  hook, it unwinds run() the instant a snapshot is durable. */
struct SimulatedCrash
{
};

} // namespace

TEST(MemcondSnapshot, InProcessCrashResumesToIdenticalDigest)
{
    std::string path = scratch("snap.txt");

    // Uninterrupted reference (no snapshots; the path is not part of
    // the fingerprint, so the resumed run below is comparable).
    Memcond ref(smallConfig(5, 2), fourTenants());
    ref.run();

    // "Crash" the moment the round-8 snapshot hits the disk.
    MemcondConfig cfg = smallConfig(5, 2);
    cfg.snapshotPath = path;
    cfg.snapshotEveryRounds = 4;
    cfg.snapshotHook = [](std::uint64_t rounds_done) {
        if (rounds_done == 8)
            throw SimulatedCrash{};
    };
    {
        Memcond dying(cfg, fourTenants());
        EXPECT_THROW(dying.run(), SimulatedCrash);
        EXPECT_EQ(dying.roundsDone(), 8u);
    }

    // Resume from the snapshot: replays 8 rounds through the real
    // consumer path, then runs the remaining 4 live.
    cfg.snapshotHook = nullptr;
    Memcond resumed(cfg, fourTenants());
    resumed.run(true);
    EXPECT_TRUE(resumed.resumed());
    EXPECT_EQ(resumed.roundsDone(), 12u);
    EXPECT_EQ(resumed.digest(), ref.digest());
    EXPECT_EQ(resumed.metricsLines(), ref.metricsLines());
    EXPECT_EQ(resumed.stageHistory(), ref.stageHistory());
    expectAccountingIdentity(resumed);
    std::remove(path.c_str());
}

TEST(MemcondSnapshot, ResumeRefusesAForeignConfiguration)
{
    std::string path = scratch("snap.txt");
    MemcondConfig cfg = smallConfig(5, 1, 8);
    cfg.snapshotPath = path;
    cfg.snapshotEveryRounds = 4;
    Memcond svc(cfg, fourTenants());
    svc.run();

    // Same tenants, different service seed: the fingerprint gate must
    // refuse before any replay work, naming both sides.
    MemcondConfig other = smallConfig(6, 1, 8);
    other.snapshotPath = path;
    try {
        Memcond wrong(other, fourTenants());
        wrong.run(true);
        FAIL() << "resume accepted a snapshot from another service";
    } catch (const ckpt::FingerprintMismatch &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(e.found.describe()), std::string::npos);
        EXPECT_NE(what.find(e.expected.describe()), std::string::npos);
    }

    // Resume without a snapshot path is a typed refusal too.
    MemcondConfig pathless = smallConfig(5, 1, 8);
    Memcond nowhere(pathless, fourTenants());
    EXPECT_THROW(nowhere.run(true), ServiceError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Subprocess: a real SIGKILL mid-service, resumed bit-identically.
// ---------------------------------------------------------------------

namespace
{

struct RunResult
{
    int status = -1;
    std::string out;
    std::string err;

    bool exitedWith(int code) const
    {
        return WIFEXITED(status) && WEXITSTATUS(status) == code;
    }

    bool killedBy(int sig) const
    {
        // std::system() goes through the shell, which reports a
        // signal-killed child as exit code 128+sig.
        return (WIFSIGNALED(status) && WTERMSIG(status) == sig) ||
               (WIFEXITED(status) && WEXITSTATUS(status) == 128 + sig);
    }
};

RunResult
runTestbed(const std::string &args)
{
    static int invocation = 0;
    std::string tag = scratch(strprintf("io%d", invocation++));
    std::string out_path = tag + ".out", err_path = tag + ".err";
    std::string cmd = std::string(MEMCON_SERVICE_TESTBED) + " " + args +
                      " > " + out_path + " 2> " + err_path;
    RunResult r;
    r.status = std::system(cmd.c_str());
    r.out = slurp(out_path);
    r.err = slurp(err_path);
    std::remove(out_path.c_str());
    std::remove(err_path.c_str());
    return r;
}

std::string
digestOf(const RunResult &r)
{
    std::size_t pos = r.out.find("DIGEST ");
    EXPECT_NE(pos, std::string::npos)
        << "no DIGEST line in testbed output:\n"
        << r.out;
    if (pos == std::string::npos)
        return "";
    return r.out.substr(pos + 7, 8);
}

std::size_t
resumedOf(const RunResult &r)
{
    std::size_t pos = r.out.find("resumed=");
    EXPECT_NE(pos, std::string::npos);
    if (pos == std::string::npos)
        return 0;
    return static_cast<std::size_t>(
        std::strtoul(r.out.c_str() + pos + 8, nullptr, 10));
}

void
killResumeAt(unsigned threads)
{
    std::string snap = scratch(strprintf("t%u.snap", threads));

    // Uninterrupted reference digest (single-threaded on purpose: the
    // §9 contract says thread count cannot matter, and the resumed
    // multi-threaded digest below is held to it).
    RunResult ref =
        runTestbed("--tenants 4 --threads 1 --seed 23 --rounds 16");
    ASSERT_TRUE(ref.exitedWith(0)) << ref.err;

    // Die by SIGKILL the instant the round-8 snapshot is durable.
    RunResult killed = runTestbed(
        strprintf("--tenants 4 --threads %u --seed 23 --rounds 16 "
                  "--snapshot-every 4 --snapshot %s --kill-at 8",
                  threads, snap.c_str()));
    ASSERT_TRUE(killed.killedBy(SIGKILL)) << "status=" << killed.status;

    // The snapshot the kill left behind decodes cleanly...
    ServiceSnapshot on_disk = loadServiceSnapshot(snap);
    EXPECT_EQ(on_disk.roundsDone, 8u);
    EXPECT_EQ(on_disk.tenants.size(), 4u);

    // ...and the resumed service replays it and lands on the
    // uninterrupted digest bit for bit.
    RunResult resumed = runTestbed(
        strprintf("--tenants 4 --threads %u --seed 23 --rounds 16 "
                  "--snapshot-every 4 --snapshot %s --resume",
                  threads, snap.c_str()));
    EXPECT_TRUE(resumed.exitedWith(0)) << resumed.err;
    EXPECT_EQ(resumedOf(resumed), 8u);
    EXPECT_EQ(digestOf(resumed), digestOf(ref));
    std::remove(snap.c_str());
}

} // namespace

TEST(MemcondKillResume, SingleThreadDigestSurvivesSigkill)
{
    killResumeAt(1);
}

TEST(MemcondKillResume, EightThreadsDigestSurvivesSigkill)
{
    killResumeAt(8);
}

TEST(MemcondKillResume, TamperedSnapshotIsRefusedOnResume)
{
    std::string snap = scratch("tamper.snap");
    RunResult killed = runTestbed(
        strprintf("--tenants 4 --threads 2 --seed 23 --rounds 16 "
                  "--snapshot-every 4 --snapshot %s --kill-at 8",
                  snap.c_str()));
    ASSERT_TRUE(killed.killedBy(SIGKILL));

    // Flip one byte mid-file: the resume must fail with the typed
    // error surfaced on stderr, not limp on from damaged state.
    std::string content = slurp(snap);
    ASSERT_GT(content.size(), 100u);
    content[content.size() / 2] ^= 0x01;
    {
        std::ofstream out(snap, std::ios::binary | std::ios::trunc);
        out << content;
    }
    RunResult resumed = runTestbed(
        strprintf("--tenants 4 --threads 2 --seed 23 --rounds 16 "
                  "--snapshot-every 4 --snapshot %s --resume",
                  snap.c_str()));
    EXPECT_TRUE(resumed.exitedWith(1)) << "status=" << resumed.status;
    EXPECT_NE(resumed.err.find("snapshot"), std::string::npos)
        << resumed.err;
    std::remove(snap.c_str());
}
