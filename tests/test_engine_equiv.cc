/**
 * @file
 * Bit-identity proofs for the streaming engine hot path (DESIGN.md
 * §11): the k-way merge + deadline-wheel + SoA path must reproduce
 * the seed materialize-then-sort path (MemconConfig::
 * referenceEventPath) field-for-field on every metric and emit the
 * same transition sequence, on traces engineered to stress the
 * tie-break (duplicate timestamps within and across pages, writes on
 * quantum boundaries, budget-starved scrub backlogs). Plus property
 * tests for the two data structures against naive references, and
 * regression tests for the test-budget rounding fix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/deadline_wheel.hh"
#include "common/kway_merge.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "trace/app_model.hh"

namespace memcon::core
{
namespace
{

/**
 * A randomized trace with deliberate timestamp collisions: times are
 * drawn from a coarse grid, so duplicates occur within a page,
 * across pages, and exactly on quantum boundaries - the cases where
 * only the (time, page, in-page-index) tie-break keeps the event
 * order (and therefore the float accumulation order) well-defined.
 */
std::vector<std::vector<TimeMs>>
collidingTrace(std::uint64_t seed, std::size_t pages, double duration_ms)
{
    Rng rng(seed);
    const double grid = duration_ms / 64.0;
    std::vector<std::vector<TimeMs>> writes(pages);
    for (auto &w : writes) {
        const std::size_t n = rng.uniformInt(6);
        for (std::size_t i = 0; i < n; ++i)
            w.push_back(TimeMs{static_cast<double>(rng.uniformInt(64)) *
                               grid});
        std::sort(w.begin(), w.end());
    }
    return writes;
}

/** Exact (not approximate) comparison of every metric the digest
 *  surface contains; the hot-path instrumentation counters are
 *  outside the contract and deliberately not compared. */
void
expectSameResult(const MemconResult &a, const MemconResult &b)
{
    EXPECT_EQ(a.durationMs, b.durationMs);
    EXPECT_EQ(a.pages, b.pages);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.refreshOpsBaseline, b.refreshOpsBaseline);
    EXPECT_EQ(a.refreshOpsMemcon, b.refreshOpsMemcon);
    EXPECT_EQ(a.testsRun, b.testsRun);
    EXPECT_EQ(a.testsPassed, b.testsPassed);
    EXPECT_EQ(a.testsFailed, b.testsFailed);
    EXPECT_EQ(a.testsSkippedBudget, b.testsSkippedBudget);
    EXPECT_EQ(a.testsCorrect, b.testsCorrect);
    EXPECT_EQ(a.testsMispredicted, b.testsMispredicted);
    EXPECT_EQ(a.hiTimeMs, b.hiTimeMs);
    EXPECT_EQ(a.loTimeMs, b.loTimeMs);
    EXPECT_EQ(a.bufferDrops, b.bufferDrops);
    EXPECT_EQ(a.trackerStorageBytes, b.trackerStorageBytes);
    EXPECT_EQ(a.silentWritesSkipped, b.silentWritesSkipped);
    EXPECT_EQ(a.scrubTests, b.scrubTests);
    EXPECT_EQ(a.scrubDemotions, b.scrubDemotions);
    EXPECT_EQ(a.testTimeNs, b.testTimeNs);
    EXPECT_EQ(a.refreshTimeMemconNs, b.refreshTimeMemconNs);
    EXPECT_EQ(a.refreshTimeBaselineNs, b.refreshTimeBaselineNs);
}

struct Transition
{
    std::uint64_t page;
    double time;
    bool toLo;
    std::uint64_t writeCount;

    bool operator==(const Transition &o) const
    {
        return page == o.page && time == o.time && toLo == o.toLo &&
               writeCount == o.writeCount;
    }
};

/** Run one config on both event paths and demand identical metrics
 *  and an identical transition sequence. */
void
expectPathsAgree(MemconConfig cfg,
                 const std::vector<std::vector<TimeMs>> &writes,
                 double duration_ms,
                 const MemconEngine::FailureOracle &oracle,
                 const MemconEngine::TimedFailureOracle &timed = {})
{
    std::vector<Transition> log_ref;
    std::vector<Transition> log_stream;
    auto observe = [](std::vector<Transition> &log) {
        return [&log](std::uint64_t page, double t, bool to_lo,
                      std::uint64_t wc) {
            log.push_back({page, t, to_lo, wc});
        };
    };

    cfg.referenceEventPath = true;
    MemconResult ref = MemconEngine(cfg).run(writes, duration_ms, oracle,
                                             observe(log_ref), timed);
    cfg.referenceEventPath = false;
    MemconResult stream = MemconEngine(cfg).run(
        writes, duration_ms, oracle, observe(log_stream), timed);

    expectSameResult(ref, stream);
    ASSERT_EQ(log_ref.size(), log_stream.size());
    for (std::size_t i = 0; i < log_ref.size(); ++i)
        EXPECT_TRUE(log_ref[i] == log_stream[i])
            << "transition " << i << " diverges (page " << log_ref[i].page
            << " vs " << log_stream[i].page << ")";
}

MemconEngine::FailureOracle
hashOracle()
{
    return [](std::uint64_t page, std::uint64_t wc) {
        return hashMix64(page * 131 + wc * 7) % 5 == 0;
    };
}

class EngineEquiv : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineEquiv, StreamingMatchesReference)
{
    const auto writes = collidingTrace(GetParam(), 48, 2000.0);

    MemconConfig base;
    base.quantumMs = TimeMs{100.0};
    base.writeBufferCapacity = 1000;
    base.testSlotsPer64ms = 1024;
    expectPathsAgree(base, writes, 2000.0, hashOracle());

    // Scrub with ample budget: the wheel replaces a full page scan.
    MemconConfig scrub = base;
    scrub.scrubPeriodMs = 300.0;
    expectPathsAgree(scrub, writes, 2000.0, hashOracle());

    // Budget-starved scrub: three tests per quantum against a
    // standing backlog, so the wheel's re-push-at-now+1 tail churn
    // and the reference path's scan must starve identically.
    MemconConfig scarce = base;
    scarce.quantumMs = TimeMs{96.0};
    scarce.testSlotsPer64ms = 2; // llround(2 * 96 / 64) = 3
    scarce.scrubPeriodMs = 200.0;
    expectPathsAgree(scarce, writes, 2000.0, hashOracle());

    // Silent-write detection consumes one hash draw per write; the
    // draw sequence is keyed on (page, write count), not event
    // order, so both paths must skip the same writes.
    MemconConfig silent = base;
    silent.silentWriteFraction = 0.4;
    silent.detectSilentWrites = true;
    expectPathsAgree(silent, writes, 2000.0, hashOracle());

    // Tiny write buffer: PRIL drops must happen in the same order.
    MemconConfig drops = base;
    drops.writeBufferCapacity = 8;
    expectPathsAgree(drops, writes, 2000.0, hashOracle());
}

TEST_P(EngineEquiv, TimedOracleScrubMatches)
{
    const auto writes = collidingTrace(GetParam() + 100, 40, 2000.0);
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{100.0};
    cfg.writeBufferCapacity = 1000;
    cfg.testSlotsPer64ms = 1024;
    cfg.scrubPeriodMs = 250.0;
    // VRT-style drift: whether a row fails depends on when it is
    // tested, so any divergence in *test times* (not just counts)
    // between the paths cascades into different demotions.
    auto timed = [](std::uint64_t page, std::uint64_t wc, double t) {
        return hashMix64(page * 977 + wc * 13 +
                         static_cast<std::uint64_t>(t / 400.0)) %
                   7 ==
               0;
    };
    expectPathsAgree(cfg, writes, 2000.0, {}, timed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquiv,
                         ::testing::Values(11, 12, 13, 14));

TEST(EngineEquiv, RunOnAppStreamingMatchesReference)
{
    // The streaming path generates each page's writes lazily through
    // trace::PageWriteStream; the reference path materializes
    // PageWriteProcess::writeTimes(). Same persona, same metrics.
    trace::AppPersona persona = trace::AppPersona::table1Suite()[0];
    persona.pages = 400;
    persona.durationSec = 120.0;

    MemconConfig cfg;
    cfg.scrubPeriodMs = 4096.0;
    cfg.referenceEventPath = true;
    MemconResult ref = MemconEngine(cfg).runOnApp(persona, hashOracle());
    cfg.referenceEventPath = false;
    MemconResult stream =
        MemconEngine(cfg).runOnApp(persona, hashOracle());
    expectSameResult(ref, stream);
    EXPECT_GT(stream.writes, 0u);
}

// --------------------------------------------------------------------
// Test-budget rounding (regression: the budget used to be silently
// truncated toward zero, so e.g. 1.5 tests/quantum became 1).
// --------------------------------------------------------------------

TEST(EngineBudget, RoundsToNearestInsteadOfTruncating)
{
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{96.0};
    cfg.testSlotsPer64ms = 1; // 1 * 96 / 64 = 1.5 -> budget 2, not 1
    // Two pages idle after a single write each become PRIL
    // candidates in the same quantum; under the truncated budget one
    // of them was skipped.
    std::vector<std::vector<TimeMs>> writes{{TimeMs{10.0}},
                                            {TimeMs{10.0}}};
    MemconResult r = MemconEngine(cfg).run(writes, 960.0);
    EXPECT_EQ(r.testsSkippedBudget, 0u);
    EXPECT_GE(r.testsRun, 2u);
}

TEST(EngineBudget, ZeroBudgetIsFatal)
{
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{16.0};
    cfg.testSlotsPer64ms = 1; // llround(1 * 16 / 64) == 0
    EXPECT_EXIT(MemconEngine eng(cfg), ::testing::ExitedWithCode(1),
                "rounds to zero");
}

// --------------------------------------------------------------------
// Input validation: unsorted per-page vectors would silently change
// the merge tie-break, so they must die loudly.
// --------------------------------------------------------------------

TEST(EngineValidation, UnsortedWriteVectorPanics)
{
    MemconConfig cfg;
    MemconEngine eng(cfg);
    std::vector<std::vector<TimeMs>> bad{{TimeMs{60.0}, TimeMs{40.0}}};
    EXPECT_DEATH(eng.run(bad, 1000.0), "unsorted per-page");
}

TEST(EngineValidation, NegativeWriteTimePanics)
{
    MemconConfig cfg;
    MemconEngine eng(cfg);
    std::vector<std::vector<TimeMs>> bad{{TimeMs{-1.0}}};
    EXPECT_DEATH(eng.run(bad, 1000.0), "negative write time");
}

// --------------------------------------------------------------------
// KWayMerge against the order the seed engine materialized: events
// appended source-major, then std::stable_sort by time only.
// --------------------------------------------------------------------

struct VecStream
{
    std::vector<double> times;
    std::size_t i = 0;

    bool next(double &out)
    {
        if (i >= times.size())
            return false;
        out = times[i++];
        return true;
    }
};

TEST(KWayMergeTest, ReproducesStableSortOrder)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed);
        const std::size_t sources = 1 + rng.uniformInt(60);
        const double horizon = 900.0;
        std::vector<VecStream> streams(sources);
        struct Ev
        {
            double time;
            std::uint32_t source;
        };
        std::vector<Ev> expected;
        for (std::uint32_t s = 0; s < sources; ++s) {
            const std::size_t n = rng.uniformInt(8);
            auto &t = streams[s].times;
            for (std::size_t i = 0; i < n; ++i)
                t.push_back(static_cast<double>(rng.uniformInt(40)) *
                            25.0); // grid: heavy cross-source ties
            std::sort(t.begin(), t.end());
            for (double v : t)
                if (v < horizon)
                    expected.push_back({v, s});
        }
        // Source-major append + stable sort by time = the seed order.
        std::stable_sort(expected.begin(), expected.end(),
                         [](const Ev &a, const Ev &b) {
                             return a.time < b.time;
                         });

        // A window that does not divide the grid stresses the float
        // bucketing correction.
        KWayMerge<VecStream> merge(std::move(streams), horizon, 93.0);
        std::vector<Ev> got;
        while (!merge.empty()) {
            auto item = merge.pop();
            got.push_back({item.time, item.source});
        }
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].time, expected[i].time) << "at " << i;
            EXPECT_EQ(got[i].source, expected[i].source) << "at " << i;
        }
    }
}

TEST(KWayMergeTest, UnsortedStreamPanics)
{
    std::vector<VecStream> streams(1);
    streams[0].times = {50.0, 20.0};
    KWayMerge<VecStream> merge(std::move(streams), 1000.0, 100.0);
    EXPECT_DEATH(while (!merge.empty()) merge.pop(),
                 "unsorted write stream");
}

// --------------------------------------------------------------------
// DeadlineWheel against a naive reference: a flat list re-scanned on
// every pop, the exact pattern the wheel exists to replace.
// --------------------------------------------------------------------

TEST(DeadlineWheelTest, MatchesNaiveScanReference)
{
    Rng rng(99);
    DeadlineWheel<int> wheel;
    struct Pending
    {
        std::int64_t epoch;
        int value;
    };
    std::vector<Pending> model; // push order
    std::int64_t now = 0;
    int next_value = 0;

    for (int step = 0; step < 400; ++step) {
        const std::size_t pushes = rng.uniformInt(4);
        for (std::size_t i = 0; i < pushes; ++i) {
            // The previous popDue left the cursor at now + 1, so
            // that is the earliest legal epoch.
            const std::int64_t epoch =
                now + 1 + static_cast<std::int64_t>(rng.uniformInt(11));
            wheel.push(epoch, next_value);
            model.push_back({epoch, next_value});
            ++next_value;
        }
        ASSERT_EQ(wheel.size(), model.size());
        if (!model.empty()) {
            std::int64_t naive_min = model.front().epoch;
            for (const Pending &p : model)
                naive_min = std::min(naive_min, p.epoch);
            EXPECT_EQ(wheel.nextEpoch(), naive_min);
        }

        now += static_cast<std::int64_t>(rng.uniformInt(6));
        std::vector<int> got;
        wheel.popDue(now, got);
        // Naive reference: stable-sort the pending list by epoch
        // (stable = FIFO within a bucket) and take everything due.
        std::vector<Pending> sorted = model;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const Pending &a, const Pending &b) {
                             return a.epoch < b.epoch;
                         });
        std::vector<int> want;
        for (const Pending &p : sorted)
            if (p.epoch <= now)
                want.push_back(p.value);
        ASSERT_EQ(got, want);
        std::erase_if(model, [now](const Pending &p) {
            return p.epoch <= now;
        });
    }
}

TEST(DeadlineWheelTest, PushIntoThePastPanics)
{
    DeadlineWheel<int> wheel;
    wheel.push(5, 1);
    std::vector<int> out;
    wheel.popDue(5, out); // cursor is now 6
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DEATH(wheel.push(3, 2), "into the past");
    EXPECT_DEATH(wheel.push(-1, 2), "negative wheel epoch");
}

TEST(DeadlineWheelTest, BucketCountTracksDistinctEpochs)
{
    DeadlineWheel<int> wheel;
    wheel.push(2, 1);
    wheel.push(2, 2);
    wheel.push(7, 3);
    EXPECT_EQ(wheel.bucketCount(), 2u);
    EXPECT_EQ(wheel.nextEpoch(), 2);
    std::vector<int> out;
    wheel.popDue(4, out);
    EXPECT_EQ(out, (std::vector<int>{1, 2}));
    EXPECT_EQ(wheel.bucketCount(), 1u);
    EXPECT_EQ(wheel.nextEpoch(), 7);
}

} // namespace
} // namespace memcon::core
