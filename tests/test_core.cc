/**
 * @file
 * Unit and property tests for the MEMCON core: the cost-benefit
 * model (appendix numbers, MinWriteInterval), the PRIL predictor
 * (Figure 13 workflow, checked against a brute-force reference
 * model), refresh-policy baselines, and the online engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/random.hh"
#include "core/cost_model.hh"
#include "core/engine.hh"
#include "core/policies.hh"
#include "core/pril.hh"

namespace memcon::core
{
namespace
{

TEST(CostModel, AppendixLatencies)
{
    CostModel cm;
    EXPECT_DOUBLE_EQ(cm.testCostNs(TestMode::ReadAndCompare), 1068.0);
    EXPECT_DOUBLE_EQ(cm.testCostNs(TestMode::CopyAndCompare), 1602.0);
    EXPECT_DOUBLE_EQ(cm.refreshOpNs(), 39.0);
}

TEST(CostModel, MinWriteIntervalsMatchPaper)
{
    CostModel cm; // HI 16 ms, LO 64 ms
    EXPECT_DOUBLE_EQ(cm.minWriteIntervalMs(TestMode::ReadAndCompare)
                         .value(),
                     560.0);
    EXPECT_DOUBLE_EQ(cm.minWriteIntervalMs(TestMode::CopyAndCompare)
                         .value(),
                     864.0);
}

/** Section 3.3: 480/448 ms at 128/256 ms LO-REF (Read&Compare). */
class MinWriteIntervalByLoRef
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(MinWriteIntervalByLoRef, MatchesPaper)
{
    auto [lo_ms, expected] = GetParam();
    CostModelConfig cfg;
    cfg.loRefMs = lo_ms;
    CostModel cm(cfg);
    EXPECT_DOUBLE_EQ(cm.minWriteIntervalMs(TestMode::ReadAndCompare)
                         .value(),
                     expected);
}

INSTANTIATE_TEST_SUITE_P(LoRefIntervals, MinWriteIntervalByLoRef,
                         ::testing::Values(std::pair{64.0, 560.0},
                                           std::pair{128.0, 480.0},
                                           std::pair{256.0, 448.0}));

TEST(CostModel, AccumulatedCostsCrossExactlyAtMinWriteInterval)
{
    CostModel cm;
    for (TestMode mode :
         {TestMode::ReadAndCompare, TestMode::CopyAndCompare}) {
        TimeMs mwi = cm.minWriteIntervalMs(mode);
        EXPECT_GE(cm.hiRefAccumulatedNs(mwi),
                  cm.memconAccumulatedNs(mode, mwi));
        EXPECT_LT(cm.hiRefAccumulatedNs(mwi - TimeMs{16.0}),
                  cm.memconAccumulatedNs(mode, mwi - TimeMs{16.0}));
    }
}

TEST(CostModel, CurveIsMonotoneAndStartsWithTestCost)
{
    CostModel cm;
    auto curve = cm.curve(TimeMs{2000.0});
    ASSERT_FALSE(curve.empty());
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].hiRefNs, curve[i - 1].hiRefNs);
        EXPECT_GE(curve[i].readCompareNs, curve[i - 1].readCompareNs);
        EXPECT_GE(curve[i].copyCompareNs, curve[i - 1].copyCompareNs);
    }
    EXPECT_GE(curve[0].readCompareNs, 1068.0);
    EXPECT_GE(curve[0].copyCompareNs, 1602.0);
}

TEST(CostModel, AverageCostTradeoff)
{
    // Figure 5: frequent testing costs more than HI-REF; infrequent
    // testing costs less.
    CostModel cm;
    double hi_avg = cm.hiRefAverageNsPerMs();
    EXPECT_GT(cm.averageCostNsPerMs(TestMode::ReadAndCompare, TimeMs{100.0}),
              hi_avg);
    EXPECT_LT(cm.averageCostNsPerMs(TestMode::ReadAndCompare, TimeMs{5000.0}),
              hi_avg);
}

TEST(CostModel, InvalidConfigIsFatal)
{
    CostModelConfig bad;
    bad.loRefMs = 8.0; // below HI-REF
    EXPECT_EXIT(CostModel cm(bad), ::testing::ExitedWithCode(1),
                "LO-REF interval must exceed");
}

TEST(CostModel, ModeNames)
{
    EXPECT_EQ(toString(TestMode::ReadAndCompare), "Read&Compare");
    EXPECT_EQ(toString(TestMode::CopyAndCompare), "Copy&Compare");
}

// --------------------------------------------------------------------
// PRIL
// --------------------------------------------------------------------

TEST(Pril, SingleWriteBecomesCandidateAfterTwoQuanta)
{
    PrilPredictor pril(64, 16);
    pril.onWrite(PageId{5});
    // End of the write's quantum: page 5 moves to "previous".
    EXPECT_TRUE(pril.endQuantum().empty());
    // It stayed idle for the next quantum: now a candidate.
    auto cands = pril.endQuantum();
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], PageId{5});
    // Not re-reported afterwards.
    EXPECT_TRUE(pril.endQuantum().empty());
}

TEST(Pril, SecondWriteSameQuantumDisqualifies)
{
    PrilPredictor pril(64, 16);
    pril.onWrite(PageId{5});
    pril.onWrite(PageId{5}); // interval < quantum (Figure 13 step 2)
    EXPECT_TRUE(pril.endQuantum().empty());
    EXPECT_TRUE(pril.endQuantum().empty());
}

TEST(Pril, WriteInNextQuantumDisqualifies)
{
    PrilPredictor pril(64, 16);
    pril.onWrite(PageId{5});
    EXPECT_TRUE(pril.endQuantum().empty());
    pril.onWrite(PageId{5}); // evicts from the previous buffer (step 3)
    EXPECT_TRUE(pril.endQuantum().empty());
    // ... but that second write itself becomes a candidate a
    // quantum later.
    auto cands = pril.endQuantum();
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], PageId{5});
}

TEST(Pril, MultiplePagesSortedCandidates)
{
    PrilPredictor pril(64, 16);
    pril.onWrite(PageId{9});
    pril.onWrite(PageId{3});
    pril.onWrite(PageId{7});
    pril.endQuantum();
    auto cands = pril.endQuantum();
    EXPECT_EQ(cands,
              (std::vector<PageId>{PageId{3}, PageId{7}, PageId{9}}));
}

TEST(Pril, BufferCapacityDropsExcessPages)
{
    PrilPredictor pril(100, 4);
    for (std::uint64_t p = 0; p < 10; ++p)
        pril.onWrite(PageId{p});
    EXPECT_EQ(pril.bufferDrops(), 6u);
    pril.endQuantum();
    EXPECT_EQ(pril.endQuantum().size(), 4u);
}

TEST(Pril, DroppedPageCanReenterLater)
{
    PrilPredictor pril(100, 1);
    pril.onWrite(PageId{1});
    pril.onWrite(PageId{2}); // dropped (footnote 10)
    EXPECT_EQ(pril.bufferDrops(), 1u);
    pril.endQuantum();
    pril.endQuantum(); // page 1 reported, structures cleared
    pril.onWrite(PageId{2});   // fresh quantum: fits now
    pril.endQuantum();
    auto cands = pril.endQuantum();
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], PageId{2});
}

TEST(Pril, TrackingQueryAndStorage)
{
    PrilPredictor pril(1000, 50);
    EXPECT_FALSE(pril.isTracked(PageId{3}));
    pril.onWrite(PageId{3});
    EXPECT_TRUE(pril.isTracked(PageId{3}));
    // Two 1000-bit maps plus 2 * 50 entries * 5 bytes.
    EXPECT_EQ(pril.storageBytes(), 2 * 16 * 8 + 2 * 50 * 5u);
}

TEST(Pril, PaperStorageBudget)
{
    // Section 6.4: a 1M-page (8 GB / 8 KB) module with 4000-entry
    // buffers costs ~2x128 KB of maps + ~2x20 KB of buffer.
    PrilPredictor pril(1u << 20, 4000);
    double kb = pril.storageBytes() / 1024.0;
    EXPECT_NEAR(kb, 2 * 128.0 + 2 * 19.5, 8.0);
}

TEST(Pril, OutOfRangePagePanics)
{
    PrilPredictor pril(10, 4);
    EXPECT_DEATH(pril.onWrite(PageId{10}), "out of range");
}

/**
 * Property: PRIL candidates match a brute-force reference that
 * replays the same write sequence with per-quantum count maps:
 * candidates at quantum end q are pages with exactly one write in
 * quantum q-1 and none in quantum q (unbounded buffer).
 */
class PrilReference : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PrilReference, MatchesBruteForce)
{
    Rng rng(GetParam());
    const std::uint64_t pages = 40;
    PrilPredictor pril(pages, 10000); // effectively unbounded

    std::map<std::uint64_t, unsigned> prev_counts, cur_counts;
    for (int quantum = 0; quantum < 50; ++quantum) {
        unsigned writes = rng.uniformInt(30);
        for (unsigned w = 0; w < writes; ++w) {
            std::uint64_t page = rng.uniformInt(pages);
            pril.onWrite(PageId{page});
            ++cur_counts[page];
        }
        std::vector<PageId> expected;
        for (const auto &[page, count] : prev_counts)
            if (count == 1 && !cur_counts.count(page))
                expected.push_back(PageId{page});
        ASSERT_EQ(pril.endQuantum(), expected) << "quantum " << quantum;
        prev_counts = std::move(cur_counts);
        cur_counts.clear();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrilReference,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

// --------------------------------------------------------------------
// Refresh policies
// --------------------------------------------------------------------

TEST(Policies, FixedIntervals)
{
    EXPECT_DOUBLE_EQ(fixedRefreshPolicy(16.0, 16.0).reduction, 0.0);
    EXPECT_DOUBLE_EQ(fixedRefreshPolicy(32.0, 16.0).reduction, 0.5);
    EXPECT_DOUBLE_EQ(fixedRefreshPolicy(64.0, 16.0).reduction, 0.75);
    EXPECT_EXIT(fixedRefreshPolicy(8.0, 16.0),
                ::testing::ExitedWithCode(1), "below the baseline");
}

TEST(Policies, RaidrSixteenPercent)
{
    // Section 6.3's RAIDR configuration: 16% of rows at 16 ms, the
    // rest at 64 ms -> 63% fewer refreshes than the 16 ms baseline.
    RefreshPolicy p = raidrPolicy(0.16, 16.0, 64.0, 16.0);
    EXPECT_NEAR(p.reduction, 0.63, 1e-12);
    // Degenerate ends.
    EXPECT_NEAR(raidrPolicy(1.0, 16.0, 64.0, 16.0).reduction, 0.0, 1e-12);
    EXPECT_NEAR(raidrPolicy(0.0, 16.0, 64.0, 16.0).reduction, 0.75,
                1e-12);
}

TEST(Policies, MemconWrapsMeasuredReduction)
{
    EXPECT_DOUBLE_EQ(memconPolicy(0.68).reduction, 0.68);
    EXPECT_EQ(memconPolicy(0.68).name, "MEMCON");
    EXPECT_EXIT(memconPolicy(1.5), ::testing::ExitedWithCode(1),
                "reduction must lie");
}

// --------------------------------------------------------------------
// Engine
// --------------------------------------------------------------------

MemconConfig
testConfig()
{
    MemconConfig cfg;
    cfg.quantumMs = TimeMs{100.0};
    cfg.writeBufferCapacity = 1000;
    cfg.testSlotsPer64ms = 1024;
    return cfg;
}

TEST(Engine, UpperBoundReduction)
{
    MemconEngine eng(testConfig());
    EXPECT_DOUBLE_EQ(eng.upperBoundReduction(), 0.75);
}

TEST(Engine, UnwrittenPagesApproachUpperBound)
{
    // Pages with no writes are identified as read-only at the end of
    // quantum 2 and spend the rest of the run at LO-REF.
    MemconEngine eng(testConfig());
    std::vector<std::vector<TimeMs>> writes(32);
    MemconResult r = eng.run(writes, 10000.0);
    // 200 ms of HI out of 10 s, the rest at LO:
    double expected_lo = (10000.0 - 200.0) / 10000.0;
    EXPECT_NEAR(r.loCoverage(), expected_lo, 1e-9);
    EXPECT_NEAR(r.reduction(), 0.75 * expected_lo, 0.01);
    EXPECT_EQ(r.testsRun, 32u);
    EXPECT_EQ(r.testsPassed, 32u);
}

TEST(Engine, SingleIdlePageLifecycle)
{
    // One page written once at t=50: it survives the write quantum
    // [0,100) plus the full idle quantum [100,200), so PRIL reports
    // it at t=200 and it stays at LO-REF until the horizon.
    MemconEngine eng(testConfig());
    std::vector<std::vector<TimeMs>> writes{{TimeMs{50.0}}};
    MemconResult r = eng.run(writes, 1000.0);
    EXPECT_EQ(r.testsRun, 1u);
    EXPECT_EQ(r.testsPassed, 1u);
    EXPECT_EQ(r.testsCorrect, 1u); // censored: no later write
    EXPECT_NEAR(r.loTimeMs, 800.0, 1e-9);
    EXPECT_NEAR(r.hiTimeMs, 200.0, 1e-9);
    double ops = 200.0 / 16.0 + 800.0 / 64.0;
    EXPECT_NEAR(r.refreshOpsMemcon, ops, 1e-9);
}

TEST(Engine, WriteDemotesToHiRef)
{
    MemconConfig cfg = testConfig();
    MemconEngine eng(cfg);
    // Written at 50, tested at 200, written again at 650 -> HI
    // again, candidate again at 800, LO until 2000.
    std::vector<std::vector<TimeMs>> writes{
        {TimeMs{50.0}, TimeMs{650.0}}};
    std::vector<std::tuple<std::uint64_t, double, bool>> transitions;
    MemconResult r = eng.run(
        writes, 2000.0, {},
        [&](std::uint64_t page, double t, bool to_lo, std::uint64_t) {
            transitions.emplace_back(page, t, to_lo);
        });
    ASSERT_EQ(transitions.size(), 3u);
    EXPECT_EQ(transitions[0],
              (std::tuple<std::uint64_t, double, bool>{0, 200.0, true}));
    EXPECT_EQ(transitions[1],
              (std::tuple<std::uint64_t, double, bool>{0, 650.0, false}));
    EXPECT_EQ(transitions[2],
              (std::tuple<std::uint64_t, double, bool>{0, 800.0, true}));
    EXPECT_EQ(r.testsRun, 2u);
    // First test idle span 450 ms < MinWriteInterval(560) ->
    // mispredicted; second censored-correct.
    EXPECT_EQ(r.testsMispredicted, 1u);
    EXPECT_EQ(r.testsCorrect, 1u);
}

TEST(Engine, FailingRowsStayAtHiRef)
{
    MemconEngine eng(testConfig());
    std::vector<std::vector<TimeMs>> writes{{TimeMs{50.0}},
                                            {TimeMs{50.0}}};
    // Page 0 fails with its current content; page 1 passes.
    auto oracle = [](std::uint64_t page, std::uint64_t) {
        return page == 0;
    };
    MemconResult r = eng.run(writes, 1000.0, oracle);
    EXPECT_EQ(r.testsRun, 2u);
    EXPECT_EQ(r.testsFailed, 1u);
    EXPECT_EQ(r.testsPassed, 1u);
    // Page 0 never reaches LO-REF; page 1 does from its test at 200.
    EXPECT_NEAR(r.loTimeMs, 800.0, 1e-9);
    EXPECT_NEAR(r.hiTimeMs, 1000.0 + 200.0, 1e-9);
}

TEST(Engine, TestBudgetSkipsExcessCandidates)
{
    MemconConfig cfg = testConfig();
    cfg.testSlotsPer64ms = 1; // ~1.5 tests per 100 ms quantum
    MemconEngine eng(cfg);
    std::vector<std::vector<TimeMs>> writes(
        10, std::vector<TimeMs>{TimeMs{50.0}});
    MemconResult r = eng.run(writes, 400.0);
    EXPECT_GT(r.testsSkippedBudget, 0u);
    EXPECT_LT(r.testsRun, 10u);
}

TEST(Engine, BufferDropsSurfaceInResult)
{
    MemconConfig cfg = testConfig();
    cfg.writeBufferCapacity = 2;
    MemconEngine eng(cfg);
    std::vector<std::vector<TimeMs>> writes(
        10, std::vector<TimeMs>{TimeMs{50.0}});
    MemconResult r = eng.run(writes, 400.0);
    EXPECT_EQ(r.bufferDrops, 8u);
}

TEST(Engine, ReductionConsistencyIdentity)
{
    // loTime + hiTime must equal pages * duration, and the refresh
    // op count must be the integral of the state timeline.
    MemconEngine eng(testConfig());
    Rng rng(77);
    std::vector<std::vector<TimeMs>> writes(50);
    for (auto &w : writes) {
        double t = rng.uniform(0.0, 500.0);
        while (t < 5000.0) {
            w.push_back(TimeMs{t});
            t += rng.pareto(1.0, 0.5);
        }
    }
    MemconResult r = eng.run(writes, 5000.0);
    EXPECT_NEAR(r.hiTimeMs + r.loTimeMs, 50 * 5000.0, 1e-6);
    EXPECT_NEAR(r.refreshOpsMemcon,
                r.hiTimeMs / 16.0 + r.loTimeMs / 64.0, 1e-6);
    EXPECT_NEAR(r.refreshOpsBaseline, 50 * 5000.0 / 16.0, 1e-6);
    EXPECT_EQ(r.testsRun, r.testsPassed + r.testsFailed);
    EXPECT_EQ(r.testsRun, r.testsCorrect + r.testsMispredicted);
    EXPECT_GT(r.reduction(), 0.0);
    EXPECT_LT(r.reduction(), eng.upperBoundReduction() + 1e-9);
}

/**
 * The Section 8 reliability invariant, observed from outside: a page
 * is only ever at LO-REF after passing a test against its current
 * content, and any write instantly demotes it. We reconstruct the
 * state from the transition stream and check it against the write
 * timeline and a content-dependent oracle.
 */
class EngineInvariant : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineInvariant, LoRefAlwaysTestedContent)
{
    Rng rng(GetParam());
    const std::size_t pages = 30;
    std::vector<std::vector<TimeMs>> writes(pages);
    for (auto &w : writes) {
        double t = rng.uniform(0.0, 300.0);
        while (t < 4000.0) {
            w.push_back(TimeMs{t});
            t += rng.pareto(2.0, 0.45);
        }
    }

    // Content is a function of (page, write count); failure flips
    // with a hash so retests of changed content can fail.
    auto oracle = [](std::uint64_t page, std::uint64_t wc) {
        return hashMix64(page * 131 + wc * 7) % 5 == 0;
    };

    struct Transition
    {
        double time;
        bool toLo;
        std::uint64_t writeCount;
    };
    std::vector<std::vector<Transition>> log(pages);

    MemconEngine eng(testConfig());
    eng.run(writes, 4000.0, oracle,
            [&](std::uint64_t page, double t, bool to_lo,
                std::uint64_t wc) {
                log[page].push_back({t, to_lo, wc});
            });

    for (std::size_t p = 0; p < pages; ++p) {
        bool at_lo = false;
        std::size_t wi = 0;
        for (const Transition &tr : log[p]) {
            if (tr.toLo) {
                ASSERT_FALSE(at_lo);
                // Passing test implies the oracle approved the
                // content as of this write count...
                ASSERT_FALSE(oracle(p, tr.writeCount));
                // ...and that write count is consistent with the
                // writes that happened up to this time.
                while (wi < writes[p].size() &&
                       writes[p][wi].value() < tr.time)
                    ++wi;
                ASSERT_EQ(tr.writeCount, wi);
            } else {
                ASSERT_TRUE(at_lo);
                // Demotion happens exactly at a write.
                ASSERT_LT(wi, writes[p].size());
                ASSERT_DOUBLE_EQ(writes[p][wi].value(), tr.time);
            }
            at_lo = tr.toLo;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariant,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Engine, QuantumSweepKeepsReductionStable)
{
    // Figure 14: the reduction barely moves across CIL 512-2048 ms.
    std::vector<double> reductions;
    for (double q : {512.0, 1024.0, 2048.0}) {
        MemconConfig cfg;
        cfg.quantumMs = TimeMs{q};
        MemconEngine eng(cfg);
        // AllSysMark's long trace keeps quantum-scale delays small
        // relative to its minute-scale idle gaps, as in the paper.
        trace::AppPersona p = trace::AppPersona::byName("AllSysMark");
        reductions.push_back(eng.runOnApp(p).reduction());
    }
    for (double r : reductions) {
        EXPECT_GT(r, 0.55);
        EXPECT_LT(r, 0.75);
    }
    EXPECT_LT(std::abs(reductions[0] - reductions[2]), 0.10);
}

TEST(Engine, CopyModeCostsMoreTestTime)
{
    MemconConfig rc = testConfig();
    MemconConfig cc = testConfig();
    cc.mode = TestMode::CopyAndCompare;
    std::vector<std::vector<TimeMs>> writes{{TimeMs{50.0}}};
    MemconResult r1 = MemconEngine(rc).run(writes, 1000.0);
    MemconResult r2 = MemconEngine(cc).run(writes, 1000.0);
    EXPECT_DOUBLE_EQ(r1.testTimeNs, 1068.0);
    EXPECT_DOUBLE_EQ(r2.testTimeNs, 1602.0);
}

TEST(Engine, InvalidConfigsAreFatal)
{
    MemconConfig bad = testConfig();
    bad.loRefMs = 10.0;
    EXPECT_EXIT(MemconEngine eng(bad), ::testing::ExitedWithCode(1),
                "hiRefMs");
    MemconConfig bad2 = testConfig();
    bad2.quantumMs = TimeMs{};
    EXPECT_EXIT(MemconEngine eng(bad2), ::testing::ExitedWithCode(1),
                "quantum");
}

} // namespace
} // namespace memcon::core
