/**
 * @file
 * The determinism contract of the parallel experiment runner, and the
 * thread pool underneath it.
 *
 * The load-bearing property: a sweep campaign reduces to byte-for-byte
 * identical metrics for any thread count, because every task's random
 * stream is a pure function of (campaign seed, task index) and the
 * reduction happens in task-index order. These tests run the same
 * campaign 1-, 2-, and 8-wide and compare canonical digests.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "core/engine.hh"
#include "runner.hh"
#include "trace/app_model.hh"

using namespace memcon;
using namespace memcon::bench;

namespace
{

/** A sweep of real MemconEngine runs, small enough for a unit test. */
SweepRunner
makeEngineSweep(unsigned threads, std::uint64_t campaign_seed)
{
    SweepOptions opts;
    opts.threads = threads;
    opts.campaignSeed = campaign_seed;
    opts.writeJson = false;
    SweepRunner runner("test_engine_sweep", opts);

    trace::AppPersona base = trace::AppPersona::table1Suite()[0];
    base.pages = 1500;
    base.durationSec = 30.0;
    for (double cil : {512.0, 1024.0}) {
        for (int rep = 0; rep < 3; ++rep) {
            runner.add(
                "cil" + std::to_string(static_cast<int>(cil)) + "/rep" +
                    std::to_string(rep),
                [base, cil](const TaskContext &ctx) {
                    trace::AppPersona p = base;
                    p.seed = ctx.seed;
                    core::MemconConfig cfg;
                    cfg.quantumMs = TimeMs{cil};
                    core::MemconEngine engine(cfg);
                    core::MemconResult r = engine.runOnApp(p);
                    return Metrics{
                        {"reduction", r.reduction()},
                        {"coverage", r.loCoverage()},
                        {"tests", static_cast<double>(r.testsRun)},
                    };
                });
        }
    }
    return runner;
}

} // namespace

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ResultsReduceInSubmissionOrder)
{
    // Tasks finish in roughly reverse submission order (later tasks
    // sleep less); the caller still reduces in submission order by
    // walking its futures.
    ThreadPool pool(4);
    const int n = 8;
    std::vector<int> results(n, -1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(pool.submit([i, &results] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds((8 - i) * 3));
            results[i] = i;
        }));
    for (int i = 0; i < n; ++i) {
        futures[i].get();
        EXPECT_EQ(results[i], i);
    }
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures)
{
    ThreadPool pool(2);
    std::future<void> bad =
        pool.submit([] { throw std::runtime_error("task failed"); });
    std::future<void> good = pool.submit([] {});
    EXPECT_THROW(bad.get(), std::runtime_error);
    EXPECT_NO_THROW(good.get());
    // The pool survives a throwing task.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SurvivesExceptionStormOnBoundedQueue)
{
    // Regression: a storm of throwing tasks through a tiny bounded
    // queue must neither deadlock the producer (stuck notFull wait)
    // nor poison the workers - later submissions still run, and
    // every failure still surfaces through its own future.
    ThreadPool pool(2, /*queue_capacity=*/2);
    std::vector<std::future<void>> failures;
    for (int i = 0; i < 200; ++i)
        failures.push_back(pool.submit(
            [] { throw std::runtime_error("storm"); }));
    std::atomic<int> ran{0};
    std::vector<std::future<void>> survivors;
    for (int i = 0; i < 50; ++i)
        survivors.push_back(pool.submit([&ran] { ++ran; }));
    for (auto &f : failures)
        EXPECT_THROW(f.get(), std::runtime_error);
    for (auto &f : survivors)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(ran.load(), 50);
    // Mixed storms keep the interleaving honest.
    std::atomic<int> mixed{0};
    std::vector<std::future<void>> both;
    for (int i = 0; i < 100; ++i) {
        if (i % 3 == 0)
            both.push_back(pool.submit(
                [] { throw std::runtime_error("again"); }));
        else
            both.push_back(pool.submit([&mixed] { ++mixed; }));
    }
    int threw = 0;
    for (auto &f : both) {
        try {
            f.get();
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 34);
    EXPECT_EQ(mixed.load(), 66);
}

TEST(ThreadPool, CancelTokenUnwindsAsTaskCancelled)
{
    // TaskCancelled must flow through a future like any exception,
    // and remain catchable as its concrete type (the campaign layer
    // distinguishes "abandoned" from "failed" by it).
    ThreadPool pool(1);
    CancelToken token;
    token.requestCancel();
    std::future<void> f =
        pool.submit([token] { token.throwIfCancelled(); });
    EXPECT_THROW(f.get(), TaskCancelled);
    // An unraised token is inert.
    CancelToken calm;
    EXPECT_NO_THROW(
        pool.submit([calm] { calm.throwIfCancelled(); }).get());
}

TEST(ThreadPool, ShutdownCompletesQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1, /*queue_capacity=*/64);
        pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            ++ran;
        });
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor must drain the still-queued tasks, not drop them.
    }
    EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPool, BoundedQueueBlocksProducerWithoutDeadlock)
{
    ThreadPool pool(1, /*queue_capacity=*/2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++ran;
        }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskSeed, DerivationIsPinned)
{
    // Golden values: changing the derivation silently re-seeds every
    // campaign, which would invalidate all recorded BENCH_*.json
    // trajectories - so it is pinned here.
    EXPECT_EQ(deriveTaskSeed(42, 0), 0x7408e0ecfc32712cULL);
    EXPECT_EQ(deriveTaskSeed(42, 1), 0xa896a6ec2e9e9232ULL);
    EXPECT_EQ(deriveTaskSeed(7, 3), 0xbd1b9ad5433b45e5ULL);
}

TEST(TaskSeed, DistinctAcrossIndicesAndCampaigns)
{
    std::vector<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.push_back(deriveTaskSeed(42, i));
    for (std::uint64_t c = 1000; c < 1100; ++c)
        seen.push_back(deriveTaskSeed(c, 0));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(SweepRunner, TaskSeedsAreCampaignDerived)
{
    SweepOptions opts;
    opts.threads = 2;
    opts.campaignSeed = 99;
    opts.writeJson = false;
    SweepRunner runner("test_seeds", opts);
    for (int i = 0; i < 5; ++i)
        runner.add("p" + std::to_string(i), [](const TaskContext &ctx) {
            return Metrics{
                {"seed", static_cast<double>(ctx.seed >> 16)}};
        });
    runner.run();
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(runner.metric(i, "seed"),
                  static_cast<double>(deriveTaskSeed(99, i) >> 16));
}

TEST(SweepRunner, ReducesInTaskIndexOrderRegardlessOfCompletion)
{
    SweepOptions opts;
    opts.threads = 8;
    opts.writeJson = false;
    SweepRunner runner("test_order", opts);
    const int n = 8;
    for (int i = 0; i < n; ++i)
        runner.add("point" + std::to_string(i),
                   [i, n](const TaskContext &) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds((n - i) * 3));
                       return Metrics{{"index", static_cast<double>(i)}};
                   });
    const std::vector<PointResult> &results = runner.run();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(results[i].label, "point" + std::to_string(i));
        EXPECT_EQ(results[i].metric("index"), static_cast<double>(i));
    }
}

TEST(SweepRunner, PropagatesLowestIndexTaskFailure)
{
    SweepOptions opts;
    opts.threads = 4;
    opts.writeJson = false;
    SweepRunner runner("test_throw", opts);
    runner.add("ok", [](const TaskContext &) { return Metrics{}; });
    runner.add("boom", [](const TaskContext &) -> Metrics {
        throw std::runtime_error("sweep point failed");
    });
    runner.add("ok2", [](const TaskContext &) { return Metrics{}; });
    EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(SweepRunner, EngineSweepBitIdenticalAcross1_2_8Threads)
{
    SweepRunner t1 = makeEngineSweep(1, 42);
    SweepRunner t2 = makeEngineSweep(2, 42);
    SweepRunner t8 = makeEngineSweep(8, 42);
    std::string d1 = resultsDigest(t1.run());
    std::string d2 = resultsDigest(t2.run());
    std::string d8 = resultsDigest(t8.run());
    EXPECT_FALSE(d1.empty());
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, d8);
}

TEST(SweepRunner, CampaignSeedChangesTheMetrics)
{
    std::string a = resultsDigest(makeEngineSweep(2, 42).run());
    std::string b = resultsDigest(makeEngineSweep(2, 43).run());
    EXPECT_NE(a, b);
}
